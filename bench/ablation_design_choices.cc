/**
 * @file
 * Ablation harness for the design choices DESIGN.md calls out, averaged
 * over all 16 workloads at the half-size (GPU-shrink-50) operating
 * point where they matter most:
 *   - bank-restricted vs. unrestricted renaming,
 *   - conservative (paper) vs. aggressive divergence releases,
 *   - renaming pipeline latency (0 / 1 / 2 cycles),
 *   - flag-miss fetch bubble on/off.
 */
#include "bench/bench_common.h"
#include "common/table.h"

using namespace rfv;

namespace {

struct Variant {
    std::string label;
    RunConfig cfg;
    u32 renamingLatency = 1;
    bool flagMissBubble = true;
};

double
meanCycles(const BenchArgs &args, const Variant &v,
           const std::vector<double> &baseline, double &stallSum)
{
    double ratioSum = 0;
    u32 i = 0;
    stallSum = 0;
    for (const auto &w : allWorkloads()) {
        Simulator sim(args.apply(v.cfg));
        GpuConfig gpu = sim.gpuConfig();
        gpu.renamingLatency = v.renamingLatency;
        gpu.flagMissBubble = v.flagMissBubble;
        const auto launch = w->scaledLaunch(args.numSms, args.rounds);
        GlobalMemory mem(w->memoryBytes(launch));
        w->setup(mem, launch);
        CompileOptions copts = sim.compileOptions(
            launch.warpsPerCta() *
            std::min(launch.concCtasPerSm, gpu.maxCtasPerSm));
        const auto ck = compileKernel(w->buildKernel(), copts);
        Gpu machine(gpu, ck.program, launch, mem);
        const auto res = machine.run();
        w->verify(mem, launch);
        ratioSum += static_cast<double>(res.cycles) / baseline[i];
        stallSum += static_cast<double>(res.allocStallEvents);
        ++i;
    }
    return ratioSum / static_cast<double>(allWorkloads().size());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto args = BenchArgs::parse(argc, argv);

    // Baseline cycles per workload (128 KB, classic allocation).
    std::vector<double> baseline;
    for (const auto &w : allWorkloads()) {
        const auto out = runOne(args, RunConfig::baseline(), *w);
        baseline.push_back(static_cast<double>(out.sim.cycles));
    }

    std::vector<Variant> variants;
    variants.push_back({"shrink50 (paper design)",
                        RunConfig::gpuShrink(50), 1, true});
    {
        RunConfig c = RunConfig::gpuShrink(50);
        c.bankRestricted = false;
        variants.push_back({"shrink50, unrestricted banks", c, 1,
                            true});
    }
    {
        RunConfig c = RunConfig::gpuShrink(50);
        c.aggressiveDiverged = true;
        variants.push_back({"shrink50, aggressive releases", c, 1,
                            true});
    }
    variants.push_back({"shrink50, 0-cycle rename",
                        RunConfig::gpuShrink(50), 0, true});
    variants.push_back({"shrink50, 2-cycle rename",
                        RunConfig::gpuShrink(50), 2, true});
    variants.push_back({"shrink50, no flag-miss bubble",
                        RunConfig::gpuShrink(50), 1, false});

    std::cout << "Ablation: design choices at the 64KB (GPU-shrink-50) "
                 "operating point\n(cycles normalized to the 128KB "
                 "baseline, averaged over all 16 workloads)\n\n";
    Table t({"Variant", "Mean norm. cycles", "Alloc-stall events"});
    for (const auto &v : variants) {
        double stalls = 0;
        const double mean = meanCycles(args, v, baseline, stalls);
        t.addRow({v.label, Table::num(mean, 4), Table::num(stalls, 0)});
    }
    std::cout << t.str();
    std::cout << "\nBank-unrestricted renaming trades the compiler's "
                 "bank-conflict guarantees for fewer allocation "
                 "stalls; the paper keeps the restriction (Sec. 7.1).\n";
    return 0;
}
