/**
 * @file
 * Area and yield impact of register-file under-provisioning (the
 * paper's Section 1 economic argument: the GPU register file rivals a
 * CPU's last-level cache in capacity, so halving it matters for die
 * cost and yield).
 */
#include <iostream>

#include "common/table.h"
#include "power/area_model.h"

int
main()
{
    using namespace rfv;
    constexpr u32 kSms = 16; // paper-scale chip
    std::cout << "Area & yield impact of register-file size (16 SMs, "
                 "Fermi-class 529mm^2 die, 40nm, Poisson yield)\n\n";
    Table t({"RF/SM", "RF area (mm^2)", "Die (mm^2)", "Yield (%)",
             "Good dies/wafer", "vs 128KB (%)"});
    const auto base = evaluateRfSize(128 * 1024, kSms);
    for (u32 kb : {128u, 96u, 64u, 48u}) {
        const auto pt = evaluateRfSize(kb * 1024, kSms);
        t.addRow({std::to_string(kb) + "KB",
                  Table::num(pt.rfAreaMm2, 1),
                  Table::num(pt.dieMm2, 1),
                  Table::num(100.0 * pt.yield, 1),
                  Table::num(pt.goodDiesPerWafer, 1),
                  Table::num(100.0 * (pt.goodDiesPerWafer /
                                          base.goodDiesPerWafer -
                                      1.0),
                             2)});
    }
    std::cout << t.str();
    std::cout << "\nGPU-shrink-50 banks these gains while Fig. 11(a) "
                 "shows the performance cost is negligible.\n";
    return 0;
}
