/**
 * @file
 * Shared command-line handling for the figure/table reproduction
 * binaries.
 *
 * Every bench accepts:
 *   --sms=N      number of simulated SMs (default 4; paper used 16)
 *   --rounds=N   waves of full occupancy per SM to cap the grid
 *                (default 3; keeps laptop runtimes in seconds)
 *   --full       run the full Table-1 grids (slow, closest to paper)
 */
#ifndef RFV_BENCH_BENCH_COMMON_H
#define RFV_BENCH_BENCH_COMMON_H

#include <cstring>
#include <iostream>
#include <string>

#include "core/simulator.h"

namespace rfv {

struct BenchArgs {
    u32 numSms = 4;
    u32 rounds = 3;

    static BenchArgs
    parse(int argc, char **argv)
    {
        BenchArgs args;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--sms=", 0) == 0) {
                args.numSms = static_cast<u32>(
                    std::stoul(arg.substr(6)));
            } else if (arg.rfind("--rounds=", 0) == 0) {
                args.rounds = static_cast<u32>(
                    std::stoul(arg.substr(9)));
            } else if (arg == "--full") {
                args.rounds = 0;
            } else if (arg == "--help" || arg == "-h") {
                std::cout << "options: --sms=N --rounds=N --full\n";
                std::exit(0);
            } else {
                std::cerr << "unknown option: " << arg << "\n";
                std::exit(2);
            }
        }
        return args;
    }

    RunConfig
    apply(RunConfig cfg) const
    {
        cfg.numSms = numSms;
        cfg.roundsPerSm = rounds;
        return cfg;
    }
};

/** Run one workload under one config (setup + verify included). */
inline RunOutcome
runOne(const BenchArgs &args, const RunConfig &cfg, const Workload &w)
{
    Simulator sim(args.apply(cfg));
    return sim.runWorkload(w);
}

} // namespace rfv

#endif // RFV_BENCH_BENCH_COMMON_H
