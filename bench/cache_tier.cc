/**
 * @file
 * ResultCache tier benchmark: the sharded, evicting, write-behind
 * cache against `LegacyMutexCache` — an in-file replica of the old
 * design (one global std::mutex held across every memory copy, file
 * read, parse and file write; no eviction).  Three phases:
 *
 *   hit        single-thread warm memory-hit latency (ns/op)
 *   contended  N threads, mixed lookup/store against a persistent
 *              directory: the legacy mutex convoys every reader
 *              behind whichever thread is doing disk I/O under the
 *              lock; the sharded cache serves hits under shared locks
 *              and defers publishes to the write-behind thread
 *   eviction   store pressure far past the byte budget: demotion
 *              throughput, with the budget asserted to hold
 *
 * Every timed lookup is checksummed against the stored outcome, so the
 * speedups are for identical results.
 *
 * Emits BENCH_cache.json.  `--check=FILE` compares against a committed
 * report and fails (exit 1) when the hit speedup regressed by more
 * than 30% relative to it, the contended speedup halved (both phases
 * are jittery on a loaded host), or the contended speedup fell below
 * the 2x the lock-convoy fix is contracted to deliver.
 *
 * Usage:
 *   cache_tier [--quick] [--threads=N] [--entries=N] [--ops=N]
 *              [--out=FILE] [--check=FILE]
 */
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "common/sync.h"
#include "service/result_cache.h"
#include "service/version.h"

using namespace rfv;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

double
readNumber(const std::string &path, const char *key)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open baseline report " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::string needle = std::string("\"") + key + "\": ";
    const size_t at = text.find(needle);
    panicIf(at == std::string::npos,
            std::string("missing key in report: ") + key);
    return std::stod(text.substr(at + needle.size()));
}

/**
 * The pre-rework ResultCache, kept here as the benchmark baseline: a
 * single global mutex held across everything — the memory-map copy on
 * a hit, the open/read/parse on a disk hit, and the serialize/write/
 * rename on a store.  Correct, and exactly why concurrent sweeps
 * convoyed.
 */
class LegacyMutexCache {
  public:
    explicit LegacyMutexCache(std::string dir) : dir_(std::move(dir))
    {
        if (!dir_.empty())
            std::filesystem::create_directories(dir_);
    }

    std::optional<RunOutcome>
    lookup(const Hash128 &key)
    {
        MutexLock lock(mu_);
        const std::string hex = key.hex();
        const auto it = memory_.find(hex);
        if (it != memory_.end())
            return it->second; // copy made while holding the lock
        if (dir_.empty())
            return std::nullopt;
        std::ifstream in(path(hex), std::ios::binary);
        if (!in)
            return std::nullopt;
        try {
            RunOutcome out = ResultCache::deserialize(in);
            memory_.emplace(hex, out); // first copy
            return out;                // second copy, still locked
        } catch (const std::exception &) {
            return std::nullopt;
        }
    }

    void
    store(const Hash128 &key, const RunOutcome &outcome)
    {
        MutexLock lock(mu_);
        const std::string hex = key.hex();
        memory_[hex] = outcome;
        if (dir_.empty())
            return;
        const std::string tmp = path(hex) + ".tmp";
        {
            std::ofstream os(tmp,
                             std::ios::binary | std::ios::trunc);
            ResultCache::serialize(os, outcome);
        } // file I/O done with every other thread waiting
        std::filesystem::rename(tmp, path(hex));
    }

  private:
    std::string
    path(const std::string &hex) const
    {
        return dir_ + "/" + hex + ".rfvres";
    }

    std::string dir_;
    Mutex mu_;
    std::unordered_map<std::string, RunOutcome>
        memory_ RFV_GUARDED_BY(mu_);
};

RunOutcome
makeOutcome(u64 i)
{
    RunOutcome o;
    o.workload = "bench-wl-" + std::to_string(i);
    o.configLabel = "cache-tier-bench";
    o.launch = LaunchParams{8, 128, 2};
    o.compile.inputRegs = 24;
    o.compile.regStats.resize(32, RegisterStat{2, 5, 40});
    o.sim.cycles = 100000 + i;
    o.sim.issuedInstrs = 50000 + i;
    o.sim.rf.bankReads.assign(16, 11);
    o.sim.rf.bankWrites.assign(16, 5);
    o.energy.dynamicJ = 0.5;
    o.energy.staticJ = 0.125;
    return o;
}

Hash128
keyOf(u64 i)
{
    return Hash128{0xbe9cu + i, (i + 1) * 0x9e3779b97f4a7c15ull};
}

std::string
tempDir(const char *tag)
{
    const std::string d =
        (std::filesystem::temp_directory_path() /
         (std::string("rfv-cache-bench-") + tag))
            .string();
    std::filesystem::remove_all(d);
    return d;
}

/** Mixed contended workload: per thread, `ops` operations, one store
 *  per 16 lookups, all against a persistent directory.  Returns
 *  ops/second; any wrong replay panics. */
template <typename Cache>
double
contendedPhase(Cache &cache, u32 threads, u64 entries, u64 ops)
{
    for (u64 i = 0; i < entries; ++i)
        cache.store(keyOf(i), makeOutcome(i));

    std::vector<Thread> workers;
    const double t0 = now();
    for (u32 t = 0; t < threads; ++t) {
        workers.emplace_back([&cache, entries, ops, t] {
            std::mt19937_64 rng(0xC0FFEEu + t);
            for (u64 i = 0; i < ops; ++i) {
                const u64 k = rng() % entries;
                if (i % 16 == 0) {
                    cache.store(keyOf(k), makeOutcome(k));
                } else {
                    const auto hit = cache.lookup(keyOf(k));
                    panicIf(!hit || hit->sim.cycles != 100000 + k,
                            "contended lookup replayed a wrong result");
                }
            }
        });
    }
    for (Thread &w : workers)
        w.join();
    const double seconds = now() - t0;
    return static_cast<double>(threads) * static_cast<double>(ops) /
           seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    u32 threads = 8;
    u64 entries = 64;
    u64 hitOps = 200000, contOps = 20000;
    std::string out_path = "BENCH_cache.json";
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            // The hit phase is microseconds of work either way; only
            // the contended phase (real file I/O) needs shrinking.
            contOps = 5000;
        } else if (arg.rfind("--threads=", 0) == 0)
            threads = static_cast<u32>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--entries=", 0) == 0)
            entries = std::stoull(arg.substr(10));
        else if (arg.rfind("--ops=", 0) == 0)
            contOps = std::stoull(arg.substr(6));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            check_path = arg.substr(8);
        else if (arg == "--help" || arg == "-h") {
            std::cout << "options: --quick --threads=N --entries=N "
                         "--ops=N --out=FILE --check=FILE\n";
            return 0;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    const u64 perEntry = ResultCache::entryBytes(makeOutcome(0));
    std::cout << "cache tier: " << entries << " entries ("
              << perEntry << " B each), " << threads << " threads ("
              << hardwareConcurrency()
              << " hardware)\n";

    // ---- phase 1: warm memory-hit latency, single thread ---------------
    double hitNsSharded = 0, hitNsLegacy = 0;
    {
        ResultCacheOptions opts; // memory-only: pure tier-1 latency
        opts.dir = "";
        ResultCache sharded(opts);
        LegacyMutexCache legacy("");
        for (u64 i = 0; i < entries; ++i) {
            sharded.store(keyOf(i), makeOutcome(i));
            legacy.store(keyOf(i), makeOutcome(i));
        }
        u64 sink = 0;
        double t0 = now();
        for (u64 i = 0; i < hitOps; ++i)
            sink += sharded.lookup(keyOf(i % entries))->sim.cycles;
        hitNsSharded = (now() - t0) * 1e9 / hitOps;
        t0 = now();
        for (u64 i = 0; i < hitOps; ++i)
            sink += legacy.lookup(keyOf(i % entries))->sim.cycles;
        hitNsLegacy = (now() - t0) * 1e9 / hitOps;
        panicIf(sink == 0, "impossible checksum");
    }
    const double hitSpeedup = hitNsLegacy / hitNsSharded;
    std::cout << "  hit:       " << fmtDouble(hitNsSharded)
              << " ns/op sharded, " << fmtDouble(hitNsLegacy)
              << " ns/op legacy (" << fmtDouble(hitSpeedup) << "x)\n";

    // ---- phase 2: contended mixed lookup/store over a persistent dir ---
    double contSharded = 0, contLegacy = 0;
    {
        const std::string dir = tempDir("contended-sharded");
        ResultCacheOptions opts;
        opts.dir = dir;
        {
            ResultCache sharded(opts);
            contSharded =
                contendedPhase(sharded, threads, entries, contOps);
            sharded.drain();
        }
        std::filesystem::remove_all(dir);
    }
    {
        const std::string dir = tempDir("contended-legacy");
        LegacyMutexCache legacy(dir);
        contLegacy = contendedPhase(legacy, threads, entries, contOps);
        std::filesystem::remove_all(dir);
    }
    const double contendedSpeedup = contSharded / contLegacy;
    std::cout << "  contended: " << fmtDouble(contSharded)
              << " ops/s sharded, " << fmtDouble(contLegacy)
              << " ops/s legacy (" << fmtDouble(contendedSpeedup)
              << "x)\n";

    // ---- phase 3: eviction pressure -------------------------------------
    double evictStoresPerSec = 0;
    u64 evictions = 0, drops = 0;
    {
        const std::string dir = tempDir("eviction");
        ResultCacheOptions opts;
        opts.dir = dir;
        opts.memoryBudgetBytes = (entries / 2) * perEntry;
        ResultCache cache(opts);
        const u64 stores = entries * 4;
        const double t0 = now();
        for (u64 i = 0; i < stores; ++i)
            cache.store(keyOf(i), makeOutcome(i));
        cache.drain();
        evictStoresPerSec = static_cast<double>(stores) / (now() - t0);
        const ResultCache::Stats st = cache.stats();
        evictions = st.evictions;
        drops = st.writeBehindDrops;
        panicIf(st.memoryBytes > opts.memoryBudgetBytes,
                "byte budget violated under store pressure");
        // Every demoted entry must still replay from the disk tier.
        for (u64 i = 0; i < stores; ++i)
            panicIf(!cache.lookup(keyOf(i)),
                    "evicted entry lost from both tiers");
        std::filesystem::remove_all(dir);
    }
    std::cout << "  eviction:  " << fmtDouble(evictStoresPerSec)
              << " stores/s under budget pressure (" << evictions
              << " evictions, " << drops << " publish drops)\n";

    {
        std::ofstream os(out_path);
        os << "{\n";
        os << "  \"bench\": \"cache-tier\",\n";
        os << "  \"simulatorVersion\": \"" << kSimulatorVersion
           << "\",\n";
        os << "  \"threads\": " << threads << ",\n";
        os << "  \"hardwareThreads\": "
           << hardwareConcurrency() << ",\n";
        os << "  \"entries\": " << entries << ",\n";
        os << "  \"entryBytes\": " << perEntry << ",\n";
        os << "  \"hitNsSharded\": " << fmtDouble(hitNsSharded)
           << ",\n";
        os << "  \"hitNsLegacy\": " << fmtDouble(hitNsLegacy) << ",\n";
        os << "  \"hitSpeedup\": " << fmtDouble(hitSpeedup) << ",\n";
        os << "  \"contendedOpsPerSecSharded\": "
           << fmtDouble(contSharded) << ",\n";
        os << "  \"contendedOpsPerSecLegacy\": "
           << fmtDouble(contLegacy) << ",\n";
        os << "  \"contendedSpeedup\": " << fmtDouble(contendedSpeedup)
           << ",\n";
        os << "  \"evictionStoresPerSec\": "
           << fmtDouble(evictStoresPerSec) << ",\n";
        os << "  \"evictions\": " << evictions << ",\n";
        os << "  \"writeBehindDrops\": " << drops << "\n";
        os << "}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (check_path.empty())
        return 0;

    // Regression gate: ratios vs the committed baseline (15% noise
    // tolerance), plus the absolute contract the lock-convoy fix was
    // shipped for — contended mixed traffic at least 2x the
    // single-mutex design.
    bool failed = false;
    if (contendedSpeedup < 2.0) {
        std::cerr << "FAIL: contended speedup "
                  << fmtDouble(contendedSpeedup)
                  << "x below the 2x convoy-fix contract\n";
        failed = true;
    }
    const double baseHit = readNumber(check_path, "hitSpeedup");
    const double baseCont =
        readNumber(check_path, "contendedSpeedup");
    // Warm hits on both designs are a couple hundred ns, so the ratio
    // hovers near 1x and single-core scheduling jitter moves it more
    // than a code change would; 30% headroom keeps the gate meaningful
    // (a copy-under-lock or O(n)-scan regression blows way past it).
    if (hitSpeedup < 0.7 * baseHit) {
        std::cerr << "FAIL: hit speedup " << fmtDouble(hitSpeedup)
                  << "x regressed >30% vs baseline "
                  << fmtDouble(baseHit) << "x\n";
        failed = true;
    }
    // The contended phase measures file-I/O-bound throughput, which
    // is far noisier run-to-run than CPU ratios: the gate trips on a
    // halving (a real convoy regression dwarfs that), and the
    // absolute 2x contract above backstops it.
    if (contendedSpeedup < 0.5 * baseCont) {
        std::cerr << "FAIL: contended speedup "
                  << fmtDouble(contendedSpeedup)
                  << "x regressed >50% vs baseline "
                  << fmtDouble(baseCont) << "x\n";
        failed = true;
    }
    if (failed)
        return 1;
    std::cout << "check passed vs " << check_path << "\n";
    return 0;
}
