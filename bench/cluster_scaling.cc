/**
 * @file
 * Cluster scaling benchmark: the full 16-workload x 3-config manifest
 * dispatched through the ClusterCoordinator against 1-, 2- and 3-node
 * in-process clusters (real loopback sockets, ephemeral ports,
 * separate cache directories per node), cold and warm.
 *
 * Every routed outcome — on every cluster size, cold and warm — is
 * cross-checked for field-wise equality with a serial local Simulator
 * loop, so the scaling numbers are for *identical* results; a cluster
 * that answered faster by answering differently fails the run.
 *
 * Emits BENCH_cluster.json.  `--check=FILE` compares against a
 * committed report and fails (exit 1) when the 3-node/1-node scaling
 * ratio regressed relative to it (15% tolerance cold, 40% warm — the
 * warm passes are a few milliseconds of pure cache-hit RTT, so their
 * ratio is inherently noisier even as a min-of-reps), or a warm pass
 * missed the cache.  Ratios are wall-time fractions measured in one
 * process on one host, so the gate is stable across machine
 * generations; the committed baseline records its hardware thread
 * count — on a single-core host all nodes share that core, so
 * scaling beyond 1.0x only appears with real parallel hardware.
 *
 * Usage:
 *   cluster_scaling [--quick] [--sms=N] [--rounds=N] [--threads=N]
 *                   [--executors=N] [--reps=N] [--out=FILE]
 *                   [--check=FILE]
 */
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/error.h"
#include "common/sync.h"
#include "core/simulator.h"
#include "net/cluster_coordinator.h"
#include "net/server.h"
#include "service/version.h"

using namespace rfv;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

double
readNumber(const std::string &path, const char *key)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open baseline report " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::string needle = std::string("\"") + key + "\": ";
    const size_t at = text.find(needle);
    panicIf(at == std::string::npos,
            std::string("missing key in report: ") + key);
    return std::stod(text.substr(at + needle.size()));
}

/** One N-node loopback cluster, joined and ready to route. */
struct TestCluster {
    std::vector<std::unique_ptr<SimdServer>> servers;
    std::vector<std::string> endpoints;
    std::vector<std::string> cacheDirs;

    TestCluster(u32 nodes, u32 executors, const std::string &tag)
    {
        for (u32 i = 0; i < nodes; ++i) {
            cacheDirs.push_back(
                (std::filesystem::temp_directory_path() /
                 ("rfv-cluster-bench-" + tag + "-n" +
                  std::to_string(i)))
                    .string());
            std::filesystem::remove_all(cacheDirs.back());
            ServerOptions sopts;
            sopts.executors = executors;
            sopts.queueCapacity = 256;
            sopts.sweep.cacheDir = cacheDirs.back();
            servers.push_back(std::make_unique<SimdServer>(sopts));
            servers.back()->start();
            endpoints.push_back(
                "127.0.0.1:" +
                std::to_string(servers.back()->port()));
        }
        ClusterConfig cfg;
        cfg.nodes = endpoints;
        cfg.replication = std::min<u32>(2, nodes);
        for (u32 i = 0; i < nodes; ++i) {
            cfg.self = endpoints[i];
            servers[i]->configureCluster(cfg);
        }
    }

    ~TestCluster()
    {
        for (auto &s : servers)
            s->stop();
        for (const std::string &dir : cacheDirs)
            std::filesystem::remove_all(dir);
    }
};

/**
 * Dispatch the whole manifest through @p coordinator on @p threads
 * concurrent workers; returns wall seconds and fills results.
 */
double
dispatchAll(ClusterCoordinator &coordinator,
            const std::vector<ServiceRequest> &requests, u32 threads,
            std::vector<SweepJobResult> &results)
{
    results.assign(requests.size(), SweepJobResult{});
    std::atomic<size_t> next{0};
    const double t0 = now();
    auto worker = [&]() {
        for (;;) {
            // relaxed: the claim counter only partitions indices;
            // results[i] has one writer, read after the joins.
            const size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            std::string error;
            results[i].status =
                coordinator.run(requests[i], results[i], error);
            panicIf(results[i].status != ServiceStatus::kOk,
                    "cluster dispatch failed on " +
                        requests[i].workload + ": " + error);
        }
    };
    std::vector<Thread> pool;
    const u32 n = std::max(1u, threads);
    for (u32 w = 1; w < n; ++w)
        pool.emplace_back(worker);
    worker();
    for (Thread &t : pool)
        t.join();
    return now() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    u32 sms = 4, rounds = 3, threads = 4, executors = 1, reps = 3;
    std::string out_path = "BENCH_cluster.json";
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            rounds = 1;
        else if (arg.rfind("--sms=", 0) == 0)
            sms = static_cast<u32>(std::stoul(arg.substr(6)));
        else if (arg.rfind("--rounds=", 0) == 0)
            rounds = static_cast<u32>(std::stoul(arg.substr(9)));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = static_cast<u32>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--executors=", 0) == 0)
            executors = static_cast<u32>(std::stoul(arg.substr(12)));
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(1u, static_cast<u32>(
                                    std::stoul(arg.substr(7))));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            check_path = arg.substr(8);
        else if (arg == "--help" || arg == "-h") {
            std::cout << "options: --quick --sms=N --rounds=N "
                         "--threads=N --executors=N --reps=N "
                         "--out=FILE --check=FILE\n";
            return 0;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    // The same 48-job manifest sweep_throughput uses, expressed as
    // wire requests (the coordinator resolves configs itself).
    std::vector<ServiceRequest> requests;
    std::vector<SweepJob> manifest;
    for (const char *configName :
         {"baseline", "virtualized", "shrink50"}) {
        for (const auto &w : allWorkloads()) {
            ServiceRequest req;
            req.workload = w->name();
            req.configName = configName;
            req.overrides = {
                {"numSms", std::to_string(sms)},
                {"roundsPerSm", std::to_string(rounds)}};
            SweepJob job;
            std::string error;
            panicIf(buildJob(req, job, error) != ServiceStatus::kOk,
                    "manifest job failed to resolve: " + error);
            requests.push_back(std::move(req));
            manifest.push_back(std::move(job));
        }
    }

    std::cout << "cluster scaling: " << requests.size() << " jobs, "
              << sms << " SMs, " << rounds << " round(s)/SM, "
              << threads << " dispatch thread(s), " << executors
              << " executor(s)/node (" << hardwareConcurrency()
              << " hardware)\n";

    // ---- serial local reference (the bit-identity oracle) --------------
    std::vector<RunOutcome> serial;
    serial.reserve(manifest.size());
    const double serial0 = now();
    for (const SweepJob &job : manifest)
        serial.push_back(Simulator(job.config)
                             .runWorkload(*findWorkload(job.workload)));
    const double serialSeconds = now() - serial0;
    std::cout << "  serial: " << fmtDouble(serialSeconds) << " s\n";

    const auto crossCheck = [&](const std::vector<SweepJobResult> &rs,
                                const char *pass) {
        for (size_t i = 0; i < rs.size(); ++i)
            panicIf(!(rs[i].outcome == serial[i]),
                    std::string(pass) +
                        " outcome diverged from the serial loop on " +
                        manifest[i].workload + "/" +
                        manifest[i].config.label);
    };

    // ---- 1/2/3-node clusters, cold + warm ------------------------------
    double coldSeconds[4] = {0, 0, 0, 0};
    double warmSeconds[4] = {0, 0, 0, 0};
    for (u32 nodes = 1; nodes <= 3; ++nodes) {
        TestCluster cluster(nodes, executors,
                            std::to_string(nodes) + "x");
        CoordinatorOptions co;
        co.nodes = cluster.endpoints;
        ClusterCoordinator coordinator(co);

        std::vector<SweepJobResult> cold, warm;
        coldSeconds[nodes] =
            dispatchAll(coordinator, requests, threads, cold);
        crossCheck(cold, "cold");
        u64 misroutes = 0;
        for (auto &server : cluster.servers) {
            u64 v = 0;
            server->statsMessage().getU64("requests_not_owner", v);
            misroutes += v;
        }
        panicIf(misroutes != 0, "routed dispatch misrouted a job");

        // Warm passes are a few milliseconds of cache-hit RTT;
        // min-of-reps keeps the scaling ratio out of timer noise.
        warmSeconds[nodes] = 1e300;
        for (u32 rep = 0; rep < reps; ++rep) {
            warmSeconds[nodes] = std::min(
                warmSeconds[nodes],
                dispatchAll(coordinator, requests, threads, warm));
            crossCheck(warm, "warm");
            for (size_t i = 0; i < warm.size(); ++i)
                panicIf(!warm[i].fromCache,
                        "warm pass missed the cache on " +
                            manifest[i].workload + "/" +
                            manifest[i].config.label);
        }

        std::cout << "  " << nodes
                  << " node(s): cold " << fmtDouble(coldSeconds[nodes])
                  << " s, warm " << fmtDouble(warmSeconds[nodes])
                  << " s\n";
    }

    const double coldScaling3v1 = coldSeconds[1] / coldSeconds[3];
    const double warmScaling3v1 = warmSeconds[1] / warmSeconds[3];
    std::cout << "  3-node vs 1-node: cold "
              << fmtDouble(coldScaling3v1) << "x, warm "
              << fmtDouble(warmScaling3v1) << "x\n";

    u64 aggregateCycles = 0;
    for (const RunOutcome &out : serial)
        aggregateCycles += out.sim.cycles;

    {
        std::ofstream os(out_path);
        os << "{\n";
        os << "  \"bench\": \"cluster-scaling\",\n";
        os << "  \"simulatorVersion\": \"" << kSimulatorVersion
           << "\",\n";
        os << "  \"numSms\": " << sms << ",\n";
        os << "  \"roundsPerSm\": " << rounds << ",\n";
        os << "  \"threads\": " << threads << ",\n";
        os << "  \"executorsPerNode\": " << executors << ",\n";
        os << "  \"warmReps\": " << reps << ",\n";
        os << "  \"hardwareThreads\": " << hardwareConcurrency()
           << ",\n";
        os << "  \"jobs\": " << requests.size() << ",\n";
        os << "  \"aggregateCycles\": " << aggregateCycles << ",\n";
        os << "  \"serialSeconds\": " << fmtDouble(serialSeconds)
           << ",\n";
        for (u32 nodes = 1; nodes <= 3; ++nodes) {
            os << "  \"cold" << nodes << "Seconds\": "
               << fmtDouble(coldSeconds[nodes]) << ",\n";
            os << "  \"warm" << nodes << "Seconds\": "
               << fmtDouble(warmSeconds[nodes]) << ",\n";
        }
        os << "  \"coldScaling3v1\": " << fmtDouble(coldScaling3v1)
           << ",\n";
        os << "  \"warmScaling3v1\": " << fmtDouble(warmScaling3v1)
           << "\n";
        os << "}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (check_path.empty())
        return 0;

    // Regression gate: scaling ratios vs the committed baseline with
    // 15% noise tolerance.  Bit-identity and warm hits were already
    // enforced as hard panics above.
    bool failed = false;
    const struct {
        const char *key;
        double value;
        double tolerance;
    } gates[] = {
        {"coldScaling3v1", coldScaling3v1, 0.85},
        {"warmScaling3v1", warmScaling3v1, 0.60},
    };
    for (const auto &gate : gates) {
        const double baseline = readNumber(check_path, gate.key);
        if (gate.value < baseline * gate.tolerance) {
            std::cerr << "FAIL: " << gate.key << " "
                      << fmtDouble(gate.value) << " regressed beyond "
                      << fmtDouble((1 - gate.tolerance) * 100)
                      << "% tolerance vs baseline "
                      << fmtDouble(baseline) << "\n";
            failed = true;
        }
    }
    if (!failed)
        std::cout << "check passed: no scaling ratio regressed vs "
                  << check_path << "\n";
    return failed ? 1 : 0;
}
