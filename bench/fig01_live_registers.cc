/**
 * @file
 * Fig. 1: fraction of live registers among compiler-reserved registers
 * over a 10K-cycle execution window, for six representative
 * applications (MatrixMul, Reduction, VectorAdd, LPS, BackProp,
 * HotSpot).
 *
 * "Live" is measured as architected registers currently holding a
 * mapped (written, not yet released) value under virtualization; the
 * denominator is the compiler reservation of all resident warps.
 * Paper: most apps barely use half their allocation; VectorAdd peaks
 * near 100% early because the kernel is tiny.
 */
#include <map>

#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    auto args = BenchArgs::parse(argc, argv);

    const std::vector<std::string> names = {
        "MatrixMul", "Reduction", "VectorAdd",
        "LPS",       "BackProp",  "HotSpot"};
    constexpr Cycle kWindow = 10000;
    constexpr Cycle kPeriod = 500;

    std::cout << "Fig. 1: Fraction of live registers among compiler "
                 "reserved registers (SM0, sampled every " << kPeriod
              << " cycles over a " << kWindow << "-cycle window)\n\n";

    std::vector<std::string> header = {"Cycle"};
    for (const auto &n : names)
        header.push_back(n);
    Table t(header);

    std::map<std::string, std::map<Cycle, double>> series;
    for (const auto &name : names) {
        TraceHooks hooks;
        hooks.samplePeriod = kPeriod;
        auto &mine = series[name];
        hooks.liveSample = [&mine](Cycle cyc, u32 mapped,
                                   u32 reserved) {
            if (cyc <= kWindow && reserved > 0)
                mine[cyc] = 100.0 * mapped / reserved;
        };
        Simulator sim(args.apply(RunConfig::virtualized()));
        sim.runWorkload(*findWorkload(name), hooks);
    }

    for (Cycle c = 0; c <= kWindow; c += kPeriod) {
        std::vector<std::string> row = {std::to_string(c)};
        for (const auto &name : names) {
            auto it = series[name].find(c);
            row.push_back(it == series[name].end()
                              ? std::string("-")
                              : Table::num(it->second, 1));
        }
        t.addRow(row);
    }
    std::cout << t.str();
    std::cout << "\nPaper: five of the six applications barely use "
                 "half of the allocated registers; VectorAdd reaches "
                 "~100% briefly because its kernel is short.\n";
    return 0;
}
