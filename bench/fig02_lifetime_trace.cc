/**
 * @file
 * Fig. 2(a)/3: dynamic register lifetime traces of the MatrixMul
 * kernel (one warp), reproducing the paper's three representative
 * patterns:
 *   - a long-lived register, alive for the whole kernel (paper's r1),
 *   - a looped register with many short lifetimes (paper's r0),
 *   - a short-lived register used only around the prologue/epilogue
 *     (paper's r3).
 *
 * Definition and release events come from the register-event trace
 * hook; the timeline renders '#' while a value is live.
 */
#include <algorithm>
#include <map>
#include <vector>

#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    auto args = BenchArgs::parse(argc, argv);

    struct Event {
        Cycle cycle;
        RegEvent kind;
    };
    std::map<u32, std::vector<Event>> events; // per register, warp 0
    Cycle firstCycle = ~0ull, lastCycle = 0;

    TraceHooks hooks;
    hooks.regEvent = [&](Cycle cyc, u32 sm, u32 warp, u32 reg,
                         RegEvent kind) {
        if (sm != 0 || warp != 0)
            return;
        events[reg].push_back({cyc, kind});
        firstCycle = std::min(firstCycle, cyc);
        lastCycle = std::max(lastCycle, cyc);
    };
    RunConfig cfg = RunConfig::virtualized();
    Simulator sim(args.apply(cfg));
    sim.runWorkload(*findWorkload("MatrixMul"), hooks);

    if (events.empty() || lastCycle <= firstCycle) {
        std::cout << "no events traced\n";
        return 1;
    }

    // Live-span per register over warp 0's first CTA execution.
    struct Summary {
        u32 reg;
        u64 liveCycles = 0;
        u32 lifetimes = 0;
    };
    std::vector<Summary> summaries;
    const Cycle span = lastCycle - firstCycle + 1;
    for (auto &[reg, evs] : events) {
        // Only the first CTA occupying warp slot 0.
        Summary s{reg, 0, 0};
        Cycle openAt = 0;
        bool open = false;
        for (const auto &e : evs) {
            if (e.cycle > firstCycle + span)
                break;
            if (e.kind == RegEvent::kDef && !open) {
                open = true;
                openAt = e.cycle;
                ++s.lifetimes;
            } else if (e.kind == RegEvent::kRelease && open) {
                s.liveCycles += e.cycle - openAt;
                open = false;
            }
        }
        if (open)
            s.liveCycles += lastCycle - openAt;
        summaries.push_back(s);
    }
    std::sort(summaries.begin(), summaries.end(),
              [](const Summary &a, const Summary &b) {
                  return a.liveCycles > b.liveCycles;
              });

    // Pick the paper's three patterns: longest-lived, most lifetimes
    // (looped), shortest-lived.
    const Summary longest = summaries.front();
    const Summary shortest = summaries.back();
    Summary looped = summaries.front();
    for (const auto &s : summaries)
        if (s.lifetimes > looped.lifetimes)
            looped = s;

    std::cout << "Fig. 2(a): MatrixMul register lifetime traces "
                 "(warp 0, cycles " << firstCycle << ".." << lastCycle
              << ")\n\n";
    constexpr u32 kCols = 64;
    auto render = [&](const Summary &s, const char *role) {
        std::vector<char> line(kCols, '.');
        bool open = false;
        Cycle openAt = firstCycle;
        auto mark = [&](Cycle a, Cycle b) {
            const u32 c0 = static_cast<u32>((a - firstCycle) * kCols /
                                            span);
            const u32 c1 = static_cast<u32>((b - firstCycle) * kCols /
                                            span);
            for (u32 c = c0; c <= c1 && c < kCols; ++c)
                line[c] = '#';
        };
        for (const auto &e : events[s.reg]) {
            if (e.kind == RegEvent::kDef && !open) {
                open = true;
                openAt = e.cycle;
            } else if (e.kind == RegEvent::kRelease && open) {
                mark(openAt, e.cycle);
                open = false;
            }
        }
        if (open)
            mark(openAt, lastCycle);
        std::cout << "r" << s.reg << " (" << role << ", "
                  << s.lifetimes << " lifetimes, live "
                  << 100.0 * static_cast<double>(s.liveCycles) /
                         static_cast<double>(span)
                  << "% of kernel)\n  |"
                  << std::string(line.begin(), line.end()) << "|\n\n";
    };
    render(longest, "long-lived, like paper r1");
    render(looped, "looped short lifetimes, like paper r0");
    render(shortest, "short-lived, like paper r3");

    std::cout << "('#' = value live, '.' = register released/dead)\n";
    return 0;
}
