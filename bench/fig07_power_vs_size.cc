/**
 * @file
 * Fig. 7: register-file power versus register-file size reduction,
 * normalized to the 128 KB file (dynamic, leakage, total).
 *
 * Paper anchor points: halving the file cuts dynamic power ~20% and
 * total power ~30%.
 */
#include <iostream>

#include "common/table.h"
#include "power/energy_model.h"

int
main()
{
    using namespace rfv;
    std::cout << "Fig. 7: Register file power vs. size reduction "
                 "(normalized to 128KB RF, %)\n\n";
    Table t({"Size reduction (%)", "RF Dyn Power", "RF Lkg Power",
             "Total RF Power"});
    for (const auto &pt : powerVsSizeSweep(11)) {
        t.addRow({Table::num(pt.sizeReductionPct, 0),
                  Table::num(pt.dynPowerPct, 1),
                  Table::num(pt.leakPowerPct, 1),
                  Table::num(pt.totalPowerPct, 1)});
    }
    std::cout << t.str();
    std::cout << "\nPaper anchors: at 50% reduction, dynamic ~80%, "
                 "total ~70% of baseline.\n";
    return 0;
}
