/**
 * @file
 * Fig. 8 (illustrative in the paper): subarray occupancy with and
 * without renaming-driven consolidation.
 *
 * Runs the same workload mid-kernel under (a) baseline allocation and
 * (b) virtualization with lowest-free-index (consolidating) allocation
 * plus power gating, then prints the banks x subarrays occupancy grid.
 * Consolidation packs the live registers into few subarrays so whole
 * subarrays can be power gated.
 */
#include <iostream>

#include "bench/bench_common.h"
#include "compiler/pipeline.h"

using namespace rfv;

namespace {

void
snapshot(const char *label, RegFileMode mode, bool virtualize,
         bool gating)
{
    const auto w = findWorkload("Reduction");
    CompileOptions copts;
    copts.virtualize = virtualize;
    copts.residentWarps = 48;
    const auto ck = compileKernel(w->buildKernel(), copts);

    GpuConfig cfg;
    cfg.numSms = 1;
    cfg.regFile.mode = mode;
    cfg.regFile.powerGating = gating;
    LaunchParams launch = w->scaledLaunch(1, 1);
    GlobalMemory mem(w->memoryBytes(launch));
    w->setup(mem, launch);

    DramModel dram(cfg.globalLatency, cfg.dramCyclesPerTransaction);
    TraceHooks hooks;
    DecodeCache decode(ck.program, cfg);
    Sm sm(0, cfg, ck.program, decode, launch, mem, dram, hooks);
    u32 next = 0;
    Cycle cycle = 0;
    // Run to the middle of the kernel and stop.
    while (cycle < 2000 && (sm.busy() || next < launch.gridCtas)) {
        while (next < launch.gridCtas && sm.tryLaunchCta(next, cycle))
            ++next;
        sm.step(cycle);
        sm.commitAtomics(cycle);
        ++cycle;
    }

    const PhysRegFile &rf = sm.regs().file();
    const u32 banks = cfg.regFile.numBanks;
    const u32 subs = cfg.regFile.subarraysPerBank;
    std::cout << label << " (cycle " << cycle << ", "
              << rf.allocatedTotal() << "/" << rf.numRegs()
              << " registers allocated, " << rf.activeSubarrays() << "/"
              << rf.totalSubarrays() << " subarrays powered)\n";
    std::cout << "          ";
    for (u32 b = 0; b < banks; ++b)
        std::cout << "BANK" << b << "     ";
    std::cout << "\n";
    for (u32 s = 0; s < subs; ++s) {
        std::cout << "subarray" << s << " ";
        for (u32 b = 0; b < banks; ++b) {
            const u32 idx = b * subs + s;
            const u32 count = rf.subarrayCount(idx);
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%3u/%-3u %c ", count,
                          cfg.regFile.regsPerSubarray(),
                          rf.subarrayPowered(idx) ? '*' : '.');
            std::cout << buf;
        }
        std::cout << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Fig. 8: register consolidation and subarray power "
                 "gating ('*' powered, '.' gated)\n\n";
    snapshot("W/O renaming (baseline allocation, no gating)",
             RegFileMode::kBaseline, false, false);
    snapshot("W/ renaming (consolidated allocation + power gating)",
             RegFileMode::kVirtualized, true, true);
    std::cout << "With renaming, live registers consolidate into the "
                 "low subarrays of each bank; empty subarrays are shut "
                 "down (paper Fig. 8(b)).\n";
    return 0;
}
