/**
 * @file
 * Fig. 9: register-file leakage-power fraction across technology
 * nodes, normalized to 40 nm planar.  Planar scaling climbs; FinFET at
 * 22 nm resets the fraction near the 40 nm baseline; the climb then
 * resumes toward 10 nm (modeled after the paper's GPUWattch + PTM
 * data).
 */
#include <iostream>

#include "common/table.h"
#include "power/energy_model.h"

int
main()
{
    using namespace rfv;
    std::cout << "Fig. 9: Leakage under various technologies "
                 "(P: planar, F: FinFET), normalized to 40nm\n\n";
    Table t({"Technology", "Device", "Leakage fraction (norm.)"});
    for (const auto &node : technologyLeakageTable()) {
        t.addRow({node.name, node.finfet ? "FinFET" : "Planar",
                  Table::num(node.leakageNorm, 2)});
    }
    std::cout << t.str();
    return 0;
}
