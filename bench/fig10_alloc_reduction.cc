/**
 * @file
 * Fig. 10: register allocation reduction with virtualization.
 *
 * For each workload, the peak number of concurrently-allocated
 * physical registers under compiler-guided renaming is compared to the
 * compiler reservation at peak residency; the reduction is the
 * percentage of the architected allocation the GPU never needed.
 * Paper: up to 44%, average 16%; short kernels (VectorAdd) save least.
 */
#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);
    std::cout << "Fig. 10: Register allocation reduction (%) with "
                 "virtualization (128KB RF)\n\n";
    Table t({"Benchmark", "Reserved regs", "Peak live regs",
             "Touched regs", "Reduction (%)", "Cross-warp reuse (%)"});
    double sum = 0;
    for (const auto &w : allWorkloads()) {
        const auto out = runOne(args, RunConfig::virtualized(), *w);
        const u32 reserved =
            out.sim.peakResidentWarps * out.sim.regsPerWarp;
        const double red = out.sim.allocationReductionPct();
        sum += red;
        const u64 reuse =
            out.sim.rf.crossWarpReuse + out.sim.rf.sameWarpReuse;
        const double crossPct =
            reuse ? 100.0 * static_cast<double>(out.sim.rf.crossWarpReuse) /
                        static_cast<double>(reuse)
                  : 0.0;
        t.addRow({w->name(), std::to_string(reserved),
                  std::to_string(out.sim.rf.allocWatermark),
                  std::to_string(out.sim.rf.touchedCount),
                  Table::num(red, 1), Table::num(crossPct, 1)});
    }
    t.addRow({"AVG", "-", "-", "-",
              Table::num(sum / allWorkloads().size(), 1), "-"});
    std::cout << t.str();
    std::cout << "\nPaper: reductions up to 44%, 16% on average; "
                 "short kernels save least.\n";
    return 0;
}
