/**
 * @file
 * Fig. 11(a): execution-cycle increase with a half-size (64 KB)
 * register file, GPU-shrink (virtualization + CTA throttling) versus
 * the compiler-spill baseline, both normalized to the 128 KB baseline.
 *
 * Paper: GPU-shrink averages 0.58% (some apps improve — MUM — because
 * throttling disperses memory contention); compiler spill averages 73%
 * with outliers in the hundreds of percent; applications whose
 * occupancy fits 64 KB show zero overhead in both schemes.
 */
#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);
    std::cout << "Fig. 11(a): Execution cycle increase with a 64KB "
                 "register file, normalized to 128KB (%)\n\n";
    Table t({"Benchmark", "Base cycles", "GPU-shrink (%)",
             "Compiler spill (%)", "Spilled regs"});
    double shrinkSum = 0, spillSum = 0;
    for (const auto &w : allWorkloads()) {
        const auto base = runOne(args, RunConfig::baseline(), *w);
        const auto shrink = runOne(args, RunConfig::gpuShrink(50), *w);
        const auto spill =
            runOne(args, RunConfig::compilerSpillShrink(50), *w);
        const double shrinkPct =
            100.0 * (static_cast<double>(shrink.sim.cycles) /
                         static_cast<double>(base.sim.cycles) -
                     1.0);
        const double spillPct =
            100.0 * (static_cast<double>(spill.sim.cycles) /
                         static_cast<double>(base.sim.cycles) -
                     1.0);
        shrinkSum += shrinkPct;
        spillSum += spillPct;
        t.addRow({w->name(), std::to_string(base.sim.cycles),
                  Table::num(shrinkPct, 2), Table::num(spillPct, 2),
                  std::to_string(spill.compile.demotedRegs)});
    }
    const double n = static_cast<double>(allWorkloads().size());
    t.addRow({"AVG", "-", Table::num(shrinkSum / n, 2),
              Table::num(spillSum / n, 2), "-"});
    std::cout << t.str();
    std::cout << "\nPaper: GPU-shrink avg 0.58%; compiler spill avg "
                 "73% (up to 1008%); VectorAdd/BFS/Gaussian/LIB fit "
                 "64KB and show zero overhead.\n";
    return 0;
}
