/**
 * @file
 * Fig. 11(b): sensitivity of total execution time to the subarray
 * wakeup latency when power gating is enabled (1, 3, 10 cycles),
 * normalized to no power gating.  Paper: below 2% even at 10 cycles,
 * because wake events are rare relative to total cycles.
 */
#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);
    const std::vector<u32> latencies = {1, 3, 10};
    // A representative subset keeps the sweep fast.
    const std::vector<std::string> names = {
        "MatrixMul", "Reduction", "BackProp", "HotSpot", "LPS", "MUM"};

    std::cout << "Fig. 11(b): Normalized total simulation cycles vs. "
                 "subarray wakeup latency (power gating on, "
                 "virtualized 128KB RF)\n\n";
    Table t({"Wakeup latency (cycles)", "Normalized cycles",
             "Wake stalls / Mcycle"});
    // Reference: power gating off.
    double refSum = 0;
    std::vector<double> refCycles;
    for (const auto &name : names) {
        const auto out =
            runOne(args, RunConfig::virtualized(false),
                   *findWorkload(name));
        refCycles.push_back(static_cast<double>(out.sim.cycles));
        refSum += static_cast<double>(out.sim.cycles);
    }
    for (u32 lat : latencies) {
        double ratioSum = 0;
        u64 wakes = 0;
        Cycle cycles = 0;
        for (std::size_t i = 0; i < names.size(); ++i) {
            RunConfig cfg = RunConfig::virtualized(true);
            cfg.wakeupLatency = lat;
            const auto out =
                runOne(args, cfg, *findWorkload(names[i]));
            ratioSum += static_cast<double>(out.sim.cycles) /
                        refCycles[i];
            wakes += out.sim.wakeStallEvents;
            cycles += out.sim.cycles;
        }
        t.addRow({std::to_string(lat),
                  Table::num(ratioSum / names.size(), 4),
                  Table::num(1e6 * static_cast<double>(wakes) /
                                 static_cast<double>(cycles),
                             1)});
    }
    std::cout << t.str();
    std::cout << "\nPaper: overhead < 2% even with a 10-cycle wakeup "
                 "delay (wake events are rare).\n";
    return 0;
}
