/**
 * @file
 * Fig. 12: total register-file energy breakdown, normalized to the
 * 128 KB baseline file without renaming, for three designs:
 *   - 128KB RF w/ PG : virtualization + subarray power gating only
 *   - 64KB  RF       : GPU-shrink without gating
 *   - 64KB  RF w/ PG : GPU-shrink + gating (the paper's full design)
 * Components: static, dynamic, renaming table, flag instructions.
 * Paper: the full design saves 42% of register-file energy on average.
 */
#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);

    struct Design {
        const char *label;
        RunConfig cfg;
    };
    const Design designs[] = {
        {"128KB RF w/ PG", RunConfig::virtualized(true)},
        {"64KB (50%) RF", RunConfig::gpuShrink(50, false)},
        {"64KB (50%) RF w/ PG", RunConfig::gpuShrink(50, true)},
    };

    std::cout << "Fig. 12: Total register file energy breakdown, "
                 "normalized to the 128KB baseline RF (no renaming)\n\n";
    Table t({"Benchmark", "Design", "Dynamic", "Static", "RenTable",
             "FlagInstr", "Total"});
    double totals[3] = {0, 0, 0};
    for (const auto &w : allWorkloads()) {
        const auto base = runOne(args, RunConfig::baseline(), *w);
        const double ref = base.energy.totalJ();
        for (u32 d = 0; d < 3; ++d) {
            const auto out = runOne(args, designs[d].cfg, *w);
            const auto &e = out.energy;
            totals[d] += e.totalJ() / ref;
            t.addRow({d == 0 ? w->name() : "", designs[d].label,
                      Table::num(e.dynamicJ / ref, 3),
                      Table::num(e.staticJ / ref, 3),
                      Table::num(e.renameTableJ / ref, 3),
                      Table::num(e.flagInstrJ / ref, 3),
                      Table::num(e.totalJ() / ref, 3)});
        }
    }
    const double n = static_cast<double>(allWorkloads().size());
    for (u32 d = 0; d < 3; ++d) {
        t.addRow({d == 0 ? "AVG" : "", designs[d].label, "-", "-", "-",
                  "-", Table::num(totals[d] / n, 3)});
    }
    std::cout << t.str();
    std::cout << "\nPaper: 64KB + power gating saves ~42% of register "
                 "file energy on average; 64KB without gating can "
                 "exceed 128KB+PG on low-occupancy apps.\n";
    return 0;
}
