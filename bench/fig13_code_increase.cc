/**
 * @file
 * Fig. 13: static and dynamic code increase from release-flag metadata
 * instructions, the dynamic increase as a function of release-flag
 * cache entries (0, 1, 2, 5, 10).
 *
 * Static increase = metadata instructions / regular instructions in
 * the binary.  Dynamic increase = metadata instructions actually
 * fetched+decoded / regular instructions issued (a flag-cache hit
 * skips the fetch/decode).  Paper: ~11% dynamic with no cache, ~0.2%
 * with ten entries.
 */
#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);
    const std::vector<u32> cacheSizes = {0, 1, 2, 5, 10};

    std::cout << "Fig. 13: Static and dynamic code increase (%) vs. "
                 "release flag cache entries\n\n";
    std::vector<std::string> header = {"Benchmark", "Static"};
    for (u32 s : cacheSizes)
        header.push_back("Dyn-" + std::to_string(s));
    Table t(header);

    std::vector<double> sums(cacheSizes.size() + 1, 0.0);
    for (const auto &w : allWorkloads()) {
        std::vector<std::string> row = {w->name()};
        double staticPct = 0;
        std::vector<double> dyn;
        for (std::size_t i = 0; i < cacheSizes.size(); ++i) {
            RunConfig cfg = RunConfig::virtualized();
            cfg.flagCacheEntries = cacheSizes[i];
            const auto out = runOne(args, cfg, *w);
            staticPct = out.compile.staticCodeIncreasePct();
            dyn.push_back(out.sim.dynamicCodeIncreasePct());
        }
        row.push_back(Table::num(staticPct, 1));
        sums[0] += staticPct;
        for (std::size_t i = 0; i < dyn.size(); ++i) {
            row.push_back(Table::num(dyn[i], 2));
            sums[i + 1] += dyn[i];
        }
        t.addRow(row);
    }
    const double n = static_cast<double>(allWorkloads().size());
    std::vector<std::string> avg = {"AVG", Table::num(sums[0] / n, 1)};
    for (std::size_t i = 1; i < sums.size(); ++i)
        avg.push_back(Table::num(sums[i] / n, 2));
    t.addRow(avg);
    std::cout << t.str();
    std::cout << "\nPaper: dynamic increase ~11% without a cache, "
                 "almost eliminated (~0.2%) with 10 entries.\n";
    return 0;
}
