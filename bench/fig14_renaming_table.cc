/**
 * @file
 * Fig. 14: renaming-table size without constraints per workload, and
 * the register saving achieved under a 1 KB table, normalized to the
 * unconstrained table.
 *
 * An unconstrained table needs residentWarps x regs x entry-bits.
 * Under the 1 KB budget, workloads whose demand exceeds it exempt
 * their longest-lived registers from renaming (paper: MUM, Heartwall
 * and LUD lose a little saving).
 */
#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);

    std::cout << "Fig. 14: Renaming table size without constraints and "
                 "normalized register saving with a 1KB table\n\n";
    Table t({"Benchmark", "Warps/SM", "Unconstrained (B)",
             "Exempt regs", "Norm. reg saving"});
    for (const auto &w : allWorkloads()) {
        // Unconstrained run for the reference saving.
        RunConfig unconstrained = RunConfig::virtualized();
        unconstrained.renamingTableBytes = 0;
        const auto ref = runOne(args, unconstrained, *w);

        RunConfig capped = RunConfig::virtualized();
        capped.renamingTableBytes = 1024;
        const auto out = runOne(args, capped, *w);

        const double refRed = ref.sim.allocationReductionPct();
        const double cappedRed = out.sim.allocationReductionPct();
        const double norm = refRed > 0 ? cappedRed / refRed : 1.0;
        t.addRow({w->name(),
                  std::to_string(out.sim.peakResidentWarps /
                                 args.numSms),
                  std::to_string(out.compile.unconstrainedTableBytes),
                  std::to_string(out.compile.numExempt),
                  Table::num(norm, 3)});
    }
    std::cout << t.str();
    std::cout << "\nPaper: only the largest warps x regs products "
                 "(MUM, Heartwall, LUD) exceed 1KB and exempt a few "
                 "long-lived registers, losing a little saving "
                 "(Heartwall most, ~13% of registers exempt).\n";
    return 0;
}
