/**
 * @file
 * Fig. 15: hardware-only renaming (NVIDIA patent [46]) versus
 * compiler-guided virtualization:
 *  (a) register allocation reduction, normalized to our approach;
 *  (b) register-file static power reduction (128 KB + power gating),
 *      normalized to our approach.
 *
 * Hardware-only releases a mapping only on redefinition / CTA end, so
 * it reduces allocations less and saves roughly half the static power
 * (paper: our approach saves ~2x more static power).
 */
#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);

    std::cout << "Fig. 15: Hardware-only renaming [46] vs. this work "
                 "(normalized to this work)\n\n";
    Table t({"Benchmark", "AllocRed hw-only (%)", "AllocRed ours (%)",
             "(a) Norm. alloc red.", "(b) Norm. static saving"});
    double normAllocSum = 0, normStaticSum = 0;
    u32 counted = 0;
    for (const auto &w : allWorkloads()) {
        const auto base = runOne(args, RunConfig::baseline(), *w);
        const auto ours = runOne(args, RunConfig::virtualized(true), *w);
        const auto hw = runOne(args, RunConfig::hardwareOnly(true), *w);

        const double redOurs = ours.sim.allocationReductionPct();
        const double redHw = hw.sim.allocationReductionPct();
        const double normAlloc = redOurs > 0 ? redHw / redOurs : 1.0;

        const double baseStatic = base.energy.staticJ;
        const double savedOurs = baseStatic - ours.energy.staticJ;
        const double savedHw = baseStatic - hw.energy.staticJ;
        const double normStatic =
            savedOurs > 0 ? savedHw / savedOurs : 1.0;

        normAllocSum += normAlloc;
        normStaticSum += normStatic;
        ++counted;
        t.addRow({w->name(), Table::num(redHw, 1),
                  Table::num(redOurs, 1), Table::num(normAlloc, 3),
                  Table::num(normStatic, 3)});
    }
    t.addRow({"AVG", "-", "-", Table::num(normAllocSum / counted, 3),
              Table::num(normStaticSum / counted, 3)});
    std::cout << t.str();
    std::cout << "\nPaper: hardware-only reduces allocations less "
                 "(often far less) and saves about half the static "
                 "power of the compiler-guided scheme.\n";
    return 0;
}
