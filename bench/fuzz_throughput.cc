/**
 * @file
 * Generated-scenario throughput: how many seed-derived fuzz kernels
 * per second the sweep machinery sustains, locally (one SweepEngine,
 * multi-threaded dispatch) versus routed over a 3-node loopback
 * cluster — the "fuzz at sweep scale" claim in numbers.
 *
 * Every scenario is addressed purely by its canonical `gen:` name, so
 * the cluster nodes regenerate the kernels independently; each routed
 * outcome is cross-checked for field-wise equality against the local
 * engine's, making the throughput numbers numbers for *identical*
 * results (a node that answered faster by generating differently
 * fails the run).
 *
 * Emits BENCH_fuzz.json.  `--check=FILE` compares against a committed
 * report and fails (exit 1) when the cluster-vs-local throughput
 * ratio regressed beyond 50% — a machine-relative ratio, stable
 * across hardware generations where absolute jobs/sec is not.
 *
 * Usage:
 *   fuzz_throughput [--quick] [--scenarios=N] [--threads=N]
 *                   [--executors=N] [--seed=S] [--out=FILE]
 *                   [--check=FILE]
 */
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "common/error.h"
#include "common/sync.h"
#include "gen/fuzz.h"
#include "net/cluster_coordinator.h"
#include "net/server.h"
#include "service/version.h"

using namespace rfv;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

double
readNumber(const std::string &path, const char *key)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open baseline report " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::string needle = std::string("\"") + key + "\": ";
    const size_t at = text.find(needle);
    panicIf(at == std::string::npos,
            std::string("missing key in report: ") + key);
    return std::stod(text.substr(at + needle.size()));
}

/** One N-node loopback cluster, joined and ready to route. */
struct TestCluster {
    std::vector<std::unique_ptr<SimdServer>> servers;
    std::vector<std::string> endpoints;
    std::vector<std::string> cacheDirs;

    TestCluster(u32 nodes, u32 executors)
    {
        for (u32 i = 0; i < nodes; ++i) {
            cacheDirs.push_back(
                (std::filesystem::temp_directory_path() /
                 ("rfv-fuzz-bench-n" + std::to_string(i)))
                    .string());
            std::filesystem::remove_all(cacheDirs.back());
            ServerOptions sopts;
            sopts.executors = executors;
            sopts.queueCapacity = 256;
            sopts.sweep.cacheDir = cacheDirs.back();
            servers.push_back(std::make_unique<SimdServer>(sopts));
            servers.back()->start();
            endpoints.push_back(
                "127.0.0.1:" +
                std::to_string(servers.back()->port()));
        }
        ClusterConfig cfg;
        cfg.nodes = endpoints;
        cfg.replication = std::min<u32>(2, nodes);
        for (u32 i = 0; i < nodes; ++i) {
            cfg.self = endpoints[i];
            servers[i]->configureCluster(cfg);
        }
    }

    ~TestCluster()
    {
        for (auto &s : servers)
            s->stop();
        for (const std::string &dir : cacheDirs)
            std::filesystem::remove_all(dir);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    u32 scenarios = 48, threads = 4, executors = 1;
    u64 seed = 1;
    std::string out_path = "BENCH_fuzz.json";
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            scenarios = 12;
        else if (arg.rfind("--scenarios=", 0) == 0)
            scenarios = static_cast<u32>(std::stoul(arg.substr(12)));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = static_cast<u32>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--executors=", 0) == 0)
            executors = static_cast<u32>(std::stoul(arg.substr(12)));
        else if (arg.rfind("--seed=", 0) == 0)
            seed = std::stoull(arg.substr(7));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            check_path = arg.substr(8);
        else if (arg == "--help" || arg == "-h") {
            std::cout << "options: --quick --scenarios=N --threads=N "
                         "--executors=N --seed=S --out=FILE "
                         "--check=FILE\n";
            return 0;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    // The manifest: seed-derived scenarios, addressed only by their
    // canonical names — exactly what a distributed fuzz shard sees.
    // Configs resolve through the same named-config path the cluster
    // nodes use, so local and routed runs execute identical jobs.
    std::vector<SweepJob> manifest;
    std::vector<ServiceRequest> requests;
    for (u32 i = 0; i < scenarios; ++i) {
        const FuzzScenario sc = deriveScenario(seed, i, 0);
        ServiceRequest req;
        req.workload = sc.spec.name();
        req.configName = sc.config.virtualize ? "virtualized" : "baseline";
        SweepJob job;
        std::string error;
        panicIf(buildJob(req, job, error) != ServiceStatus::kOk,
                "scenario failed to resolve: " + error);
        manifest.push_back(std::move(job));
        requests.push_back(std::move(req));
    }

    std::cout << "fuzz throughput: " << scenarios
              << " generated scenarios, " << threads
              << " dispatch thread(s), " << executors
              << " executor(s)/node (" << hardwareConcurrency()
              << " hardware)\n";

    // ---- local: one engine, threaded dispatch, no cache ----------------
    SweepOptions localOpts;
    localOpts.useCache = false;
    SweepEngine local(localOpts);
    std::vector<SweepJobResult> localResults(manifest.size());
    std::atomic<size_t> next{0};
    const double local0 = now();
    {
        auto worker = [&]() {
            for (;;) {
                // relaxed: the claim counter only partitions indices;
                // each results slot has one writer, read after joins.
                const size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= manifest.size())
                    return;
                localResults[i] = local.execute(manifest[i]);
                panicIf(!localResults[i].ok(),
                        "local scenario failed: " +
                            manifest[i].workload + ": " +
                            localResults[i].error);
            }
        };
        std::vector<Thread> pool;
        for (u32 w = 1; w < std::max(1u, threads); ++w)
            pool.emplace_back(worker);
        worker();
        for (Thread &t : pool)
            t.join();
    }
    const double localSeconds = now() - local0;
    const double localJobsPerSec = scenarios / localSeconds;
    std::cout << "  local: " << fmtDouble(localSeconds) << " s ("
              << fmtDouble(localJobsPerSec) << " jobs/s)\n";

    // ---- 3-node cluster, cold (every node regenerates from names) ------
    double clusterSeconds = 0;
    {
        TestCluster cluster(3, executors);
        CoordinatorOptions co;
        co.nodes = cluster.endpoints;
        ClusterCoordinator coordinator(co);

        std::vector<SweepJobResult> routed(requests.size());
        std::atomic<size_t> claim{0};
        const double t0 = now();
        auto worker = [&]() {
            for (;;) {
                // relaxed: the claim counter only partitions indices;
                // each routed slot has one writer, read after joins.
                const size_t i =
                    claim.fetch_add(1, std::memory_order_relaxed);
                if (i >= requests.size())
                    return;
                std::string error;
                routed[i].status =
                    coordinator.run(requests[i], routed[i], error);
                panicIf(routed[i].status != ServiceStatus::kOk,
                        "cluster dispatch failed on " +
                            requests[i].workload + ": " + error);
            }
        };
        std::vector<Thread> pool;
        for (u32 w = 1; w < std::max(1u, threads); ++w)
            pool.emplace_back(worker);
        worker();
        for (Thread &t : pool)
            t.join();
        clusterSeconds = now() - t0;

        for (size_t i = 0; i < routed.size(); ++i)
            panicIf(!(routed[i].outcome == localResults[i].outcome),
                    "routed outcome diverged from the local engine on " +
                        requests[i].workload);
    }
    const double clusterJobsPerSec = scenarios / clusterSeconds;
    const double clusterVsLocal = clusterJobsPerSec / localJobsPerSec;
    std::cout << "  3-node cluster: " << fmtDouble(clusterSeconds)
              << " s (" << fmtDouble(clusterJobsPerSec)
              << " jobs/s), " << fmtDouble(clusterVsLocal)
              << "x of local\n";

    {
        std::ofstream os(out_path);
        os << "{\n";
        os << "  \"bench\": \"fuzz-throughput\",\n";
        os << "  \"simulatorVersion\": \"" << kSimulatorVersion
           << "\",\n";
        os << "  \"seed\": " << seed << ",\n";
        os << "  \"scenarios\": " << scenarios << ",\n";
        os << "  \"threads\": " << threads << ",\n";
        os << "  \"executorsPerNode\": " << executors << ",\n";
        os << "  \"hardwareThreads\": " << hardwareConcurrency()
           << ",\n";
        os << "  \"localSeconds\": " << fmtDouble(localSeconds)
           << ",\n";
        os << "  \"localJobsPerSec\": " << fmtDouble(localJobsPerSec)
           << ",\n";
        os << "  \"cluster3Seconds\": " << fmtDouble(clusterSeconds)
           << ",\n";
        os << "  \"cluster3JobsPerSec\": "
           << fmtDouble(clusterJobsPerSec) << ",\n";
        os << "  \"clusterVsLocal\": " << fmtDouble(clusterVsLocal)
           << "\n";
        os << "}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (check_path.empty())
        return 0;

    // Machine-relative ratio gate (bit-identity was a hard panic
    // above): loopback RTT + regeneration overhead must not blow up
    // relative to the committed baseline.
    const double baseline = readNumber(check_path, "clusterVsLocal");
    if (clusterVsLocal < baseline * 0.5) {
        std::cerr << "FAIL: clusterVsLocal "
                  << fmtDouble(clusterVsLocal)
                  << " regressed beyond 50% tolerance vs baseline "
                  << fmtDouble(baseline) << "\n";
        return 1;
    }
    std::cout << "check passed: clusterVsLocal "
              << fmtDouble(clusterVsLocal) << " vs baseline "
              << fmtDouble(baseline) << "\n";
    return 0;
}
