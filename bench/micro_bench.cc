/**
 * @file
 * Google-benchmark microbenchmarks of the simulator's hot components:
 * physical-register allocation/release, the release-flag cache, SIMT
 * stack operations, kernel compilation, and end-to-end simulated
 * cycles per second.
 */
#include <benchmark/benchmark.h>

#include "compiler/pipeline.h"
#include "core/simulator.h"
#include "regfile/register_manager.h"
#include "regfile/release_flag_cache.h"
#include "sim/simt_stack.h"

namespace rfv {
namespace {

void
BM_PhysRegAllocRelease(benchmark::State &state)
{
    RegFileConfig cfg;
    cfg.mode = RegFileMode::kVirtualized;
    PhysRegFile rf(cfg);
    u32 wake = 0;
    for (auto _ : state) {
        const u32 phys = rf.alloc(0, 0, wake);
        benchmark::DoNotOptimize(phys);
        rf.release(phys);
    }
}
BENCHMARK(BM_PhysRegAllocRelease);

void
BM_RenamingRoundTrip(benchmark::State &state)
{
    RegFileConfig cfg;
    cfg.mode = RegFileMode::kVirtualized;
    RegisterManager mgr(cfg, 48);
    mgr.configureKernel(20, 0);
    mgr.launchCta(0, 0, 8);
    for (auto _ : state) {
        mgr.ensureMappedForWrite(0, 0, 5);
        mgr.countOperandRead(0, 5);
        mgr.releaseReg(0, 0, 5);
    }
}
BENCHMARK(BM_RenamingRoundTrip);

void
BM_FlagCacheAccess(benchmark::State &state)
{
    ReleaseFlagCache cache(10);
    u32 pc = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(pc));
        pc = (pc + 7) % 64;
    }
}
BENCHMARK(BM_FlagCacheAccess);

void
BM_SimtStackDivergence(benchmark::State &state)
{
    SimtStack st;
    for (auto _ : state) {
        st.reset(0xffffffffu);
        st.branch(10, 1, 0x0000ffffu, 20);
        st.advance(20);
        st.advance(20);
        benchmark::DoNotOptimize(st.done());
    }
}
BENCHMARK(BM_SimtStackDivergence);

void
BM_CompileMatrixMul(benchmark::State &state)
{
    const Program input = findWorkload("MatrixMul")->buildKernel();
    CompileOptions opts;
    opts.virtualize = true;
    for (auto _ : state) {
        auto ck = compileKernel(input, opts);
        benchmark::DoNotOptimize(ck.program.code.size());
    }
}
BENCHMARK(BM_CompileMatrixMul);

void
BM_SimulatedCyclesPerSecond(benchmark::State &state)
{
    const auto w = findWorkload("VectorAdd");
    RunConfig cfg = RunConfig::virtualized();
    cfg.numSms = 1;
    cfg.roundsPerSm = 1;
    u64 cycles = 0;
    for (auto _ : state) {
        Simulator sim(cfg);
        const auto out = sim.runWorkload(*w);
        cycles += out.sim.cycles;
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedCyclesPerSecond);

} // namespace
} // namespace rfv

BENCHMARK_MAIN();
