/**
 * @file
 * Multi-SM simulation throughput vs worker-thread count.
 *
 * Wall-clocks representative workloads with the cycle loop running
 * sequentially (0 threads) and with increasing worker pools, and
 * cross-checks that every parallel run produces a SimResult
 * bit-identical to the sequential one.  Speedup is bounded by the SM
 * count (one SM per task per cycle) and by the host's core count —
 * on a single-core host every row will hover around 1x, which is
 * expected, not a regression.
 */
#include <chrono>
#include <vector>

#include "bench/bench_common.h"
#include "common/sync.h"
#include "common/table.h"

namespace {

struct Timed {
    rfv::RunOutcome out;
    double seconds;
};

Timed
timedRun(const rfv::BenchArgs &args, const rfv::RunConfig &cfg,
         const rfv::Workload &w)
{
    const auto t0 = std::chrono::steady_clock::now();
    Timed r{rfv::runOne(args, cfg, w), 0.0};
    const auto t1 = std::chrono::steady_clock::now();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace rfv;
    BenchArgs args = BenchArgs::parse(argc, argv);
    // This bench is about multi-SM scaling; default to 8 SMs unless
    // the user asked for a specific machine size.
    bool sms_given = false;
    for (int i = 1; i < argc; ++i)
        sms_given |= std::string(argv[i]).rfind("--sms=", 0) == 0;
    if (!sms_given)
        args.numSms = 8;

    const u32 hw = hardwareConcurrency();
    std::vector<u32> threads{0, 1};
    for (u32 t = 2; t < hw; t *= 2)
        threads.push_back(t);
    if (hw > 1)
        threads.push_back(hw);

    std::cout << "Parallel scaling: cycles/sec vs worker threads ("
              << args.numSms << " SMs, " << hw
              << " hardware threads; 0 = sequential loop)\n\n";

    Table t({"Benchmark", "Threads", "Cycles", "Seconds", "Mcyc/s",
             "Speedup", "Identical"});
    for (const char *name : {"MatrixMul", "Reduction", "MUM"}) {
        const auto w = findWorkload(name);
        Timed base{};
        for (u32 n : threads) {
            RunConfig cfg = RunConfig::virtualized();
            cfg.numWorkerThreads = n;
            const Timed r = timedRun(args, cfg, *w);
            if (n == 0)
                base = r;
            const double mcps =
                static_cast<double>(r.out.sim.cycles) / r.seconds / 1e6;
            t.addRow({name, std::to_string(n),
                      std::to_string(r.out.sim.cycles),
                      Table::num(r.seconds, 3), Table::num(mcps, 2),
                      Table::num(base.seconds / r.seconds, 2),
                      r.out.sim == base.out.sim ? "yes" : "NO"});
        }
    }
    std::cout << t.str();
    std::cout << "\nEvery row must say Identical=yes: worker threads "
                 "change wall-clock only, never simulated behaviour.\n";
    return 0;
}
