/**
 * @file
 * GPU-shrink size sweep (paper Sec. 9.2 text): GPU-shrink-50/40/30 all
 * ran with effectively zero overhead because the additional registers
 * beyond the live demand were never needed.  This bench sweeps the
 * shrink percentage and reports the mean cycle overhead and energy.
 */
#include <iostream>

#include "bench/bench_common.h"
#include "common/table.h"

int
main(int argc, char **argv)
{
    using namespace rfv;
    const auto args = BenchArgs::parse(argc, argv);

    std::cout << "GPU-shrink sweep: mean overhead vs. register file "
                 "size (all 16 workloads, normalized to 128KB "
                 "baseline)\n\n";

    std::vector<double> baseCycles, baseEnergy;
    for (const auto &w : allWorkloads()) {
        const auto out = runOne(args, RunConfig::baseline(), *w);
        baseCycles.push_back(static_cast<double>(out.sim.cycles));
        baseEnergy.push_back(out.energy.totalJ());
    }

    Table t({"Shrink (%)", "RF size", "Mean cycle overhead (%)",
             "Mean RF energy (norm.)", "Throttled runs"});
    for (u32 shrink : {0u, 10u, 20u, 30u, 40u, 50u}) {
        double cycleSum = 0, energySum = 0;
        u32 throttled = 0, i = 0;
        RunConfig cfg = RunConfig::gpuShrink(shrink, true);
        for (const auto &w : allWorkloads()) {
            const auto out = runOne(args, cfg, *w);
            cycleSum += static_cast<double>(out.sim.cycles) /
                        baseCycles[i];
            energySum += out.energy.totalJ() / baseEnergy[i];
            throttled += out.sim.throttleActiveCycles > 0;
            ++i;
        }
        const double n = static_cast<double>(allWorkloads().size());
        t.addRow({std::to_string(shrink),
                  std::to_string(cfg.rfSizeBytes / 1024) + "KB",
                  Table::num(100.0 * (cycleSum / n - 1.0), 2),
                  Table::num(energySum / n, 3),
                  std::to_string(throttled)});
    }
    std::cout << t.str();
    std::cout << "\nPaper: 30/40/50% shrink all showed no additional "
                 "latency impact; energy keeps falling with size.\n";
    return 0;
}
