/**
 * @file
 * Batch-engine throughput benchmark: the full 16-workload x 3-config
 * manifest run three ways —
 *
 *   serial  the pre-engine driver loop (one Simulator::runWorkload per
 *           job: recompiles, re-verifies and rebuilds the DecodeCache
 *           every time, single thread)
 *   cold    SweepEngine, empty result cache: shared artifacts + the
 *           work-stealing scheduler
 *   warm    SweepEngine again on the same cache: every job replays
 *
 * Every engine outcome is cross-checked for field-wise equality with
 * the serial loop's, so the speedups are for *identical* results.
 *
 * Emits BENCH_sweep.json.  `--check=FILE` compares against a committed
 * report and fails (exit 1) when the cold or warm speedup regressed by
 * more than 15% relative to it, or the warm pass's hit rate fell below
 * 90%.  Speedups are serial/engine wall-time ratios measured in one
 * process on one host, so the gate is stable across machine
 * generations; the committed baseline records its hardware thread
 * count for context.
 *
 * Usage:
 *   sweep_throughput [--quick] [--sms=N] [--rounds=N] [--threads=N]
 *                    [--out=FILE] [--check=FILE]
 */
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "common/sync.h"
#include "core/simulator.h"
#include "service/sweep.h"
#include "service/version.h"

using namespace rfv;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

double
readNumber(const std::string &path, const char *key)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open baseline report " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    const std::string needle = std::string("\"") + key + "\": ";
    const size_t at = text.find(needle);
    panicIf(at == std::string::npos,
            std::string("missing key in report: ") + key);
    return std::stod(text.substr(at + needle.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    u32 sms = 4, rounds = 3, threads = 8;
    std::string out_path = "BENCH_sweep.json";
    std::string check_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            rounds = 1;
        else if (arg.rfind("--sms=", 0) == 0)
            sms = static_cast<u32>(std::stoul(arg.substr(6)));
        else if (arg.rfind("--rounds=", 0) == 0)
            rounds = static_cast<u32>(std::stoul(arg.substr(9)));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = static_cast<u32>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            check_path = arg.substr(8);
        else if (arg == "--help" || arg == "-h") {
            std::cout << "options: --quick --sms=N --rounds=N "
                         "--threads=N --out=FILE --check=FILE\n";
            return 0;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    std::vector<RunConfig> configs{RunConfig::baseline(),
                                   RunConfig::virtualized(),
                                   RunConfig::gpuShrink(50)};
    std::vector<SweepJob> manifest;
    for (RunConfig &cfg : configs) {
        cfg.numSms = sms;
        cfg.roundsPerSm = rounds;
        for (const auto &w : allWorkloads())
            manifest.push_back({w->name(), cfg});
    }

    std::cout << "sweep throughput: " << manifest.size() << " jobs, "
              << sms << " SMs, " << rounds << " round(s)/SM, "
              << threads << " threads ("
              << hardwareConcurrency()
              << " hardware)\n";

    // ---- serial: the pre-engine driver loop ----------------------------
    std::vector<RunOutcome> serial;
    serial.reserve(manifest.size());
    const double serial0 = now();
    for (const SweepJob &job : manifest)
        serial.push_back(Simulator(job.config)
                             .runWorkload(*findWorkload(job.workload)));
    const double serialSeconds = now() - serial0;
    std::cout << "  serial: " << fmtDouble(serialSeconds) << " s\n";

    // ---- cold + warm engine sweeps -------------------------------------
    const std::string cacheDir =
        (std::filesystem::temp_directory_path() / "rfv-sweep-bench")
            .string();
    std::filesystem::remove_all(cacheDir);

    SweepOptions opts;
    opts.jobs = threads;
    opts.cacheDir = cacheDir;

    SweepEngine cold(opts);
    const std::vector<SweepJobResult> coldResults = cold.run(manifest);
    const double coldSeconds = cold.stats().wallSeconds;
    const u64 steals = cold.stats().steals;
    std::cout << "  cold:   " << fmtDouble(coldSeconds) << " s ("
              << steals << " steals)\n";

    for (size_t i = 0; i < manifest.size(); ++i)
        panicIf(!(coldResults[i].outcome == serial[i]),
                "engine outcome diverged from serial loop on " +
                    manifest[i].workload + "/" +
                    manifest[i].config.label);

    SweepEngine warm(opts);
    const std::vector<SweepJobResult> warmResults = warm.run(manifest);
    const double warmSeconds = warm.stats().wallSeconds;
    const double hitRate = warm.stats().hitRate();
    std::cout << "  warm:   " << fmtDouble(warmSeconds) << " s (hit rate "
              << fmtDouble(hitRate * 100) << "%)\n";

    for (size_t i = 0; i < manifest.size(); ++i)
        panicIf(!(warmResults[i].outcome == serial[i]),
                "cached replay diverged from serial loop on " +
                    manifest[i].workload + "/" +
                    manifest[i].config.label);
    std::filesystem::remove_all(cacheDir);

    const double coldSpeedup = serialSeconds / coldSeconds;
    const double warmSpeedup = serialSeconds / warmSeconds;
    std::cout << "  cold speedup " << fmtDouble(coldSpeedup)
              << "x, warm speedup " << fmtDouble(warmSpeedup) << "x\n";

    u64 aggregateCycles = 0;
    for (const RunOutcome &out : serial)
        aggregateCycles += out.sim.cycles;

    {
        std::ofstream os(out_path);
        os << "{\n";
        os << "  \"bench\": \"sweep-throughput\",\n";
        os << "  \"simulatorVersion\": \"" << kSimulatorVersion
           << "\",\n";
        os << "  \"numSms\": " << sms << ",\n";
        os << "  \"roundsPerSm\": " << rounds << ",\n";
        os << "  \"threads\": " << threads << ",\n";
        os << "  \"hardwareThreads\": "
           << hardwareConcurrency() << ",\n";
        os << "  \"jobs\": " << manifest.size() << ",\n";
        os << "  \"aggregateCycles\": " << aggregateCycles << ",\n";
        os << "  \"serialSeconds\": " << fmtDouble(serialSeconds)
           << ",\n";
        os << "  \"coldSeconds\": " << fmtDouble(coldSeconds) << ",\n";
        os << "  \"warmSeconds\": " << fmtDouble(warmSeconds) << ",\n";
        os << "  \"coldSpeedup\": " << fmtDouble(coldSpeedup) << ",\n";
        os << "  \"warmSpeedup\": " << fmtDouble(warmSpeedup) << ",\n";
        os << "  \"warmHitRate\": " << fmtDouble(hitRate) << ",\n";
        os << "  \"steals\": " << steals << "\n";
        os << "}\n";
    }
    std::cout << "wrote " << out_path << "\n";

    if (check_path.empty())
        return 0;

    // Regression gate: ratios vs the committed baseline (15% noise
    // tolerance), plus the absolute warm-cache contract — memoized
    // replay must keep >= 90% hits and stay clearly faster than
    // re-simulating.
    bool failed = false;
    if (hitRate < 0.9) {
        std::cerr << "FAIL: warm hit rate " << fmtDouble(hitRate)
                  << " below 0.9\n";
        failed = true;
    }
    const double baseCold = readNumber(check_path, "coldSpeedup");
    const double baseWarm = readNumber(check_path, "warmSpeedup");
    if (coldSpeedup < 0.85 * baseCold) {
        std::cerr << "FAIL: cold speedup " << fmtDouble(coldSpeedup)
                  << "x regressed >15% vs baseline "
                  << fmtDouble(baseCold) << "x\n";
        failed = true;
    }
    if (warmSpeedup < 0.85 * baseWarm) {
        std::cerr << "FAIL: warm speedup " << fmtDouble(warmSpeedup)
                  << "x regressed >15% vs baseline "
                  << fmtDouble(baseWarm) << "x\n";
        failed = true;
    }
    if (failed)
        return 1;
    std::cout << "check passed vs " << check_path << "\n";
    return 0;
}
