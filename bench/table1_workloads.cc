/**
 * @file
 * Table 1: workload characteristics (# CTAs, threads/CTA, registers per
 * kernel, concurrent CTAs per SM), printed from the workload registry,
 * plus the measured spill-free register minimum (the paper's
 * parenthesized values) from the compiler's pressure analysis.
 */
#include "bench/bench_common.h"
#include "common/bit_utils.h"
#include "common/table.h"
#include "compiler/cfg.h"
#include "compiler/liveness.h"

namespace rfv {
namespace {

u32
maxPressure(const Program &p)
{
    const Cfg cfg(p);
    const Liveness live = computeLiveness(p, cfg);
    const auto after = computeLiveAfter(p, cfg, live);
    u32 peak = 0;
    for (u32 pc = 0; pc < p.code.size(); ++pc) {
        const Instr &ins = p.code[pc];
        const u64 before = (after[pc] & ~defMask(ins)) | useMask(ins);
        peak = std::max({peak, popcount64(before),
                         popcount64(after[pc])});
    }
    return peak;
}

} // namespace
} // namespace rfv

int
main()
{
    using namespace rfv;
    std::cout << "Table 1: Workloads\n"
              << "(# Regs/Kernel in parentheses: spill-free minimum "
                 "from liveness pressure analysis)\n\n";
    Table t({"Name", "# CTAs", "# Thrds/CTA", "# Regs/Kernel",
             "Conc. CTAs/Core"});
    for (const auto &w : allWorkloads()) {
        const auto &c = w->config();
        const u32 minRegs = maxPressure(w->buildKernel());
        t.addRow({c.name, std::to_string(c.gridCtas),
                  std::to_string(c.threadsPerCta),
                  std::to_string(c.regsPerKernel) + "(" +
                      std::to_string(minRegs) + ")",
                  std::to_string(c.concCtasPerSm)});
    }
    std::cout << t.str();
    return 0;
}
