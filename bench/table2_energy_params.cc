/**
 * @file
 * Table 2: renaming-table and register-bank energy parameters at 40 nm
 * (the paper's CACTI-5.3 numbers, as configured in the energy model).
 */
#include <iostream>

#include "common/table.h"
#include "power/energy_model.h"

int
main()
{
    using namespace rfv;
    const EnergyParams p;
    std::cout << "Table 2: Register renaming table and register bank "
                 "energy in 40nm technology\n\n";
    Table t({"Parameter", "Renaming table", "Register bank"});
    t.addRow({"Size", "1KB", "4KB"});
    t.addRow({"# Banks", std::to_string(p.renameTableBanks), "1"});
    t.addRow({"Vdd", "0.96V", "0.96V"});
    t.addRow({"Per-access energy",
              Table::num(p.renameTablePerAccessPj, 2) + " pJ",
              Table::num(p.rfPerAccessPj, 2) + " pJ"});
    t.addRow({"Per-bank leakage power",
              Table::num(p.renameTableLeakPerBankMw, 2) + " mW",
              Table::num(p.rfLeakPerMw4kb, 1) + " mW"});
    std::cout << t.str();
    std::cout << "\nDerived: per-access energy scales with file size as"
                 " (size/128KB)^"
              << Table::num(p.dynSizeExponent, 4)
              << " (calibrated to Fig. 7).\n";
    return 0;
}
