/**
 * @file
 * Simulation-loop benchmark trajectory: wall-clocks the full 16-workload
 * suite under the three regfile configurations the paper's evaluation
 * uses, with the naive step-every-cycle loop and the event-driven loop,
 * and emits a machine-readable BENCH_simloop.json.
 *
 * The committed bench/BENCH_simloop.json is the perf baseline for CI:
 * `trajectory --quick --check=bench/BENCH_simloop.json` re-measures and
 * fails if any workload's event-vs-naive speedup RATIO regressed by
 * more than 15% relative to the committed run (ratios are host-speed
 * independent, so the gate is stable across CI machine generations),
 * or if any workload's event loop became slower than its naive loop.
 *
 * Usage:
 *   trajectory [--quick] [--sms=N] [--rounds=N] [--reps=N]
 *              [--out=FILE] [--check=FILE] [--before=FILE] [--profile]
 *
 *   --quick    1 round per SM instead of 3 (CI smoke scale)
 *   --reps     timing repetitions; best-of-N is reported (default 3)
 *   --out      write the JSON report (default BENCH_simloop.json)
 *   --check    compare against a committed report and exit 1 on
 *              regression
 *   --before   JSON map of pre-PR cycles/sec measurements (emitted by
 *              a build of the parent commit); rows gain beforeMcps and
 *              speedupVsBefore so the report carries before/after
 *              numbers
 *   --profile  per-row fetch/schedule/execute/commit breakdown of the
 *              event loop's stepped cycles (adds two clock reads per
 *              step to the timed region, so don't combine its numbers
 *              with a --check gate or a committed baseline)
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "core/simulator.h"
#include "service/sweep.h"
#include "sim/gpu.h"
#include "sim/loop_profiler.h"

using namespace rfv;

namespace {

// ---- host instruction counter (perf_event, optional) -------------------

/**
 * Retired-instruction counter for the calling thread via
 * perf_event_open.  Returns 0 everywhere the counter is unavailable
 * (non-Linux, perf_event_paranoid too strict, containers without the
 * syscall) — the JSON then records hostInstructions: 0 and consumers
 * fall back to wall-clock.
 */
class HostInstructionCounter {
  public:
    HostInstructionCounter()
    {
#if defined(__linux__)
        perf_event_attr attr{};
        attr.type = PERF_TYPE_HARDWARE;
        attr.size = sizeof(attr);
        attr.config = PERF_COUNT_HW_INSTRUCTIONS;
        attr.disabled = 1;
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        fd_ = static_cast<int>(syscall(SYS_perf_event_open, &attr, 0,
                                       -1, -1, 0));
#endif
    }
    ~HostInstructionCounter()
    {
#if defined(__linux__)
        if (fd_ >= 0)
            close(fd_);
#endif
    }
    void
    start()
    {
#if defined(__linux__)
        if (fd_ >= 0) {
            ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
            ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
        }
#endif
    }
    u64
    stop()
    {
#if defined(__linux__)
        if (fd_ >= 0) {
            ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
            u64 count = 0;
            if (read(fd_, &count, sizeof(count)) == sizeof(count))
                return count;
        }
#endif
        return 0;
    }

  private:
    int fd_ = -1;
};

// ---- measurement -------------------------------------------------------

struct Row {
    std::string workload;
    std::string config;
    u64 cycles = 0;
    double naiveSeconds = 0;
    double eventSeconds = 0;
    double naiveMcps = 0;   //!< simulated Mcycles per wall-second
    double eventMcps = 0;
    double speedup = 0;     //!< eventMcps / naiveMcps
    u64 skippedCycles = 0;
    u64 smStepsElided = 0;
    u64 hostInstructionsNaive = 0;
    u64 hostInstructionsEvent = 0;
    double beforeMcps = 0;      //!< pre-PR loop, 0 when not supplied
    double speedupVsBefore = 0; //!< eventMcps / beforeMcps
};

struct Timed {
    double seconds = 0;
    u64 hostInstructions = 0;
    SimResult sim;
    LoopStats loop;
};

/**
 * Wall-clock Gpu::run() alone — compile, memory setup and result
 * verification are identical between the two loops and would only
 * dilute the measurement if included.  Shared artifacts (assembled
 * program, compiled kernel, DecodeCache) come from the engine's
 * content-addressed store, so repetitions and the naive/event pair
 * reuse one build instead of recompiling per run.
 */
Timed
timedRun(SweepEngine &engine, const RunConfig &cfg, const Workload &w,
         bool event_driven, HostInstructionCounter &ctr,
         LoopProfile *profile = nullptr)
{
    const PreparedJob p = engine.prepare({w.name(), cfg});
    GpuConfig gpu = p.gpu;
    gpu.eventDriven = event_driven;

    GlobalMemory mem(w.memoryBytes(p.launch));
    w.setup(mem, p.launch);

    TraceHooks hooks;
    hooks.loopProfile = profile;
    Gpu machine(gpu, p.compiled->kernel.program, p.launch, mem,
                std::move(hooks), &p.decode->cache);
    ctr.start();
    const auto t0 = std::chrono::steady_clock::now();
    Timed r;
    r.sim = machine.run();
    const auto t1 = std::chrono::steady_clock::now();
    r.hostInstructions = ctr.stop();
    r.seconds = std::chrono::duration<double>(t1 - t0).count();
    r.loop = machine.loopStats();
    w.verify(mem, p.launch);
    return r;
}

/**
 * Best-of-N: simulated behaviour is deterministic across reps, so the
 * minimum wall time is the least-noisy estimate of the loop's cost
 * (scheduler preemption and cold caches only ever add time).
 */
Timed
bestOf(SweepEngine &engine, u32 reps, const RunConfig &cfg,
       const Workload &w, bool event_driven, HostInstructionCounter &ctr,
       LoopProfile *profile = nullptr)
{
    Timed best = timedRun(engine, cfg, w, event_driven, ctr, profile);
    for (u32 i = 1; i < reps; ++i) {
        Timed r = timedRun(engine, cfg, w, event_driven, ctr, profile);
        panicIf(!(r.sim == best.sim),
                "nondeterministic SimResult across benchmark reps");
        if (r.seconds < best.seconds)
            best = std::move(r);
    }
    return best;
}

// ---- minimal JSON writer / reader --------------------------------------
//
// The schema is flat and fully under our control, so a hand-rolled
// writer and a string-scanning reader keep the bench dependency-free.

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
writeReport(std::ostream &os, const std::vector<Row> &rows, u32 sms,
            u32 rounds)
{
    os << "{\n";
    os << "  \"bench\": \"simloop-trajectory\",\n";
    os << "  \"numSms\": " << sms << ",\n";
    os << "  \"roundsPerSm\": " << rounds << ",\n";
    os << "  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"workload\": \"" << jsonEscape(r.workload)
           << "\", \"config\": \"" << jsonEscape(r.config)
           << "\", \"cycles\": " << r.cycles
           << ", \"naiveSeconds\": " << fmtDouble(r.naiveSeconds)
           << ", \"eventSeconds\": " << fmtDouble(r.eventSeconds)
           << ", \"naiveMcps\": " << fmtDouble(r.naiveMcps)
           << ", \"eventMcps\": " << fmtDouble(r.eventMcps)
           << ", \"speedup\": " << fmtDouble(r.speedup)
           << ", \"skippedCycles\": " << r.skippedCycles
           << ", \"smStepsElided\": " << r.smStepsElided
           << ", \"hostInstructionsNaive\": " << r.hostInstructionsNaive
           << ", \"hostInstructionsEvent\": " << r.hostInstructionsEvent
           << ", \"beforeMcps\": " << fmtDouble(r.beforeMcps)
           << ", \"speedupVsBefore\": " << fmtDouble(r.speedupVsBefore)
           << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

/**
 * Pull `"workload"/"config" -> <number_key>` pairs out of a report
 * written by writeReport (or the seed-measurement script, which uses
 * the same row shape).  Scans for the known key strings rather than
 * parsing generally; exits with a diagnostic on malformed input.
 */
std::map<std::string, double>
readRowNumbers(const std::string &path, const char *number_key)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open baseline report " << path << "\n";
        std::exit(2);
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    const auto fieldString = [&](size_t row_at, const char *key) {
        const std::string needle = std::string("\"") + key + "\": \"";
        const size_t at = text.find(needle, row_at);
        panicIf(at == std::string::npos, "missing key in report");
        const size_t start = at + needle.size();
        return text.substr(start, text.find('"', start) - start);
    };
    const auto fieldNumber = [&](size_t row_at, const char *key) {
        const std::string needle = std::string("\"") + key + "\": ";
        const size_t at = text.find(needle, row_at);
        panicIf(at == std::string::npos, "missing key in report");
        return std::stod(text.substr(at + needle.size()));
    };

    std::map<std::string, double> numbers;
    size_t at = text.find("{\"workload\"");
    while (at != std::string::npos) {
        const std::string key = fieldString(at, "workload") + "/" +
                                fieldString(at, "config");
        numbers[key] = fieldNumber(at, number_key);
        at = text.find("{\"workload\"", at + 1);
    }
    panicIf(numbers.empty(), "no rows found in baseline report");
    return numbers;
}

} // namespace

int
main(int argc, char **argv)
{
    u32 sms = 4, rounds = 3, reps = 3;
    bool profile = false;
    std::string out_path = "BENCH_simloop.json";
    std::string check_path, before_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick")
            rounds = 1;
        else if (arg.rfind("--sms=", 0) == 0)
            sms = static_cast<u32>(std::stoul(arg.substr(6)));
        else if (arg.rfind("--rounds=", 0) == 0)
            rounds = static_cast<u32>(std::stoul(arg.substr(9)));
        else if (arg.rfind("--reps=", 0) == 0)
            reps = std::max(1u, static_cast<u32>(
                                    std::stoul(arg.substr(7))));
        else if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--check=", 0) == 0)
            check_path = arg.substr(8);
        else if (arg.rfind("--before=", 0) == 0)
            before_path = arg.substr(9);
        else if (arg == "--profile")
            profile = true;
        else if (arg == "--help" || arg == "-h") {
            std::cout << "options: --quick --sms=N --rounds=N --reps=N "
                         "--out=FILE --check=FILE --before=FILE "
                         "--profile\n";
            return 0;
        } else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    // The three regfile configurations of the paper's evaluation.
    std::vector<RunConfig> configs{RunConfig::baseline(),
                                   RunConfig::virtualized(),
                                   RunConfig::gpuShrink(50)};
    for (RunConfig &cfg : configs) {
        cfg.numSms = sms;
        cfg.roundsPerSm = rounds;
        cfg.numWorkerThreads = 0; // single-thread: isolate the loop win
    }

    std::map<std::string, double> before;
    if (!before_path.empty())
        before = readRowNumbers(before_path, "mcps");

    HostInstructionCounter ctr;
    // No result cache: every run must execute to be timed.  The engine
    // is used purely for its shared artifact store.
    SweepEngine engine({.jobs = 1, .cacheDir = "", .useCache = false});
    std::vector<Row> rows;
    std::cout << "simloop trajectory: " << sms << " SMs, " << rounds
              << " round(s)/SM, best of " << reps
              << ", naive vs event-driven loop\n\n";
    std::printf("%-12s %-22s %10s %9s %9s %8s %7s %7s\n", "workload",
                "config", "cycles", "naive s", "event s", "ev Mc/s",
                "speedup", "vs-pre");
    for (const RunConfig &base_cfg : configs) {
        for (const auto &w : allWorkloads()) {
            const RunConfig &cfg = base_cfg;
            LoopProfile event_prof;
            const Timed naive = bestOf(engine, reps, cfg, *w, false, ctr);
            const Timed event =
                bestOf(engine, reps, cfg, *w, true, ctr,
                       profile ? &event_prof : nullptr);
            panicIf(!(naive.sim == event.sim),
                    "event loop diverged from naive loop on " +
                        w->name() + "/" + cfg.label);

            Row r;
            r.workload = w->name();
            r.config = cfg.label;
            r.cycles = event.sim.cycles;
            r.naiveSeconds = naive.seconds;
            r.eventSeconds = event.seconds;
            r.naiveMcps =
                static_cast<double>(r.cycles) / naive.seconds / 1e6;
            r.eventMcps =
                static_cast<double>(r.cycles) / event.seconds / 1e6;
            r.speedup = r.eventMcps / r.naiveMcps;
            r.skippedCycles = event.loop.skippedCycles;
            r.smStepsElided = event.loop.smStepsElided;
            r.hostInstructionsNaive = naive.hostInstructions;
            r.hostInstructionsEvent = event.hostInstructions;
            const auto pre = before.find(r.workload + "/" + r.config);
            if (pre != before.end() && pre->second > 0) {
                r.beforeMcps = pre->second;
                r.speedupVsBefore = r.eventMcps / r.beforeMcps;
            }
            rows.push_back(r);

            std::printf(
                "%-12s %-22s %10llu %9.3f %9.3f %8.2f %6.2fx %6.2fx\n",
                r.workload.c_str(), r.config.c_str(),
                static_cast<unsigned long long>(r.cycles),
                r.naiveSeconds, r.eventSeconds, r.eventMcps, r.speedup,
                r.speedupVsBefore);
            if (profile) {
                // Buckets accumulate over all reps; ns/step averages
                // normalize by the step count, so reps cancel out.
                std::fputs(formatLoopProfile(event_prof).c_str(),
                           stdout);
            }
        }
    }

    std::ofstream out(out_path);
    writeReport(out, rows, sms, rounds);
    std::cout << "\nwrote " << out_path << " (" << rows.size()
              << " rows)\n";

    if (check_path.empty())
        return 0;

    // Regression gate: compare speedup RATIOS against the committed
    // baseline.  Ratios divide out the host's absolute speed, so the
    // gate holds across CI machine generations; 0.85 tolerates run-to-
    // run noise while catching the optimization being disabled or
    // pessimized (which shows up as the ratio collapsing toward 1.0
    // or below).
    const auto baseline = readRowNumbers(check_path, "speedup");
    bool failed = false;
    for (const Row &r : rows) {
        const std::string key = r.workload + "/" + r.config;
        const auto it = baseline.find(key);
        if (it == baseline.end()) {
            std::cerr << "NOTE: " << key
                      << " not in baseline report, skipping\n";
            continue;
        }
        // Sub-5k-cycle runs finish in well under a millisecond, where
        // timer granularity and scheduler jitter swamp the loop cost;
        // gating them would make CI flaky without guarding anything.
        if (r.cycles < 5000)
            continue;
        if (r.speedup < 0.95) {
            std::cerr << "FAIL: " << key << " event loop slower than "
                      << "naive (" << fmtDouble(r.speedup) << "x)\n";
            failed = true;
        }
        if (r.speedup < 0.85 * it->second) {
            std::cerr << "FAIL: " << key << " speedup "
                      << fmtDouble(r.speedup) << "x regressed >15% vs "
                      << "baseline " << fmtDouble(it->second) << "x\n";
            failed = true;
        }
    }
    if (failed)
        return 1;
    std::cout << "check passed: no speedup regressed >15% vs "
              << check_path << "\n";
    return 0;
}
