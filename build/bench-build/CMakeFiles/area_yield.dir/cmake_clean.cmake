file(REMOVE_RECURSE
  "../bench/area_yield"
  "../bench/area_yield.pdb"
  "CMakeFiles/area_yield.dir/area_yield.cc.o"
  "CMakeFiles/area_yield.dir/area_yield.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/area_yield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
