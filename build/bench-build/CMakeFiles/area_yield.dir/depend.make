# Empty dependencies file for area_yield.
# This may be replaced when dependencies are built.
