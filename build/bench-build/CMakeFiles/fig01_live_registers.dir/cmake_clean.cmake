file(REMOVE_RECURSE
  "../bench/fig01_live_registers"
  "../bench/fig01_live_registers.pdb"
  "CMakeFiles/fig01_live_registers.dir/fig01_live_registers.cc.o"
  "CMakeFiles/fig01_live_registers.dir/fig01_live_registers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_live_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
