# Empty dependencies file for fig01_live_registers.
# This may be replaced when dependencies are built.
