file(REMOVE_RECURSE
  "../bench/fig02_lifetime_trace"
  "../bench/fig02_lifetime_trace.pdb"
  "CMakeFiles/fig02_lifetime_trace.dir/fig02_lifetime_trace.cc.o"
  "CMakeFiles/fig02_lifetime_trace.dir/fig02_lifetime_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_lifetime_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
