# Empty dependencies file for fig02_lifetime_trace.
# This may be replaced when dependencies are built.
