file(REMOVE_RECURSE
  "../bench/fig07_power_vs_size"
  "../bench/fig07_power_vs_size.pdb"
  "CMakeFiles/fig07_power_vs_size.dir/fig07_power_vs_size.cc.o"
  "CMakeFiles/fig07_power_vs_size.dir/fig07_power_vs_size.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_power_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
