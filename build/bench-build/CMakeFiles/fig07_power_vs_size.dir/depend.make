# Empty dependencies file for fig07_power_vs_size.
# This may be replaced when dependencies are built.
