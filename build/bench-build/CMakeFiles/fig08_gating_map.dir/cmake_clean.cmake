file(REMOVE_RECURSE
  "../bench/fig08_gating_map"
  "../bench/fig08_gating_map.pdb"
  "CMakeFiles/fig08_gating_map.dir/fig08_gating_map.cc.o"
  "CMakeFiles/fig08_gating_map.dir/fig08_gating_map.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_gating_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
