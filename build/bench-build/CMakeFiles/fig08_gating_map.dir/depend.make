# Empty dependencies file for fig08_gating_map.
# This may be replaced when dependencies are built.
