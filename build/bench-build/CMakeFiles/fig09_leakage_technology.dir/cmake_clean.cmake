file(REMOVE_RECURSE
  "../bench/fig09_leakage_technology"
  "../bench/fig09_leakage_technology.pdb"
  "CMakeFiles/fig09_leakage_technology.dir/fig09_leakage_technology.cc.o"
  "CMakeFiles/fig09_leakage_technology.dir/fig09_leakage_technology.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_leakage_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
