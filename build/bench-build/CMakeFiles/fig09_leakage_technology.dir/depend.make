# Empty dependencies file for fig09_leakage_technology.
# This may be replaced when dependencies are built.
