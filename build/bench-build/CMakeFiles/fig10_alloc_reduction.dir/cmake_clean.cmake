file(REMOVE_RECURSE
  "../bench/fig10_alloc_reduction"
  "../bench/fig10_alloc_reduction.pdb"
  "CMakeFiles/fig10_alloc_reduction.dir/fig10_alloc_reduction.cc.o"
  "CMakeFiles/fig10_alloc_reduction.dir/fig10_alloc_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_alloc_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
