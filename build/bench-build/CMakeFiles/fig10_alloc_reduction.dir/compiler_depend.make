# Empty compiler generated dependencies file for fig10_alloc_reduction.
# This may be replaced when dependencies are built.
