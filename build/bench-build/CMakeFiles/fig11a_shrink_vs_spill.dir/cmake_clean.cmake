file(REMOVE_RECURSE
  "../bench/fig11a_shrink_vs_spill"
  "../bench/fig11a_shrink_vs_spill.pdb"
  "CMakeFiles/fig11a_shrink_vs_spill.dir/fig11a_shrink_vs_spill.cc.o"
  "CMakeFiles/fig11a_shrink_vs_spill.dir/fig11a_shrink_vs_spill.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11a_shrink_vs_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
