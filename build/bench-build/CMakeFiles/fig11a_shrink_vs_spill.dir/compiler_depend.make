# Empty compiler generated dependencies file for fig11a_shrink_vs_spill.
# This may be replaced when dependencies are built.
