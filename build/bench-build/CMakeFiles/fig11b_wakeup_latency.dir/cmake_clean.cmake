file(REMOVE_RECURSE
  "../bench/fig11b_wakeup_latency"
  "../bench/fig11b_wakeup_latency.pdb"
  "CMakeFiles/fig11b_wakeup_latency.dir/fig11b_wakeup_latency.cc.o"
  "CMakeFiles/fig11b_wakeup_latency.dir/fig11b_wakeup_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11b_wakeup_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
