# Empty dependencies file for fig11b_wakeup_latency.
# This may be replaced when dependencies are built.
