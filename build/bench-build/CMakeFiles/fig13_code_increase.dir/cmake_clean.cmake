file(REMOVE_RECURSE
  "../bench/fig13_code_increase"
  "../bench/fig13_code_increase.pdb"
  "CMakeFiles/fig13_code_increase.dir/fig13_code_increase.cc.o"
  "CMakeFiles/fig13_code_increase.dir/fig13_code_increase.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_code_increase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
