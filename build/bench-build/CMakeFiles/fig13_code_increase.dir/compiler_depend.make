# Empty compiler generated dependencies file for fig13_code_increase.
# This may be replaced when dependencies are built.
