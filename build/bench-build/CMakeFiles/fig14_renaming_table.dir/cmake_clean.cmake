file(REMOVE_RECURSE
  "../bench/fig14_renaming_table"
  "../bench/fig14_renaming_table.pdb"
  "CMakeFiles/fig14_renaming_table.dir/fig14_renaming_table.cc.o"
  "CMakeFiles/fig14_renaming_table.dir/fig14_renaming_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_renaming_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
