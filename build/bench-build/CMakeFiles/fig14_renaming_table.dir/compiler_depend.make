# Empty compiler generated dependencies file for fig14_renaming_table.
# This may be replaced when dependencies are built.
