file(REMOVE_RECURSE
  "../bench/fig15_hw_only_comparison"
  "../bench/fig15_hw_only_comparison.pdb"
  "CMakeFiles/fig15_hw_only_comparison.dir/fig15_hw_only_comparison.cc.o"
  "CMakeFiles/fig15_hw_only_comparison.dir/fig15_hw_only_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_hw_only_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
