# Empty compiler generated dependencies file for fig15_hw_only_comparison.
# This may be replaced when dependencies are built.
