file(REMOVE_RECURSE
  "../bench/shrink_sweep"
  "../bench/shrink_sweep.pdb"
  "CMakeFiles/shrink_sweep.dir/shrink_sweep.cc.o"
  "CMakeFiles/shrink_sweep.dir/shrink_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shrink_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
