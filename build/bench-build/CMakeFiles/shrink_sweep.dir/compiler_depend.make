# Empty compiler generated dependencies file for shrink_sweep.
# This may be replaced when dependencies are built.
