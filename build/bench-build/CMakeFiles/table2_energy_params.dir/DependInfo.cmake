
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_energy_params.cc" "bench-build/CMakeFiles/table2_energy_params.dir/table2_energy_params.cc.o" "gcc" "bench-build/CMakeFiles/table2_energy_params.dir/table2_energy_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rfv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/rfv_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/rfv_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/rfv_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/regfile/CMakeFiles/rfv_regfile.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/rfv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
