file(REMOVE_RECURSE
  "CMakeFiles/throttling_demo.dir/throttling_demo.cpp.o"
  "CMakeFiles/throttling_demo.dir/throttling_demo.cpp.o.d"
  "throttling_demo"
  "throttling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/throttling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
