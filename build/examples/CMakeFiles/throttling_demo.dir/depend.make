# Empty dependencies file for throttling_demo.
# This may be replaced when dependencies are built.
