file(REMOVE_RECURSE
  "CMakeFiles/rfv_common.dir/table.cc.o"
  "CMakeFiles/rfv_common.dir/table.cc.o.d"
  "librfv_common.a"
  "librfv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
