file(REMOVE_RECURSE
  "librfv_common.a"
)
