# Empty dependencies file for rfv_common.
# This may be replaced when dependencies are built.
