
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/cfg.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/cfg.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/cfg.cc.o.d"
  "/root/repo/src/compiler/dominators.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/dominators.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/dominators.cc.o.d"
  "/root/repo/src/compiler/exempt.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/exempt.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/exempt.cc.o.d"
  "/root/repo/src/compiler/liveness.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/liveness.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/liveness.cc.o.d"
  "/root/repo/src/compiler/metadata_insert.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/metadata_insert.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/metadata_insert.cc.o.d"
  "/root/repo/src/compiler/pipeline.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/pipeline.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/pipeline.cc.o.d"
  "/root/repo/src/compiler/release_analysis.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/release_analysis.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/release_analysis.cc.o.d"
  "/root/repo/src/compiler/spill.cc" "src/compiler/CMakeFiles/rfv_compiler.dir/spill.cc.o" "gcc" "src/compiler/CMakeFiles/rfv_compiler.dir/spill.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rfv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
