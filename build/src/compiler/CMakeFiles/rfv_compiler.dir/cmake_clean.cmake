file(REMOVE_RECURSE
  "CMakeFiles/rfv_compiler.dir/cfg.cc.o"
  "CMakeFiles/rfv_compiler.dir/cfg.cc.o.d"
  "CMakeFiles/rfv_compiler.dir/dominators.cc.o"
  "CMakeFiles/rfv_compiler.dir/dominators.cc.o.d"
  "CMakeFiles/rfv_compiler.dir/exempt.cc.o"
  "CMakeFiles/rfv_compiler.dir/exempt.cc.o.d"
  "CMakeFiles/rfv_compiler.dir/liveness.cc.o"
  "CMakeFiles/rfv_compiler.dir/liveness.cc.o.d"
  "CMakeFiles/rfv_compiler.dir/metadata_insert.cc.o"
  "CMakeFiles/rfv_compiler.dir/metadata_insert.cc.o.d"
  "CMakeFiles/rfv_compiler.dir/pipeline.cc.o"
  "CMakeFiles/rfv_compiler.dir/pipeline.cc.o.d"
  "CMakeFiles/rfv_compiler.dir/release_analysis.cc.o"
  "CMakeFiles/rfv_compiler.dir/release_analysis.cc.o.d"
  "CMakeFiles/rfv_compiler.dir/spill.cc.o"
  "CMakeFiles/rfv_compiler.dir/spill.cc.o.d"
  "librfv_compiler.a"
  "librfv_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfv_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
