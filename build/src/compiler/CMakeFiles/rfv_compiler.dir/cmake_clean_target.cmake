file(REMOVE_RECURSE
  "librfv_compiler.a"
)
