# Empty compiler generated dependencies file for rfv_compiler.
# This may be replaced when dependencies are built.
