file(REMOVE_RECURSE
  "CMakeFiles/rfv_core.dir/report.cc.o"
  "CMakeFiles/rfv_core.dir/report.cc.o.d"
  "CMakeFiles/rfv_core.dir/run_config.cc.o"
  "CMakeFiles/rfv_core.dir/run_config.cc.o.d"
  "CMakeFiles/rfv_core.dir/simulator.cc.o"
  "CMakeFiles/rfv_core.dir/simulator.cc.o.d"
  "librfv_core.a"
  "librfv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
