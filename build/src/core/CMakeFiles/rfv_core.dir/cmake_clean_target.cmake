file(REMOVE_RECURSE
  "librfv_core.a"
)
