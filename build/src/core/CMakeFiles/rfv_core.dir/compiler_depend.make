# Empty compiler generated dependencies file for rfv_core.
# This may be replaced when dependencies are built.
