file(REMOVE_RECURSE
  "CMakeFiles/rfv_isa.dir/assembler.cc.o"
  "CMakeFiles/rfv_isa.dir/assembler.cc.o.d"
  "CMakeFiles/rfv_isa.dir/builder.cc.o"
  "CMakeFiles/rfv_isa.dir/builder.cc.o.d"
  "CMakeFiles/rfv_isa.dir/instruction.cc.o"
  "CMakeFiles/rfv_isa.dir/instruction.cc.o.d"
  "CMakeFiles/rfv_isa.dir/metadata.cc.o"
  "CMakeFiles/rfv_isa.dir/metadata.cc.o.d"
  "CMakeFiles/rfv_isa.dir/opcode.cc.o"
  "CMakeFiles/rfv_isa.dir/opcode.cc.o.d"
  "CMakeFiles/rfv_isa.dir/program.cc.o"
  "CMakeFiles/rfv_isa.dir/program.cc.o.d"
  "librfv_isa.a"
  "librfv_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfv_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
