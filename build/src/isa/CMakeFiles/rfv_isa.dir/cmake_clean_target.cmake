file(REMOVE_RECURSE
  "librfv_isa.a"
)
