# Empty compiler generated dependencies file for rfv_isa.
# This may be replaced when dependencies are built.
