file(REMOVE_RECURSE
  "CMakeFiles/rfv_power.dir/area_model.cc.o"
  "CMakeFiles/rfv_power.dir/area_model.cc.o.d"
  "CMakeFiles/rfv_power.dir/energy_model.cc.o"
  "CMakeFiles/rfv_power.dir/energy_model.cc.o.d"
  "librfv_power.a"
  "librfv_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfv_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
