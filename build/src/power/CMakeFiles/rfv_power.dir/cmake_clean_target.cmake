file(REMOVE_RECURSE
  "librfv_power.a"
)
