# Empty compiler generated dependencies file for rfv_power.
# This may be replaced when dependencies are built.
