
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regfile/phys_regfile.cc" "src/regfile/CMakeFiles/rfv_regfile.dir/phys_regfile.cc.o" "gcc" "src/regfile/CMakeFiles/rfv_regfile.dir/phys_regfile.cc.o.d"
  "/root/repo/src/regfile/register_manager.cc" "src/regfile/CMakeFiles/rfv_regfile.dir/register_manager.cc.o" "gcc" "src/regfile/CMakeFiles/rfv_regfile.dir/register_manager.cc.o.d"
  "/root/repo/src/regfile/release_flag_cache.cc" "src/regfile/CMakeFiles/rfv_regfile.dir/release_flag_cache.cc.o" "gcc" "src/regfile/CMakeFiles/rfv_regfile.dir/release_flag_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
