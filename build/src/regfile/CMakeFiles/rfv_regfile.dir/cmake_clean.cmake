file(REMOVE_RECURSE
  "CMakeFiles/rfv_regfile.dir/phys_regfile.cc.o"
  "CMakeFiles/rfv_regfile.dir/phys_regfile.cc.o.d"
  "CMakeFiles/rfv_regfile.dir/register_manager.cc.o"
  "CMakeFiles/rfv_regfile.dir/register_manager.cc.o.d"
  "CMakeFiles/rfv_regfile.dir/release_flag_cache.cc.o"
  "CMakeFiles/rfv_regfile.dir/release_flag_cache.cc.o.d"
  "librfv_regfile.a"
  "librfv_regfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfv_regfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
