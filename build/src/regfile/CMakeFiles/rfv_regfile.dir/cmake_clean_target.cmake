file(REMOVE_RECURSE
  "librfv_regfile.a"
)
