# Empty dependencies file for rfv_regfile.
# This may be replaced when dependencies are built.
