
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/dcache.cc" "src/sim/CMakeFiles/rfv_sim.dir/dcache.cc.o" "gcc" "src/sim/CMakeFiles/rfv_sim.dir/dcache.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/sim/CMakeFiles/rfv_sim.dir/gpu.cc.o" "gcc" "src/sim/CMakeFiles/rfv_sim.dir/gpu.cc.o.d"
  "/root/repo/src/sim/icache.cc" "src/sim/CMakeFiles/rfv_sim.dir/icache.cc.o" "gcc" "src/sim/CMakeFiles/rfv_sim.dir/icache.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/rfv_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/rfv_sim.dir/memory.cc.o.d"
  "/root/repo/src/sim/simt_stack.cc" "src/sim/CMakeFiles/rfv_sim.dir/simt_stack.cc.o" "gcc" "src/sim/CMakeFiles/rfv_sim.dir/simt_stack.cc.o.d"
  "/root/repo/src/sim/sm.cc" "src/sim/CMakeFiles/rfv_sim.dir/sm.cc.o" "gcc" "src/sim/CMakeFiles/rfv_sim.dir/sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rfv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/regfile/CMakeFiles/rfv_regfile.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/rfv_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
