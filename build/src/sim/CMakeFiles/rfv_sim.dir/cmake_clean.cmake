file(REMOVE_RECURSE
  "CMakeFiles/rfv_sim.dir/dcache.cc.o"
  "CMakeFiles/rfv_sim.dir/dcache.cc.o.d"
  "CMakeFiles/rfv_sim.dir/gpu.cc.o"
  "CMakeFiles/rfv_sim.dir/gpu.cc.o.d"
  "CMakeFiles/rfv_sim.dir/icache.cc.o"
  "CMakeFiles/rfv_sim.dir/icache.cc.o.d"
  "CMakeFiles/rfv_sim.dir/memory.cc.o"
  "CMakeFiles/rfv_sim.dir/memory.cc.o.d"
  "CMakeFiles/rfv_sim.dir/simt_stack.cc.o"
  "CMakeFiles/rfv_sim.dir/simt_stack.cc.o.d"
  "CMakeFiles/rfv_sim.dir/sm.cc.o"
  "CMakeFiles/rfv_sim.dir/sm.cc.o.d"
  "librfv_sim.a"
  "librfv_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfv_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
