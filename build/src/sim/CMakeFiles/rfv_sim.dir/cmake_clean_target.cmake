file(REMOVE_RECURSE
  "librfv_sim.a"
)
