# Empty dependencies file for rfv_sim.
# This may be replaced when dependencies are built.
