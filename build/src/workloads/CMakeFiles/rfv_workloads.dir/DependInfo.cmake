
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backprop.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/backprop.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/backprop.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/bfs.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/bfs.cc.o.d"
  "/root/repo/src/workloads/blackscholes.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/blackscholes.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/blackscholes.cc.o.d"
  "/root/repo/src/workloads/dct8x8.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/dct8x8.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/dct8x8.cc.o.d"
  "/root/repo/src/workloads/gaussian.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/gaussian.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/gaussian.cc.o.d"
  "/root/repo/src/workloads/heartwall.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/heartwall.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/heartwall.cc.o.d"
  "/root/repo/src/workloads/hotspot.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/hotspot.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/hotspot.cc.o.d"
  "/root/repo/src/workloads/lib.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/lib.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/lib.cc.o.d"
  "/root/repo/src/workloads/lps.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/lps.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/lps.cc.o.d"
  "/root/repo/src/workloads/lud.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/lud.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/lud.cc.o.d"
  "/root/repo/src/workloads/matrixmul.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/matrixmul.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/matrixmul.cc.o.d"
  "/root/repo/src/workloads/mum.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/mum.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/mum.cc.o.d"
  "/root/repo/src/workloads/nn.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/nn.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/nn.cc.o.d"
  "/root/repo/src/workloads/random_kernel.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/random_kernel.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/random_kernel.cc.o.d"
  "/root/repo/src/workloads/reduction.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/reduction.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/reduction.cc.o.d"
  "/root/repo/src/workloads/scalarprod.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/scalarprod.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/scalarprod.cc.o.d"
  "/root/repo/src/workloads/vectoradd.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/vectoradd.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/vectoradd.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/rfv_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/rfv_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/rfv_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rfv_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/regfile/CMakeFiles/rfv_regfile.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/rfv_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rfv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
