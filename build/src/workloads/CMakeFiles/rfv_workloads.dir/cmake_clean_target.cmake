file(REMOVE_RECURSE
  "librfv_workloads.a"
)
