# Empty compiler generated dependencies file for rfv_workloads.
# This may be replaced when dependencies are built.
