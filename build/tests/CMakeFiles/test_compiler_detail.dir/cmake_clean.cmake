file(REMOVE_RECURSE
  "CMakeFiles/test_compiler_detail.dir/test_compiler_detail.cc.o"
  "CMakeFiles/test_compiler_detail.dir/test_compiler_detail.cc.o.d"
  "test_compiler_detail"
  "test_compiler_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compiler_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
