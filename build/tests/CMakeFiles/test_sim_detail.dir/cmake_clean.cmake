file(REMOVE_RECURSE
  "CMakeFiles/test_sim_detail.dir/test_sim_detail.cc.o"
  "CMakeFiles/test_sim_detail.dir/test_sim_detail.cc.o.d"
  "test_sim_detail"
  "test_sim_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
