# Empty compiler generated dependencies file for test_sim_detail.
# This may be replaced when dependencies are built.
