# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_isa "/root/repo/build/tests/test_isa")
set_tests_properties(test_isa PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;7;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_compiler "/root/repo/build/tests/test_compiler")
set_tests_properties(test_compiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;8;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_regfile "/root/repo/build/tests/test_regfile")
set_tests_properties(test_regfile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;9;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;10;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_equivalence "/root/repo/build/tests/test_equivalence")
set_tests_properties(test_equivalence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;11;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;12;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;13;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ablation "/root/repo/build/tests/test_ablation")
set_tests_properties(test_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;14;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_atomics "/root/repo/build/tests/test_atomics")
set_tests_properties(test_atomics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;15;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim_detail "/root/repo/build/tests/test_sim_detail")
set_tests_properties(test_sim_detail PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;16;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_compiler_detail "/root/repo/build/tests/test_compiler_detail")
set_tests_properties(test_compiler_detail PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;17;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_power "/root/repo/build/tests/test_power")
set_tests_properties(test_power PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;4;add_test;/root/repo/tests/CMakeLists.txt;18;rfv_test;/root/repo/tests/CMakeLists.txt;0;")
