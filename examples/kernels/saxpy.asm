.kernel saxpy
// out[i] = 3*x[i] + y[i]; x at 0, y at 64KB, out at 128KB
    s2r r0, %tid
    s2r r1, %ctaid
    s2r r2, %ntid
    imad r0, r1, r2, r0
    shl r0, r0, 2
    ldg r1, [r0+0]
    ldg r2, [r0+65536]
    imad r1, r1, 3, r2
    stg [r0+131072], r1
    exit
