/**
 * @file
 * Lifetime explorer: assemble a kernel from text, run the compiler's
 * analyses, and print the CFG, per-block liveness, the release points
 * the compiler chose (pir/pbr), and the final metadata-instrumented
 * binary — a window into Section 6 of the paper.
 *
 * Usage: lifetime_explorer [path/to/kernel.asm]
 * With no argument a built-in demonstration kernel (loop + divergence)
 * is used.
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "compiler/dominators.h"
#include "compiler/metadata_insert.h"
#include "compiler/pipeline.h"
#include "isa/assembler.h"

using namespace rfv;

static const char *kDemoKernel = R"(
.kernel demo
    s2r r0, %tid           // r0: thread id (long-lived)
    mov r1, 0              // r1: accumulator (loop-carried)
    mov r2, 0              // r2: loop counter
loop:
    imul r3, r2, 3         // r3: short-lived temporary
    iadd r1, r1, r3        // last read of r3 in the iteration
    iadd r2, r2, 1
    setp.lt p0, r2, 8
@p0 bra loop
    setp.lt p1, r0, 16     // diverged flow: both sides read r1
@!p1 bra else_
    iadd r4, r1, 100
    bra join
else_:
    iadd r4, r1, 200
join:
    shl r5, r0, 2
    stg [r5+0], r4
    exit
)";

int
main(int argc, char **argv)
{
    std::string source = kDemoKernel;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    }

    const Program prog = assemble(source);
    std::cout << "=== Input kernel ===\n" << prog.disassemble() << "\n";

    const Cfg cfg(prog);
    const auto ipdom = immediatePostDominators(cfg);
    std::cout << "=== Basic blocks ===\n";
    for (const auto &bb : cfg.blocks()) {
        std::cout << "B" << bb.id << " [" << bb.first << ".." << bb.last
                  << "] succs:";
        for (u32 s : bb.succs)
            std::cout << " B" << s;
        if (ipdom[bb.id] >= 0)
            std::cout << "  reconverges at B" << ipdom[bb.id];
        std::cout << "\n";
    }

    const Liveness live = computeLiveness(prog, cfg);
    std::cout << "\n=== Liveness (registers live at block entry/exit) "
                 "===\n";
    auto maskStr = [](u64 m) {
        std::string out;
        for (u32 r = 0; r < 64; ++r)
            if ((m >> r) & 1)
                out += " r" + std::to_string(r);
        return out.empty() ? std::string(" -") : out;
    };
    for (const auto &bb : cfg.blocks()) {
        std::cout << "B" << bb.id << " in:" << maskStr(live.liveIn[bb.id])
                  << "   out:" << maskStr(live.liveOut[bb.id]) << "\n";
    }

    const ReleaseInfo info = analyzeReleases(prog, cfg, live, {});
    std::cout << "\n=== Release points ===\n";
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        if (!info.pirMask[pc])
            continue;
        std::cout << "pc " << pc << "  " << formatInstr(prog.code[pc])
                  << "   releases:";
        for (u32 k = 0; k < 3; ++k)
            if ((info.pirMask[pc] >> k) & 1)
                std::cout << " r" << prog.code[pc].src[k].value
                          << " (after read)";
        std::cout << "\n";
    }
    for (u32 b = 0; b < cfg.numBlocks(); ++b) {
        if (info.pbrAtBlock[b].empty())
            continue;
        std::cout << "B" << b << " entry (reconvergence) releases:";
        for (u32 r : info.pbrAtBlock[b])
            std::cout << " r" << r;
        std::cout << "\n";
    }

    std::cout << "\n=== Register lifetime statistics ===\n";
    for (u32 r = 0; r < prog.numRegs; ++r) {
        const auto &s = info.regStats[r];
        std::cout << "r" << r << ": defs " << s.defs << ", uses "
                  << s.uses << ", live span " << s.liveSpan
                  << ", est. lifetime/value " << s.avgLifetime() << "\n";
    }

    CompileOptions opts;
    opts.virtualize = true;
    const auto ck = compileKernel(prog, opts);
    std::cout << "\n=== Metadata-instrumented binary (pir/pbr inserted) "
                 "===\n"
              << ck.program.disassemble();
    std::cout << "\nstatic code increase: "
              << ck.stats.staticCodeIncreasePct() << "%\n";
    return 0;
}
