/**
 * @file
 * Power study: sweep the physical register-file size for one workload
 * and report performance and energy under GPU-shrink — the design
 * exploration of paper Section 8 (GPU-shrink-50/40/30 all come out
 * nearly free).
 *
 * Usage: power_study [workload] (default MatrixMul; see table1 bench
 * for names)
 */
#include <iostream>

#include "common/table.h"
#include "core/simulator.h"

using namespace rfv;

int
main(int argc, char **argv)
try {
    const std::string name = argc > 1 ? argv[1] : "MatrixMul";
    const auto workload = findWorkload(name);

    RunConfig base = RunConfig::baseline();
    base.numSms = 4;
    const auto ref = Simulator(base).runWorkload(*workload);

    std::cout << "GPU-shrink design sweep for " << name << " ("
              << ref.sim.cycles << " baseline cycles)\n\n";
    Table t({"RF size", "Shrink (%)", "Cycle overhead (%)",
             "Throttled cycles", "RF energy (norm.)",
             "Peak regs used"});

    for (u32 shrink : {0u, 10u, 20u, 30u, 40u, 50u, 60u}) {
        RunConfig cfg = RunConfig::gpuShrink(shrink, true);
        cfg.numSms = 4;
        const auto out = Simulator(cfg).runWorkload(*workload);
        const double overhead =
            100.0 * (static_cast<double>(out.sim.cycles) /
                         static_cast<double>(ref.sim.cycles) -
                     1.0);
        t.addRow({std::to_string(cfg.rfSizeBytes / 1024) + "KB",
                  std::to_string(shrink),
                  Table::num(overhead, 2),
                  std::to_string(out.sim.throttleActiveCycles),
                  Table::num(out.energy.totalJ() / ref.energy.totalJ(),
                             3),
                  std::to_string(out.sim.rf.allocWatermark)});
    }
    std::cout << t.str();
    std::cout << "\nThe paper's GPU-shrink-50/40/30 designs all ran "
                 "with negligible overhead; beyond the live-register "
                 "demand the throttle starts serializing CTAs.\n";
    return 0;
} catch (const std::exception &e) {
    std::cerr << e.what() << "\n";
    return 1;
}
