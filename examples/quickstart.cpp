/**
 * @file
 * Quickstart: build a small kernel with the C++ builder API, compile it
 * with release-flag metadata, run it under the baseline and the
 * GPU-shrink register files, and compare cycles and energy.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <iostream>

#include "core/simulator.h"
#include "isa/builder.h"

using namespace rfv;

/** saxpy-style kernel: out[i] = a*x[i] + y[i] (integers). */
static Program
buildSaxpy()
{
    KernelBuilder b("saxpy");
    const u32 tid = b.reg(), cta = b.reg(), n = b.reg(),
              addr = b.reg(), x = b.reg(), y = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.s2r(cta, SpecialReg::kCtaId);
    b.s2r(n, SpecialReg::kNTid);
    b.imad(addr, R(cta), R(n), R(tid)); // global thread id
    b.shl(addr, R(addr), I(2));
    b.ldg(x, addr, 0);        // x[] at byte offset 0
    b.ldg(y, addr, 64 * 1024); // y[] at byte offset 64K
    b.imad(x, R(x), I(3), R(y));
    b.stg(addr, 128 * 1024, x); // out[]
    b.exit();
    return b.build();
}

int
main()
{
    const Program kernel = buildSaxpy();
    std::cout << "Kernel under test:\n" << kernel.disassemble() << "\n";

    LaunchParams launch;
    launch.gridCtas = 32;
    launch.threadsPerCta = 256;
    launch.concCtasPerSm = 6;

    for (const RunConfig &cfg :
         {RunConfig::baseline(), RunConfig::virtualized(true),
          RunConfig::gpuShrink(50, true)}) {
        GlobalMemory mem(192 * 1024 + launch.gridCtas * 1024 * 4);
        const u32 elems = launch.gridCtas * launch.threadsPerCta;
        for (u32 i = 0; i < elems; ++i) {
            mem.setWord(i, i);
            mem.setWord(64 * 1024 / 4 + i, 1000 + i);
        }

        Simulator sim(cfg);
        const RunOutcome out = sim.runProgram(kernel, launch, mem);

        // Verify the computation really happened.
        for (u32 i = 0; i < elems; ++i) {
            if (mem.word(128 * 1024 / 4 + i) != i * 3 + 1000 + i) {
                std::cerr << "wrong result at " << i << "\n";
                return 1;
            }
        }

        std::cout << cfg.label << ":\n"
                  << "  cycles            " << out.sim.cycles << "\n"
                  << "  warp instructions " << out.sim.issuedInstrs
                  << "\n"
                  << "  peak phys regs    " << out.sim.rf.allocWatermark
                  << " of "
                  << sim.gpuConfig().regFile.physRegs() * cfg.numSms
                  << "\n"
                  << "  RF energy         " << out.energy.totalJ() * 1e6
                  << " uJ (dyn " << out.energy.dynamicJ * 1e6
                  << ", static " << out.energy.staticJ * 1e6 << ")\n";
    }
    std::cout << "\nAll three configurations computed identical "
                 "results.\n";
    return 0;
}
