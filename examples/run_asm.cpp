/**
 * @file
 * Kernel runner: assemble a kernel from a .asm file and execute it
 * under any register-file configuration — a harness for experimenting
 * with the ISA and the virtualization machinery without writing C++.
 *
 * Usage:
 *   run_asm <kernel.asm> [--config=baseline|virtualized|shrink50|
 *                                  spill50|hwonly]
 *           [--ctas=N] [--threads=N] [--sms=N] [--dump-memory=N]
 *
 * The kernel gets 1 MB of zero-initialized global memory; use
 * --dump-memory=N to print the first N words after the run.
 */
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/table.h"
#include "core/simulator.h"
#include "isa/assembler.h"

using namespace rfv;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: run_asm <kernel.asm> [--config=...] "
                     "[--ctas=N] [--threads=N] [--sms=N] "
                     "[--dump-memory=N]\n";
        return 2;
    }
    std::string configName = "virtualized";
    u32 ctas = 4, threads = 128, sms = 1, dumpWords = 0;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--config=", 0) == 0)
            configName = arg.substr(9);
        else if (arg.rfind("--ctas=", 0) == 0)
            ctas = static_cast<u32>(std::stoul(arg.substr(7)));
        else if (arg.rfind("--threads=", 0) == 0)
            threads = static_cast<u32>(std::stoul(arg.substr(10)));
        else if (arg.rfind("--sms=", 0) == 0)
            sms = static_cast<u32>(std::stoul(arg.substr(6)));
        else if (arg.rfind("--dump-memory=", 0) == 0)
            dumpWords = static_cast<u32>(std::stoul(arg.substr(14)));
        else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    std::ifstream in(argv[1]);
    if (!in) {
        std::cerr << "cannot open " << argv[1] << "\n";
        return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();

    RunConfig cfg;
    if (configName == "baseline")
        cfg = RunConfig::baseline();
    else if (configName == "virtualized")
        cfg = RunConfig::virtualized(true);
    else if (configName == "shrink50")
        cfg = RunConfig::gpuShrink(50, true);
    else if (configName == "spill50")
        cfg = RunConfig::compilerSpillShrink(50);
    else if (configName == "hwonly")
        cfg = RunConfig::hardwareOnly(true);
    else {
        std::cerr << "unknown config " << configName << "\n";
        return 2;
    }
    cfg.numSms = sms;

    try {
        const Program prog = assemble(ss.str());
        std::cout << "Assembled " << prog.code.size()
                  << " instructions, " << prog.numRegs
                  << " registers per thread\n\n";

        LaunchParams launch;
        launch.gridCtas = ctas;
        launch.threadsPerCta = threads;
        GlobalMemory mem(1024 * 1024);

        Simulator sim(cfg);
        const RunOutcome out = sim.runProgram(prog, launch, mem);

        Table t({"Metric", "Value"});
        t.addRow({"configuration", cfg.label});
        t.addRow({"cycles", std::to_string(out.sim.cycles)});
        t.addRow({"warp instructions",
                  std::to_string(out.sim.issuedInstrs)});
        t.addRow({"thread instructions",
                  std::to_string(out.sim.threadInstrs)});
        t.addRow({"metadata decoded",
                  std::to_string(out.sim.metaDecoded)});
        t.addRow({"peak physical registers",
                  std::to_string(out.sim.rf.allocWatermark)});
        t.addRow({"allocation reduction (%)",
                  Table::num(out.sim.allocationReductionPct(), 1)});
        t.addRow({"DRAM transactions",
                  std::to_string(out.sim.dram.transactions)});
        t.addRow({"RF energy (uJ)",
                  Table::num(out.energy.totalJ() * 1e6, 3)});
        std::cout << t.str();

        if (dumpWords) {
            std::cout << "\nmemory[0.." << dumpWords - 1 << "]:";
            for (u32 w = 0; w < dumpWords; ++w)
                std::cout << (w % 8 == 0 ? "\n  " : " ")
                          << mem.word(w);
            std::cout << "\n";
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
