/**
 * @file
 * Differential fuzz driver for generated kernels.
 *
 * Usage:
 *   run_fuzz [--scenarios=N] [--seed=S] [--jobs=N] [--cache-dir=DIR]
 *            [--no-cache] [--mutate-every=N] [--no-minimize]
 *            [--minimize-budget=N] [--save=FILE] [--quiet]
 *   run_fuzz --corpus=FILE [--cache-dir=DIR] [--no-cache] [--quiet]
 *
 * Fuzz mode derives N (spec, config) scenarios from the root seed and
 * runs each under the four oracles (self-check, release-flag
 * soundness, event-vs-naive cycle loop, sequential-vs-parallel
 * multi-SM loop); every --mutate-every'th scenario additionally
 * injects a single-bit release-flag fault into the compiled program
 * and asserts the static verifier catches it.  Failures are shrunk by
 * the delta-debugging minimizer and printed as regression-corpus
 * lines (appended to --save when given).  Exit 1 on any failure.
 *
 * Corpus mode replays a committed corpus file: `pass` entries must
 * pass every oracle, `caught` entries' injected faults must still be
 * detected.  Exit 1 on any regression.
 *
 * Examples:
 *   run_fuzz --scenarios=10000 --jobs=8 --mutate-every=7
 *   run_fuzz --corpus=tests/corpus/fuzz/regressions.txt
 */
#include <fstream>
#include <iostream>
#include <string>

#include "gen/fuzz.h"

using namespace rfv;

namespace {

int
replayCorpus(const std::string &path, const SweepOptions &sweepOpts,
             bool quiet)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open corpus " << path << "\n";
        return 2;
    }
    SweepEngine engine(sweepOpts);
    u32 entries = 0, regressions = 0, lineNo = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++lineNo;
        CorpusEntry entry;
        std::string error;
        if (!parseCorpusLine(line, entry, error)) {
            if (error.empty())
                continue; // blank / comment
            std::cerr << path << ":" << lineNo << ": " << error
                      << "\n";
            return 2;
        }
        ++entries;
        const auto detail = replayCorpusEntry(engine, entry);
        if (detail) {
            ++regressions;
            std::cerr << "REGRESSION " << path << ":" << lineNo << " "
                      << entry.spec.name() << " ["
                      << fuzzOracleName(entry.oracle)
                      << "]: " << *detail << "\n";
        } else if (!quiet) {
            std::cout << "ok " << entry.spec.name() << " ["
                      << fuzzOracleName(entry.oracle) << "]\n";
        }
    }
    if (!quiet)
        std::cout << "corpus: " << entries << " entries, "
                  << regressions << " regression(s)\n";
    return regressions ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    FuzzOptions opts;
    opts.scenarios = 200;
    std::string corpusPath, savePath;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scenarios=", 0) == 0)
            opts.scenarios = std::stoull(arg.substr(12));
        else if (arg.rfind("--seed=", 0) == 0)
            opts.seed = std::stoull(arg.substr(7));
        else if (arg.rfind("--jobs=", 0) == 0)
            opts.jobs = static_cast<u32>(std::stoul(arg.substr(7)));
        else if (arg.rfind("--cache-dir=", 0) == 0)
            opts.cacheDir = arg.substr(12);
        else if (arg == "--no-cache")
            opts.useCache = false;
        else if (arg.rfind("--mutate-every=", 0) == 0)
            opts.mutateEvery = std::stoull(arg.substr(15));
        else if (arg == "--no-minimize")
            opts.minimize = false;
        else if (arg.rfind("--minimize-budget=", 0) == 0)
            opts.minimizeBudget =
                static_cast<u32>(std::stoul(arg.substr(18)));
        else if (arg.rfind("--corpus=", 0) == 0)
            corpusPath = arg.substr(9);
        else if (arg.rfind("--save=", 0) == 0)
            savePath = arg.substr(7);
        else if (arg == "--quiet")
            quiet = true;
        else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }

    try {
        if (!corpusPath.empty()) {
            SweepOptions sweepOpts;
            sweepOpts.cacheDir = opts.cacheDir;
            sweepOpts.useCache = opts.useCache;
            return replayCorpus(corpusPath, sweepOpts, quiet);
        }

        const FuzzReport report = runFuzz(opts);
        if (!quiet) {
            std::cout << "fuzz: " << report.scenarios
                      << " scenarios, " << report.oracleChecks
                      << " oracle checks, " << report.mutationsCaught
                      << " injected fault(s) caught ("
                      << report.mutationsBenign << " benign), "
                      << report.failures.size() << " failure(s) in "
                      << report.wallSeconds << "s\n";
        }
        if (report.failures.empty())
            return 0;

        std::ofstream save;
        if (!savePath.empty()) {
            save.open(savePath, std::ios::app);
            if (!save) {
                std::cerr << "cannot write " << savePath << "\n";
                return 2;
            }
        }
        for (const FuzzFailure &f : report.failures) {
            std::cerr << "FAILURE scenario " << f.scenario.index
                      << " [" << fuzzOracleName(f.oracle)
                      << "]: " << f.detail << "\n";
            std::cerr << "  original:  " << f.scenario.spec.name()
                      << " @ " << f.scenario.config.label << "\n";
            const std::string line = corpusLine(f);
            std::cerr << "  minimized (" << f.shrinkTests
                      << " shrink tests): " << line << "\n";
            if (save.is_open())
                save << line << "\n";
        }
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "run_fuzz: " << e.what() << "\n";
        return 2;
    }
}
