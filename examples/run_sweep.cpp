/**
 * @file
 * Batch sweep driver: execute a manifest of (workload, config) jobs on
 * the work-stealing SweepEngine with shared program artifacts and a
 * persistent result cache, then emit CSV or JSON.
 *
 * Usage:
 *   run_sweep <manifest|--default> [--jobs=N] [--cache-dir=DIR]
 *             [--no-cache] [--cache-budget-mb=N]
 *             [--cache-policy=lru|clock] [--csv=FILE] [--json=FILE]
 *             [--sms=N] [--rounds=N] [--expect-hit-rate=F] [--quiet]
 *             [--cluster=H1:P1,H2:P2,... [--deadline-ms=N]]
 *
 * The manifest is a text file, one job per line:
 *
 *   # workload   config      [key=value overrides...]
 *   MatrixMul    baseline
 *   MatrixMul    shrink50    numSms=2 roundsPerSm=1
 *   BFS          virtualized
 *
 * Configs: baseline, virtualized, virtualized-gating, shrink25,
 * shrink50, shrink50-gating, spill50, hwonly.  `--default` expands to
 * every Table-1 workload under baseline, virtualized and shrink50
 * (48 jobs).
 *
 * A bad line or a bad job never aborts the batch: malformed manifest
 * lines, unknown workloads and invalid overrides are reported as
 * per-job structured errors, the remaining jobs run to completion,
 * and the exit status is 1.  SIGINT/SIGTERM interrupt the sweep
 * cooperatively: in-flight jobs finish and publish to the cache,
 * pending jobs are skipped, the completed-job count is reported, and
 * the exit status is 130.
 *
 * --jobs=N           worker threads including the caller (default 1).
 * --cache-dir=DIR    persistent result cache (default .rfv-cache).
 * --no-cache         always simulate live; nothing read or written.
 * --cache-budget-mb=N  memory-tier byte budget; cold entries beyond it
 *                    are demoted to the disk tier (0 = unbounded,
 *                    default 256).
 * --cache-policy=P   memory-tier eviction policy: lru (default) or
 *                    clock.
 * --csv=FILE         per-job CSV (- for stdout); adds from_cache and
 *                    seconds columns to the standard report columns.
 * --json=FILE        engine counters + per-job rows as JSON.
 * --expect-hit-rate=F  exit 1 unless jobsCached/jobsTotal >= F (CI
 *                    gating for warm-cache runs).
 * --cluster=LIST     dispatch every job to its owner node on a simd
 *                    cluster (consistent-hash routing, failover,
 *                    cluster-wide deadlines) instead of simulating
 *                    locally; --jobs=N becomes concurrent dispatch
 *                    threads and the CSV columns stay identical, so
 *                    routed and local sweeps diff bit-for-bit.
 *                    --json is not available in this mode (engine
 *                    counters live on the servers; use simd_client
 *                    --stats).
 * --deadline-ms=N    cluster-wide per-job deadline (with --cluster).
 *
 * Examples:
 *   run_sweep --default --jobs=8 --csv=sweep.csv
 *   run_sweep manifest.txt --cache-dir=/tmp/rfv --json=-
 *   run_sweep --default && run_sweep --default --expect-hit-rate=0.9
 */
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/sync.h"
#include "core/report.h"
#include "net/cluster_coordinator.h"
#include "service/request.h"
#include "service/sweep.h"
#include "service/version.h"

using namespace rfv;

namespace {

std::atomic<bool> gInterrupted{false};

void
onSignal(int)
{
    gInterrupted.store(true);
}

std::vector<ManifestEntry>
defaultManifest()
{
    std::vector<ManifestEntry> entries;
    for (const char *name : {"baseline", "virtualized", "shrink50"}) {
        for (const auto &w : allWorkloads()) {
            ManifestEntry e;
            e.workload = w->name();
            e.configName = name;
            e.source = "--default";
            runConfigByName(name, e.config);
            entries.push_back(std::move(e));
        }
    }
    return entries;
}

std::vector<ManifestEntry>
loadManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("cannot open manifest " + path);
    return parseManifest(in, path);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
writeJson(std::ostream &os, const std::vector<SweepJobResult> &results,
          const SweepStats &st)
{
    os << "{\n";
    os << "  \"simulator_version\": \"" << kSimulatorVersion << "\",\n";
    os << "  \"jobs_total\": " << st.jobsTotal << ",\n";
    os << "  \"jobs_run\": " << st.jobsRun << ",\n";
    os << "  \"jobs_cached\": " << st.jobsCached << ",\n";
    os << "  \"jobs_failed\": " << st.jobsFailed << ",\n";
    os << "  \"jobs_cancelled\": " << st.jobsCancelled << ",\n";
    os << "  \"hit_rate\": " << st.hitRate() << ",\n";
    os << "  \"steals\": " << st.steals << ",\n";
    os << "  \"parks\": " << st.parks << ",\n";
    os << "  \"artifacts\": {\n";
    os << "    \"programs_built\": " << st.artifacts.programsBuilt
       << ", \"programs_reused\": " << st.artifacts.programsReused
       << ",\n";
    os << "    \"compiles_built\": " << st.artifacts.compilesBuilt
       << ", \"compiles_reused\": " << st.artifacts.compilesReused
       << ",\n";
    os << "    \"verifies_built\": " << st.artifacts.verifiesBuilt
       << ", \"verifies_reused\": " << st.artifacts.verifiesReused
       << ",\n";
    os << "    \"decodes_built\": " << st.artifacts.decodesBuilt
       << ", \"decodes_reused\": " << st.artifacts.decodesReused << "\n";
    os << "  },\n";
    os << "  \"cache\": { \"memory_hits\": " << st.cache.memoryHits
       << ", \"disk_hits\": " << st.cache.diskHits
       << ", \"misses\": " << st.cache.misses
       << ", \"stores\": " << st.cache.stores
       << ", \"bad_entries\": " << st.cache.badEntries
       << ",\n             \"evictions\": " << st.cache.evictions
       << ", \"memory_bytes\": " << st.cache.memoryBytes
       << ", \"write_behind_depth\": " << st.cache.writeBehindDepth
       << ", \"write_behind_drops\": " << st.cache.writeBehindDrops
       << " },\n";
    os << "  \"aggregate_cycles\": " << st.aggregateCycles << ",\n";
    os << "  \"aggregate_instrs\": " << st.aggregateInstrs << ",\n";
    os << "  \"wall_seconds\": " << st.wallSeconds << ",\n";
    os << "  \"cycles_per_sec\": " << st.cyclesPerSec() << ",\n";
    os << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const SweepJobResult &r = results[i];
        os << "    { \"workload\": \"" << jsonEscape(r.job.workload)
           << "\", \"config\": \"" << jsonEscape(r.job.config.label)
           << "\", \"status\": \"" << serviceStatusName(r.status)
           << "\"";
        if (!r.ok())
            os << ", \"error\": \"" << jsonEscape(r.error) << "\"";
        os << ", \"key\": \"" << r.key
           << "\", \"from_cache\": " << (r.fromCache ? "true" : "false")
           << ", \"seconds\": " << r.seconds
           << ", \"cycles\": " << r.outcome.sim.cycles
           << ", \"issued_instrs\": " << r.outcome.sim.issuedInstrs
           << ", \"energy_j\": " << r.outcome.energy.totalJ() << " }"
           << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

/** Open @p spec ("-" = the given standard stream). */
std::ostream &
openOut(const std::string &spec, std::ofstream &file, std::ostream &std)
{
    if (spec == "-")
        return std;
    file.open(spec, std::ios::trunc);
    if (!file)
        throw std::runtime_error("cannot write " + spec);
    return file;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr
            << "usage: run_sweep <manifest|--default> [--jobs=N] "
               "[--cache-dir=DIR] [--no-cache] [--cache-budget-mb=N] "
               "[--cache-policy=lru|clock] [--csv=FILE] "
               "[--json=FILE] [--sms=N] [--rounds=N] "
               "[--expect-hit-rate=F] [--quiet]\n";
        return 2;
    }

    std::string manifestPath;
    bool useDefault = false;
    SweepOptions opts;
    opts.cacheDir = ".rfv-cache";
    std::string csvOut, jsonOut;
    std::string cluster;
    i64 deadlineMs = -1;
    u32 sms = 0, rounds = 0;
    bool haveSms = false, haveRounds = false, quiet = false;
    double expectHitRate = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--default")
            useDefault = true;
        else if (arg.rfind("--jobs=", 0) == 0)
            opts.jobs = static_cast<u32>(std::stoul(arg.substr(7)));
        else if (arg.rfind("--cache-dir=", 0) == 0)
            opts.cacheDir = arg.substr(12);
        else if (arg == "--no-cache")
            opts.useCache = false;
        else if (arg.rfind("--cache-budget-mb=", 0) == 0)
            opts.cacheMemoryBudget =
                std::stoull(arg.substr(18)) << 20;
        else if (arg.rfind("--cache-policy=", 0) == 0) {
            const std::string policy = arg.substr(15);
            if (policy == "lru")
                opts.cacheEviction = EvictionPolicy::kLru;
            else if (policy == "clock")
                opts.cacheEviction = EvictionPolicy::kClock;
            else {
                std::cerr << "unknown cache policy " << policy
                          << " (expected lru or clock)\n";
                return 2;
            }
        } else if (arg.rfind("--csv=", 0) == 0)
            csvOut = arg.substr(6);
        else if (arg.rfind("--json=", 0) == 0)
            jsonOut = arg.substr(7);
        else if (arg.rfind("--sms=", 0) == 0) {
            sms = static_cast<u32>(std::stoul(arg.substr(6)));
            haveSms = true;
        } else if (arg.rfind("--rounds=", 0) == 0) {
            rounds = static_cast<u32>(std::stoul(arg.substr(9)));
            haveRounds = true;
        } else if (arg.rfind("--expect-hit-rate=", 0) == 0)
            expectHitRate = std::stod(arg.substr(18));
        else if (arg.rfind("--cluster=", 0) == 0)
            cluster = arg.substr(10);
        else if (arg.rfind("--deadline-ms=", 0) == 0)
            deadlineMs = std::stol(arg.substr(14));
        else if (arg == "--quiet")
            quiet = true;
        else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        } else
            manifestPath = arg;
    }
    if (useDefault == !manifestPath.empty()) {
        std::cerr << "expected exactly one of <manifest> or --default\n";
        return 2;
    }
    if (!cluster.empty() && !jsonOut.empty()) {
        std::cerr << "--json is not available with --cluster "
                     "(engine counters live on the servers)\n";
        return 2;
    }

    // Cooperative interruption: in-flight jobs finish and publish to
    // the cache atomically; pending jobs are skipped as CANCELLED and
    // the completed-job count is still reported below.
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    opts.cancel = &gInterrupted;

    try {
        std::vector<ManifestEntry> entries =
            useDefault ? defaultManifest() : loadManifest(manifestPath);

        // ---- routed dispatch: the cluster is the sweep engine ----------
        if (!cluster.empty()) {
            CoordinatorOptions co;
            std::vector<RingNode> nodes;
            std::string perr;
            if (!parseEndpointList(cluster, nodes, perr))
                throw std::runtime_error("--cluster: " + perr);
            for (const RingNode &n : nodes)
                co.nodes.push_back(n.endpoint());
            ClusterCoordinator coordinator(co);
            std::string rerr;
            coordinator.refreshRing(rerr); // adopt the live epoch

            std::vector<SweepJobResult> results(entries.size());
            for (size_t i = 0; i < entries.size(); ++i) {
                results[i].job.workload = entries[i].workload;
                results[i].job.config = entries[i].config;
                if (entries[i].status != ServiceStatus::kOk) {
                    results[i].status = entries[i].status;
                    results[i].error = entries[i].error;
                }
            }

            std::atomic<size_t> nextIndex{0};
            auto worker = [&]() {
                for (;;) {
                    // relaxed: the claim counter only partitions
                    // indices; results[i] has exactly one writer and
                    // is read after the joins below.
                    const size_t i = nextIndex.fetch_add(
                        1, std::memory_order_relaxed);
                    if (i >= entries.size())
                        return;
                    if (entries[i].status != ServiceStatus::kOk)
                        continue; // parse error, already recorded
                    if (gInterrupted.load()) {
                        results[i].status = ServiceStatus::kCancelled;
                        results[i].error = "interrupted";
                        continue;
                    }
                    ServiceRequest req;
                    req.workload = entries[i].workload;
                    req.configName = entries[i].configName;
                    req.overrides = entries[i].overrides;
                    if (haveSms)
                        req.overrides.emplace_back(
                            "numSms", std::to_string(sms));
                    if (haveRounds)
                        req.overrides.emplace_back(
                            "roundsPerSm", std::to_string(rounds));
                    req.deadlineMs = deadlineMs;
                    std::string error;
                    results[i].status =
                        coordinator.run(req, results[i], error);
                    if (results[i].error.empty())
                        results[i].error = error;
                }
            };
            std::vector<Thread> threads;
            const u32 numWorkers = static_cast<u32>(std::min<size_t>(
                std::max(1u, opts.jobs), entries.size()));
            for (u32 w = 1; w < numWorkers; ++w)
                threads.emplace_back(worker);
            if (numWorkers > 0)
                worker();
            for (Thread &t : threads)
                t.join();

            u64 ok = 0, cached = 0, failed = 0, cancelled = 0;
            for (size_t i = 0; i < results.size(); ++i) {
                if (results[i].ok()) {
                    ++ok;
                    if (results[i].fromCache)
                        ++cached;
                    continue;
                }
                if (results[i].status == ServiceStatus::kCancelled) {
                    ++cancelled;
                    continue;
                }
                ++failed;
                std::cerr << "FAIL " << entries[i].workload << " ["
                          << entries[i].source << "]: "
                          << serviceStatusName(results[i].status)
                          << ": " << results[i].error << "\n";
            }

            if (!csvOut.empty()) {
                std::ofstream file;
                std::ostream &os = openOut(csvOut, file, std::cout);
                os << csvHeader() << ",from_cache,seconds\n";
                for (const SweepJobResult &r : results)
                    if (r.ok())
                        os << csvRow(r.outcome) << ","
                           << (r.fromCache ? 1 : 0) << "," << r.seconds
                           << "\n";
            }
            if (!quiet) {
                const ClusterCoordinator::Stats cs =
                    coordinator.statsSnapshot();
                std::cerr << "cluster-sweep: total=" << entries.size()
                          << " ok=" << ok << " cached=" << cached
                          << " failed=" << failed
                          << " dispatches=" << cs.dispatches
                          << " reroutes=" << cs.reroutes
                          << " failovers=" << cs.failovers
                          << " epoch=" << coordinator.ringEpoch()
                          << "\n";
            }
            if (gInterrupted.load()) {
                std::cerr << "interrupted: " << ok << "/"
                          << entries.size() << " jobs completed ("
                          << cancelled << " cancelled)\n";
                return 130;
            }
            const double hitRate =
                entries.empty() ? 0.0
                                : static_cast<double>(cached) /
                                      static_cast<double>(entries.size());
            if (expectHitRate >= 0 && hitRate < expectHitRate) {
                std::cerr << "FAIL: hit rate " << hitRate
                          << " below expected " << expectHitRate << "\n";
                return 1;
            }
            return failed ? 1 : 0;
        }

        std::vector<SweepJob> manifest;
        std::vector<size_t> jobToEntry; //!< manifest index -> entry index
        for (size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].status != ServiceStatus::kOk)
                continue; // parse error: reported below, not executed
            SweepJob job;
            job.workload = entries[i].workload;
            job.config = entries[i].config;
            if (haveSms)
                job.config.numSms = sms;
            if (haveRounds)
                job.config.roundsPerSm = rounds;
            manifest.push_back(std::move(job));
            jobToEntry.push_back(i);
        }

        SweepEngine engine(opts);
        const std::vector<SweepJobResult> executed =
            engine.run(manifest);
        const SweepStats &st = engine.stats();

        // Merge executed results and parse failures back into manifest
        // order so every input line has exactly one result row.
        std::vector<SweepJobResult> results(entries.size());
        for (size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].status != ServiceStatus::kOk) {
                results[i].job.workload = entries[i].workload;
                results[i].job.config = entries[i].config;
                results[i].status = entries[i].status;
                results[i].error = entries[i].error;
            }
        }
        for (size_t j = 0; j < executed.size(); ++j)
            results[jobToEntry[j]] = executed[j];

        u64 failed = 0, cancelled = 0;
        for (size_t i = 0; i < results.size(); ++i) {
            if (results[i].ok())
                continue;
            if (results[i].status == ServiceStatus::kCancelled) {
                ++cancelled;
                continue;
            }
            ++failed;
            std::cerr << "FAIL " << entries[i].workload << " ["
                      << entries[i].source
                      << "]: " << serviceStatusName(results[i].status)
                      << ": " << results[i].error << "\n";
        }

        if (!csvOut.empty()) {
            std::ofstream file;
            std::ostream &os = openOut(csvOut, file, std::cout);
            os << csvHeader() << ",from_cache,seconds\n";
            for (const SweepJobResult &r : results)
                if (r.ok())
                    os << csvRow(r.outcome) << ","
                       << (r.fromCache ? 1 : 0) << "," << r.seconds
                       << "\n";
        }
        if (!jsonOut.empty()) {
            std::ofstream file;
            std::ostream &os = openOut(jsonOut, file, std::cout);
            writeJson(os, results, st);
        }
        if (!quiet)
            std::cerr << st.summary() << "\n";

        if (gInterrupted.load()) {
            std::cerr << "interrupted: " << (st.jobsRun + st.jobsCached)
                      << "/" << st.jobsTotal << " jobs completed ("
                      << cancelled << " cancelled)\n";
            return 130;
        }
        if (expectHitRate >= 0 && st.hitRate() < expectHitRate) {
            std::cerr << "FAIL: hit rate " << st.hitRate()
                      << " below expected " << expectHitRate << "\n";
            return 1;
        }
        if (failed)
            return 1;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
