/**
 * @file
 * Workload runner: execute any registered Table-1 benchmark under any
 * named register-file configuration and print a summary or a CSV row —
 * the everyday driver a downstream user scripts sweeps with.
 *
 * Usage:
 *   run_workload <workload|all> [--config=baseline|virtualized|
 *                                         shrink50|spill50|hwonly]
 *                [--sms=N] [--rounds=N] [--gating] [--csv] [--verify]
 *                [--loop=event|naive] [--progress] [--profile]
 *
 * --verify runs the static release-flag soundness verifier on each
 * compiled kernel and enables the runtime register-lifecycle lint;
 * diagnostics print with the report and a verification error fails
 * the run (exit 1).
 *
 * --loop selects the cycle loop (event-driven fast-forward is the
 * default; naive steps every cycle and is the equivalence oracle).
 * --progress prints, per run, how many cycles the loop actually
 * stepped vs. fast-forwarded and how many per-SM steps were elided.
 * --profile prints a per-phase wall-clock breakdown of the stepped
 * cycles (fetch/schedule/execute/commit, ns per step and % of step
 * time) so loop-speed changes are attributable to a phase.
 *
 * Examples:
 *   run_workload MatrixMul --config=shrink50 --gating
 *   run_workload all --config=virtualized --csv > sweep.csv
 *   run_workload all --config=virtualized --verify
 *   run_workload BFS --config=baseline --progress
 */
#include <iostream>

#include "core/report.h"
#include "sim/loop_profiler.h"

using namespace rfv;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: run_workload <workload|all> "
                     "[--config=...] [--sms=N] [--rounds=N] "
                     "[--gating] [--csv]\n       workloads:";
        for (const auto &w : allWorkloads())
            std::cerr << " " << w->name();
        std::cerr << "\n";
        return 2;
    }
    const std::string target = argv[1];
    std::string configName = "virtualized";
    std::string loopName = "event";
    u32 sms = 4, rounds = 3;
    bool gating = false, csv = false, verify = false, progress = false;
    bool profile = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--config=", 0) == 0)
            configName = arg.substr(9);
        else if (arg.rfind("--sms=", 0) == 0)
            sms = static_cast<u32>(std::stoul(arg.substr(6)));
        else if (arg.rfind("--rounds=", 0) == 0)
            rounds = static_cast<u32>(std::stoul(arg.substr(9)));
        else if (arg.rfind("--loop=", 0) == 0)
            loopName = arg.substr(7);
        else if (arg == "--gating")
            gating = true;
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--progress")
            progress = true;
        else if (arg == "--profile")
            profile = true;
        else {
            std::cerr << "unknown option " << arg << "\n";
            return 2;
        }
    }
    if (loopName != "event" && loopName != "naive") {
        std::cerr << "unknown loop " << loopName
                  << " (expected event or naive)\n";
        return 2;
    }

    RunConfig cfg;
    if (configName == "baseline")
        cfg = RunConfig::baseline();
    else if (configName == "virtualized")
        cfg = RunConfig::virtualized(gating);
    else if (configName == "shrink50")
        cfg = RunConfig::gpuShrink(50, gating);
    else if (configName == "spill50")
        cfg = RunConfig::compilerSpillShrink(50);
    else if (configName == "hwonly")
        cfg = RunConfig::hardwareOnly(gating);
    else {
        std::cerr << "unknown config " << configName << "\n";
        return 2;
    }
    cfg.numSms = sms;
    cfg.roundsPerSm = rounds;
    cfg.verifyReleases = verify;
    cfg.eventDriven = loopName == "event";

    std::vector<std::shared_ptr<Workload>> targets;
    if (target == "all") {
        targets = allWorkloads();
    } else {
        targets.push_back(findWorkload(target));
    }

    bool verifyFailed = false;
    try {
        Simulator sim(cfg);
        if (csv)
            std::cout << csvHeader() << "\n";
        for (const auto &w : targets) {
            LoopProfile prof;
            TraceHooks hooks;
            if (profile)
                hooks.loopProfile = &prof;
            const RunOutcome out = sim.runWorkload(*w, std::move(hooks));
            if (csv)
                std::cout << csvRow(out) << "\n";
            else
                std::cout << summarize(out) << "\n";
            if (profile) {
                std::cout << "  [profile] " << prof.steps
                          << " stepped SM-cycles\n"
                          << formatLoopProfile(prof);
            }
            if (progress) {
                const double skipped_pct =
                    out.sim.cycles
                        ? 100.0 *
                              static_cast<double>(out.loop.skippedCycles) /
                              static_cast<double>(out.sim.cycles)
                        : 0.0;
                std::cout << "  [loop] simulated " << out.loop.steppedCycles
                          << " cycles, fast-forwarded "
                          << out.loop.skippedCycles << " ("
                          << skipped_pct << "% of " << out.sim.cycles
                          << "), elided " << out.loop.smStepsElided
                          << " per-SM steps\n";
            }
            verifyFailed |= out.verified && !out.verify.ok();
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return verifyFailed ? 1 : 0;
}
