/**
 * @file
 * `simd_client` — submit simulation jobs to a running `simd_server`.
 *
 * Usage:
 *   simd_client (--port=N [--host=H] | --cluster=H1:P1,H2:P2,...)
 *               <what> [options]
 *
 * What to run (one of):
 *   --workload=W [--config=C] [--set=key=value]...   one request
 *   --manifest=FILE                                  manifest of jobs
 *   --default              the 16-workload x 3-config default sweep
 *   --stats                only fetch and print the server counters
 *
 * Options:
 *   --cluster=LIST     route each job to its owner node on the
 *                      consistent-hash ring instead of one server;
 *                      handles NOT_OWNER/REDIRECT, node failover and
 *                      ring-epoch refresh (docs/SERVICE.md §cluster)
 *   --jobs=N           concurrent client connections (default 1)
 *   --deadline-ms=N    per-request deadline; with --cluster it is
 *                      cluster-wide (spans failovers and redirects)
 *   --retries=N        max attempts for transient failures (default 5)
 *   --backoff-ms=N     base backoff between retries (default 100)
 *   --sms=N --rounds=N shorthand for numSms / roundsPerSm overrides
 *   --csv=FILE         per-job CSV (- = stdout), identical columns to
 *                      run_sweep so served results can be diffed
 *                      bit-for-bit against local sweeps
 *   --stats            also print STATS counters after the requests
 *   --quiet            suppress the summary
 *
 * Exit status: 0 when every request succeeded, 1 otherwise.
 *
 * Responses are decoded through the same codec the result cache uses,
 * so a served outcome printed here is bit-identical to the same job
 * simulated locally (see tests/test_simd_service.cc and the CI
 * service-smoke job).
 */
#include <atomic>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "common/sync.h"
#include "core/report.h"
#include "net/client.h"
#include "net/cluster_coordinator.h"
#include "workloads/workload.h"

using namespace rfv;

namespace {

std::vector<ManifestEntry>
defaultManifest()
{
    std::vector<ManifestEntry> entries;
    for (const char *config : {"baseline", "virtualized", "shrink50"}) {
        for (const auto &w : allWorkloads()) {
            ManifestEntry e;
            e.workload = w->name();
            e.configName = config;
            e.source = "--default";
            entries.push_back(std::move(e));
        }
    }
    return entries;
}

struct JobOutcome {
    SweepJobResult result;
    u32 attempts = 0;
    std::string error;
};

/** Open @p spec ("-" = stdout). */
std::ostream &
openOut(const std::string &spec, std::ofstream &file)
{
    if (spec == "-")
        return std::cout;
    file.open(spec, std::ios::trunc);
    if (!file)
        throw std::runtime_error("cannot write " + spec);
    return file;
}

} // namespace

int
main(int argc, char **argv)
{
    ClientOptions copts;
    std::string cluster;
    std::string workload, config = "baseline", manifestPath, csvOut;
    std::vector<std::pair<std::string, std::string>> overrides;
    bool useDefault = false, wantStats = false, quiet = false;
    i64 deadlineMs = -1;
    u32 jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (arg.rfind("--host=", 0) == 0)
                copts.host = arg.substr(7);
            else if (arg.rfind("--port=", 0) == 0)
                copts.port = static_cast<u16>(std::stoul(arg.substr(7)));
            else if (arg.rfind("--cluster=", 0) == 0)
                cluster = arg.substr(10);
            else if (arg.rfind("--workload=", 0) == 0)
                workload = arg.substr(11);
            else if (arg.rfind("--config=", 0) == 0)
                config = arg.substr(9);
            else if (arg.rfind("--set=", 0) == 0) {
                const std::string kv = arg.substr(6);
                const size_t eq = kv.find('=');
                if (eq == std::string::npos || eq == 0) {
                    std::cerr << "--set expects key=value, got '" << kv
                              << "'\n";
                    return 2;
                }
                overrides.emplace_back(kv.substr(0, eq),
                                       kv.substr(eq + 1));
            } else if (arg.rfind("--manifest=", 0) == 0)
                manifestPath = arg.substr(11);
            else if (arg == "--default")
                useDefault = true;
            else if (arg == "--stats")
                wantStats = true;
            else if (arg.rfind("--jobs=", 0) == 0)
                jobs = std::max(1u, static_cast<u32>(
                                        std::stoul(arg.substr(7))));
            else if (arg.rfind("--deadline-ms=", 0) == 0)
                deadlineMs = std::stol(arg.substr(14));
            else if (arg.rfind("--retries=", 0) == 0)
                copts.maxAttempts =
                    static_cast<u32>(std::stoul(arg.substr(10)));
            else if (arg.rfind("--backoff-ms=", 0) == 0)
                copts.backoffBaseMs = std::stol(arg.substr(13));
            else if (arg.rfind("--sms=", 0) == 0)
                overrides.emplace_back("numSms", arg.substr(6));
            else if (arg.rfind("--rounds=", 0) == 0)
                overrides.emplace_back("roundsPerSm", arg.substr(9));
            else if (arg.rfind("--csv=", 0) == 0)
                csvOut = arg.substr(6);
            else if (arg == "--quiet")
                quiet = true;
            else {
                std::cerr << "unknown option " << arg << "\n";
                return 2;
            }
        } catch (const std::exception &) {
            std::cerr << "unparsable value in " << arg << "\n";
            return 2;
        }
    }
    if (copts.port == 0 && cluster.empty()) {
        std::cerr << "usage: simd_client (--port=N | "
                     "--cluster=H1:P1,...) (--workload=W | "
                     "--manifest=FILE | --default | --stats) "
                     "[--jobs=N] [--deadline-ms=N] [--csv=FILE]\n";
        return 2;
    }
    const int modes = (!workload.empty() ? 1 : 0) +
                      (!manifestPath.empty() ? 1 : 0) +
                      (useDefault ? 1 : 0);
    if (modes > 1) {
        std::cerr << "pick one of --workload, --manifest, --default\n";
        return 2;
    }
    if (modes == 0 && !wantStats) {
        std::cerr << "nothing to do: no workload, manifest or --stats\n";
        return 2;
    }

    try {
        // ---- assemble the request list ---------------------------------
        std::vector<ManifestEntry> entries;
        if (!workload.empty()) {
            ManifestEntry e;
            e.workload = workload;
            e.configName = config;
            e.overrides = overrides;
            e.source = "--workload";
            entries.push_back(std::move(e));
        } else if (useDefault) {
            entries = defaultManifest();
        } else if (!manifestPath.empty()) {
            std::ifstream in(manifestPath);
            if (!in)
                throw std::runtime_error("cannot open manifest " +
                                         manifestPath);
            entries = parseManifest(in, manifestPath);
        }
        // Global overrides apply to every entry (after its own).
        if (workload.empty())
            for (ManifestEntry &e : entries)
                e.overrides.insert(e.overrides.end(), overrides.begin(),
                                   overrides.end());

        std::vector<JobOutcome> outcomes(entries.size());
        bool anyFailed = false;

        // Manifest lines that failed to parse are reported without
        // ever hitting the wire.
        for (size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].status != ServiceStatus::kOk) {
                outcomes[i].result.status = entries[i].status;
                outcomes[i].error = entries[i].error;
                anyFailed = true;
            }
        }

        // ---- fire the requests on --jobs connections -------------------
        // One routed front door shared by every worker thread, or one
        // direct connection per worker when targeting a single server.
        std::unique_ptr<ClusterCoordinator> coordinator;
        if (!cluster.empty()) {
            CoordinatorOptions co;
            std::vector<RingNode> nodes;
            std::string perr;
            if (!parseEndpointList(cluster, nodes, perr))
                throw std::runtime_error("--cluster: " + perr);
            for (const RingNode &n : nodes)
                co.nodes.push_back(n.endpoint());
            co.client = copts;
            coordinator = std::make_unique<ClusterCoordinator>(co);
            std::string rerr;
            coordinator->refreshRing(rerr); // adopt the live epoch
        }
        std::atomic<size_t> nextIndex{0};
        std::atomic<u64> totalAttempts{0};
        auto worker = [&](u32 workerId) {
            ClientOptions wopts = copts;
            wopts.jitterSeed = copts.jitterSeed + workerId;
            std::optional<SimdClient> direct;
            if (!coordinator)
                direct.emplace(wopts);
            for (;;) {
                // relaxed: the claim counter only partitions indices
                // across workers; outcomes[i] is written by exactly
                // one claimant and read after the joins below.
                const size_t i =
                    nextIndex.fetch_add(1, std::memory_order_relaxed);
                if (i >= entries.size())
                    return;
                if (entries[i].status != ServiceStatus::kOk)
                    continue; // parse error, already reported
                ServiceRequest req;
                req.workload = entries[i].workload;
                req.configName = entries[i].configName;
                req.overrides = entries[i].overrides;
                req.deadlineMs = deadlineMs;
                u32 attempts = 0;
                if (coordinator) {
                    outcomes[i].result.status = coordinator->run(
                        req, outcomes[i].result, outcomes[i].error);
                    attempts = 1;
                } else {
                    outcomes[i].result.status = direct->runWithRetry(
                        req, outcomes[i].result, outcomes[i].error,
                        &attempts);
                }
                outcomes[i].attempts = attempts;
                // relaxed: monotonic statistic, read after the joins.
                totalAttempts.fetch_add(attempts,
                                        std::memory_order_relaxed);
            }
        };
        std::vector<Thread> threads;
        const u32 numWorkers =
            static_cast<u32>(std::min<size_t>(jobs, entries.size()));
        for (u32 w = 1; w < numWorkers; ++w)
            threads.emplace_back(worker, w);
        if (numWorkers > 0)
            worker(0);
        for (Thread &t : threads)
            t.join();

        // ---- report ----------------------------------------------------
        u64 ok = 0, cached = 0, failed = 0;
        for (size_t i = 0; i < entries.size(); ++i) {
            const JobOutcome &jo = outcomes[i];
            if (jo.result.ok()) {
                ++ok;
                if (jo.result.fromCache)
                    ++cached;
            } else {
                ++failed;
                anyFailed = true;
                std::cerr << "FAIL " << entries[i].workload << " "
                          << entries[i].configName << " ["
                          << entries[i].source
                          << "]: " << serviceStatusName(jo.result.status)
                          << " "
                          << (jo.error.empty() ? jo.result.error
                                               : jo.error)
                          << "\n";
            }
        }

        if (!csvOut.empty()) {
            std::ofstream file;
            std::ostream &os = openOut(csvOut, file);
            os << csvHeader() << ",from_cache,seconds\n";
            for (const JobOutcome &jo : outcomes)
                if (jo.result.ok())
                    os << csvRow(jo.result.outcome) << ","
                       << (jo.result.fromCache ? 1 : 0) << ","
                       << jo.result.seconds << "\n";
        }

        if (!quiet && modes > 0)
            std::cerr << "client-summary: total=" << entries.size()
                      << " ok=" << ok << " cached=" << cached
                      << " failed=" << failed
                      << " attempts=" << totalAttempts.load() << "\n";
        if (!quiet && coordinator) {
            const ClusterCoordinator::Stats cs =
                coordinator->statsSnapshot();
            std::cerr << "cluster-summary: dispatches=" << cs.dispatches
                      << " reroutes=" << cs.reroutes
                      << " failovers=" << cs.failovers
                      << " shed_retries=" << cs.shedRetries
                      << " ring_refreshes=" << cs.ringRefreshes
                      << " nodes_marked_down=" << cs.nodesMarkedDown
                      << " epoch=" << coordinator->ringEpoch() << "\n";
        }

        if (wantStats) {
            if (coordinator) {
                // One STATS block per reachable node, endpoint-prefixed
                // so the blocks stay greppable after concatenation.
                const auto all = coordinator->statsAll();
                if (all.empty()) {
                    std::cerr << "STATS failed: no node reachable\n";
                    return 1;
                }
                for (const auto &[endpoint, stats] : all)
                    for (const auto &[key, value] : stats.fields)
                        std::cout << endpoint << " " << key << " "
                                  << value << "\n";
            } else {
                SimdClient client(copts);
                Message stats;
                std::string error;
                ServiceStatus s = client.connect(error);
                if (s == ServiceStatus::kOk)
                    s = client.stats(stats, error);
                if (s != ServiceStatus::kOk) {
                    std::cerr << "STATS failed: " << error << "\n";
                    return 1;
                }
                for (const auto &[key, value] : stats.fields)
                    std::cout << key << " " << value << "\n";
            }
        }

        return anyFailed ? 1 : 0;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
