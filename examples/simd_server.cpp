/**
 * @file
 * `simd_server` — run the simulation daemon.
 *
 * Usage:
 *   simd_server [--port=N] [--executors=N] [--queue=N]
 *               [--max-conns=N] [--idle-timeout-ms=N]
 *               [--cache-dir=DIR] [--no-cache] [--cache-budget-mb=N]
 *               [--cache-policy=lru|clock] [--quiet]
 *               [--cluster=H1:P1,H2:P2,... --self=H:P]
 *               [--replication=N] [--vnodes=N] [--ring-epoch=N]
 *
 * --port=N            TCP port on 127.0.0.1 (default 0 = ephemeral;
 *                     the bound port is printed on startup).
 * --executors=N       simulation worker threads (default 1).
 * --queue=N           admission-queue capacity; requests beyond it are
 *                     shed with RETRY_LATER (default 16).
 * --max-conns=N       concurrent connection cap (default 64).
 * --idle-timeout-ms=N reap connections idle this long (default 30000).
 * --cache-dir=DIR     persistent result cache (default .rfv-cache).
 * --no-cache          always simulate live.
 * --cache-budget-mb=N memory-tier byte budget; cold results beyond it
 *                     are demoted to disk (0 = unbounded, default
 *                     256) — a daemon meant to survive millions of
 *                     requests must not pin every outcome in RAM.
 * --cache-policy=P    memory-tier eviction: lru (default) or clock.
 * --cluster=LIST      comma-separated host:port membership; the same
 *                     list (same order) must be passed to every node.
 *                     Requires --self.  See docs/SERVICE.md §cluster.
 * --self=H:P          this node's entry in the --cluster list.
 * --replication=N     owners per key (default 2, clamped to cluster
 *                     size).
 * --vnodes=N          virtual nodes per member on the hash ring
 *                     (default 64).
 * --ring-epoch=N      membership-view version (default 1); bump it
 *                     when restarting the cluster with a new list.
 *
 * On startup the daemon prints exactly one line to stdout:
 *
 *   simd_server listening on 127.0.0.1:<port>
 *
 * so scripts can scrape the (possibly ephemeral) port.  SIGINT or
 * SIGTERM triggers a graceful drain: the listener closes, in-flight
 * requests finish and answer, the write-behind publisher flushes the
 * remaining disk publishes (each one atomic: temp file + rename), and
 * the final STATS counters go to stderr before exit.
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <thread>

#include "net/server.h"

using namespace rfv;

namespace {

volatile std::sig_atomic_t gStopRequested = 0;

void
onSignal(int)
{
    gStopRequested = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ServerOptions opts;
    opts.sweep.cacheDir = ".rfv-cache";
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (arg.rfind("--port=", 0) == 0)
                opts.port = static_cast<u16>(std::stoul(arg.substr(7)));
            else if (arg.rfind("--executors=", 0) == 0)
                opts.executors =
                    static_cast<u32>(std::stoul(arg.substr(12)));
            else if (arg.rfind("--queue=", 0) == 0)
                opts.queueCapacity =
                    static_cast<u32>(std::stoul(arg.substr(8)));
            else if (arg.rfind("--max-conns=", 0) == 0)
                opts.maxConnections =
                    static_cast<u32>(std::stoul(arg.substr(12)));
            else if (arg.rfind("--idle-timeout-ms=", 0) == 0)
                opts.idleTimeoutMs = std::stol(arg.substr(18));
            else if (arg.rfind("--cache-dir=", 0) == 0)
                opts.sweep.cacheDir = arg.substr(12);
            else if (arg == "--no-cache")
                opts.sweep.useCache = false;
            else if (arg.rfind("--cache-budget-mb=", 0) == 0)
                opts.sweep.cacheMemoryBudget =
                    std::stoull(arg.substr(18)) << 20;
            else if (arg.rfind("--cache-policy=", 0) == 0) {
                const std::string policy = arg.substr(15);
                if (policy == "lru")
                    opts.sweep.cacheEviction = EvictionPolicy::kLru;
                else if (policy == "clock")
                    opts.sweep.cacheEviction = EvictionPolicy::kClock;
                else {
                    std::cerr << "unknown cache policy " << policy
                              << " (expected lru or clock)\n";
                    return 2;
                }
            } else if (arg.rfind("--cluster=", 0) == 0) {
                std::vector<RingNode> nodes;
                std::string error;
                if (!parseEndpointList(arg.substr(10), nodes, error)) {
                    std::cerr << "--cluster: " << error << "\n";
                    return 2;
                }
                opts.cluster.nodes.clear();
                for (const RingNode &n : nodes)
                    opts.cluster.nodes.push_back(n.endpoint());
            } else if (arg.rfind("--self=", 0) == 0)
                opts.cluster.self = arg.substr(7);
            else if (arg.rfind("--replication=", 0) == 0)
                opts.cluster.replication =
                    static_cast<u32>(std::stoul(arg.substr(14)));
            else if (arg.rfind("--vnodes=", 0) == 0)
                opts.cluster.vnodes =
                    static_cast<u32>(std::stoul(arg.substr(9)));
            else if (arg.rfind("--ring-epoch=", 0) == 0)
                opts.cluster.epoch = std::stoull(arg.substr(13));
            else if (arg == "--quiet")
                quiet = true;
            else {
                std::cerr << "unknown option " << arg << "\n";
                return 2;
            }
        } catch (const std::exception &) {
            std::cerr << "unparsable value in " << arg << "\n";
            return 2;
        }
    }

    if (opts.cluster.enabled() && opts.cluster.self.empty()) {
        std::cerr << "--cluster requires --self\n";
        return 2;
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    try {
        SimdServer server(opts);
        server.start();
        std::cout << "simd_server listening on 127.0.0.1:"
                  << server.port() << "\n"
                  << std::flush;
        if (!quiet && server.clustered()) {
            const HashRing ring = server.ringSnapshot();
            std::cerr << "simd_server: cluster node "
                      << opts.cluster.self << " of "
                      << ring.nodes().size() << " (epoch "
                      << ring.epoch() << ", replication "
                      << ring.replication() << ")\n";
        }

        while (!gStopRequested)
            std::this_thread::sleep_for(std::chrono::milliseconds(100));

        if (!quiet)
            std::cerr << "simd_server: draining...\n";
        server.stop();

        if (!quiet) {
            const SimdServer::Stats s = server.statsSnapshot();
            std::cerr << "simd_server: drained after "
                      << s.uptimeSeconds << " s: " << s.requestsOk
                      << " ok (" << s.servedFromCache << " from cache), "
                      << s.requestsFailed << " failed, "
                      << s.requestsShed << " shed, "
                      << s.requestsTimedOut << " timed out, "
                      << s.badFrames << " bad frames\n";
        }
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
