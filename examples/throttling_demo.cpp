/**
 * @file
 * Throttling and spill-engine demonstration (paper Section 8.1).
 *
 * Runs a register-hungry kernel on progressively smaller register
 * files, down to a file too small to hold even one CTA's worth of
 * architected registers — the corner case where the warp scheduler
 * must spill pending warps' registers to memory to guarantee forward
 * progress.  Results are functionally verified every time.
 */
#include <iostream>

#include "common/table.h"
#include "core/simulator.h"
#include "isa/builder.h"

using namespace rfv;

/** A kernel holding many concurrently-live registers per thread. */
static Program
buildHungryKernel(u32 liveRegs)
{
    KernelBuilder b("hungry");
    const u32 tid = b.reg(), cta = b.reg(), n = b.reg(),
              addr = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.s2r(cta, SpecialReg::kCtaId);
    b.s2r(n, SpecialReg::kNTid);
    b.imad(addr, R(cta), R(n), R(tid));
    b.shl(addr, R(addr), I(2));
    std::vector<u32> regs;
    for (u32 i = 0; i < liveRegs; ++i) {
        const u32 r = b.reg();
        regs.push_back(r);
        b.imad(r, R(tid), I(i + 3), I(i * 7 + 1));
    }
    // Consume them all at the end so they stay live together.
    const u32 acc = b.reg();
    b.mov(acc, I(0));
    for (u32 r : regs)
        b.iadd(acc, R(acc), R(r));
    b.stg(addr, 0, acc);
    b.exit();
    return b.build();
}

int
main()
{
    constexpr u32 kLive = 24;
    const Program kernel = buildHungryKernel(kLive);
    LaunchParams launch;
    launch.gridCtas = 6;
    launch.threadsPerCta = 128; // 4 warps x 28 regs each
    launch.concCtasPerSm = 3;

    std::cout << "Kernel with ~" << kernel.numRegs
              << " concurrently-live registers per thread, "
              << launch.warpsPerCta() << " warps/CTA\n\n";

    Table t({"RF size (regs)", "Cycles", "Throttled cycles",
             "Spill events", "Spilled regs", "Refills", "Verified"});
    for (u32 kb : {128u, 32u, 16u, 8u, 6u}) {
        RunConfig cfg = RunConfig::virtualized();
        cfg.rfSizeBytes = kb * 1024;
        cfg.numSms = 1;
        Simulator sim(cfg);

        GlobalMemory mem(launch.gridCtas * launch.threadsPerCta * 4);
        const auto out = sim.runProgram(kernel, launch, mem);

        bool ok = true;
        for (u32 c = 0; c < launch.gridCtas && ok; ++c) {
            for (u32 tIdx = 0; tIdx < launch.threadsPerCta && ok;
                 ++tIdx) {
                u32 expect = 0;
                for (u32 i = 0; i < kLive; ++i)
                    expect += tIdx * (i + 3) + i * 7 + 1;
                ok = mem.word(c * launch.threadsPerCta + tIdx) ==
                     expect;
            }
        }
        t.addRow({std::to_string(kb * 1024 / kBytesPerWarpReg),
                  std::to_string(out.sim.cycles),
                  std::to_string(out.sim.throttleActiveCycles),
                  std::to_string(out.sim.spillEvents),
                  std::to_string(out.sim.spilledRegs),
                  std::to_string(out.sim.refilledRegs),
                  ok ? "yes" : "NO"});
    }
    std::cout << t.str();
    std::cout
        << "\nAt 6KB (48 warp-registers) a single CTA's demand (4 "
           "warps x 28 regs = 112) exceeds the whole file: the "
           "scheduler-issued spill engine keeps the machine making "
           "progress, exactly the corner case of paper Section 8.1.\n";
    return 0;
}
