#include "analysis/mutation.h"

#include <sstream>

#include "common/error.h"
#include "isa/metadata.h"

namespace rfv {

namespace {

/**
 * pc of the regular instruction covered by slot @p slot of the pir at
 * @p meta_pc, or kInvalidPc when the slot runs past the coverage span.
 * Mirrors the coverage rule of Program::validate(): slots bind to the
 * regular instructions following the pir until the next metadata
 * instruction takes over.
 */
u32
coveredInstruction(const Program &prog, u32 meta_pc, u32 slot)
{
    u32 cur = 0;
    for (u32 q = meta_pc + 1; q < prog.code.size() && cur <= slot; ++q) {
        if (isMeta(prog.code[q].op))
            return kInvalidPc;
        if (cur == slot)
            return q;
        ++cur;
    }
    return kInvalidPc;
}

} // namespace

std::string
ReleaseMutation::str() const
{
    std::ostringstream os;
    os << (isPir ? "pir" : "pbr") << "@pc" << metaPc << " bit " << bit;
    if (isPir) {
        os << " (slot " << bit / 3 << " op " << bit % 3;
        if (coveredPc != kInvalidPc)
            os << " -> pc " << coveredPc;
        os << ')';
    } else {
        os << " (slot " << bit / 6 << ')';
    }
    return os.str();
}

std::vector<ReleaseMutation>
enumerateReleaseMutations(const Program &prog)
{
    std::vector<ReleaseMutation> muts;
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        const Instr &ins = prog.code[pc];
        if (!isMeta(ins.op))
            continue;
        const bool pir = ins.op == Opcode::kPir;
        for (u32 bit = 0; bit < 54; ++bit) {
            ReleaseMutation m;
            m.metaPc = pc;
            m.bit = bit;
            m.isPir = pir;
            if (pir)
                m.coveredPc = coveredInstruction(prog, pc, bit / 3);
            muts.push_back(m);
        }
    }
    return muts;
}

Program
applyReleaseMutation(const Program &prog, const ReleaseMutation &m)
{
    Program out = prog;
    panicIf(m.metaPc >= out.code.size(), "mutation pc out of range");
    Instr &meta = out.code[m.metaPc];
    panicIf(!isMeta(meta.op), "mutation target is not metadata");
    meta.metaPayload ^= 1ull << m.bit;
    if (m.isPir && m.coveredPc != kInvalidPc) {
        out.code[m.coveredPc].pirMask ^=
            static_cast<u8>(1u << (m.bit % 3));
    }
    return out;
}

} // namespace rfv
