/**
 * @file
 * Mutation harness for the release-flag verifier.
 *
 * A verifier is only as good as its ability to notice broken metadata.
 * This harness enumerates every single-bit flip of every pir/pbr
 * payload in a compiled program and produces the mutant programs, so a
 * test can assert that the static verifier (or, failing that, the
 * runtime register-lifecycle lint) detects the corruption.
 *
 * pir payload flips are mirrored into the covered instruction's
 * authoritative Instr::pirMask: the simulator releases from pirMask,
 * so a payload-only flip would merely desynchronize the two encodings
 * (which the verifier flags structurally) without changing behavior.
 * Mirroring makes the mutation *semantic* — the release schedule
 * itself changes — which is the interesting case to detect.  Flips in
 * slots that cover no instruction stay payload-only and must be caught
 * as non-canonical metadata.
 */
#ifndef RFV_ANALYSIS_MUTATION_H
#define RFV_ANALYSIS_MUTATION_H

#include <string>
#include <vector>

#include "isa/program.h"

namespace rfv {

/** One single-bit release-flag mutation. */
struct ReleaseMutation {
    u32 metaPc = 0;   //!< pc of the pir/pbr whose payload is flipped
    u32 bit = 0;      //!< payload bit index in [0, 54)
    bool isPir = false;
    u32 coveredPc = kInvalidPc; //!< regular pc whose pirMask mirrors the
                                //!< flip, kInvalidPc if slot is uncovered

    std::string str() const;
};

/** All single-bit payload flips available in @p prog. */
std::vector<ReleaseMutation> enumerateReleaseMutations(const Program &prog);

/** Return @p prog with @p m applied (payload + mirrored pirMask). */
Program applyReleaseMutation(const Program &prog, const ReleaseMutation &m);

} // namespace rfv

#endif // RFV_ANALYSIS_MUTATION_H
