#include "analysis/verifier.h"

#include <algorithm>
#include <sstream>

#include "common/bit_utils.h"
#include "compiler/cfg.h"
#include "compiler/dominators.h"
#include "isa/metadata.h"

namespace rfv {

const char *
verifyKindName(VerifyKind kind)
{
    switch (kind) {
      case VerifyKind::kUseAfterRelease:   return "use-after-release";
      case VerifyKind::kReleaseOfDef:      return "release-of-def";
      case VerifyKind::kSimtUnsafeRelease: return "simt-unsafe-release";
      case VerifyKind::kLoopUnsafeRelease: return "loop-unsafe-release";
      case VerifyKind::kDoubleRelease:     return "double-release";
      case VerifyKind::kVacuousRelease:    return "vacuous-release";
      case VerifyKind::kLeakedRegister:    return "leaked-register";
      case VerifyKind::kExemptRelease:     return "exempt-release";
      case VerifyKind::kBadEncoding:       return "bad-encoding";
      case VerifyKind::kBadMetadata:       return "bad-metadata";
    }
    return "unknown";
}

u64
VerifyDiag::key() const
{
    return (static_cast<u64>(kind) << 56) |
           (static_cast<u64>(reg & 0xff) << 48) | pc;
}

std::string
VerifyDiag::str() const
{
    std::ostringstream os;
    os << (severity == VerifySeverity::kError ? "error" : "warning") << '['
       << verifyKindName(kind) << ']';
    if (pc != kInvalidPc)
        os << " pc " << pc;
    if (reg != kInvalidPc)
        os << " r" << reg;
    os << ": " << message;
    return os.str();
}

std::string
VerifyResult::str() const
{
    std::string out;
    for (const auto &d : diags) {
        out += d.str();
        out += '\n';
    }
    return out;
}

namespace {

/** One release event: register @p reg is freed at program point @p pc. */
struct RelEvent {
    u32 pc;
    u32 reg;
    bool fromPbr; //!< release fires at the metadata point, not after a read
};

/**
 * The verifier's own dataflow state.  Everything here is re-derived
 * from the raw instruction stream; none of the compiler's analysis
 * results are consulted.
 */
struct Verify {
    const Program &prog;
    Cfg cfg;
    std::vector<i32> idom;
    std::vector<i32> ipdom;

    // Instruction-level liveness (registers only, u64 bit sets).
    std::vector<u64> liveBefore;
    std::vector<u64> liveAfter;

    // Release events, in program order, plus a per-pc release bit set.
    std::vector<RelEvent> events;
    std::vector<u64> relBits;

    std::vector<VerifyDiag> diags;

    explicit Verify(const Program &p)
        : prog(p), cfg(p, /*allowMetadata=*/true),
          idom(immediateDominators(cfg)),
          ipdom(immediatePostDominators(cfg))
    {
    }

    void
    diag(VerifyKind kind, VerifySeverity sev, u32 pc, u32 reg,
         std::string msg)
    {
        diags.push_back({kind, sev, pc, reg, std::move(msg)});
    }

    void
    error(VerifyKind kind, u32 pc, u32 reg, std::string msg)
    {
        diag(kind, VerifySeverity::kError, pc, reg, std::move(msg));
    }

    void
    warn(VerifyKind kind, u32 pc, u32 reg, std::string msg)
    {
        diag(kind, VerifySeverity::kWarning, pc, reg, std::move(msg));
    }

    // --- Independent use/def model --------------------------------------

    /**
     * Registers consumed by @p ins.  Besides the explicit sources, a
     * guarded destination consumes its own old value: lanes whose guard
     * is false must still observe it after the instruction, so for a
     * warp-wide register file the old value cannot be dead.
     */
    static u64
    vUse(const Instr &ins)
    {
        if (isMeta(ins.op))
            return 0;
        u64 m = 0;
        for (const auto &s : ins.src)
            if (s.isReg())
                m |= 1ull << s.value;
        if (ins.dst != kNoReg && ins.guardPred != kNoPred)
            m |= 1ull << static_cast<u32>(ins.dst);
        return m;
    }

    /** Registers (fully or partially) written by @p ins. */
    static u64
    vDef(const Instr &ins)
    {
        if (isMeta(ins.op) || ins.dst == kNoReg)
            return 0;
        return 1ull << static_cast<u32>(ins.dst);
    }

    // --- Liveness --------------------------------------------------------

    void
    computeLiveSets()
    {
        const u32 nb = cfg.numBlocks();
        const u32 n = static_cast<u32>(prog.code.size());

        // Upward-exposed uses / defs per block.
        std::vector<u64> ueUse(nb, 0), defs(nb, 0);
        for (const auto &bb : cfg.blocks()) {
            u64 ue = 0, d = 0;
            for (u32 pc = bb.first; pc <= bb.last; ++pc) {
                const Instr &ins = prog.code[pc];
                ue |= vUse(ins) & ~d;
                d |= vDef(ins);
            }
            ueUse[bb.id] = ue;
            defs[bb.id] = d;
        }

        // Backward worklist fixpoint.
        std::vector<u64> blockIn(nb, 0), blockOut(nb, 0);
        std::vector<bool> queued(nb, true);
        std::vector<u32> work(nb);
        for (u32 i = 0; i < nb; ++i)
            work[i] = nb - 1 - i; // reverse layout order first
        while (!work.empty()) {
            const u32 b = work.back();
            work.pop_back();
            queued[b] = false;
            u64 out = 0;
            for (u32 s : cfg.block(b).succs)
                out |= blockIn[s];
            const u64 in = ueUse[b] | (out & ~defs[b]);
            blockOut[b] = out;
            if (in == blockIn[b])
                continue;
            blockIn[b] = in;
            for (u32 p : cfg.block(b).preds) {
                if (!queued[p]) {
                    queued[p] = true;
                    work.push_back(p);
                }
            }
        }

        // Per-instruction sweep.
        liveBefore.assign(n, 0);
        liveAfter.assign(n, 0);
        for (const auto &bb : cfg.blocks()) {
            u64 cur = blockOut[bb.id];
            for (u32 pc = bb.last + 1; pc-- > bb.first;) {
                const Instr &ins = prog.code[pc];
                liveAfter[pc] = cur;
                cur = (cur & ~vDef(ins)) | vUse(ins);
                liveBefore[pc] = cur;
            }
        }
    }

    // --- Structural / encoding checks and event extraction ----------------

    void
    checkStructureAndCollectEvents()
    {
        const u32 n = static_cast<u32>(prog.code.size());
        relBits.assign(n, 0);

        bool anyMeta = false;
        for (const auto &ins : prog.code)
            anyMeta |= isMeta(ins.op) || ins.pirMask != 0;
        if (anyMeta && !prog.hasReleaseMetadata) {
            error(VerifyKind::kBadMetadata, 0, kInvalidPc,
                  "program carries release flags but is not marked as "
                  "having release metadata");
        }

        for (const auto &bb : cfg.blocks()) {
            // Walk the block tracking which pir covers each regular
            // instruction; the payload must agree with the authoritative
            // pirMask flags (the simulator releases from pirMask, so any
            // disagreement means fetch/decode and retire see different
            // release schedules).
            bool havePir = false;
            u32 pirPc = 0;
            std::array<u8, kPirSlots> slots{};
            u32 slot = 0;

            auto flushPir = [&]() {
                if (!havePir)
                    return;
                for (u32 i = slot; i < kPirSlots; ++i) {
                    if (slots[i] != 0) {
                        error(VerifyKind::kBadMetadata, pirPc, kInvalidPc,
                              "pir slot " + std::to_string(i) +
                                  " covers no instruction");
                        break;
                    }
                }
                havePir = false;
            };

            for (u32 pc = bb.first; pc <= bb.last; ++pc) {
                const Instr &ins = prog.code[pc];
                if (ins.op == Opcode::kPir) {
                    flushPir();
                    if (ins.metaPayload >> 54) {
                        error(VerifyKind::kBadEncoding, pc, kInvalidPc,
                              "pir payload wider than 54 bits");
                    }
                    havePir = true;
                    pirPc = pc;
                    slots = decodePir(ins.metaPayload);
                    slot = 0;
                    continue;
                }
                if (ins.op == Opcode::kPbr) {
                    flushPir();
                    checkPbr(pc, ins);
                    continue;
                }

                const u8 expected =
                    havePir && slot < kPirSlots ? slots[slot] : 0;
                if (havePir && slot < kPirSlots)
                    ++slot;
                if (ins.pirMask != expected) {
                    error(VerifyKind::kBadMetadata, pc, kInvalidPc,
                          "instruction release flags disagree with the "
                          "covering pir payload");
                }
                for (u32 b = 0; b < 3; ++b) {
                    if (((ins.pirMask >> b) & 1) == 0)
                        continue;
                    if (!ins.src[b].isReg()) {
                        error(VerifyKind::kBadMetadata, pc, kInvalidPc,
                              "pir release bit " + std::to_string(b) +
                                  " set on a non-register operand");
                        continue;
                    }
                    const u32 r = ins.src[b].value;
                    if (r >= prog.numRegs) {
                        error(VerifyKind::kBadEncoding, pc, r,
                              "release of out-of-range register");
                        continue;
                    }
                    events.push_back({pc, r, /*fromPbr=*/false});
                    relBits[pc] |= 1ull << r;
                }
            }
            flushPir();
        }
    }

    void
    checkPbr(u32 pc, const Instr &ins)
    {
        if (ins.metaPayload >> 54) {
            error(VerifyKind::kBadEncoding, pc, kInvalidPc,
                  "pbr payload wider than 54 bits");
        }
        const std::vector<u32> regs = decodePbr(ins.metaPayload);
        // Canonical form: used slots packed first, empties after.  A
        // hole in the middle means a flag bit got lost in transit.
        if (encodePbr(regs) != (ins.metaPayload & lowMask(54))) {
            error(VerifyKind::kBadEncoding, pc, kInvalidPc,
                  "pbr payload is not in canonical packed form");
        }
        std::vector<u32> sorted = regs;
        std::sort(sorted.begin(), sorted.end());
        if (std::adjacent_find(sorted.begin(), sorted.end()) !=
            sorted.end()) {
            error(VerifyKind::kBadEncoding, pc, kInvalidPc,
                  "pbr payload releases the same register twice");
        }
        for (u32 r : regs) {
            if (r >= prog.numRegs) {
                error(VerifyKind::kBadEncoding, pc, r,
                      "release of out-of-range register");
                continue;
            }
            events.push_back({pc, r, /*fromPbr=*/true});
            relBits[pc] |= 1ull << r;
        }
    }

    // --- Divergence regions and loops (independent re-derivation) ---------

    /** Per-block set of registers unsafe to release due to loops. */
    std::vector<u64>
    computeLoopUnsafe(const std::vector<u64> &blockLiveIn)
    {
        const u32 nb = cfg.numBlocks();
        std::vector<u64> unsafe(nb, 0);
        for (const auto &bb : cfg.blocks()) {
            for (u32 succ : bb.succs) {
                if (!Cfg::isBackedge(bb.id, succ, idom))
                    continue;
                // Natural loop of the backedge: header plus everything
                // that reaches the latch without leaving through the
                // header.
                std::vector<bool> inLoop(nb, false);
                inLoop[succ] = true;
                std::vector<u32> work;
                if (!inLoop[bb.id]) {
                    inLoop[bb.id] = true;
                    work.push_back(bb.id);
                }
                while (!work.empty()) {
                    const u32 node = work.back();
                    work.pop_back();
                    for (u32 p : cfg.block(node).preds) {
                        if (!inLoop[p]) {
                            inLoop[p] = true;
                            work.push_back(p);
                        }
                    }
                }
                // Lanes that exit a divergent loop early keep their last
                // value in the warp-wide register; anything live at an
                // exit must survive every in-loop point.
                u64 liveAtExit = 0;
                for (u32 b = 0; b < nb; ++b) {
                    if (!inLoop[b])
                        continue;
                    for (u32 s : cfg.block(b).succs)
                        if (!inLoop[s])
                            liveAtExit |= blockLiveIn[s];
                }
                for (u32 b = 0; b < nb; ++b)
                    if (inLoop[b])
                        unsafe[b] |= liveAtExit;
            }
        }
        return unsafe;
    }

    struct Region {
        i32 reconvBlock;
        std::vector<u32> succs;
        u64 succLiveIn[2] = {0, 0};
        std::vector<bool> sideContains[2];
    };

    /**
     * Forward divergent regions: every conditional non-backedge branch
     * with two distinct successors opens one; a side is the blocks
     * reachable from that successor without crossing the branch's
     * immediate post-dominator.
     */
    std::vector<Region>
    collectRegions(const std::vector<u64> &blockLiveIn,
                   std::vector<std::vector<u32>> &enclosing)
    {
        const u32 nb = cfg.numBlocks();
        std::vector<Region> regions;
        enclosing.assign(nb, {});
        for (const auto &bb : cfg.blocks()) {
            const Instr &tail = prog.code[bb.last];
            if (tail.op != Opcode::kBra || tail.guardPred == kNoPred)
                continue;
            if (bb.succs.size() < 2)
                continue;
            bool backedge = false;
            for (u32 s : bb.succs)
                if (Cfg::isBackedge(bb.id, s, idom))
                    backedge = true;
            if (backedge)
                continue;

            Region region;
            region.reconvBlock = ipdom[bb.id];
            region.succs = bb.succs;
            for (u32 i = 0; i < bb.succs.size() && i < 2; ++i) {
                region.succLiveIn[i] = blockLiveIn[bb.succs[i]];
                region.sideContains[i].assign(nb, false);
                markSide(bb.succs[i], region.reconvBlock,
                         region.sideContains[i]);
            }
            const u32 ridx = static_cast<u32>(regions.size());
            for (u32 b = 0; b < nb; ++b) {
                for (u32 i = 0; i < 2; ++i) {
                    if (i < region.succs.size() &&
                        region.sideContains[i][b]) {
                        enclosing[b].push_back(ridx);
                        break;
                    }
                }
            }
            regions.push_back(std::move(region));
        }
        return regions;
    }

    void
    markSide(u32 from, i32 stop, std::vector<bool> &seen)
    {
        if (stop >= 0 && from == static_cast<u32>(stop))
            return;
        seen[from] = true;
        std::vector<u32> work = {from};
        while (!work.empty()) {
            const u32 b = work.back();
            work.pop_back();
            for (u32 s : cfg.block(b).succs) {
                if (stop >= 0 && s == static_cast<u32>(stop))
                    continue;
                if (!seen[s]) {
                    seen[s] = true;
                    work.push_back(s);
                }
            }
        }
    }

    // --- Semantic checks over release events -------------------------------

    void
    checkEvents()
    {
        const u32 nb = cfg.numBlocks();
        std::vector<u64> blockLiveIn(nb, 0);
        for (const auto &bb : cfg.blocks())
            blockLiveIn[bb.id] = liveBefore[bb.first];

        const std::vector<u64> loopUnsafe = computeLoopUnsafe(blockLiveIn);
        std::vector<std::vector<u32>> enclosing;
        const std::vector<Region> regions =
            collectRegions(blockLiveIn, enclosing);

        for (const auto &ev : events) {
            const Instr &ins = prog.code[ev.pc];
            const u32 b = cfg.blockOf(ev.pc);
            const u64 bit = 1ull << ev.reg;

            if (ev.reg < prog.numExemptRegs) {
                error(VerifyKind::kExemptRelease, ev.pc, ev.reg,
                      "release metadata names a renaming-exempt register");
                continue;
            }

            if (!ev.fromPbr && (vDef(ins) & bit)) {
                error(VerifyKind::kReleaseOfDef, ev.pc, ev.reg,
                      "pir release frees the value its own instruction "
                      "writes");
            } else {
                const u64 live = ev.fromPbr ? liveBefore[ev.pc]
                                            : liveAfter[ev.pc];
                if (live & bit) {
                    error(VerifyKind::kUseAfterRelease, ev.pc, ev.reg,
                          "register is still live on a path from the "
                          "release point");
                }
            }

            if (loopUnsafe[b] & bit) {
                error(VerifyKind::kLoopUnsafeRelease, ev.pc, ev.reg,
                      "release inside a loop whose early-exited lanes "
                      "still hold the value");
            }

            // SIMT rule: under stack-based reconvergence the sibling
            // side of every enclosing branch may run *after* this point
            // while sharing the warp-wide register, so the released
            // register must be dead on every sibling entry and at every
            // enclosing reconvergence point.
            for (u32 ridx : enclosing[b]) {
                const Region &region = regions[ridx];
                bool unsafeRelease = false;
                for (u32 i = 0; i < region.succs.size() && i < 2; ++i) {
                    if (!region.sideContains[i][b] &&
                        (region.succLiveIn[i] & bit)) {
                        unsafeRelease = true;
                    }
                }
                if (region.reconvBlock >= 0 &&
                    (blockLiveIn[static_cast<u32>(region.reconvBlock)] &
                     bit)) {
                    unsafeRelease = true;
                }
                if (unsafeRelease) {
                    error(VerifyKind::kSimtUnsafeRelease, ev.pc, ev.reg,
                          "release inside a divergent region while a "
                          "sibling path or the reconvergence point still "
                          "carries the value");
                    break;
                }
            }
        }
    }

    // --- Double / vacuous release ------------------------------------------

    /**
     * Forward dataflow over three facts per register: may-released and
     * must-released (released since the last definition) and may-mapped
     * (some path wrote the register since the last release).  A release
     * in must-released is a definite double free; in may-released, a
     * path-dependent one (the hardware no-ops on unmapped registers, so
     * this is a warning); outside may-mapped entirely, the release can
     * never free anything.
     */
    void
    checkDoubleRelease()
    {
        const u32 nb = cfg.numBlocks();
        const u64 all = ~0ull;

        std::vector<u64> mayIn(nb, 0), mustIn(nb, all), mappedIn(nb, 0);
        // Entry: nothing released; upward-exposed registers behave as
        // launch-initialized (baseline mapping / driver-set arguments).
        mustIn[cfg.blockOf(0)] = 0;
        mappedIn[cfg.blockOf(0)] = liveBefore[0];

        auto transfer = [&](u32 blockId, u64 &may, u64 &must, u64 &mapped,
                            bool report) {
            const BasicBlock &bb = cfg.block(blockId);
            for (u32 pc = bb.first; pc <= bb.last; ++pc) {
                const Instr &ins = prog.code[pc];
                const u64 def = vDef(ins);
                may &= ~def;
                must &= ~def;
                mapped |= def;
                u64 rel = relBits[pc];
                while (rel) {
                    const u32 r = findFirstSet(rel);
                    const u64 bit = 1ull << r;
                    rel &= rel - 1;
                    if (report) {
                        if (must & bit) {
                            error(VerifyKind::kDoubleRelease, pc, r,
                                  "register is released again with no "
                                  "intervening definition on any path");
                        } else if (may & bit) {
                            warn(VerifyKind::kDoubleRelease, pc, r,
                                 "register may already be released on "
                                 "some path (hardware no-ops the second "
                                 "free)");
                        } else if (!(mapped & bit)) {
                            warn(VerifyKind::kVacuousRelease, pc, r,
                                 "release of a register that is never "
                                 "written on any path to this point");
                        }
                    }
                    may |= bit;
                    must |= bit;
                    mapped &= ~bit;
                }
            }
        };

        bool changed = true;
        while (changed) {
            changed = false;
            for (u32 b = 0; b < nb; ++b) {
                u64 may = mayIn[b], must = mustIn[b],
                    mapped = mappedIn[b];
                transfer(b, may, must, mapped, /*report=*/false);
                for (u32 s : cfg.block(b).succs) {
                    const u64 nmay = mayIn[s] | may;
                    const u64 nmust = mustIn[s] & must;
                    const u64 nmapped = mappedIn[s] | mapped;
                    if (nmay != mayIn[s] || nmust != mustIn[s] ||
                        nmapped != mappedIn[s]) {
                        mayIn[s] = nmay;
                        mustIn[s] = nmust;
                        mappedIn[s] = nmapped;
                        changed = true;
                    }
                }
            }
        }
        for (u32 b = 0; b < nb; ++b) {
            u64 may = mayIn[b], must = mustIn[b], mapped = mappedIn[b];
            transfer(b, may, must, mapped, /*report=*/true);
        }
    }

    // --- Leak detection -----------------------------------------------------

    /**
     * Backward must-analysis: coveredIn[b] holds the registers that, on
     * every path starting at block b, are released before being
     * redefined (or before the program exits).  A death point whose
     * register is not covered keeps its physical register allocated
     * until CTA teardown — an occupancy leak, reported as a warning.
     */
    void
    checkLeaks()
    {
        if (!prog.hasReleaseMetadata)
            return; // baseline programs release nothing by design

        const u32 nb = cfg.numBlocks();
        const u64 all = ~0ull;
        const u64 exempt = lowMask(prog.numExemptRegs);

        std::vector<u64> coveredIn(nb, all);

        auto blockTransfer = [&](u32 blockId, u64 out) {
            const BasicBlock &bb = cfg.block(blockId);
            u64 cur = out;
            for (u32 pc = bb.last + 1; pc-- > bb.first;) {
                const Instr &ins = prog.code[pc];
                cur = (cur | relBits[pc]) & ~vDef(ins);
            }
            return cur;
        };

        bool changed = true;
        while (changed) {
            changed = false;
            for (u32 b = nb; b-- > 0;) {
                const BasicBlock &bb = cfg.block(b);
                u64 out = bb.succs.empty() ? 0 : all;
                for (u32 s : bb.succs)
                    out &= coveredIn[s];
                const u64 in = blockTransfer(b, out);
                if (in != coveredIn[b]) {
                    coveredIn[b] = in;
                    changed = true;
                }
            }
        }

        // Read deaths: the operand's last use; covered by a release at
        // the very instruction (pir) or anywhere downstream.
        for (const auto &bb : cfg.blocks()) {
            u64 out = bb.succs.empty() ? 0 : all;
            for (u32 s : bb.succs)
                out &= coveredIn[s];
            u64 cur = out;
            for (u32 pc = bb.last + 1; pc-- > bb.first;) {
                const Instr &ins = prog.code[pc];
                u64 dead = vUse(ins) & ~liveAfter[pc] & ~vDef(ins) &
                           ~exempt;
                dead &= ~(cur | relBits[pc]);
                while (dead) {
                    const u32 r = findFirstSet(dead);
                    dead &= dead - 1;
                    warn(VerifyKind::kLeakedRegister, pc, r,
                         "register dies here but is not released on "
                         "every path (physical register held until CTA "
                         "completion)");
                }
                cur = (cur | relBits[pc]) & ~vDef(ins);
            }
        }

        // Edge deaths: live out of the predecessor, dead into the
        // successor; covered only by releases on/after the successor.
        for (const auto &bb : cfg.blocks()) {
            const u64 liveOut = liveAfter[bb.last];
            for (u32 s : bb.succs) {
                const BasicBlock &sb = cfg.block(s);
                u64 dead = liveOut & ~liveBefore[sb.first] & ~exempt &
                           ~coveredIn[s];
                while (dead) {
                    const u32 r = findFirstSet(dead);
                    dead &= dead - 1;
                    warn(VerifyKind::kLeakedRegister, sb.first, r,
                         "register dies on a branch edge but is not "
                         "released on every path (physical register "
                         "held until CTA completion)");
                }
            }
        }
    }
};

} // namespace

VerifyResult
verifyReleaseSoundness(const Program &prog)
{
    VerifyResult result;
    if (prog.code.empty())
        return result;
    if (prog.numRegs > kMaxArchRegs) {
        result.diags.push_back(
            {VerifyKind::kBadEncoding, VerifySeverity::kError, 0,
             kInvalidPc, "kernel register footprint exceeds 63"});
        result.numErrors = 1;
        return result;
    }

    Verify v(prog);
    v.computeLiveSets();
    v.checkStructureAndCollectEvents();
    v.checkEvents();
    v.checkDoubleRelease();
    v.checkLeaks();

    if (prog.numExemptRegs > prog.numRegs) {
        v.error(VerifyKind::kBadEncoding, 0, kInvalidPc,
                "exempt register count exceeds the register footprint");
    }

    // Dedupe by identity key (several passes can flag the same point)
    // and order by program position for readable reports.
    std::sort(v.diags.begin(), v.diags.end(),
              [](const VerifyDiag &a, const VerifyDiag &b) {
                  if (a.pc != b.pc)
                      return a.pc < b.pc;
                  return a.key() < b.key();
              });
    v.diags.erase(std::unique(v.diags.begin(), v.diags.end(),
                              [](const VerifyDiag &a, const VerifyDiag &b) {
                                  return a.key() == b.key();
                              }),
                  v.diags.end());

    result.diags = std::move(v.diags);
    result.releasesChecked = static_cast<u32>(v.events.size());
    for (const auto &d : result.diags) {
        if (d.severity == VerifySeverity::kError)
            ++result.numErrors;
        else
            ++result.numWarnings;
    }
    return result;
}

} // namespace rfv
