/**
 * @file
 * Static release-flag soundness verifier.
 *
 * The virtualization scheme is only correct if the compiler's pir/pbr
 * release flags are *sound*: one early release and the renamer frees a
 * physical register that a straggler lane still reads.  This verifier
 * independently re-derives register liveness from a compiled program —
 * its own backward dataflow, deliberately sharing no code with the
 * compiler's liveness pass — and checks every release point against
 * the soundness invariants:
 *
 *  1. No pir/pbr release frees a register that is still live on any
 *     CFG path from the release point (use-after-release).
 *  2. No release frees a register inside the divergent region of a
 *     forward branch when a sibling path or the reconvergence point
 *     still carries the value (SIMT serial re-execution hazard), and
 *     no release inside a natural loop frees a register that is live
 *     at any loop exit (early-exited lanes keep their value in the
 *     same warp-wide physical register).
 *  3. No register is released twice on a path without an intervening
 *     redefinition (a definite double release is an error; a possible
 *     one — on some but not all paths — is reported as a warning, as
 *     the hardware treats releasing an absent mapping as a no-op).
 *  4. Renaming-exempt registers (ids below Program::numExemptRegs)
 *     never appear in release metadata.
 *  5. Metadata payloads are canonical: pir/pbr encodings round-trip
 *     through the 18x3-bit / 9x6-bit slot limits, every pir slot
 *     agrees with the authoritative Instr::pirMask of the instruction
 *     it covers, and no slot points past its basic block.
 *
 * Registers that die without ever being released leak until CTA
 * completion; leaks cost occupancy, not correctness, so they are
 * reported as diagnostics (warnings), never errors.
 */
#ifndef RFV_ANALYSIS_VERIFIER_H
#define RFV_ANALYSIS_VERIFIER_H

#include <string>
#include <vector>

#include "isa/program.h"

namespace rfv {

/** What a diagnostic is about. */
enum class VerifyKind : u8 {
    kUseAfterRelease,   //!< released register still live on some path
    kReleaseOfDef,      //!< pir frees the value its own instruction writes
    kSimtUnsafeRelease, //!< divergent-region release with a live sibling/join
    kLoopUnsafeRelease, //!< in-loop release of a register live at a loop exit
    kDoubleRelease,     //!< released again without intervening redefinition
    kVacuousRelease,    //!< release of a register never written on any path
    kLeakedRegister,    //!< dead register never released on some path
    kExemptRelease,     //!< release metadata names a renaming-exempt register
    kBadEncoding,       //!< payload fails round-trip / slot-limit checks
    kBadMetadata,       //!< pir slots disagree with instruction flags
};

/** Errors make the program unsound; warnings are quality diagnostics. */
enum class VerifySeverity : u8 { kError, kWarning };

/** Name of a diagnostic kind (stable, used in reports). */
const char *verifyKindName(VerifyKind kind);

/** One finding, anchored to a release or metadata point. */
struct VerifyDiag {
    VerifyKind kind;
    VerifySeverity severity;
    u32 pc = kInvalidPc;  //!< program counter of the finding
    u32 reg = kInvalidPc; //!< architected register involved (or none)
    std::string message;

    /** Stable identity for diffing runs (mutation testing). */
    u64 key() const;

    /** One-line rendering: "error[use-after-release] pc 12 r3: ...". */
    std::string str() const;

    bool operator==(const VerifyDiag &) const = default;
};

/** Outcome of one verification run. */
struct VerifyResult {
    std::vector<VerifyDiag> diags;
    u32 releasesChecked = 0; //!< release events examined
    u32 numErrors = 0;
    u32 numWarnings = 0;

    /** True when no *error* was found (warnings allowed). */
    bool ok() const { return numErrors == 0; }

    /** All diagnostics, one per line (empty string when clean). */
    std::string str() const;

    bool operator==(const VerifyResult &) const = default;
};

/**
 * Verify a compiled program's release metadata.  Programs without
 * release metadata (baseline compilation) pass trivially: there is
 * nothing to release and nothing that can leak early.
 */
VerifyResult verifyReleaseSoundness(const Program &prog);

} // namespace rfv

#endif // RFV_ANALYSIS_VERIFIER_H
