/**
 * @file
 * Small bit-manipulation helpers used by masks and flag encodings.
 */
#ifndef RFV_COMMON_BIT_UTILS_H
#define RFV_COMMON_BIT_UTILS_H

#include <bit>

#include "common/types.h"

namespace rfv {

/** Number of set bits in a 64-bit word. */
inline u32
popcount64(u64 x)
{
    return static_cast<u32>(std::popcount(x));
}

/** Mask with the low @p n bits set (n <= 64). */
inline u64
lowMask(u32 n)
{
    return n >= 64 ? ~0ull : ((1ull << n) - 1);
}

/** A full active mask for one warp (32 lanes). */
inline u32
fullWarpMask()
{
    return 0xffffffffu;
}

/** Extract the bit field [lo, lo+width) of @p x. */
inline u64
bits(u64 x, u32 lo, u32 width)
{
    return (x >> lo) & lowMask(width);
}

/** Insert @p value into the bit field [lo, lo+width) of @p x. */
inline u64
insertBits(u64 x, u32 lo, u32 width, u64 value)
{
    const u64 mask = lowMask(width) << lo;
    return (x & ~mask) | ((value << lo) & mask);
}

/** Index of the lowest set bit; 64 when x == 0. */
inline u32
findFirstSet(u64 x)
{
    return static_cast<u32>(std::countr_zero(x));
}

/** Ceiling division for unsigned integers. */
inline u64
ceilDiv(u64 num, u64 den)
{
    return (num + den - 1) / den;
}

/** True when @p x is a nonzero power of two. */
inline bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace rfv

#endif // RFV_COMMON_BIT_UTILS_H
