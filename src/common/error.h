/**
 * @file
 * Error handling helpers.
 *
 * Follows the gem5 fatal()/panic() distinction:
 *  - fatal(): the user supplied an impossible configuration or program;
 *    raised as ConfigError.
 *  - panic(): an internal invariant of the simulator was violated;
 *    raised as InternalError.
 */
#ifndef RFV_COMMON_ERROR_H
#define RFV_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace rfv {

/** Raised when a user-visible configuration or input program is invalid. */
class ConfigError : public std::runtime_error {
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error("config error: " + msg) {}
};

/** Raised when an internal simulator invariant is violated (a bug). */
class InternalError : public std::logic_error {
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error("internal error: " + msg) {}
};

/** Abort with a user-level error. */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw ConfigError(msg);
}

/** Abort with an internal invariant violation. */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw InternalError(msg);
}

} // namespace rfv

/**
 * panic() unless the invariant holds.
 *
 * Macro (as in gem5) so the message expression is evaluated only when
 * the check fires: call sites build diagnostic strings with
 * std::to_string chains, and several sit on the simulator's per-cycle
 * hot path where eager construction dominated the profile.
 */
#define panicIf(condition, ...)                                         \
    do {                                                                \
        if (condition) [[unlikely]]                                     \
            ::rfv::panic(__VA_ARGS__);                                  \
    } while (0)

/** fatal() unless the user-level condition holds.  See panicIf. */
#define fatalIf(condition, ...)                                         \
    do {                                                                \
        if (condition) [[unlikely]]                                     \
            ::rfv::fatal(__VA_ARGS__);                                  \
    } while (0)

namespace rfv {

} // namespace rfv

#endif // RFV_COMMON_ERROR_H
