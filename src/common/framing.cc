#include "common/framing.h"

#include <cstring>

namespace rfv {

const char *
frameStatusName(FrameStatus s)
{
    switch (s) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kClosed: return "closed";
    case FrameStatus::kTimedOut: return "timed-out";
    case FrameStatus::kBadMagic: return "bad-magic";
    case FrameStatus::kOversized: return "oversized";
    case FrameStatus::kError: return "error";
    }
    return "unknown";
}

std::string
encodeFrameHeader(u32 len)
{
    std::string h(kFrameHeaderBytes, '\0');
    std::memcpy(h.data(), kFrameMagic, sizeof(kFrameMagic));
    h[4] = static_cast<char>((len >> 24) & 0xff);
    h[5] = static_cast<char>((len >> 16) & 0xff);
    h[6] = static_cast<char>((len >> 8) & 0xff);
    h[7] = static_cast<char>(len & 0xff);
    return h;
}

FrameStatus
decodeFrameHeader(const char header[kFrameHeaderBytes], u32 maxLen,
                  u32 &len)
{
    if (std::memcmp(header, kFrameMagic, sizeof(kFrameMagic)) != 0)
        return FrameStatus::kBadMagic;
    len = (static_cast<u32>(static_cast<u8>(header[4])) << 24) |
          (static_cast<u32>(static_cast<u8>(header[5])) << 16) |
          (static_cast<u32>(static_cast<u8>(header[6])) << 8) |
          static_cast<u32>(static_cast<u8>(header[7]));
    if (len > maxLen)
        return FrameStatus::kOversized;
    return FrameStatus::kOk;
}

std::string
encodeFrame(const std::string &payload)
{
    return encodeFrameHeader(static_cast<u32>(payload.size())) + payload;
}

namespace {

FrameStatus
fromIo(IoStatus s)
{
    switch (s) {
    case IoStatus::kOk: return FrameStatus::kOk;
    case IoStatus::kClosed: return FrameStatus::kClosed;
    case IoStatus::kTimedOut: return FrameStatus::kTimedOut;
    case IoStatus::kError: return FrameStatus::kError;
    }
    return FrameStatus::kError;
}

} // namespace

FrameStatus
writeFrame(Socket &sock, const std::string &payload,
           const IoDeadline &deadline)
{
    const std::string buf = encodeFrame(payload);
    return fromIo(sock.writeAll(buf.data(), buf.size(), deadline));
}

FrameStatus
readFrame(Socket &sock, std::string &payload, u32 maxLen,
          const IoDeadline &deadline)
{
    char header[kFrameHeaderBytes];
    const IoStatus hs = sock.readAll(header, sizeof(header), deadline);
    if (hs != IoStatus::kOk)
        return fromIo(hs);

    u32 len = 0;
    const FrameStatus ds = decodeFrameHeader(header, maxLen, len);
    if (ds != FrameStatus::kOk)
        return ds;

    payload.assign(len, '\0');
    if (len == 0)
        return FrameStatus::kOk;
    const IoStatus ps = sock.readAll(payload.data(), len, deadline);
    // EOF inside the payload is a truncated frame, not a clean close.
    if (ps == IoStatus::kClosed)
        return FrameStatus::kError;
    return fromIo(ps);
}

} // namespace rfv
