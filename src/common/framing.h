/**
 * @file
 * Length-prefixed message framing for the simulation service.
 *
 * One frame on the wire is an 8-byte header — the 4-byte magic "RFVF"
 * followed by the payload length as a big-endian u32 — and then the
 * payload bytes.  The magic lets a receiver reject garbage (an HTTP
 * probe, a corrupted stream) before trusting the length field, and
 * the receiver-supplied length cap bounds memory per connection, so a
 * hostile or broken peer can never allocate unbounded buffers or
 * stall a correctly-deadlined reader.
 *
 * The codec is split so it can be tested without sockets:
 * encodeFrame()/decodeFrameHeader() work on plain buffers, and the
 * Socket overloads compose them with deadline-bounded I/O.
 */
#ifndef RFV_COMMON_FRAMING_H
#define RFV_COMMON_FRAMING_H

#include <string>

#include "common/socket.h"
#include "common/types.h"

namespace rfv {

/** Bytes in a frame header (magic + big-endian payload length). */
inline constexpr size_t kFrameHeaderBytes = 8;

/** Frame magic: rejects non-protocol bytes before the length field. */
inline constexpr char kFrameMagic[4] = {'R', 'F', 'V', 'F'};

/** Result of reading one frame. */
enum class FrameStatus {
    kOk,
    kClosed,    //!< orderly EOF before any header byte
    kTimedOut,  //!< deadline expired
    kBadMagic,  //!< header does not start with kFrameMagic
    kOversized, //!< declared length exceeds the receiver's cap
    kError,     //!< truncated frame or socket error
};

/** Human-readable name (diagnostics and tests). */
const char *frameStatusName(FrameStatus s);

/** Header for a payload of @p len bytes (magic + big-endian length). */
std::string encodeFrameHeader(u32 len);

/**
 * Parse an 8-byte header; returns kOk/kBadMagic/kOversized and sets
 * @p len.  @p maxLen is the receiver's payload cap.
 */
FrameStatus decodeFrameHeader(const char header[kFrameHeaderBytes],
                              u32 maxLen, u32 &len);

/** Whole frame (header + payload) as one buffer. */
std::string encodeFrame(const std::string &payload);

/** Send one frame over @p sock within @p deadline. */
FrameStatus writeFrame(Socket &sock, const std::string &payload,
                       const IoDeadline &deadline);

/**
 * Receive one frame within @p deadline; payload lands in @p payload.
 * Frames longer than @p maxLen report kOversized without reading the
 * payload (the connection is then unusable and should be closed).
 */
FrameStatus readFrame(Socket &sock, std::string &payload, u32 maxLen,
                      const IoDeadline &deadline);

} // namespace rfv

#endif // RFV_COMMON_FRAMING_H
