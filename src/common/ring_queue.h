/**
 * @file
 * Fixed-layout FIFO ring buffer: the hot-loop replacement for
 * std::deque in single-producer scheduler queues.
 *
 * std::deque allocates its elements in separate chunks behind a map
 * of pointers — every push can touch two cache lines and an allocator
 * path.  RingQueue keeps the live window [head_, head_ + size_) in
 * one contiguous power-of-two array: push/pop are an index mask and
 * a store/load, and growth (rare; capacity doubles) is the only
 * allocation.  FIFO-only by design: no insertion or erasure in the
 * middle, which is exactly the discipline the SM pending queue needs.
 */
#ifndef RFV_COMMON_RING_QUEUE_H
#define RFV_COMMON_RING_QUEUE_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace rfv {

template <typename T> class RingQueue {
  public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    void
    push_back(const T &v)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = v;
        ++size_;
    }

    const T &
    front() const
    {
        return buf_[head_];
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    /** i-th element from the front (0 = front()). */
    const T &
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

  private:
    void
    grow()
    {
        const std::size_t cap = buf_.empty() ? kMinCapacity
                                             : buf_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = (*this)[i];
        buf_ = std::move(next);
        head_ = 0;
    }

    static constexpr std::size_t kMinCapacity = 16;

    std::vector<T> buf_; //!< size is always 0 or a power of two
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace rfv

#endif // RFV_COMMON_RING_QUEUE_H
