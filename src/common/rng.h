/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * A splitmix64-seeded xoshiro256** generator.  Every stochastic element of
 * the simulator and the test suite draws from this class so that runs are
 * reproducible from a single seed.
 *
 * SeedSeq is the splittable seed-sequence layer on top: subsystems that
 * each need their own decorrelated stream (the kernel generator's knob /
 * body / input-data streams, fuzz-scenario derivation, client retry
 * jitter) derive *child* seeds from one root instead of handing out
 * root, root+1, root+2 — adjacent raw seeds are exactly the correlated
 * streams a differential fuzzer must not feed itself.
 */
#ifndef RFV_COMMON_RNG_H
#define RFV_COMMON_RNG_H

#include "common/types.h"

namespace rfv {

/** Deterministic, seedable PRNG (xoshiro256**). */
class Rng {
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit draw. */
    u64
    next64()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound); bound must be nonzero. */
    u64
    below(u64 bound)
    {
        return next64() % bound;
    }

    /** Uniform draw in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(u64 num, u64 den)
    {
        return below(den) < num;
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static u64
    splitmix64(u64 &x)
    {
        u64 z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    u64 state_[4];
};

/**
 * Splittable seed sequence: a 64-bit state from which independent child
 * sequences (and leaf Rng streams) are derived by index.
 *
 * Derivation is a pure function of (state, index) — no hidden counter —
 * so `root.child(i)` names the same stream no matter how many other
 * children were derived before it, from which thread, or in which
 * process.  The mixing function below is FROZEN: child seeds are baked
 * into generated-kernel identities (`gen:` workload names, result-cache
 * keys) and the committed fuzz regression corpus, so changing it is a
 * corpus-invalidating event on par with bumping kSimulatorVersion.
 *
 * Children at distinct indices, and grandchildren of distinct children,
 * go through independent full-avalanche mixes, so the streams do not
 * correlate the way `Rng(seed)` / `Rng(seed + 1)` pairs can.
 */
class SeedSeq {
  public:
    explicit SeedSeq(u64 root) : state_(mix(root ^ kRootTag)) {}

    /** Child sequence @p index (stable under any derivation order). */
    SeedSeq
    child(u64 index) const
    {
        return SeedSeq(FromState{},
                       mix(state_ ^ (kChildGamma * (index + 1))));
    }

    /** Leaf seed for this node (feed to Rng or store in a spec). */
    u64 seed() const { return state_; }

    /** Rng over this node's stream. */
    Rng rng() const { return Rng(state_); }

  private:
    struct FromState {};
    SeedSeq(FromState, u64 state) : state_(state) {}

    /** splitmix64 finalizer: full-avalanche 64-bit mix. */
    static u64
    mix(u64 x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebull;
        x ^= x >> 31;
        return x;
    }

    // Distinct tag constants keep a root's own stream, its children and
    // a *different* root's children in separate hash domains.
    static constexpr u64 kRootTag = 0x8f462907'5f3c0e15ull;
    static constexpr u64 kChildGamma = 0x9e3779b9'7f4a7c15ull;

    u64 state_;
};

} // namespace rfv

#endif // RFV_COMMON_RNG_H
