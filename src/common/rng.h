/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * A splitmix64-seeded xoshiro256** generator.  Every stochastic element of
 * the simulator and the test suite draws from this class so that runs are
 * reproducible from a single seed.
 */
#ifndef RFV_COMMON_RNG_H
#define RFV_COMMON_RNG_H

#include "common/types.h"

namespace rfv {

/** Deterministic, seedable PRNG (xoshiro256**). */
class Rng {
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        for (auto &word : state_)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit draw. */
    u64
    next64()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound); bound must be nonzero. */
    u64
    below(u64 bound)
    {
        return next64() % bound;
    }

    /** Uniform draw in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(u64 num, u64 den)
    {
        return below(den) < num;
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static u64
    splitmix64(u64 &x)
    {
        u64 z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    u64 state_[4];
};

} // namespace rfv

#endif // RFV_COMMON_RNG_H
