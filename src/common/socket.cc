#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <system_error>
#include <unistd.h>

#include "common/error.h"

namespace rfv {

namespace {

/**
 * Thread-safe strerror(errno) replacement: std::strerror may format
 * into a shared static buffer (clang-tidy concurrency-mt-unsafe), and
 * sockets are created from the accept thread while connection threads
 * are reporting I/O errors of their own.
 */
std::string
errnoString()
{
    return std::error_code(errno, std::generic_category()).message();
}

/** Remaining poll budget in ms: <0 = infinite, 0 = expired. */
int
pollBudgetMs(const IoDeadline &deadline)
{
    if (!deadline)
        return -1;
    const auto now = std::chrono::steady_clock::now();
    if (now >= *deadline)
        return 0;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *deadline - now);
    // Round up so a sub-millisecond remainder still polls once.
    return static_cast<int>(left.count()) + 1;
}

/** Poll @p fd for @p events; true when ready, false on timeout. */
IoStatus
pollFd(int fd, short events, const IoDeadline &deadline)
{
    for (;;) {
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = events;
        const int budget = pollBudgetMs(deadline);
        if (budget == 0)
            return IoStatus::kTimedOut;
        const int rc = ::poll(&pfd, 1, budget);
        if (rc > 0)
            return IoStatus::kOk;
        if (rc == 0)
            return IoStatus::kTimedOut;
        if (errno != EINTR)
            return IoStatus::kError;
    }
}

} // namespace

IoDeadline
deadlineAfterMs(i64 ms)
{
    if (ms < 0)
        return std::nullopt;
    return std::chrono::steady_clock::now() +
           std::chrono::milliseconds(ms);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownWrite()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_WR);
}

IoStatus
Socket::waitReadable(const IoDeadline &deadline)
{
    if (fd_ < 0)
        return IoStatus::kError;
    return pollFd(fd_, POLLIN, deadline);
}

IoStatus
Socket::readAll(void *buf, size_t len, const IoDeadline &deadline)
{
    if (fd_ < 0)
        return IoStatus::kError;
    size_t got = 0;
    while (got < len) {
        const IoStatus ready = pollFd(fd_, POLLIN, deadline);
        if (ready != IoStatus::kOk)
            return ready;
        const ssize_t n = ::recv(fd_, static_cast<char *>(buf) + got,
                                 len - got, 0);
        if (n > 0) {
            got += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            // Orderly EOF: clean only between messages, a protocol
            // violation mid-transfer.
            return got == 0 ? IoStatus::kClosed : IoStatus::kError;
        if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK)
            return IoStatus::kError;
    }
    return IoStatus::kOk;
}

IoStatus
Socket::writeAll(const void *buf, size_t len, const IoDeadline &deadline)
{
    if (fd_ < 0)
        return IoStatus::kError;
    size_t sent = 0;
    while (sent < len) {
        const IoStatus ready = pollFd(fd_, POLLOUT, deadline);
        if (ready != IoStatus::kOk)
            return ready;
        const ssize_t n =
            ::send(fd_, static_cast<const char *>(buf) + sent,
                   len - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EWOULDBLOCK)
            return IoStatus::kError;
    }
    return IoStatus::kOk;
}

Listener::Listener(u16 port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatalIf(fd < 0, "cannot create listen socket: " + errnoString());
    Socket sock(fd);

    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    fatalIf(::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr)) != 0,
            "cannot bind port " + std::to_string(port) + ": " +
                errnoString());
    fatalIf(::listen(fd, 64) != 0,
            "cannot listen on port " + std::to_string(port) + ": " +
                errnoString());

    socklen_t alen = sizeof(addr);
    fatalIf(::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                          &alen) != 0,
            "getsockname failed: " + errnoString());
    port_ = ntohs(addr.sin_port);
    sock_ = std::move(sock);
}

std::optional<Socket>
Listener::accept(i64 pollMs)
{
    if (!sock_.valid())
        return std::nullopt;
    if (pollFd(sock_.fd(), POLLIN, deadlineAfterMs(pollMs)) !=
        IoStatus::kOk)
        return std::nullopt;
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd < 0)
        return std::nullopt;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Socket(fd);
}

Socket
connectTcp(const std::string &host, u16 port, const IoDeadline &deadline)
{
    struct addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                      &res) != 0 ||
        res == nullptr)
        return Socket();

    Socket sock(::socket(res->ai_family, res->ai_socktype,
                         res->ai_protocol));
    if (!sock.valid()) {
        ::freeaddrinfo(res);
        return Socket();
    }

    // Non-blocking connect so the caller's deadline bounds the attempt.
    const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    ::fcntl(sock.fd(), F_SETFL, flags | O_NONBLOCK);
    const int rc = ::connect(sock.fd(), res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    if (rc != 0 && errno != EINPROGRESS)
        return Socket();
    if (rc != 0) {
        if (pollFd(sock.fd(), POLLOUT, deadline) != IoStatus::kOk)
            return Socket();
        int err = 0;
        socklen_t elen = sizeof(err);
        if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &elen) !=
                0 ||
            err != 0)
            return Socket();
    }
    ::fcntl(sock.fd(), F_SETFL, flags);

    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

} // namespace rfv
