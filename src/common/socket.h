/**
 * @file
 * Minimal POSIX TCP wrapper for the simulation service: an RAII file
 * descriptor plus the four operations the daemon needs — listen,
 * accept, connect, and deadline-bounded byte I/O.
 *
 * Everything is blocking-with-poll: each read/write first polls the
 * descriptor with a timeout derived from the caller's deadline, so a
 * stalled peer can never wedge a server thread, and accept loops can
 * wake periodically to observe shutdown flags.  No buffering happens
 * here; framing (length-prefixed messages) lives in common/framing.h.
 */
#ifndef RFV_COMMON_SOCKET_H
#define RFV_COMMON_SOCKET_H

#include <chrono>
#include <optional>
#include <string>

#include "common/types.h"

namespace rfv {

/** Monotonic deadline for one I/O operation ("infinite" = no bound). */
using IoDeadline =
    std::optional<std::chrono::steady_clock::time_point>;

/** Deadline @p ms milliseconds from now. */
IoDeadline deadlineAfterMs(i64 ms);

/** Outcome of a byte-level I/O step. */
enum class IoStatus {
    kOk,       //!< the full requested transfer completed
    kClosed,   //!< orderly EOF from the peer
    kTimedOut, //!< the deadline expired first
    kError,    //!< socket error (errno-level)
};

/**
 * RAII TCP socket.  Move-only; the destructor closes the descriptor.
 * All methods are safe to call on an invalid (moved-from) socket and
 * report IoStatus::kError.
 */
class Socket {
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(Socket &&other) noexcept;
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Close now (idempotent). */
    void close();

    /** Shut down writes so the peer sees EOF (best effort). */
    void shutdownWrite();

    /**
     * Wait until at least one byte is readable (or EOF is pending).
     * Lets a server poll in short slices to observe shutdown flags
     * without ever timing out *inside* a frame.
     */
    IoStatus waitReadable(const IoDeadline &deadline);

    /**
     * Read exactly @p len bytes into @p buf, polling against
     * @p deadline.  Returns kClosed only on EOF at a byte boundary
     * *before* any byte of this call was consumed; a mid-transfer EOF
     * is kError (a truncated peer is a protocol violation).
     */
    IoStatus readAll(void *buf, size_t len, const IoDeadline &deadline);

    /** Write exactly @p len bytes, polling against @p deadline. */
    IoStatus writeAll(const void *buf, size_t len,
                      const IoDeadline &deadline);

  private:
    int fd_ = -1;
};

/**
 * Listening TCP socket bound to 127.0.0.1:@p port (port 0 = ephemeral;
 * the chosen port is readable via port()).  Throws ConfigError when
 * the bind fails (e.g. the port is taken).
 */
class Listener {
  public:
    explicit Listener(u16 port);

    u16 port() const { return port_; }
    bool valid() const { return sock_.valid(); }

    /** Stop accepting; pending accept() calls return nullopt. */
    void close() { sock_.close(); }

    /**
     * Accept one connection, waiting at most @p pollMs milliseconds.
     * nullopt = timeout or closed listener (check valid()).
     */
    std::optional<Socket> accept(i64 pollMs);

  private:
    Socket sock_;
    u16 port_ = 0;
};

/**
 * Connect to 127.0.0.1-or-hostname:@p port within @p deadline.
 * Returns an invalid Socket on failure (refused, timeout, resolve).
 */
Socket connectTcp(const std::string &host, u16 port,
                  const IoDeadline &deadline);

} // namespace rfv

#endif // RFV_COMMON_SOCKET_H
