/**
 * @file
 * Capability-annotated synchronization primitives — the only place in
 * the repository allowed to name a raw `std::mutex`,
 * `std::shared_mutex`, `std::condition_variable` or `std::thread`
 * (enforced by tools/lint/concurrency_lint.py).
 *
 * Every lock in the concurrent core (ThreadPool, WorkStealingPool,
 * ResultCache, ArtifactStore, SimdServer) is one of these wrappers,
 * and every field a lock guards is annotated with RFV_GUARDED_BY.
 * Under Clang, `-Wthread-safety -Wthread-safety-beta` (promoted to
 * errors by the RFV_THREAD_SAFETY CMake option and the thread-safety
 * CI job) then *proves* the lock discipline at compile time: an
 * unguarded access to a guarded field, a call to an RFV_REQUIRES
 * helper without the lock, or an acquisition that violates a declared
 * RFV_ACQUIRED_AFTER order is a build break, not a TSan roll of the
 * dice.  Under GCC (and any compiler without the attributes) the
 * macros expand to nothing and the wrappers are zero-cost aliases of
 * the std primitives.
 *
 * Design rules the wrappers bake in:
 *
 *  - RAII only.  Mutex/SharedMutex expose *no* lock()/unlock();
 *    acquisition is only possible through the scoped MutexLock /
 *    ReaderLock / WriterLock types, so an early return or exception
 *    can never leak a held lock.  (The linter independently forbids
 *    manual .lock()/.unlock() calls outside this header.)
 *
 *  - Condition waits that inspect RFV_GUARDED_BY state use the
 *    plain `wait(MutexLock &)` overload inside a while-loop in the
 *    *caller*, where the analysis can see the capability is held:
 *
 *        MutexLock lk(mu_);
 *        while (queue_.empty() && !stop_)
 *            cv_.wait(lk);
 *
 *    The predicate overload `wait(lk, pred)` exists for predicates
 *    over atomics only: Clang analyzes a lambda body as its own
 *    function, so a lambda touching guarded fields would warn even
 *    though the wait holds the lock.
 *
 *  - Threads are rfv::Thread: join-on-destroy (never std::terminate,
 *    never a detach — detaching is also linter-forbidden), move-only,
 *    and move-assignment joins the outgoing thread first.
 */
#ifndef RFV_COMMON_SYNC_H
#define RFV_COMMON_SYNC_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <utility>

#include "common/types.h"

// ---- Clang thread-safety attribute macros ------------------------------
//
// Gated on __has_attribute so the header is a no-op under GCC, MSVC,
// and older Clangs; the spelling set matches
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RFV_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef RFV_THREAD_ANNOTATION
#define RFV_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex). */
#define RFV_CAPABILITY(name) RFV_THREAD_ANNOTATION(capability(name))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define RFV_SCOPED_CAPABILITY RFV_THREAD_ANNOTATION(scoped_lockable)

/** Field may only be touched while holding the named capability. */
#define RFV_GUARDED_BY(x) RFV_THREAD_ANNOTATION(guarded_by(x))

/** Pointee may only be touched while holding the named capability. */
#define RFV_PT_GUARDED_BY(x) RFV_THREAD_ANNOTATION(pt_guarded_by(x))

/** Caller must hold the capability (exclusively) to call this. */
#define RFV_REQUIRES(...)                                                 \
    RFV_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the capability (at least shared) to call this. */
#define RFV_REQUIRES_SHARED(...)                                          \
    RFV_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability (exclusively). */
#define RFV_ACQUIRE(...)                                                  \
    RFV_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the capability (shared). */
#define RFV_ACQUIRE_SHARED(...)                                           \
    RFV_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the capability. */
#define RFV_RELEASE(...)                                                  \
    RFV_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases a shared hold on the capability. */
#define RFV_RELEASE_SHARED(...)                                           \
    RFV_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Caller must NOT hold the capability (deadlock prevention). */
#define RFV_EXCLUDES(...) RFV_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declared lock-order edge: this capability after the named ones. */
#define RFV_ACQUIRED_AFTER(...)                                           \
    RFV_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Declared lock-order edge: this capability before the named ones. */
#define RFV_ACQUIRED_BEFORE(...)                                          \
    RFV_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Function returns a reference to the named capability. */
#define RFV_RETURN_CAPABILITY(x) RFV_THREAD_ANNOTATION(lock_returned(x))

/**
 * Escape hatch for protocols the analysis cannot express (e.g. the
 * ThreadPool generation handshake).  Every use must carry a comment
 * explaining the manual proof.
 */
#define RFV_NO_THREAD_SAFETY_ANALYSIS                                     \
    RFV_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rfv {

class CondVar;
class MutexLock;
class ReaderLock;
class WriterLock;

/**
 * Plain exclusive mutex capability.  Deliberately exposes no
 * lock()/unlock(): acquisition is only possible through MutexLock, so
 * every critical section is a scope.
 */
class RFV_CAPABILITY("mutex") Mutex {
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

  private:
    friend class MutexLock;
    std::mutex mu_;
};

/**
 * Reader/writer mutex capability.  Acquired only through ReaderLock
 * (shared) and WriterLock (exclusive).
 */
class RFV_CAPABILITY("shared_mutex") SharedMutex {
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

  private:
    friend class ReaderLock;
    friend class WriterLock;
    std::shared_mutex mu_;
};

/** Scoped exclusive hold of a Mutex (the only way to acquire one). */
class RFV_SCOPED_CAPABILITY MutexLock {
  public:
    explicit MutexLock(Mutex &mu) RFV_ACQUIRE(mu) : lk_(mu.mu_) {}
    ~MutexLock() RFV_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk_;
};

/** Scoped shared (reader) hold of a SharedMutex. */
class RFV_SCOPED_CAPABILITY ReaderLock {
  public:
    explicit ReaderLock(SharedMutex &mu) RFV_ACQUIRE_SHARED(mu)
        : lk_(mu.mu_)
    {
    }
    ~ReaderLock() RFV_RELEASE() {}

    ReaderLock(const ReaderLock &) = delete;
    ReaderLock &operator=(const ReaderLock &) = delete;

  private:
    std::shared_lock<std::shared_mutex> lk_;
};

/** Scoped exclusive (writer) hold of a SharedMutex. */
class RFV_SCOPED_CAPABILITY WriterLock {
  public:
    explicit WriterLock(SharedMutex &mu) RFV_ACQUIRE(mu) : lk_(mu.mu_) {}
    ~WriterLock() RFV_RELEASE() {}

    WriterLock(const WriterLock &) = delete;
    WriterLock &operator=(const WriterLock &) = delete;

  private:
    std::unique_lock<std::shared_mutex> lk_;
};

/**
 * Condition variable bound to Mutex/MutexLock.
 *
 * Guarded-state predicates belong in a while-loop at the call site
 * (see the header comment); the predicate overloads are for atomics.
 */
class CondVar {
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

    /** One wakeup; caller re-checks its predicate in a while-loop. */
    void wait(MutexLock &lk) { cv_.wait(lk.lk_); }

    /** Predicate wait — for predicates over atomics ONLY (see above). */
    template <typename Pred>
    void
    wait(MutexLock &lk, Pred pred)
    {
        cv_.wait(lk.lk_, std::move(pred));
    }

    /** Timed single wakeup; true = notified, false = timed out. */
    template <typename Rep, typename Period>
    bool
    waitFor(MutexLock &lk, const std::chrono::duration<Rep, Period> &d)
    {
        return cv_.wait_for(lk.lk_, d) == std::cv_status::no_timeout;
    }

    /** Timed predicate wait — predicates over atomics ONLY. */
    template <typename Rep, typename Period, typename Pred>
    bool
    waitFor(MutexLock &lk, const std::chrono::duration<Rep, Period> &d,
            Pred pred)
    {
        return cv_.wait_for(lk.lk_, d, std::move(pred));
    }

  private:
    std::condition_variable cv_;
};

/**
 * Join-on-destroy thread.  Mirrors std::thread's interface where the
 * repo uses it, but destruction and move-assignment join instead of
 * calling std::terminate, and there is deliberately no detach().
 */
class Thread {
  public:
    Thread() = default;

    template <typename Fn, typename... Args>
    explicit Thread(Fn &&fn, Args &&...args)
        : t_(std::forward<Fn>(fn), std::forward<Args>(args)...)
    {
    }

    Thread(const Thread &) = delete;
    Thread &operator=(const Thread &) = delete;

    Thread(Thread &&other) noexcept = default;

    Thread &
    operator=(Thread &&other) noexcept
    {
        if (t_.joinable())
            t_.join(); // join-before-replace, never std::terminate
        t_ = std::move(other.t_);
        return *this;
    }

    ~Thread()
    {
        if (t_.joinable())
            t_.join();
    }

    bool joinable() const { return t_.joinable(); }
    void join() { t_.join(); }

  private:
    std::thread t_;
};

/** Hint for sizing worker fleets (>= 1 even when unknown). */
inline u32
hardwareConcurrency()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : static_cast<u32>(hw);
}

} // namespace rfv

#endif // RFV_COMMON_SYNC_H
