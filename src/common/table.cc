#include "common/table.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace rfv {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void
Table::addRow(std::vector<std::string> cells)
{
    panicIf(cells.size() != header_.size(),
            "table row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::str() const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };
    emit(header_);
    std::string rule;
    for (std::size_t c = 0; c < header_.size(); ++c)
        rule += std::string(width[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

} // namespace rfv
