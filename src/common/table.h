/**
 * @file
 * Fixed-width console table formatter used by the benchmark harnesses to
 * print paper-style rows/series.
 */
#ifndef RFV_COMMON_TABLE_H
#define RFV_COMMON_TABLE_H

#include <string>
#include <vector>

namespace rfv {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Benchmark", "Cycles", "Overhead (%)"});
 *   t.addRow({"MatrixMul", "105432", "0.4"});
 *   std::cout << t.str();
 * @endcode
 */
class Table {
  public:
    explicit Table(std::vector<std::string> header);

    /** Append one row; must have as many cells as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render the table, header underlined, columns padded. */
    std::string str() const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rfv

#endif // RFV_COMMON_TABLE_H
