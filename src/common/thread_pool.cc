#include "common/thread_pool.h"

namespace rfv {

// ---- ThreadPool --------------------------------------------------------

ThreadPool::ThreadPool(u32 num_threads)
{
    workers_.reserve(num_threads);
    for (u32 i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_relaxed);
    // Wake spinners: workers re-check stop_ after every generation
    // poll, and the bump orders the stop_ store before it.  Parked
    // workers need the notify as well.
    generation_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lk(parkMu_);
        parkCv_.notify_all();
    }
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::wakeWorkers()
{
    if (sleepers_.load() > 0) {
        std::lock_guard<std::mutex> lk(parkMu_);
        parkCv_.notify_all();
    }
}

void
ThreadPool::runTasks(const std::function<void(u32)> &fn)
{
    for (;;) {
        const u32 i = nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_)
            break;
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(errorMu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        // The finisher of the last index wakes a parked coordinator.
        if (done_.fetch_add(1, std::memory_order_release) + 1 == count_ &&
            waiterParked_.load()) {
            std::lock_guard<std::mutex> lk(parkMu_);
            waitCv_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    u64 seen = 0;
    for (;;) {
        Backoff backoff;
        while (generation_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_relaxed))
                return;
            if (backoff.shouldPark()) {
                // Bounded backoff elapsed: park until the next round.
                // The wait predicate re-checks generation_ under the
                // mutex, and the coordinator bumps generation_ before
                // reading sleepers_, so the wakeup cannot be missed
                // (both accesses are seq_cst).
                std::unique_lock<std::mutex> lk(parkMu_);
                sleepers_.fetch_add(1);
                parks_.fetch_add(1, std::memory_order_relaxed);
                parkCv_.wait(lk, [&] {
                    return generation_.load() != seen ||
                           stop_.load(std::memory_order_relaxed);
                });
                sleepers_.fetch_sub(1);
                break;
            }
            backoff.pause();
        }
        if (stop_.load(std::memory_order_relaxed))
            return;
        seen = generation_.load(std::memory_order_relaxed);
        runTasks(*fn_);
        // Announce that this worker is out of the round, so the
        // coordinator knows when it is safe to publish the next
        // round's (fn_, count_).
        if (exited_.fetch_add(1) + 1 == size() && waiterParked_.load()) {
            std::lock_guard<std::mutex> lk(parkMu_);
            waitCv_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(u32 count, const std::function<void(u32)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty()) {
        for (u32 i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Retire the previous round: every worker must have left
    // runTasks before fn_/count_ may be overwritten.  parallelFor
    // itself only waits for task *completion*, so stragglers that
    // claimed no index can still be draining their claim loop here.
    if (roundOpen_) {
        Backoff retire;
        while (exited_.load() < size()) {
            if (retire.shouldPark()) {
                std::unique_lock<std::mutex> lk(parkMu_);
                waiterParked_.store(true);
                waitCv_.wait(lk, [&] { return exited_.load() >= size(); });
                waiterParked_.store(false);
                break;
            }
            retire.pause();
        }
    }

    fn_ = &fn;
    count_ = count;
    nextIndex_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    exited_.store(0, std::memory_order_relaxed);
    firstError_ = nullptr;
    roundOpen_ = true;
    generation_.fetch_add(1);
    wakeWorkers();

    runTasks(fn); // the coordinator is a worker too

    Backoff backoff;
    while (done_.load(std::memory_order_acquire) < count) {
        if (backoff.shouldPark()) {
            std::unique_lock<std::mutex> lk(parkMu_);
            waiterParked_.store(true);
            waitCv_.wait(lk, [&] {
                return done_.load(std::memory_order_acquire) >= count;
            });
            waiterParked_.store(false);
            break;
        }
        backoff.pause();
    }

    if (firstError_) {
        std::exception_ptr e;
        {
            std::lock_guard<std::mutex> lk(errorMu_);
            e = firstError_;
            firstError_ = nullptr;
        }
        std::rethrow_exception(e);
    }
}

// ---- WorkStealingPool --------------------------------------------------

WorkStealingPool::WorkStealingPool(u32 num_threads)
{
    const u32 n = num_threads == 0 ? 1 : num_threads;
    slots_.reserve(n);
    for (u32 i = 0; i < n; ++i)
        slots_.push_back(std::make_unique<Slot>());
    workers_.reserve(n - 1);
    for (u32 i = 1; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
        roundCv_.notify_all();
    }
    for (auto &w : workers_)
        w.join();
}

bool
WorkStealingPool::popOwn(u32 self, u32 &job)
{
    Slot &s = *slots_[self];
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.jobs.empty())
        return false;
    job = s.jobs.front();
    s.jobs.pop_front();
    return true;
}

bool
WorkStealingPool::trySteal(u32 self, u32 &job)
{
    const u32 n = size();
    for (u32 off = 1; off < n; ++off) {
        Slot &v = *slots_[(self + off) % n];
        std::lock_guard<std::mutex> lk(v.mu);
        if (v.jobs.empty())
            continue;
        // Steal from the opposite end the owner pops from: the owner
        // keeps its cache-warm front, thieves drain the cold back.
        job = v.jobs.back();
        v.jobs.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
WorkStealingPool::workRound(u32 self,
                            const std::function<void(u32, u32)> &fn)
{
    u32 job = 0;
    while (popOwn(self, job) || trySteal(self, job)) {
        try {
            fn(job, self);
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lk(mu_);
        if (--remaining_ == 0)
            doneCv_.notify_all();
    }
}

void
WorkStealingPool::workerLoop(u32 self)
{
    u64 seen = 0;
    for (;;) {
        const std::function<void(u32, u32)> *fn = nullptr;
        {
            std::unique_lock<std::mutex> lk(mu_);
            if (generation_ == seen && !stop_) {
                parks_.fetch_add(1, std::memory_order_relaxed);
                roundCv_.wait(lk,
                              [&] { return generation_ != seen || stop_; });
            }
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
        }
        workRound(self, *fn);
        {
            std::lock_guard<std::mutex> lk(mu_);
            ++exited_;
            doneCv_.notify_all();
        }
    }
}

void
WorkStealingPool::run(u32 count, const std::function<void(u32, u32)> &fn)
{
    if (count == 0)
        return;

    // Deal jobs round-robin; manifest order is preserved within each
    // deque, so --jobs=1 degenerates to exact manifest order.
    for (u32 i = 0; i < count; ++i) {
        Slot &s = *slots_[i % size()];
        std::lock_guard<std::mutex> lk(s.mu);
        s.jobs.push_back(i);
    }

    {
        std::lock_guard<std::mutex> lk(mu_);
        fn_ = &fn;
        remaining_ = count;
        exited_ = 0;
        firstError_ = nullptr;
        ++generation_;
        roundCv_.notify_all();
    }

    workRound(0, fn); // the caller is worker 0

    std::unique_lock<std::mutex> lk(mu_);
    doneCv_.wait(lk, [&] {
        return remaining_ == 0 &&
               exited_ == static_cast<u32>(workers_.size());
    });

    if (firstError_) {
        std::exception_ptr e = firstError_;
        firstError_ = nullptr;
        lk.unlock();
        std::rethrow_exception(e);
    }
}

} // namespace rfv
