#include "common/thread_pool.h"

namespace rfv {

namespace {

/** Spin with progressive back-off: pure spins, then yields. */
struct Backoff {
    u32 spins = 0;

    void
    pause()
    {
        if (++spins > 64)
            std::this_thread::yield();
    }
};

} // namespace

ThreadPool::ThreadPool(u32 num_threads)
{
    workers_.reserve(num_threads);
    for (u32 i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    stop_.store(true, std::memory_order_relaxed);
    // Wake spinners: workers re-check stop_ after every generation
    // poll, and the release bump orders the stop_ store before it.
    generation_.fetch_add(1, std::memory_order_release);
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runTasks(const std::function<void(u32)> &fn)
{
    for (;;) {
        const u32 i = nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_)
            break;
        try {
            fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(errorMu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        done_.fetch_add(1, std::memory_order_release);
    }
}

void
ThreadPool::workerLoop()
{
    u64 seen = 0;
    for (;;) {
        Backoff backoff;
        while (generation_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_relaxed))
                return;
            backoff.pause();
        }
        if (stop_.load(std::memory_order_relaxed))
            return;
        seen = generation_.load(std::memory_order_relaxed);
        runTasks(*fn_);
        // Announce that this worker is out of the round, so the
        // coordinator knows when it is safe to publish the next
        // round's (fn_, count_).
        exited_.fetch_add(1, std::memory_order_release);
    }
}

void
ThreadPool::parallelFor(u32 count, const std::function<void(u32)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty()) {
        for (u32 i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Retire the previous round: every worker must have left
    // runTasks before fn_/count_ may be overwritten.  parallelFor
    // itself only waits for task *completion*, so stragglers that
    // claimed no index can still be draining their claim loop here.
    if (roundOpen_) {
        Backoff retire;
        while (exited_.load(std::memory_order_acquire) < size())
            retire.pause();
    }

    fn_ = &fn;
    count_ = count;
    nextIndex_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    exited_.store(0, std::memory_order_relaxed);
    firstError_ = nullptr;
    roundOpen_ = true;
    generation_.fetch_add(1, std::memory_order_release);

    runTasks(fn); // the coordinator is a worker too

    Backoff backoff;
    while (done_.load(std::memory_order_acquire) < count)
        backoff.pause();

    if (firstError_) {
        std::exception_ptr e;
        {
            std::lock_guard<std::mutex> lk(errorMu_);
            e = firstError_;
            firstError_ = nullptr;
        }
        std::rethrow_exception(e);
    }
}

} // namespace rfv
