#include "common/thread_pool.h"

namespace rfv {

// ---- ThreadPool --------------------------------------------------------

ThreadPool::ThreadPool(u32 num_threads)
{
    workers_.reserve(num_threads);
    for (u32 i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    // relaxed: the generation_ bump below is seq_cst and orders this
    // store for spinners; parked workers re-check under parkMu_.
    stop_.store(true, std::memory_order_relaxed);
    // Wake spinners: workers re-check stop_ after every generation
    // poll, and the bump orders the stop_ store before it.  Parked
    // workers need the notify as well.
    generation_.fetch_add(1);
    {
        MutexLock lk(parkMu_);
        parkCv_.notifyAll();
    }
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::wakeWorkers()
{
    if (sleepers_.load() > 0) {
        MutexLock lk(parkMu_);
        parkCv_.notifyAll();
    }
}

void
ThreadPool::runTasks(const std::function<void(u32)> &fn)
{
    for (;;) {
        // relaxed: the claim counter only partitions indices; the
        // tasks themselves synchronize through done_ (release).
        const u32 i = nextIndex_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_)
            break;
        try {
            fn(i);
        } catch (...) {
            MutexLock lk(errorMu_);
            if (!firstError_)
                firstError_ = std::current_exception();
            // relaxed: ordered for the coordinator by the done_
            // release bump below (it reads done_ with acquire).
            hasError_.store(true, std::memory_order_relaxed);
        }
        // The finisher of the last index wakes a parked coordinator.
        if (done_.fetch_add(1, std::memory_order_release) + 1 == count_ &&
            waiterParked_.load()) {
            MutexLock lk(parkMu_);
            waitCv_.notifyAll();
        }
    }
}

void
ThreadPool::workerLoop()
{
    u64 seen = 0;
    for (;;) {
        Backoff backoff;
        while (generation_.load(std::memory_order_acquire) == seen) {
            // relaxed: stop_ is ordered by the destructor's seq_cst
            // generation_ bump; a late observation only costs one
            // extra poll iteration.
            if (stop_.load(std::memory_order_relaxed))
                return;
            if (backoff.shouldPark()) {
                // Bounded backoff elapsed: park until the next round.
                // The wait predicate re-checks generation_ under the
                // mutex, and the coordinator bumps generation_ before
                // reading sleepers_, so the wakeup cannot be missed
                // (both accesses are seq_cst).  The predicate touches
                // atomics only, so the lambda form is analysis-clean.
                MutexLock lk(parkMu_);
                sleepers_.fetch_add(1);
                // relaxed: parks_ is a monotonic statistic.
                parks_.fetch_add(1, std::memory_order_relaxed);
                parkCv_.wait(lk, [&] {
                    // relaxed: same stop_ ordering argument as above.
                    return generation_.load() != seen ||
                           stop_.load(std::memory_order_relaxed);
                });
                sleepers_.fetch_sub(1);
                break;
            }
            backoff.pause();
        }
        // relaxed: ordered by the generation_ acquire loop above.
        if (stop_.load(std::memory_order_relaxed))
            return;
        // relaxed: the acquire load in the spin loop already ordered
        // this round's fn_/count_ publication.
        seen = generation_.load(std::memory_order_relaxed);
        runTasks(*fn_);
        // Announce that this worker is out of the round, so the
        // coordinator knows when it is safe to publish the next
        // round's (fn_, count_).
        if (exited_.fetch_add(1) + 1 == size() && waiterParked_.load()) {
            MutexLock lk(parkMu_);
            waitCv_.notifyAll();
        }
    }
}

void
ThreadPool::parallelFor(u32 count, const std::function<void(u32)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty()) {
        for (u32 i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Retire the previous round: every worker must have left
    // runTasks before fn_/count_ may be overwritten.  parallelFor
    // itself only waits for task *completion*, so stragglers that
    // claimed no index can still be draining their claim loop here.
    if (roundOpen_) {
        Backoff retire;
        while (exited_.load() < size()) {
            if (retire.shouldPark()) {
                MutexLock lk(parkMu_);
                waiterParked_.store(true);
                waitCv_.wait(lk, [&] { return exited_.load() >= size(); });
                waiterParked_.store(false);
                break;
            }
            retire.pause();
        }
    }

    fn_ = &fn;
    count_ = count;
    // relaxed: all three round counters are published to workers by
    // the seq_cst generation_ bump below.
    nextIndex_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    exited_.store(0, std::memory_order_relaxed);
    roundOpen_ = true;
    generation_.fetch_add(1);
    wakeWorkers();

    runTasks(fn); // the coordinator is a worker too

    Backoff backoff;
    while (done_.load(std::memory_order_acquire) < count) {
        if (backoff.shouldPark()) {
            MutexLock lk(parkMu_);
            waiterParked_.store(true);
            waitCv_.wait(lk, [&] {
                return done_.load(std::memory_order_acquire) >= count;
            });
            waiterParked_.store(false);
            break;
        }
        backoff.pause();
    }

    // relaxed: a task's hasError_ store happens-before its done_
    // release bump, and the acquire loop above saw done_ == count, so
    // every round error is visible here without extra ordering.  The
    // flag keeps the per-cycle fast path free of errorMu_; the
    // exception itself is read (and the slot reset for the next
    // round) under the lock.
    if (hasError_.load(std::memory_order_relaxed)) {
        std::exception_ptr e;
        {
            MutexLock lk(errorMu_);
            e = firstError_;
            firstError_ = nullptr;
        }
        // relaxed: only this (coordinator) thread clears the flag,
        // and worker stores for later rounds are ordered by done_.
        hasError_.store(false, std::memory_order_relaxed);
        if (e)
            std::rethrow_exception(e);
    }
}

// ---- WorkStealingPool --------------------------------------------------

WorkStealingPool::WorkStealingPool(u32 num_threads)
{
    const u32 n = num_threads == 0 ? 1 : num_threads;
    slots_.reserve(n);
    for (u32 i = 0; i < n; ++i)
        slots_.push_back(std::make_unique<Slot>());
    workers_.reserve(n - 1);
    for (u32 i = 1; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        MutexLock lk(mu_);
        stop_ = true;
        roundCv_.notifyAll();
    }
    for (auto &w : workers_)
        w.join();
}

bool
WorkStealingPool::popOwn(u32 self, u32 &job)
{
    Slot &s = *slots_[self];
    MutexLock lk(s.mu);
    if (s.jobs.empty())
        return false;
    job = s.jobs.front();
    s.jobs.pop_front();
    return true;
}

bool
WorkStealingPool::trySteal(u32 self, u32 &job)
{
    const u32 n = size();
    for (u32 off = 1; off < n; ++off) {
        Slot &v = *slots_[(self + off) % n];
        MutexLock lk(v.mu);
        if (v.jobs.empty())
            continue;
        // Steal from the opposite end the owner pops from: the owner
        // keeps its cache-warm front, thieves drain the cold back.
        job = v.jobs.back();
        v.jobs.pop_back();
        // relaxed: steals_ is a monotonic statistic.
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
WorkStealingPool::workRound(u32 self,
                            const std::function<void(u32, u32)> &fn)
{
    u32 job = 0;
    while (popOwn(self, job) || trySteal(self, job)) {
        try {
            fn(job, self);
        } catch (...) {
            MutexLock lk(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        MutexLock lk(mu_);
        if (--remaining_ == 0)
            doneCv_.notifyAll();
    }
}

void
WorkStealingPool::workerLoop(u32 self)
{
    u64 seen = 0;
    for (;;) {
        const std::function<void(u32, u32)> *fn = nullptr;
        {
            MutexLock lk(mu_);
            if (generation_ == seen && !stop_) {
                // relaxed: parks_ is a monotonic statistic.
                parks_.fetch_add(1, std::memory_order_relaxed);
                // While-loop wait: the predicate reads mu_-guarded
                // round state, which the analysis can only verify in
                // this scope (where MutexLock holds mu_).
                do {
                    roundCv_.wait(lk);
                } while (generation_ == seen && !stop_);
            }
            if (stop_)
                return;
            seen = generation_;
            fn = fn_;
        }
        workRound(self, *fn);
        {
            MutexLock lk(mu_);
            ++exited_;
            doneCv_.notifyAll();
        }
    }
}

void
WorkStealingPool::run(u32 count, const std::function<void(u32, u32)> &fn)
{
    if (count == 0)
        return;

    // Deal jobs round-robin; manifest order is preserved within each
    // deque, so --jobs=1 degenerates to exact manifest order.
    for (u32 i = 0; i < count; ++i) {
        Slot &s = *slots_[i % size()];
        MutexLock lk(s.mu);
        s.jobs.push_back(i);
    }

    {
        MutexLock lk(mu_);
        fn_ = &fn;
        remaining_ = count;
        exited_ = 0;
        firstError_ = nullptr;
        ++generation_;
        roundCv_.notifyAll();
    }

    workRound(0, fn); // the caller is worker 0

    std::exception_ptr err;
    {
        MutexLock lk(mu_);
        while (remaining_ != 0 ||
               exited_ != static_cast<u32>(workers_.size()))
            doneCv_.wait(lk);
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace rfv
