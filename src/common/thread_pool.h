/**
 * @file
 * Thread pools for the two parallelism grains of the simulator:
 *
 *  - ThreadPool: persistent workers with a barrier-style parallelFor,
 *    built for the multi-SM cycle loop (one round per simulated
 *    cycle).  Workers spin briefly between rounds — a condition
 *    variable wake costs microseconds, which would dwarf the
 *    sub-microsecond barrier the cycle loop needs — but the spin is
 *    *bounded*: after an exponential spin/yield backoff they park on
 *    a condition variable, so pools whose coordinator is busy (or
 *    pools belonging to jobs queued behind others in a sweep) stop
 *    burning CPU instead of spinning at 100% until the next round.
 *
 *  - WorkStealingPool: coarse-grained job scheduler for batch sweeps.
 *    Jobs are dealt round-robin into per-worker deques; owners pop
 *    from the front, idle workers steal from the back of a victim's
 *    deque, and workers with nothing left to steal leave the round
 *    (no spinning while a long job drains).  Between rounds workers
 *    park on a condition variable.
 */
#ifndef RFV_COMMON_THREAD_POOL_H
#define RFV_COMMON_THREAD_POOL_H

#include <atomic>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "common/types.h"

namespace rfv {

/**
 * Progressive wait: pure spins, then yields, then (if the caller asks)
 * parking.  shouldPark() turns true only after the bounded spin/yield
 * phase has elapsed, so short waits never touch a mutex.
 */
struct Backoff {
    u32 iters = 0;

    void
    pause()
    {
        ++iters;
        if (iters > 64)
            std::this_thread::yield();
    }

    /** True once spinning has gone on long enough to justify a park. */
    bool
    shouldPark() const
    {
        return iters > 4096;
    }

    void reset() { iters = 0; }
};

/**
 * Fixed-size pool running index-based task batches.
 *
 * parallelFor(n, fn) runs fn(0) … fn(n-1) across the workers *and*
 * the calling thread, returning only when every index has completed
 * (a full barrier).  Exceptions thrown by tasks are captured and the
 * first one is rethrown on the calling thread after the barrier, so
 * simulator panics propagate exactly as they do sequentially.
 */
class ThreadPool {
  public:
    /** Spawn @p numThreads workers (0 = run everything inline). */
    explicit ThreadPool(u32 numThreads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    u32 size() const { return static_cast<u32>(workers_.size()); }

    /** Run fn(i) for i in [0, count); returns after all complete. */
    void parallelFor(u32 count, const std::function<void(u32)> &fn);

    /** Times workers parked between rounds (idle accounting). */
    u64
    parks() const
    {
        // relaxed: monotonic statistic, read for reporting only.
        return parks_.load(std::memory_order_relaxed);
    }

  private:
    void workerLoop();
    void runTasks(const std::function<void(u32)> &fn);
    void wakeWorkers() RFV_EXCLUDES(parkMu_);

    std::vector<Thread> workers_;

    // Round state: the coordinator publishes (fn_, count_) and bumps
    // generation_ (release); workers observe the bump (acquire) and
    // race on nextIndex_; each finished index bumps done_, and each
    // worker leaving the round bumps exited_ (the coordinator must
    // see exited_ == size() before publishing the next round).
    //
    // fn_/count_/roundOpen_ carry no RFV_GUARDED_BY on purpose: they
    // are synchronized by the generation_ release/acquire handshake
    // above, not by any mutex — a protocol the thread-safety analysis
    // cannot express (ARCHITECTURE.md §9 documents the manual proof;
    // TSan remains the checker for this one structure).
    std::atomic<u64> generation_{0};
    std::atomic<bool> stop_{false};
    const std::function<void(u32)> *fn_ = nullptr;
    u32 count_ = 0;
    bool roundOpen_ = false;
    std::atomic<u32> nextIndex_{0};
    std::atomic<u32> done_{0};
    std::atomic<u32> exited_{0};

    // Parking: workers that exhaust their spin/yield budget sleep on
    // parkCv_; the coordinator notifies after bumping generation_ when
    // sleepers_ is nonzero.  The coordinator itself parks on waitCv_
    // (flagged by waiterParked_) while waiting for done_/exited_, and
    // the worker that retires the last index/exit notifies it.  All
    // wait predicates read atomics only, so parkMu_ guards no fields.
    Mutex parkMu_;
    CondVar parkCv_;
    CondVar waitCv_;
    std::atomic<u32> sleepers_{0};
    std::atomic<bool> waiterParked_{false};
    std::atomic<u64> parks_{0};

    // Error funnel: tasks record the first exception under errorMu_
    // and raise hasError_; the coordinator checks the flag after the
    // done_ barrier (which orders the stores) so the per-cycle fast
    // path never touches the mutex, then harvests under the lock.
    Mutex errorMu_;
    std::exception_ptr firstError_ RFV_GUARDED_BY(errorMu_);
    std::atomic<bool> hasError_{false};
};

/**
 * Work-stealing scheduler for coarse jobs (whole simulations).
 *
 * run(n, fn) executes fn(job, worker) exactly once for every job in
 * [0, n), on @p numThreads workers including the calling thread.
 * Jobs are dealt round-robin into per-worker deques up front; an
 * owner pops from the front of its own deque, and a worker whose
 * deque is empty steals from the back of the first non-empty victim.
 * A worker that finds every deque empty leaves the round, so nobody
 * spins while the last long job drains.  Exceptions are captured and
 * the first is rethrown on the calling thread.
 */
class WorkStealingPool {
  public:
    /** Total worker count including the caller; clamped to >= 1. */
    explicit WorkStealingPool(u32 numThreads);
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Workers including the calling thread. */
    u32 size() const { return static_cast<u32>(slots_.size()); }

    /** Run all jobs; fn(jobIndex, workerId). */
    void run(u32 count, const std::function<void(u32, u32)> &fn);

    /** Jobs executed by a worker other than the one they were dealt to. */
    u64
    steals() const
    {
        // relaxed: monotonic statistic, read for reporting only.
        return steals_.load(std::memory_order_relaxed);
    }

    /** Times a worker blocked waiting for work (idle parking events). */
    u64
    parks() const
    {
        // relaxed: monotonic statistic, read for reporting only.
        return parks_.load(std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Slot {
        Mutex mu;
        std::deque<u32> jobs RFV_GUARDED_BY(mu);
    };

    void workerLoop(u32 self);
    void workRound(u32 self, const std::function<void(u32, u32)> &fn);
    bool popOwn(u32 self, u32 &job);
    bool trySteal(u32 self, u32 &job);

    std::vector<std::unique_ptr<Slot>> slots_; //!< one per worker, [0]=caller
    std::vector<Thread> workers_;              //!< size()-1 spawned threads

    Mutex mu_;
    CondVar roundCv_; //!< workers wait for a round/stop
    CondVar doneCv_;  //!< caller waits for the round end
    u64 generation_ RFV_GUARDED_BY(mu_) = 0;
    bool stop_ RFV_GUARDED_BY(mu_) = false;
    const std::function<void(u32, u32)> *fn_ RFV_GUARDED_BY(mu_) = nullptr;
    u32 remaining_ RFV_GUARDED_BY(mu_) = 0; //!< jobs not yet done this round
    u32 exited_ RFV_GUARDED_BY(mu_) = 0; //!< spawned workers out of the round

    std::atomic<u64> steals_{0};
    std::atomic<u64> parks_{0};

    std::exception_ptr firstError_ RFV_GUARDED_BY(mu_);
};

} // namespace rfv

#endif // RFV_COMMON_THREAD_POOL_H
