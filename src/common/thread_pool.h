/**
 * @file
 * Persistent worker-thread pool with barrier-style parallel-for.
 *
 * Built for the multi-SM cycle loop: one parallelFor() call per
 * simulated cycle, so per-round overhead matters far more than
 * fairness.  Workers spin (with yield back-off) on a round counter
 * instead of sleeping on a condition variable — a condvar wake costs
 * microseconds, which would dwarf the sub-microsecond work barrier
 * the cycle loop needs.  The pool is expected to be short-lived
 * (created per Gpu::run), so idle spinning between rounds is bounded
 * by coordinator work between barriers.
 */
#ifndef RFV_COMMON_THREAD_POOL_H
#define RFV_COMMON_THREAD_POOL_H

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace rfv {

/**
 * Fixed-size pool running index-based task batches.
 *
 * parallelFor(n, fn) runs fn(0) … fn(n-1) across the workers *and*
 * the calling thread, returning only when every index has completed
 * (a full barrier).  Exceptions thrown by tasks are captured and the
 * first one is rethrown on the calling thread after the barrier, so
 * simulator panics propagate exactly as they do sequentially.
 */
class ThreadPool {
  public:
    /** Spawn @p numThreads workers (0 = run everything inline). */
    explicit ThreadPool(u32 numThreads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    u32 size() const { return static_cast<u32>(workers_.size()); }

    /** Run fn(i) for i in [0, count); returns after all complete. */
    void parallelFor(u32 count, const std::function<void(u32)> &fn);

  private:
    void workerLoop();
    void runTasks(const std::function<void(u32)> &fn);

    std::vector<std::thread> workers_;

    // Round state: the coordinator publishes (fn_, count_) and bumps
    // generation_ (release); workers observe the bump (acquire) and
    // race on nextIndex_; each finished index bumps done_, and each
    // worker leaving the round bumps exited_ (the coordinator must
    // see exited_ == size() before publishing the next round).
    std::atomic<u64> generation_{0};
    std::atomic<bool> stop_{false};
    const std::function<void(u32)> *fn_ = nullptr;
    u32 count_ = 0;
    bool roundOpen_ = false;
    std::atomic<u32> nextIndex_{0};
    std::atomic<u32> done_{0};
    std::atomic<u32> exited_{0};

    std::mutex errorMu_;
    std::exception_ptr firstError_;
};

} // namespace rfv

#endif // RFV_COMMON_THREAD_POOL_H
