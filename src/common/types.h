/**
 * @file
 * Fundamental scalar types and global constants shared by every module.
 */
#ifndef RFV_COMMON_TYPES_H
#define RFV_COMMON_TYPES_H

#include <cstdint>
#include <cstddef>

namespace rfv {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulation time expressed in core clock cycles. */
using Cycle = u64;

/** SIMT width: number of lanes (threads) per warp, as in Fermi. */
inline constexpr u32 kWarpSize = 32;

/** Maximum architected registers per thread (Fermi: 63, 6-bit ids). */
inline constexpr u32 kMaxArchRegs = 63;

/** Number of main register banks per SM (Fermi-style). */
inline constexpr u32 kNumRegBanks = 4;

/** Sub-banks per bank; each feeds a 4-lane SIMT cluster. */
inline constexpr u32 kSubBanksPerBank = 8;

/** Bytes held by one warp-wide register (32 lanes x 4 bytes). */
inline constexpr u32 kBytesPerWarpReg = kWarpSize * 4;

/** Sentinel for "no register operand". */
inline constexpr i32 kNoReg = -1;

/** Sentinel for "no predicate guard". */
inline constexpr i32 kNoPred = -1;

/** Number of per-thread predicate registers. */
inline constexpr u32 kNumPredRegs = 8;

/** Invalid / unresolved program counter. */
inline constexpr u32 kInvalidPc = 0xffffffffu;

/** Invalid physical register id. */
inline constexpr u32 kInvalidPhysReg = 0xffffffffu;

} // namespace rfv

#endif // RFV_COMMON_TYPES_H
