#include "compiler/cfg.h"

#include <algorithm>

#include "common/error.h"

namespace rfv {

Cfg::Cfg(const Program &prog, bool allow_metadata)
{
    const auto &code = prog.code;
    const u32 n = static_cast<u32>(code.size());
    panicIf(n == 0, "cannot build CFG of empty program");
    if (!allow_metadata) {
        for (const auto &ins : code)
            panicIf(isMeta(ins.op), "CFG requires a metadata-free program");
    }

    // Identify leaders.
    std::vector<bool> leader(n, false);
    leader[0] = true;
    for (u32 pc = 0; pc < n; ++pc) {
        const Instr &ins = code[pc];
        if (ins.op == Opcode::kBra) {
            leader[ins.target] = true;
            if (pc + 1 < n)
                leader[pc + 1] = true;
        } else if (ins.op == Opcode::kExit) {
            if (pc + 1 < n)
                leader[pc + 1] = true;
        }
    }

    // Carve blocks.
    pcToBlock_.assign(n, 0);
    for (u32 pc = 0; pc < n;) {
        BasicBlock bb;
        bb.id = static_cast<u32>(blocks_.size());
        bb.first = pc;
        u32 end = pc;
        while (end < n) {
            if (endsBlock(code[end].op))
                break;
            if (end + 1 < n && leader[end + 1])
                break;
            ++end;
        }
        bb.last = std::min(end, n - 1);
        for (u32 q = bb.first; q <= bb.last; ++q)
            pcToBlock_[q] = bb.id;
        pc = bb.last + 1;
        blocks_.push_back(std::move(bb));
    }

    // Wire edges.
    for (auto &bb : blocks_) {
        const Instr &tail = code[bb.last];
        auto addEdge = [&](u32 target_pc) {
            const u32 succ = pcToBlock_[target_pc];
            bb.succs.push_back(succ);
        };
        if (tail.op == Opcode::kBra) {
            addEdge(tail.target);
            const bool conditional = tail.guardPred != kNoPred;
            if (conditional && bb.last + 1 < n)
                addEdge(bb.last + 1);
        } else if (tail.op == Opcode::kExit) {
            // A guarded exit retires only the lanes whose guard holds;
            // the survivors fall through.
            if (tail.guardPred != kNoPred && bb.last + 1 < n)
                addEdge(bb.last + 1);
        } else if (bb.last + 1 < n) {
            addEdge(bb.last + 1);
        }
        // Dedupe (a conditional branch to the fall-through).
        std::sort(bb.succs.begin(), bb.succs.end());
        bb.succs.erase(std::unique(bb.succs.begin(), bb.succs.end()),
                       bb.succs.end());
    }
    for (const auto &bb : blocks_)
        for (u32 s : bb.succs)
            blocks_[s].preds.push_back(bb.id);
}

bool
Cfg::dominates(u32 anc, u32 node, const std::vector<i32> &idom)
{
    i32 cur = static_cast<i32>(node);
    while (cur >= 0) {
        if (static_cast<u32>(cur) == anc)
            return true;
        if (idom[cur] == cur)
            break; // entry node is its own idom
        cur = idom[cur];
    }
    return false;
}

bool
Cfg::isBackedge(u32 from, u32 to, const std::vector<i32> &idom)
{
    return dominates(to, from, idom);
}

} // namespace rfv
