/**
 * @file
 * Control-flow graph over a kernel program.
 *
 * Built on programs that do not yet contain metadata instructions (the
 * compile pipeline inserts pir/pbr after all analyses).  Basic blocks
 * are contiguous pc ranges; block ids are assigned in layout order.
 *
 * The release-flag verifier re-analyzes *compiled* programs, where
 * pir/pbr metadata sits in the instruction stream; constructing with
 * allowMetadata treats metadata as straight-line block members (the
 * compiler repatches every branch target to its block's metadata
 * prologue, so metadata never starts a block mid-edge).
 */
#ifndef RFV_COMPILER_CFG_H
#define RFV_COMPILER_CFG_H

#include <vector>

#include "isa/program.h"

namespace rfv {

/** One basic block: the inclusive pc range [first, last]. */
struct BasicBlock {
    u32 id = 0;
    u32 first = 0;
    u32 last = 0;
    std::vector<u32> succs;
    std::vector<u32> preds;
};

/** Control-flow graph of a program. */
class Cfg {
  public:
    /**
     * Build the CFG.  Unless @p allowMetadata is set, the program must
     * not contain pir/pbr metadata instructions.
     */
    explicit Cfg(const Program &prog, bool allowMetadata = false);

    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    u32 numBlocks() const { return static_cast<u32>(blocks_.size()); }

    /** Block containing instruction @p pc. */
    u32 blockOf(u32 pc) const { return pcToBlock_[pc]; }

    const BasicBlock &block(u32 id) const { return blocks_[id]; }

    /**
     * True if the edge from→to is a loop backedge, i.e. @p to dominates
     * @p from (requires the caller-supplied immediate-dominator array).
     */
    static bool isBackedge(u32 from, u32 to, const std::vector<i32> &idom);

    /** True if @p anc dominates @p node under @p idom (anc == node ok). */
    static bool dominates(u32 anc, u32 node, const std::vector<i32> &idom);

  private:
    std::vector<BasicBlock> blocks_;
    std::vector<u32> pcToBlock_;
};

} // namespace rfv

#endif // RFV_COMPILER_CFG_H
