#include "compiler/dominators.h"

#include <algorithm>

#include "common/error.h"

namespace rfv {

namespace {

/**
 * Cooper-Harvey-Kennedy iterative dominators on an abstract graph.
 *
 * @param n      number of nodes
 * @param entry  root node
 * @param succs  forward adjacency (traversal direction)
 * @param preds  reverse adjacency
 * @return idom per node; idom[entry] == entry, unreachable == -1
 */
std::vector<i32>
idomGeneric(u32 n, u32 entry, const std::vector<std::vector<u32>> &succs,
            const std::vector<std::vector<u32>> &preds)
{
    // Reverse post-order from entry.
    std::vector<i32> rpoIndex(n, -1);
    std::vector<u32> order; // post-order
    std::vector<u32> stack = {entry};
    std::vector<u8> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    state[entry] = 1;
    std::vector<u32> childIdx(n, 0);
    while (!stack.empty()) {
        const u32 node = stack.back();
        if (childIdx[node] < succs[node].size()) {
            const u32 next = succs[node][childIdx[node]++];
            if (state[next] == 0) {
                state[next] = 1;
                stack.push_back(next);
            }
        } else {
            state[node] = 2;
            order.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end()); // now RPO
    for (u32 i = 0; i < order.size(); ++i)
        rpoIndex[order[i]] = static_cast<i32>(i);

    std::vector<i32> idom(n, -1);
    idom[entry] = static_cast<i32>(entry);

    auto intersect = [&](i32 a, i32 b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (u32 node : order) {
            if (node == entry)
                continue;
            i32 newIdom = -1;
            for (u32 p : preds[node]) {
                if (rpoIndex[p] < 0 || idom[p] < 0)
                    continue; // unreachable pred
                newIdom = newIdom < 0
                              ? static_cast<i32>(p)
                              : intersect(newIdom, static_cast<i32>(p));
            }
            if (newIdom >= 0 && idom[node] != newIdom) {
                idom[node] = newIdom;
                changed = true;
            }
        }
    }
    return idom;
}

} // namespace

std::vector<i32>
immediateDominators(const Cfg &cfg)
{
    const u32 n = cfg.numBlocks();
    std::vector<std::vector<u32>> succs(n), preds(n);
    for (const auto &bb : cfg.blocks()) {
        succs[bb.id] = bb.succs;
        preds[bb.id] = bb.preds;
    }
    return idomGeneric(n, 0, succs, preds);
}

std::vector<i32>
immediatePostDominators(const Cfg &cfg)
{
    const u32 n = cfg.numBlocks();
    const u32 virtualExit = n;
    // Traversal graph is the reverse CFG rooted at a virtual exit that
    // collects every block without successors.
    std::vector<std::vector<u32>> succs(n + 1), preds(n + 1);
    for (const auto &bb : cfg.blocks()) {
        for (u32 p : bb.preds)
            succs[bb.id].push_back(p);
        for (u32 s : bb.succs)
            preds[bb.id].push_back(s);
        if (bb.succs.empty()) {
            succs[virtualExit].push_back(bb.id);
            preds[bb.id].push_back(virtualExit);
        }
    }

    auto pidom = idomGeneric(n + 1, virtualExit, succs, preds);
    std::vector<i32> out(n, -1);
    for (u32 b = 0; b < n; ++b) {
        if (pidom[b] >= 0 && pidom[b] != static_cast<i32>(virtualExit))
            out[b] = pidom[b];
    }
    return out;
}

} // namespace rfv
