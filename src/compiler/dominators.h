/**
 * @file
 * Dominator and post-dominator computation.
 *
 * Post-dominators drive reconvergence-point (IPDOM) selection for SIMT
 * divergence, exactly as GPGPU-Sim derives PDOM reconvergence points.
 * Forward dominators classify loop backedges, which the release-point
 * analysis treats differently from if-divergence (paper Fig. 4(d)/(e)).
 */
#ifndef RFV_COMPILER_DOMINATORS_H
#define RFV_COMPILER_DOMINATORS_H

#include <vector>

#include "compiler/cfg.h"

namespace rfv {

/**
 * Immediate dominators per block.  idom[entry] == entry; blocks
 * unreachable from the entry get -1.
 */
std::vector<i32> immediateDominators(const Cfg &cfg);

/**
 * Immediate post-dominators per block.  A block whose immediate
 * post-dominator is the virtual exit (or that cannot reach any exit)
 * gets -1.
 */
std::vector<i32> immediatePostDominators(const Cfg &cfg);

} // namespace rfv

#endif // RFV_COMPILER_DOMINATORS_H
