#include "compiler/exempt.h"

#include <algorithm>
#include <numeric>

#include "common/bit_utils.h"
#include "common/error.h"

namespace rfv {

ExemptResult
selectRenamingExemptions(const Program &prog,
                         const std::vector<RegisterStat> &stats,
                         u32 table_budget_bytes, u32 entry_bits,
                         u32 resident_warps)
{
    panicIf(stats.size() != prog.numRegs,
            "register stats do not match program footprint");

    ExemptResult res;
    res.unconstrainedTableBytes = static_cast<u32>(
        ceilDiv(static_cast<u64>(resident_warps) * prog.numRegs *
                    entry_bits,
                8));

    u32 renamed = prog.numRegs;
    if (table_budget_bytes > 0 && resident_warps > 0) {
        const u64 budget_bits = static_cast<u64>(table_budget_bytes) * 8;
        const u64 k = budget_bits / (static_cast<u64>(entry_bits) *
                                     resident_warps);
        renamed = static_cast<u32>(
            std::min<u64>(k, prog.numRegs));
    }
    const u32 num_exempt = prog.numRegs - renamed;
    res.numExempt = num_exempt;
    res.constrainedTableBytes = static_cast<u32>(
        ceilDiv(static_cast<u64>(resident_warps) * renamed * entry_bits,
                8));

    // Rank registers by renaming profitability: short estimated value
    // lifetime first; among equals, fewer value instances first.
    std::vector<u32> order(prog.numRegs);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](u32 a, u32 b) {
        const double la = stats[a].avgLifetime();
        const double lb = stats[b].avgLifetime();
        if (la != lb)
            return la < lb;
        if (stats[a].defs != stats[b].defs)
            return stats[a].defs < stats[b].defs;
        return a < b;
    });

    // The last num_exempt registers in profitability order are exempt.
    std::vector<bool> exempt(prog.numRegs, false);
    for (u32 i = renamed; i < prog.numRegs; ++i)
        exempt[order[i]] = true;

    // Renumber: exempt registers take ids [0, N) in original-id order.
    // Renamed registers take ids [N, numRegs) ordered by descending
    // live span: since the register id selects the bank (id mod
    // numBanks), consecutive ids land in different banks and the
    // longest-lived (hottest-occupancy) registers spread evenly — the
    // compiler bank balancing the paper's renaming preserves.
    res.permutation.assign(prog.numRegs, 0);
    u32 next_exempt = 0;
    for (u32 r = 0; r < prog.numRegs; ++r)
        if (exempt[r])
            res.permutation[r] = next_exempt++;
    {
        std::vector<u32> renamedOrder;
        for (u32 r = 0; r < prog.numRegs; ++r)
            if (!exempt[r])
                renamedOrder.push_back(r);
        std::stable_sort(renamedOrder.begin(), renamedOrder.end(),
                         [&](u32 a, u32 b) {
                             return stats[a].liveSpan > stats[b].liveSpan;
                         });
        u32 next_renamed = num_exempt;
        for (u32 r : renamedOrder)
            res.permutation[r] = next_renamed++;
    }

    res.program = prog;
    res.program.numExemptRegs = num_exempt;
    const bool identity = [&] {
        for (u32 r = 0; r < prog.numRegs; ++r)
            if (res.permutation[r] != r)
                return false;
        return true;
    }();
    if (!identity) {
        for (auto &ins : res.program.code) {
            if (ins.dst != kNoReg)
                ins.dst = static_cast<i32>(
                    res.permutation[static_cast<u32>(ins.dst)]);
            for (auto &s : ins.src)
                if (s.isReg())
                    s.value = res.permutation[s.value];
        }
        res.program.validate();
    }
    return res;
}

} // namespace rfv
