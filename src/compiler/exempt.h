/**
 * @file
 * Renaming-exemption selection and register renumbering (paper Sec. 7.1).
 *
 * To bound the renaming table, only the K most profitable registers are
 * renamed, where K is derived from the table budget.  Long-lived
 * registers and registers with many value instances are exempted: the
 * compiler renumbers them into the lowest N ids, which the hardware maps
 * to fixed physical registers and never releases.
 */
#ifndef RFV_COMPILER_EXEMPT_H
#define RFV_COMPILER_EXEMPT_H

#include <vector>

#include "compiler/release_analysis.h"

namespace rfv {

/** Result of exemption selection. */
struct ExemptResult {
    Program program;          //!< renumbered program
    u32 numExempt = 0;        //!< N: ids [0, N) are renaming-exempt
    std::vector<u32> permutation; //!< old register id -> new register id
    u32 unconstrainedTableBytes = 0; //!< table size renaming all regs
    u32 constrainedTableBytes = 0;   //!< table size actually required
};

/**
 * Select renamed registers under a renaming-table byte budget and
 * renumber the program accordingly.
 *
 * @param prog           metadata-free input program
 * @param stats          per-register statistics from analyzeReleases()
 * @param tableBudgetBytes  renaming-table budget; 0 = unconstrained
 * @param entryBits      bits per table entry (10 for 1024 phys regs)
 * @param residentWarps  warp contexts the table must serve
 */
ExemptResult selectRenamingExemptions(const Program &prog,
                                      const std::vector<RegisterStat> &stats,
                                      u32 tableBudgetBytes, u32 entryBits,
                                      u32 residentWarps);

} // namespace rfv

#endif // RFV_COMPILER_EXEMPT_H
