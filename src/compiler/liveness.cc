#include "compiler/liveness.h"

namespace rfv {

u64
useMask(const Instr &ins)
{
    u64 m = 0;
    for (const auto &s : ins.src)
        if (s.isReg())
            m |= 1ull << s.value;
    // A guarded destination is a partial definition: lanes whose guard
    // is false keep the old value, so the old value is still consumed
    // (SIMT-correct liveness must treat it as a use).
    if (ins.guardPred != kNoPred && ins.dst != kNoReg)
        m |= 1ull << static_cast<u32>(ins.dst);
    return m;
}

u64
defMask(const Instr &ins)
{
    if (ins.dst == kNoReg)
        return 0;
    return 1ull << static_cast<u32>(ins.dst);
}

Liveness
computeLiveness(const Program &prog, const Cfg &cfg)
{
    const u32 n = cfg.numBlocks();
    // Per-block gen (upward-exposed uses) and kill (defs).
    std::vector<u64> gen(n, 0), kill(n, 0);
    for (const auto &bb : cfg.blocks()) {
        u64 g = 0, k = 0;
        for (u32 pc = bb.first; pc <= bb.last; ++pc) {
            const Instr &ins = prog.code[pc];
            g |= useMask(ins) & ~k;
            k |= defMask(ins);
        }
        gen[bb.id] = g;
        kill[bb.id] = k;
    }

    Liveness live;
    live.liveIn.assign(n, 0);
    live.liveOut.assign(n, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        // Reverse layout order converges quickly for reducible CFGs.
        for (u32 i = n; i-- > 0;) {
            const auto &bb = cfg.block(i);
            u64 out = 0;
            for (u32 s : bb.succs)
                out |= live.liveIn[s];
            const u64 in = gen[i] | (out & ~kill[i]);
            if (out != live.liveOut[i] || in != live.liveIn[i]) {
                live.liveOut[i] = out;
                live.liveIn[i] = in;
                changed = true;
            }
        }
    }
    return live;
}

std::vector<u64>
computeLiveAfter(const Program &prog, const Cfg &cfg, const Liveness &live)
{
    std::vector<u64> after(prog.code.size(), 0);
    for (const auto &bb : cfg.blocks()) {
        u64 cur = live.liveOut[bb.id];
        for (u32 pc = bb.last + 1; pc-- > bb.first;) {
            after[pc] = cur;
            const Instr &ins = prog.code[pc];
            cur = (cur & ~defMask(ins)) | useMask(ins);
        }
    }
    return after;
}

} // namespace rfv
