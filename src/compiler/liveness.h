/**
 * @file
 * Dataflow register liveness over the CFG.
 *
 * Register sets are u64 bitmasks (the ISA limits kernels to 63
 * architected registers, bit i == register i).
 */
#ifndef RFV_COMPILER_LIVENESS_H
#define RFV_COMPILER_LIVENESS_H

#include <vector>

#include "compiler/cfg.h"

namespace rfv {

/**
 * Registers read by an instruction (bitmask).  A guarded destination
 * register counts as a use: the write is partial (inactive lanes keep
 * the previous value), so the previous value must stay live.
 */
u64 useMask(const Instr &ins);

/** Registers written by an instruction (bitmask). */
u64 defMask(const Instr &ins);

/** Per-block live-in / live-out register sets. */
struct Liveness {
    std::vector<u64> liveIn;
    std::vector<u64> liveOut;
};

/** Backward may-liveness fixpoint over the CFG. */
Liveness computeLiveness(const Program &prog, const Cfg &cfg);

/**
 * Live-after set for every instruction, derived by a backward scan of
 * each block seeded with its live-out.  liveAfter[pc] is the set of
 * registers whose current value may still be read after @p pc executes.
 */
std::vector<u64> computeLiveAfter(const Program &prog, const Cfg &cfg,
                                  const Liveness &live);

} // namespace rfv

#endif // RFV_COMPILER_LIVENESS_H
