#include "compiler/metadata_insert.h"

#include "common/error.h"
#include "isa/metadata.h"

namespace rfv {

void
annotateReconvergence(Program &prog, const Cfg &cfg,
                      const std::vector<i32> &ipdom)
{
    for (const auto &bb : cfg.blocks()) {
        Instr &tail = prog.code[bb.last];
        if (tail.op != Opcode::kBra || tail.guardPred == kNoPred)
            continue;
        const i32 reconv = ipdom[bb.id];
        tail.reconvPc =
            reconv >= 0 ? cfg.block(reconv).first : kInvalidPc;
    }
}

Program
insertReleaseMetadata(const Program &prog, const Cfg &cfg,
                      const ReleaseInfo &info)
{
    Program out;
    out.name = prog.name;
    out.numRegs = prog.numRegs;
    out.numExemptRegs = prog.numExemptRegs;
    out.sharedMemBytes = prog.sharedMemBytes;
    out.localMemSlots = prog.localMemSlots;
    out.hasReleaseMetadata = true;

    std::vector<u32> blockNewStart(cfg.numBlocks(), 0);

    for (const auto &bb : cfg.blocks()) {
        blockNewStart[bb.id] = static_cast<u32>(out.code.size());

        // pbr releases first: they fire right at reconvergence.
        const auto &pbrRegs = info.pbrAtBlock[bb.id];
        for (std::size_t i = 0; i < pbrRegs.size(); i += kPbrSlots) {
            std::vector<u32> chunk(
                pbrRegs.begin() + static_cast<std::ptrdiff_t>(i),
                pbrRegs.begin() +
                    static_cast<std::ptrdiff_t>(
                        std::min(i + kPbrSlots, pbrRegs.size())));
            Instr pbr;
            pbr.op = Opcode::kPbr;
            pbr.metaPayload = encodePbr(chunk);
            out.code.push_back(std::move(pbr));
        }

        // Regular instructions in runs of up to 18, each run preceded
        // by a pir instruction when any of its operands is released.
        u32 pc = bb.first;
        while (pc <= bb.last) {
            const u32 runEnd = std::min(bb.last, pc + kPirSlots - 1);
            bool anyRelease = false;
            std::array<u8, kPirSlots> masks{};
            for (u32 q = pc; q <= runEnd; ++q) {
                masks[q - pc] = info.pirMask[q];
                anyRelease |= info.pirMask[q] != 0;
            }
            if (anyRelease) {
                Instr pir;
                pir.op = Opcode::kPir;
                pir.metaPayload = encodePir(masks);
                out.code.push_back(std::move(pir));
            }
            for (u32 q = pc; q <= runEnd; ++q) {
                Instr ins = prog.code[q];
                ins.pirMask = info.pirMask[q];
                out.code.push_back(std::move(ins));
            }
            pc = runEnd + 1;
        }
    }

    // Repatch branch targets and reconvergence pcs.
    for (auto &ins : out.code) {
        if (ins.op != Opcode::kBra)
            continue;
        const u32 targetBlock = cfg.blockOf(ins.target);
        panicIf(cfg.block(targetBlock).first != ins.target,
                "branch target is not a block leader");
        ins.target = blockNewStart[targetBlock];
    }
    // reconvPc: recompute per conditional branch from block ipdoms.
    {
        u32 newPc = 0;
        for (const auto &bb : cfg.blocks()) {
            // Advance to this block's span in the new layout and find
            // its tail instruction (the last instruction of the block).
            (void)newPc;
            const Instr &oldTail = prog.code[bb.last];
            if (oldTail.op != Opcode::kBra ||
                oldTail.guardPred == kNoPred) {
                continue;
            }
            // Locate the copied tail: it is the last instruction before
            // the next block's new start (or end of code).
            const u32 spanEnd = bb.id + 1 < cfg.numBlocks()
                                    ? blockNewStart[bb.id + 1]
                                    : static_cast<u32>(out.code.size());
            panicIf(spanEnd == 0, "empty block span");
            Instr &newTail = out.code[spanEnd - 1];
            panicIf(newTail.op != Opcode::kBra,
                    "block tail mismatch after metadata insertion");
            const i32 reconv = info.ipdom[bb.id];
            newTail.reconvPc =
                reconv >= 0 ? blockNewStart[reconv] : kInvalidPc;
        }
    }

    out.validate();
    return out;
}

} // namespace rfv
