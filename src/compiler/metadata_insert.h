/**
 * @file
 * Metadata-instruction insertion and branch annotation (paper Sec. 6.2).
 *
 * Lays the program out with pbr instructions at release blocks and pir
 * instructions ahead of every 18-instruction run that releases any
 * operand, then repatches branch targets and fills each conditional
 * branch's reconvergence pc (the first instruction of its immediate
 * post-dominator block).
 */
#ifndef RFV_COMPILER_METADATA_INSERT_H
#define RFV_COMPILER_METADATA_INSERT_H

#include "compiler/release_analysis.h"

namespace rfv {

/**
 * Annotate reconvergence pcs on conditional branches in place.  Used
 * for baseline compilation, where no metadata is inserted but the SIMT
 * stack still needs reconvergence points.
 */
void annotateReconvergence(Program &prog, const Cfg &cfg,
                           const std::vector<i32> &ipdom);

/**
 * Produce a new program with pir/pbr metadata inserted and branches
 * repatched.  The input program must be metadata-free and must be the
 * same program the analyses were computed on.
 */
Program insertReleaseMetadata(const Program &prog, const Cfg &cfg,
                              const ReleaseInfo &info);

} // namespace rfv

#endif // RFV_COMPILER_METADATA_INSERT_H
