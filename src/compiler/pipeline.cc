#include "compiler/pipeline.h"

#include "common/error.h"
#include "compiler/dominators.h"
#include "compiler/exempt.h"
#include "compiler/metadata_insert.h"
#include "compiler/spill.h"

namespace rfv {

CompiledKernel
compileKernel(const Program &input, const CompileOptions &opts)
{
    input.validate();
    fatalIf(input.hasReleaseMetadata,
            "compileKernel input must be metadata-free");

    CompiledKernel out;
    out.stats.inputRegs = input.numRegs;

    Program prog = input;

    if (opts.spillRegBudget > 0 && prog.numRegs > opts.spillRegBudget) {
        SpillResult spilled = spillToBudget(prog, opts.spillRegBudget);
        prog = std::move(spilled.program);
        out.stats.demotedRegs = spilled.demotedRegs;
        out.stats.spillLoads = spilled.insertedLoads;
        out.stats.spillStores = spilled.insertedStores;
    }

    if (!opts.virtualize) {
        const Cfg cfg(prog);
        const auto ipdom = immediatePostDominators(cfg);
        annotateReconvergence(prog, cfg, ipdom);
        out.stats.finalRegs = prog.numRegs;
        out.stats.staticRegular = prog.staticRegularCount();
        // Register stats are still useful for reporting.
        const Liveness live = computeLiveness(prog, cfg);
        ReleaseOptions ropts;
        const ReleaseInfo info = analyzeReleases(prog, cfg, live, ropts);
        out.stats.regStats = info.regStats;
        out.program = std::move(prog);
        out.program.validate();
        return out;
    }

    // ---- Virtualized compilation ----------------------------------------
    // Pass 1: analyze the incoming program to rank registers.
    {
        const Cfg cfg(prog);
        const Liveness live = computeLiveness(prog, cfg);
        ReleaseOptions ropts;
        ropts.aggressiveDiverged = opts.aggressiveDiverged;
        const ReleaseInfo info = analyzeReleases(prog, cfg, live, ropts);

        ExemptResult ex = selectRenamingExemptions(
            prog, info.regStats, opts.renamingTableBytes,
            opts.tableEntryBits, opts.residentWarps);
        out.stats.numExempt = ex.numExempt;
        out.stats.unconstrainedTableBytes = ex.unconstrainedTableBytes;
        out.stats.constrainedTableBytes = ex.constrainedTableBytes;
        prog = std::move(ex.program);
    }

    // Pass 2: release analysis on the renumbered program.
    {
        const Cfg cfg(prog);
        const Liveness live = computeLiveness(prog, cfg);
        ReleaseOptions ropts;
        ropts.aggressiveDiverged = opts.aggressiveDiverged;
        ropts.exemptBelow = prog.numExemptRegs;
        const ReleaseInfo info = analyzeReleases(prog, cfg, live, ropts);
        out.stats.numPirBits = info.numPirBits;
        out.stats.numPbrRegs = info.numPbrRegs;
        out.stats.regStats = info.regStats;

        prog = insertReleaseMetadata(prog, cfg, info);
    }

    out.stats.finalRegs = prog.numRegs;
    out.stats.staticRegular = prog.staticRegularCount();
    out.stats.staticMeta = prog.staticMetaCount();
    for (const auto &ins : prog.code) {
        if (ins.op == Opcode::kPir)
            ++out.stats.numPirInstrs;
        else if (ins.op == Opcode::kPbr)
            ++out.stats.numPbrInstrs;
    }

    out.program = std::move(prog);
    out.program.validate();
    return out;
}

} // namespace rfv
