/**
 * @file
 * The compile driver: runs the full pass pipeline over a kernel.
 *
 * Pipeline (virtualized): [spill] -> CFG/liveness -> exemption selection
 * + renumbering -> release analysis -> metadata insertion -> reconvergence
 * annotation.  Baseline compilation runs the same analyses but emits no
 * metadata (reconvergence pcs are always annotated; the SIMT stack needs
 * them in every mode).
 */
#ifndef RFV_COMPILER_PIPELINE_H
#define RFV_COMPILER_PIPELINE_H

#include "compiler/release_analysis.h"

namespace rfv {

/** Knobs for one compilation. */
struct CompileOptions {
    /** Insert release metadata and select renaming exemptions. */
    bool virtualize = false;

    /** Sound but more aggressive in-divergence releases (ablation). */
    bool aggressiveDiverged = false;

    /** Renaming table budget in bytes; 0 = unconstrained (full table). */
    u32 renamingTableBytes = 1024;

    /** Bits per renaming-table entry (10 bits index 1024 phys regs). */
    u32 tableEntryBits = 10;

    /** Warp contexts the renaming table serves (per SM). */
    u32 residentWarps = 48;

    /** If nonzero, spill-transform the kernel to this register budget. */
    u32 spillRegBudget = 0;
};

/** Summary of what the compiler did. */
struct CompileStats {
    u32 inputRegs = 0;
    u32 finalRegs = 0;
    u32 numExempt = 0;
    u32 staticRegular = 0;
    u32 staticMeta = 0;
    u32 numPirInstrs = 0;
    u32 numPbrInstrs = 0;
    u32 numPirBits = 0;
    u32 numPbrRegs = 0;
    u32 unconstrainedTableBytes = 0;
    u32 constrainedTableBytes = 0;
    u32 demotedRegs = 0;
    u32 spillLoads = 0;
    u32 spillStores = 0;
    std::vector<RegisterStat> regStats; //!< per final register id

    /** Static code growth from metadata, in percent. */
    double
    staticCodeIncreasePct() const
    {
        return staticRegular
                   ? 100.0 * staticMeta / staticRegular
                   : 0.0;
    }

    bool operator==(const CompileStats &) const = default;
};

/** A compiled kernel plus its statistics. */
struct CompiledKernel {
    Program program;
    CompileStats stats;
};

/** Run the pipeline. */
CompiledKernel compileKernel(const Program &input,
                             const CompileOptions &opts);

} // namespace rfv

#endif // RFV_COMPILER_PIPELINE_H
