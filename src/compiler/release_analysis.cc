#include "compiler/release_analysis.h"

#include <algorithm>

#include "common/bit_utils.h"
#include "common/error.h"
#include "compiler/dominators.h"

namespace rfv {

namespace {

/** One forward (if-) divergent branch and its region. */
struct DivergentRegion {
    u32 branchBlock;
    i32 reconvBlock;       //!< ipdom of the branch block, -1 if none
    std::vector<u32> succs;
    u64 succLiveIn[2] = {0, 0};
    std::vector<bool> sideContains[2]; //!< per-side reachable blocks
    std::vector<bool> contains;        //!< union of both sides
};

/** Blocks reachable from @p from without passing through @p stop. */
void
markReachable(const Cfg &cfg, u32 from, i32 stop, std::vector<bool> &seen)
{
    if (stop >= 0 && from == static_cast<u32>(stop))
        return;
    if (seen[from])
        return;
    std::vector<u32> work = {from};
    seen[from] = true;
    while (!work.empty()) {
        const u32 b = work.back();
        work.pop_back();
        for (u32 s : cfg.block(b).succs) {
            if (stop >= 0 && s == static_cast<u32>(stop))
                continue;
            if (!seen[s]) {
                seen[s] = true;
                work.push_back(s);
            }
        }
    }
}

} // namespace

ReleaseInfo
analyzeReleases(const Program &prog, const Cfg &cfg, const Liveness &live,
                const ReleaseOptions &opts)
{
    const u32 nBlocks = cfg.numBlocks();
    ReleaseInfo info;
    info.pirMask.assign(prog.code.size(), 0);
    info.pbrAtBlock.assign(nBlocks, {});
    info.regStats.assign(prog.numRegs, {});
    info.idom = immediateDominators(cfg);
    info.ipdom = immediatePostDominators(cfg);

    const u64 exemptMask = lowMask(opts.exemptBelow);

    // ---- Collect forward divergent regions -----------------------------
    std::vector<DivergentRegion> regions;
    for (const auto &bb : cfg.blocks()) {
        const Instr &tail = prog.code[bb.last];
        if (tail.op != Opcode::kBra || tail.guardPred == kNoPred)
            continue;
        if (bb.succs.size() < 2)
            continue; // conditional branch to fall-through
        bool backedge = false;
        for (u32 s : bb.succs)
            if (Cfg::isBackedge(bb.id, s, info.idom))
                backedge = true;
        if (backedge)
            continue; // loop branch: liveness covers Fig. 4(d)/(e)

        DivergentRegion region;
        region.branchBlock = bb.id;
        region.reconvBlock = info.ipdom[bb.id];
        region.succs = bb.succs;
        region.contains.assign(nBlocks, false);
        for (u32 i = 0; i < bb.succs.size() && i < 2; ++i) {
            region.succLiveIn[i] = live.liveIn[bb.succs[i]];
            region.sideContains[i].assign(nBlocks, false);
            markReachable(cfg, bb.succs[i], region.reconvBlock,
                          region.sideContains[i]);
            for (u32 blk = 0; blk < nBlocks; ++blk)
                if (region.sideContains[i][blk])
                    region.contains[blk] = true;
        }
        regions.push_back(std::move(region));
    }

    std::vector<std::vector<u32>> enclosing(nBlocks);
    for (u32 r = 0; r < regions.size(); ++r)
        for (u32 b = 0; b < nBlocks; ++b)
            if (regions[r].contains[b])
                enclosing[b].push_back(r);

    // ---- Natural loops and their exit liveness --------------------------
    // Releasing r anywhere inside a loop is SIMT-unsafe if r is live at
    // any loop exit: lanes that already left the (divergent) loop keep
    // their last value in the same warp-wide register, while CFG
    // liveness at in-loop points only sees the upcoming redefinition
    // (paper Fig. 4(e): in-loop release requires no post-loop use).
    // loopUnsafe[b] = registers that must not be released in block b
    // because of an enclosing loop.
    std::vector<u64> loopUnsafe(nBlocks, 0);
    for (const auto &bb : cfg.blocks()) {
        for (u32 succ : bb.succs) {
            if (!Cfg::isBackedge(bb.id, succ, info.idom))
                continue;
            const u32 header = succ;
            const u32 latch = bb.id;
            // Natural loop body: header + backward-reachable from latch.
            std::vector<bool> inLoop(nBlocks, false);
            inLoop[header] = true;
            std::vector<u32> work;
            if (!inLoop[latch]) {
                inLoop[latch] = true;
                work.push_back(latch);
            }
            while (!work.empty()) {
                const u32 node = work.back();
                work.pop_back();
                for (u32 pred : cfg.block(node).preds) {
                    if (!inLoop[pred]) {
                        inLoop[pred] = true;
                        work.push_back(pred);
                    }
                }
            }
            u64 liveAtExit = 0;
            for (u32 b = 0; b < nBlocks; ++b) {
                if (!inLoop[b])
                    continue;
                for (u32 s : cfg.block(b).succs)
                    if (!inLoop[s])
                        liveAtExit |= live.liveIn[s];
            }
            for (u32 b = 0; b < nBlocks; ++b)
                if (inLoop[b])
                    loopUnsafe[b] |= liveAtExit;
        }
    }

    // Move a candidate release block out of all divergent regions by
    // hopping to reconvergence points; -1 means "give up, no release".
    auto deferTarget = [&](u32 block) -> i32 {
        i32 cur = static_cast<i32>(block);
        for (u32 hops = 0; hops <= nBlocks; ++hops) {
            if (enclosing[cur].empty())
                return cur;
            const auto &region = regions[enclosing[cur].front()];
            if (region.reconvBlock < 0)
                return -1;
            cur = region.reconvBlock;
        }
        return -1; // irreducible flow; skip the release (safe)
    };

    // In aggressive mode, a release of r at a point p inside divergent
    // regions is allowed only when, for every enclosing branch b:
    //
    //  (a) r is dead on entry to every side of b that does NOT lead to
    //      p — a sibling side may execute after p's side under the
    //      SIMT stack, and its lanes still read the pre-branch value
    //      from the same warp-wide register (even when p's own side
    //      redefined r, which plain live-in-both-sides reasoning
    //      misses); and
    //  (b) r is dead at b's reconvergence point — a sibling side that
    //      already executed may have REDEFINED r with a partial mask
    //      into the same mapping; releasing r on p's side would
    //      destroy those lanes' values before the post-join read.
    //      (If the sibling neither reads nor writes r, the pre-branch
    //      value flows to the join and rule (a) already fires.)
    auto aggressiveSafe = [&](u32 block, u32 r) {
        const u64 bit = 1ull << r;
        for (u32 ridx : enclosing[block]) {
            const auto &region = regions[ridx];
            for (u32 i = 0; i < region.succs.size() && i < 2; ++i) {
                if (!region.sideContains[i][block] &&
                    (region.succLiveIn[i] & bit)) {
                    return false;
                }
            }
            if (region.reconvBlock >= 0 &&
                ((live.liveIn[region.reconvBlock] >> r) & 1)) {
                return false;
            }
        }
        return true;
    };

    auto addPbr = [&](u32 block, u32 r) {
        if ((loopUnsafe[block] >> r) & 1)
            return; // exited lanes may still hold a live value
        auto &list = info.pbrAtBlock[block];
        if (std::find(list.begin(), list.end(), r) == list.end())
            list.push_back(r);
    };

    const auto liveAfter = computeLiveAfter(prog, cfg, live);

    // ---- Read deaths ----------------------------------------------------
    for (const auto &bb : cfg.blocks()) {
        const bool inRegion = !enclosing[bb.id].empty();
        for (u32 pc = bb.first; pc <= bb.last; ++pc) {
            const Instr &ins = prog.code[pc];
            u64 dead =
                useMask(ins) & ~liveAfter[pc] & ~defMask(ins) & ~exemptMask;
            while (dead) {
                const u32 r = findFirstSet(dead);
                dead &= dead - 1;
                if ((loopUnsafe[bb.id] >> r) & 1)
                    continue; // live at an enclosing loop's exit
                const bool canPir =
                    !inRegion ||
                    (opts.aggressiveDiverged && aggressiveSafe(bb.id, r));
                if (canPir) {
                    for (u32 k = 0; k < 3; ++k) {
                        if (ins.src[k].isReg() && ins.src[k].value == r) {
                            info.pirMask[pc] |= static_cast<u8>(1u << k);
                            break;
                        }
                    }
                    ++info.numPirBits;
                } else {
                    const i32 target = deferTarget(bb.id);
                    if (target >= 0 &&
                        !((live.liveIn[target] >> r) & 1)) {
                        addPbr(static_cast<u32>(target), r);
                    }
                }
            }
        }
    }

    // ---- Edge deaths -----------------------------------------------------
    // r in liveOut(P) but not liveIn(S): the value dies on the edge; a
    // pbr at S (possibly deferred out of divergent regions) releases it
    // regardless of which path the warp took.
    for (const auto &bb : cfg.blocks()) {
        for (u32 s : bb.succs) {
            u64 dead = live.liveOut[bb.id] & ~live.liveIn[s] & ~exemptMask;
            while (dead) {
                const u32 r = findFirstSet(dead);
                dead &= dead - 1;
                const i32 target = deferTarget(s);
                if (target >= 0 && !((live.liveIn[target] >> r) & 1))
                    addPbr(static_cast<u32>(target), r);
            }
        }
    }

    for (auto &list : info.pbrAtBlock) {
        std::sort(list.begin(), list.end());
        info.numPbrRegs += static_cast<u32>(list.size());
    }

    // ---- Per-register statistics -----------------------------------------
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        const Instr &ins = prog.code[pc];
        if (ins.dst != kNoReg)
            ++info.regStats[ins.dst].defs;
        for (const auto &srcOp : ins.src)
            if (srcOp.isReg())
                ++info.regStats[srcOp.value].uses;
        u64 liveBits = liveAfter[pc];
        while (liveBits) {
            const u32 r = findFirstSet(liveBits);
            liveBits &= liveBits - 1;
            if (r < prog.numRegs)
                ++info.regStats[r].liveSpan;
        }
    }

    return info;
}

} // namespace rfv
