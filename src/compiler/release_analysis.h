/**
 * @file
 * Register release-point analysis (paper Section 6.1).
 *
 * Decides, for every register death, whether the register can be
 * released by a per-instruction release flag (pir) right after its last
 * read, or must be deferred to a reconvergence point and released by a
 * per-branch release flag (pbr).
 *
 * SIMT safety rule: within the divergent region of a forward (if-)
 * branch — the blocks between the branch and its immediate
 * post-dominator — a warp serially executes both paths, so releasing a
 * register on the first-executed path could corrupt the other path.
 * The paper handles this conservatively: all releases inside divergent
 * regions move to the reconvergence point (Fig. 4(b)/(c)).  Loop
 * backedge branches are exempt from this rule: a register with no
 * loop-carried liveness and no liveness at the loop exits may be
 * released inside the body (Fig. 4(e)); plain dataflow liveness
 * captures exactly that.
 *
 * An optional "aggressive" mode releases inside a divergent region when
 * the register is live into at most one side of every enclosing branch
 * (sound, slightly stronger than the paper; kept as an ablation).
 */
#ifndef RFV_COMPILER_RELEASE_ANALYSIS_H
#define RFV_COMPILER_RELEASE_ANALYSIS_H

#include <vector>

#include "compiler/cfg.h"
#include "compiler/liveness.h"

namespace rfv {

/** Static per-register statistics used by renaming-exemption selection. */
struct RegisterStat {
    u32 defs = 0;
    u32 uses = 0;
    u32 liveSpan = 0; //!< instruction positions at which the reg is live

    /** Estimated lifetime per value instance (paper Section 7.1). */
    double
    avgLifetime() const
    {
        return defs ? static_cast<double>(liveSpan) / defs
                    : static_cast<double>(liveSpan);
    }

    bool operator==(const RegisterStat &) const = default;
};

/** Options controlling the analysis. */
struct ReleaseOptions {
    /** Release inside divergent regions when provably one-sided. */
    bool aggressiveDiverged = false;
    /** Registers with id < exemptBelow are renaming-exempt: no releases. */
    u32 exemptBelow = 0;
};

/** Result of the release-point analysis. */
struct ReleaseInfo {
    /** Per-pc source release bits (bit k releases src[k] after read). */
    std::vector<u8> pirMask;
    /** Per-block registers to release at block entry via pbr. */
    std::vector<std::vector<u32>> pbrAtBlock;
    /** Per-register static statistics. */
    std::vector<RegisterStat> regStats;
    /** Immediate post-dominators (reconvergence blocks). */
    std::vector<i32> ipdom;
    /** Immediate dominators (backedge classification). */
    std::vector<i32> idom;

    u32 numPirBits = 0; //!< total pir release bits set
    u32 numPbrRegs = 0; //!< total registers released via pbr
};

/** Run the analysis. */
ReleaseInfo analyzeReleases(const Program &prog, const Cfg &cfg,
                            const Liveness &live,
                            const ReleaseOptions &opts);

} // namespace rfv

#endif // RFV_COMPILER_RELEASE_ANALYSIS_H
