#include "compiler/spill.h"

#include <algorithm>

#include "common/bit_utils.h"
#include "common/error.h"
#include "compiler/cfg.h"
#include "compiler/liveness.h"

namespace rfv {

namespace {

/** Greedy interference-graph coloring; returns colors used, fills map. */
u32
colorRegisters(const Program &prog, std::vector<u32> &color)
{
    const Cfg cfg(prog);
    const Liveness live = computeLiveness(prog, cfg);
    const auto liveAfter = computeLiveAfter(prog, cfg, live);

    // Def-point interference: at each definition of r, r interferes
    // with everything live after the instruction.  Complete for
    // programs whose registers are defined before use on every path.
    std::vector<u64> adj(prog.numRegs, 0);
    std::vector<i64> firstDef(prog.numRegs, -1);
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        const Instr &ins = prog.code[pc];
        if (ins.dst == kNoReg)
            continue;
        const u32 r = static_cast<u32>(ins.dst);
        if (firstDef[r] < 0)
            firstDef[r] = pc;
        const u64 others = liveAfter[pc] & ~(1ull << r);
        adj[r] |= others;
        u64 rest = others;
        while (rest) {
            const u32 s = findFirstSet(rest);
            rest &= rest - 1;
            if (s < prog.numRegs)
                adj[s] |= 1ull << r;
        }
    }

    std::vector<u32> order;
    for (u32 r = 0; r < prog.numRegs; ++r)
        order.push_back(r);
    std::stable_sort(order.begin(), order.end(), [&](u32 a, u32 b) {
        return firstDef[a] < firstDef[b];
    });

    color.assign(prog.numRegs, 0);
    std::vector<bool> colored(prog.numRegs, false);
    u32 used = 0;
    for (u32 r : order) {
        u64 taken = 0;
        u64 rest = adj[r];
        while (rest) {
            const u32 s = findFirstSet(rest);
            rest &= rest - 1;
            if (s < prog.numRegs && colored[s])
                taken |= 1ull << color[s];
        }
        u32 c = 0;
        while ((taken >> c) & 1)
            ++c;
        color[r] = c;
        colored[r] = true;
        used = std::max(used, c + 1);
    }
    return used;
}

/** Maximum simultaneously-live register count across the program. */
u32
maxPressure(const Program &prog)
{
    const Cfg cfg(prog);
    const Liveness live = computeLiveness(prog, cfg);
    const auto liveAfter = computeLiveAfter(prog, cfg, live);
    u32 peak = 0;
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        const Instr &ins = prog.code[pc];
        const u64 before =
            (liveAfter[pc] & ~defMask(ins)) | useMask(ins);
        peak = std::max(peak, popcount64(before));
        peak = std::max(peak, popcount64(liveAfter[pc]));
    }
    return peak;
}

/** Pick the demotion victim: long-lived, rarely accessed. */
i32
pickVictim(const Program &prog, const std::vector<bool> &demoted)
{
    const Cfg cfg(prog);
    const Liveness live = computeLiveness(prog, cfg);
    const auto liveAfter = computeLiveAfter(prog, cfg, live);

    std::vector<u32> span(prog.numRegs, 0), accesses(prog.numRegs, 0);
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        const Instr &ins = prog.code[pc];
        u64 liveBits = liveAfter[pc];
        while (liveBits) {
            const u32 r = findFirstSet(liveBits);
            liveBits &= liveBits - 1;
            if (r < prog.numRegs)
                ++span[r];
        }
        if (ins.dst != kNoReg)
            ++accesses[static_cast<u32>(ins.dst)];
        for (const auto &s : ins.src)
            if (s.isReg())
                ++accesses[s.value];
    }

    i32 best = -1;
    double bestScore = -1.0;
    for (u32 r = 0; r < prog.numRegs; ++r) {
        if (demoted[r] || span[r] == 0)
            continue;
        const double score =
            static_cast<double>(span[r]) / (accesses[r] + 1.0);
        if (score > bestScore) {
            bestScore = score;
            best = static_cast<i32>(r);
        }
    }
    return best;
}

/** Rewrite the program so register @p victim lives in local slot. */
Program
demoteRegister(const Program &prog, u32 victim, u32 slot, u32 &loads,
               u32 &stores)
{
    Program out;
    out.name = prog.name;
    out.numRegs = prog.numRegs;
    out.sharedMemBytes = prog.sharedMemBytes;
    out.localMemSlots = std::max(prog.localMemSlots, slot + 1);

    std::vector<u32> newStart(prog.code.size(), 0);
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        newStart[pc] = static_cast<u32>(out.code.size());
        const Instr &ins = prog.code[pc];

        if (ins.readsReg(victim)) {
            Instr fill;
            fill.op = Opcode::kLdLocal;
            fill.dst = static_cast<i32>(victim);
            fill.localSlot = slot;
            out.code.push_back(std::move(fill));
            ++loads;
        }
        out.code.push_back(ins);
        if (ins.writesReg(victim)) {
            Instr store;
            store.op = Opcode::kStLocal;
            store.src[0] = Operand::reg(victim);
            store.localSlot = slot;
            // Keep the writer's guard: a partial SIMT write must only
            // update the active lanes' slots.
            store.guardPred = ins.guardPred;
            store.guardNeg = ins.guardNeg;
            out.code.push_back(std::move(store));
            ++stores;
        }
    }
    for (auto &ins : out.code)
        if (ins.op == Opcode::kBra)
            ins.target = newStart[ins.target];
    return out;
}

} // namespace

SpillResult
spillToBudget(const Program &input, u32 reg_budget)
{
    fatalIf(reg_budget < 4,
            "spill budget below per-instruction register minimum");
    input.validate();

    SpillResult res;
    res.program = input;
    std::vector<bool> demoted(input.numRegs, false);

    std::vector<u32> color;
    for (u32 iter = 0; iter <= input.numRegs + 4; ++iter) {
        const u32 colors = colorRegisters(res.program, color);
        if (colors <= reg_budget) {
            // Apply the coloring to compact the footprint.
            for (auto &ins : res.program.code) {
                if (ins.dst != kNoReg)
                    ins.dst = static_cast<i32>(
                        color[static_cast<u32>(ins.dst)]);
                for (auto &s : ins.src)
                    if (s.isReg())
                        s.value = color[s.value];
            }
            res.program.numRegs = colors;
            res.finalRegs = colors;
            res.program.validate();
            return res;
        }
        const i32 victim = pickVictim(res.program, demoted);
        fatalIf(victim < 0,
                "cannot reduce register pressure to the spill budget");
        demoted[victim] = true;
        res.program = demoteRegister(res.program, static_cast<u32>(victim),
                                     res.program.localMemSlots,
                                     res.insertedLoads, res.insertedStores);
        ++res.demotedRegs;
        (void)maxPressure(res.program); // keep analysis honest in debug
    }
    fatal("spill transform did not converge");
}

} // namespace rfv
