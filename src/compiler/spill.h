/**
 * @file
 * Compiler register-pressure reduction by spilling (the paper's
 * "Compiler spill" baseline for Fig. 11a).
 *
 * Demotes registers to per-thread local-memory slots until the program
 * can be colored with at most the budgeted number of registers, then
 * re-colors.  Every read of a demoted register is preceded by a fill
 * (ldl) and every write followed by a store (stl, with the writer's
 * guard so partial SIMT writes stay partial).
 */
#ifndef RFV_COMPILER_SPILL_H
#define RFV_COMPILER_SPILL_H

#include "isa/program.h"

namespace rfv {

/** Outcome of the spill transform. */
struct SpillResult {
    Program program;
    u32 demotedRegs = 0;
    u32 insertedLoads = 0;
    u32 insertedStores = 0;
    u32 finalRegs = 0; //!< register footprint after re-coloring
};

/**
 * Rewrite @p input to use at most @p regBudget registers.
 * @throws ConfigError if the budget is below the per-instruction
 *         minimum (4) or the program cannot be reduced.
 */
SpillResult spillToBudget(const Program &input, u32 regBudget);

} // namespace rfv

#endif // RFV_COMPILER_SPILL_H
