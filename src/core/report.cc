#include "core/report.h"

#include <sstream>

namespace rfv {

std::string
csvHeader()
{
    return "workload,config,grid_ctas,threads_per_cta,regs_per_warp,"
           "cycles,warp_instrs,thread_instrs,meta_encounters,"
           "meta_decoded,flag_cache_hits,flag_cache_misses,"
           "alloc_watermark,peak_resident_warps,alloc_reduction_pct,"
           "dynamic_code_increase_pct,throttle_cycles,spill_events,"
           "spilled_regs,dram_requests,dram_transactions,"
           "energy_dynamic_j,energy_static_j,energy_rename_j,"
           "energy_flag_j,energy_total_j,static_regular,static_meta,"
           "num_exempt,demoted_regs,verify_errors,verify_warnings,"
           "releases_checked";
}

std::string
csvRow(const RunOutcome &o)
{
    std::ostringstream os;
    os << o.workload << ',' << o.configLabel << ','
       << o.launch.gridCtas << ',' << o.launch.threadsPerCta << ','
       << o.sim.regsPerWarp << ',' << o.sim.cycles << ','
       << o.sim.issuedInstrs << ',' << o.sim.threadInstrs << ','
       << o.sim.metaEncounters << ',' << o.sim.metaDecoded << ','
       << o.sim.flagCacheHits << ',' << o.sim.flagCacheMisses << ','
       << o.sim.rf.allocWatermark << ',' << o.sim.peakResidentWarps
       << ',' << o.sim.allocationReductionPct() << ','
       << o.sim.dynamicCodeIncreasePct() << ','
       << o.sim.throttleActiveCycles << ',' << o.sim.spillEvents << ','
       << o.sim.spilledRegs << ',' << o.sim.dram.requests << ','
       << o.sim.dram.transactions << ',' << o.energy.dynamicJ << ','
       << o.energy.staticJ << ',' << o.energy.renameTableJ << ','
       << o.energy.flagInstrJ << ',' << o.energy.totalJ() << ','
       << o.compile.staticRegular << ',' << o.compile.staticMeta << ','
       << o.compile.numExempt << ',' << o.compile.demotedRegs << ','
       << o.verify.numErrors << ',' << o.verify.numWarnings << ','
       << o.verify.releasesChecked;
    return os.str();
}

std::string
summarize(const RunOutcome &o)
{
    std::ostringstream os;
    os << o.workload << " under " << o.configLabel << ":\n"
       << "  " << o.sim.cycles << " cycles, " << o.sim.issuedInstrs
       << " warp instructions (" << o.sim.threadInstrs
       << " thread instructions)\n"
       << "  peak physical registers: " << o.sim.rf.allocWatermark
       << " (reservation "
       << o.sim.peakResidentWarps * o.sim.regsPerWarp << ", reduction "
       << o.sim.allocationReductionPct() << "%)\n"
       << "  register-file energy: " << o.energy.totalJ() * 1e6
       << " uJ (dynamic " << o.energy.dynamicJ * 1e6 << ", static "
       << o.energy.staticJ * 1e6 << ", renaming "
       << o.energy.renameTableJ * 1e6 << ", metadata "
       << o.energy.flagInstrJ * 1e6 << ")\n";
    if (o.verified) {
        os << "  release verification: "
           << (o.verify.ok() ? "PASS" : "FAIL") << " ("
           << o.verify.releasesChecked << " releases checked, "
           << o.verify.numErrors << " errors, " << o.verify.numWarnings
           << " warnings)\n";
        for (const auto &d : o.verify.diags)
            os << "    " << d.str() << "\n";
    }
    return os.str();
}

} // namespace rfv
