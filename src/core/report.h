/**
 * @file
 * Machine-readable result export: CSV rows for run outcomes, so bench
 * sweeps can be piped into plotting scripts.
 */
#ifndef RFV_CORE_REPORT_H
#define RFV_CORE_REPORT_H

#include <string>

#include "core/simulator.h"

namespace rfv {

/** Column header matching csvRow(). */
std::string csvHeader();

/** One CSV line for a finished run (no trailing newline). */
std::string csvRow(const RunOutcome &outcome);

/** Human-readable multi-line summary of one run. */
std::string summarize(const RunOutcome &outcome);

} // namespace rfv

#endif // RFV_CORE_REPORT_H
