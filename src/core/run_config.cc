#include "core/run_config.h"

namespace rfv {

RunConfig
RunConfig::baseline()
{
    RunConfig cfg;
    cfg.label = "baseline-128KB";
    return cfg;
}

RunConfig
RunConfig::virtualized(bool gating)
{
    RunConfig cfg;
    cfg.label = gating ? "virtualized-128KB-PG" : "virtualized-128KB";
    cfg.mode = RegFileMode::kVirtualized;
    cfg.virtualize = true;
    cfg.powerGating = gating;
    return cfg;
}

RunConfig
RunConfig::gpuShrink(u32 shrink_pct, bool gating)
{
    RunConfig cfg = virtualized(gating);
    cfg.rfSizeBytes = 128 * 1024 * (100 - shrink_pct) / 100;
    // Keep bank geometry legal: round to a multiple of 4 banks x 64
    // subarray registers.
    cfg.rfSizeBytes -= cfg.rfSizeBytes % (16 * kBytesPerWarpReg);
    cfg.label = "gpu-shrink-" + std::to_string(shrink_pct) +
                (gating ? "-PG" : "");
    return cfg;
}

RunConfig
RunConfig::compilerSpillShrink(u32 shrink_pct)
{
    RunConfig cfg;
    cfg.label = "compiler-spill-" + std::to_string(shrink_pct);
    cfg.rfSizeBytes = 128 * 1024 * (100 - shrink_pct) / 100;
    cfg.rfSizeBytes -= cfg.rfSizeBytes % (16 * kBytesPerWarpReg);
    cfg.compilerSpill = true;
    return cfg;
}

RunConfig
RunConfig::hardwareOnly(bool gating)
{
    RunConfig cfg;
    cfg.label = gating ? "hardware-only-PG" : "hardware-only";
    cfg.mode = RegFileMode::kHardwareOnly;
    cfg.powerGating = gating;
    return cfg;
}

} // namespace rfv
