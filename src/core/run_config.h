/**
 * @file
 * Top-level run configurations: the experiment matrix of the paper.
 */
#ifndef RFV_CORE_RUN_CONFIG_H
#define RFV_CORE_RUN_CONFIG_H

#include <string>

#include "sim/sim_config.h"

namespace rfv {

/**
 * Everything that defines one system configuration under test:
 * the register-file mode and size, compiler behaviour, power gating,
 * and machine scale.
 */
struct RunConfig {
    std::string label = "baseline-128KB";

    RegFileMode mode = RegFileMode::kBaseline;
    bool virtualize = false;          //!< compile with release metadata
    u32 rfSizeBytes = 128 * 1024;
    bool powerGating = false;
    u32 wakeupLatency = 1;
    u32 flagCacheEntries = 10;
    u32 renamingTableBytes = 1024;    //!< 0 = unconstrained
    bool aggressiveDiverged = false;
    bool bankRestricted = true;

    /**
     * Compiler-spill baseline: recompile the kernel to fit the file.
     * 0 = off; otherwise the per-warp register budget is derived from
     * the file size and occupancy at run time.
     */
    bool compilerSpill = false;

    /**
     * Verification mode: run the static release-flag soundness
     * verifier over the compiled program and enable the runtime
     * register-lifecycle lint (poisoned frees, trapped reads of
     * released/never-written registers).  Diagnostics land in
     * RunOutcome::verify and the report output.
     */
    bool verifyReleases = false;

    u32 numSms = 4;
    u32 roundsPerSm = 3; //!< grid scaling (0 = full Table-1 grid)

    /**
     * Worker threads for the multi-SM cycle loop (0 = sequential).
     * Results are bit-identical either way; see GpuConfig.
     */
    u32 numWorkerThreads = 0;

    /**
     * Event-driven cycle loop with fast-forward over quiescent
     * windows (default).  Results are bit-identical to the naive
     * step-every-cycle loop; disable to use the naive loop as the
     * equivalence oracle or for per-cycle instrumentation baselines.
     */
    bool eventDriven = true;

    // ---- Named configurations of the paper -----------------------------

    /** Classic 128 KB register file. */
    static RunConfig baseline();

    /** This paper: virtualization on a full-size file. */
    static RunConfig virtualized(bool gating = false);

    /** GPU-shrink: virtualization on an under-provisioned file. */
    static RunConfig gpuShrink(u32 shrinkPct, bool gating = false);

    /** Compiler-spill comparison at a reduced file size. */
    static RunConfig compilerSpillShrink(u32 shrinkPct);

    /** Hardware-only renaming (patent [46]). */
    static RunConfig hardwareOnly(bool gating = false);
};

} // namespace rfv

#endif // RFV_CORE_RUN_CONFIG_H
