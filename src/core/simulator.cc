#include "core/simulator.h"

#include "common/bit_utils.h"

namespace rfv {

Simulator::Simulator(RunConfig cfg, EnergyParams energy)
    : cfg_(std::move(cfg)), energyParams_(energy)
{
}

GpuConfig
Simulator::gpuConfig() const
{
    GpuConfig gpu;
    gpu.numSms = cfg_.numSms;
    gpu.numWorkerThreads = cfg_.numWorkerThreads;
    gpu.eventDriven = cfg_.eventDriven;
    gpu.regFile.mode = cfg_.mode;
    gpu.regFile.sizeBytes = cfg_.rfSizeBytes;
    gpu.regFile.powerGating = cfg_.powerGating;
    gpu.regFile.wakeupLatency = cfg_.wakeupLatency;
    gpu.regFile.flagCacheEntries = cfg_.flagCacheEntries;
    gpu.regFile.bankRestrictedRenaming = cfg_.bankRestricted;
    gpu.regFile.lifecycleLint = cfg_.verifyReleases;
    gpu.validate();
    return gpu;
}

CompileOptions
Simulator::compileOptions(u32 resident_warps) const
{
    CompileOptions opts;
    opts.virtualize = cfg_.virtualize;
    opts.aggressiveDiverged = cfg_.aggressiveDiverged;
    opts.renamingTableBytes = cfg_.renamingTableBytes;
    opts.residentWarps = resident_warps;
    const GpuConfig gpu = gpuConfig();
    opts.tableEntryBits = 1;
    while ((1u << opts.tableEntryBits) < gpu.regFile.physRegs())
        ++opts.tableEntryBits;
    return opts;
}

u32
Simulator::spillBudget(u32 kernel_regs, const LaunchParams &launch) const
{
    const GpuConfig gpu = gpuConfig();
    const u32 per_bank = gpu.regFile.regsPerBank();
    const u32 warps = launch.warpsPerCta() *
                      std::min(launch.concCtasPerSm, gpu.maxCtasPerSm);
    // Largest R with warps * ceil(R/banks) <= regsPerBank.
    for (u32 r = kernel_regs; r >= 4; --r) {
        const u32 per_bank_need =
            static_cast<u32>(ceilDiv(r, gpu.regFile.numBanks)) * warps;
        if (per_bank_need <= per_bank)
            return r == kernel_regs ? 0 : r;
    }
    return 4;
}

RunOutcome
Simulator::runProgram(const Program &input, const LaunchParams &launch,
                      GlobalMemory &mem, TraceHooks hooks) const
{
    const GpuConfig gpu = gpuConfig();
    const u32 resident =
        launch.warpsPerCta() *
        std::min(launch.concCtasPerSm, gpu.maxCtasPerSm);

    CompileOptions copts = compileOptions(resident);
    if (cfg_.compilerSpill)
        copts.spillRegBudget = spillBudget(input.numRegs, launch);

    CompiledKernel ck = compileKernel(input, copts);

    RunOutcome out;
    out.workload = input.name;
    out.configLabel = cfg_.label;
    out.launch = launch;
    out.compile = ck.stats;

    if (cfg_.verifyReleases) {
        // Static soundness pass over the compiled program.  The run
        // proceeds even on errors: the runtime lifecycle lint (enabled
        // alongside) then pinpoints the dynamic manifestation.
        out.verified = true;
        out.verify = verifyReleaseSoundness(ck.program);
    }

    Gpu machine(gpu, ck.program, launch, mem, std::move(hooks));
    out.sim = machine.run();
    out.loop = machine.loopStats();

    EnergyParams ep = energyParams_;
    ep.clockGhz = gpu.clockGhz;
    out.energy = computeEnergy(out.sim, gpu, ep);
    return out;
}

RunOutcome
Simulator::runWorkload(const Workload &workload, TraceHooks hooks) const
{
    const LaunchParams launch =
        workload.scaledLaunch(cfg_.numSms, cfg_.roundsPerSm);
    GlobalMemory mem(workload.memoryBytes(launch));
    workload.setup(mem, launch);
    RunOutcome out = runProgram(workload.buildKernel(), launch, mem,
                                std::move(hooks));
    out.workload = workload.name();
    workload.verify(mem, launch);
    return out;
}

} // namespace rfv
