/**
 * @file
 * The library's front door: compile a kernel for a RunConfig, execute
 * it on the simulated GPU, and return performance + energy results.
 */
#ifndef RFV_CORE_SIMULATOR_H
#define RFV_CORE_SIMULATOR_H

#include "analysis/verifier.h"
#include "compiler/pipeline.h"
#include "core/run_config.h"
#include "power/energy_model.h"
#include "workloads/workload.h"

namespace rfv {

/** Everything one run produces. */
struct RunOutcome {
    std::string workload;
    std::string configLabel;
    LaunchParams launch;
    CompileStats compile;
    SimResult sim;
    LoopStats loop; //!< cycle-loop accounting (skipped vs stepped)
    EnergyBreakdown energy;

    /** True when RunConfig::verifyReleases ran the static verifier. */
    bool verified = false;
    VerifyResult verify;

    /**
     * Field-wise equality over every payload field, including energy
     * doubles and verifier diagnostics: the memoized-replay contract
     * of the batch engine (a cache hit must be indistinguishable from
     * a live run).
     */
    bool operator==(const RunOutcome &) const = default;
};

/**
 * Facade over the compile pipeline, the GPU model and the energy
 * model.
 *
 * @code
 *   Simulator sim(RunConfig::gpuShrink(50));
 *   RunOutcome out = sim.runWorkload(*findWorkload("MatrixMul"));
 *   std::cout << out.sim.cycles << " cycles, "
 *             << out.energy.totalJ() << " J\n";
 * @endcode
 */
class Simulator {
  public:
    explicit Simulator(RunConfig cfg, EnergyParams energy = {});

    const RunConfig &config() const { return cfg_; }

    /** Machine configuration derived from the RunConfig. */
    GpuConfig gpuConfig() const;

    /**
     * Compiler options for a kernel that will run with
     * @p residentWarps warp contexts per SM.
     */
    CompileOptions compileOptions(u32 residentWarps) const;

    /** Run a registered workload (scaled launch, setup + verify). */
    RunOutcome runWorkload(const Workload &workload,
                           TraceHooks hooks = {}) const;

    /** Run an arbitrary kernel on caller-managed memory. */
    RunOutcome runProgram(const Program &input,
                          const LaunchParams &launch, GlobalMemory &mem,
                          TraceHooks hooks = {}) const;

    /**
     * Per-warp register budget for the compiler-spill baseline: the
     * largest footprint whose full occupancy fits the configured file
     * (0 = the kernel already fits, no spilling needed).
     */
    u32 spillBudget(u32 kernelRegs, const LaunchParams &launch) const;

  private:
    RunConfig cfg_;
    EnergyParams energyParams_;
};

} // namespace rfv

#endif // RFV_CORE_SIMULATOR_H
