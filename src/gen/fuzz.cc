#include "gen/fuzz.h"

#include <algorithm>
#include <chrono>

#include <set>

#include "analysis/mutation.h"
#include "analysis/verifier.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "gen/minimize.h"
#include "sim/gpu.h"

namespace rfv {

namespace {

// SeedSeq child-stream layout under one scenario node.  Frozen:
// corpus entries address scenarios by (seed, index).
constexpr u64 kStreamKnobs = 0; //!< spec knob draws
constexpr u64 kStreamSpec = 1;  //!< becomes GenSpec::seed

/** The config palette scenarios draw from (index order frozen). */
RunConfig
paletteConfig(u32 pick)
{
    switch (pick % 4) {
      case 0: return RunConfig::baseline();
      case 1: return RunConfig::virtualized(false);
      case 2: return RunConfig::virtualized(true);
      default: return RunConfig::gpuShrink(50);
    }
}

/**
 * Bit-identity comparison for the differential oracles.  LoopStats is
 * deliberately excluded: the event-driven loop *accounts* cycles
 * differently from the naive loop (skipped vs stepped) while producing
 * the same architectural results — which is exactly the equivalence
 * under test.
 */
bool
equivalentOutcomes(const RunOutcome &a, const RunOutcome &b)
{
    return a.workload == b.workload && a.launch == b.launch &&
           a.compile == b.compile && a.sim == b.sim &&
           a.energy == b.energy && a.verified == b.verified &&
           a.verify == b.verify;
}

/**
 * Outcome of one injected release-flag fault, mirroring the layered
 * criterion in test_verifier_mutation.cc: the static verifier should
 * notice almost everything, the runtime lifecycle lint catches most of
 * the rest, and a handful of flips are genuinely benign (e.g. a
 * release moved past the register's last read).  Only a flip that
 * evades both layers AND corrupts the output is a fuzz failure.
 */
enum class MutationVerdict : u8 {
    kNoMetadata, //!< program has no release flags to flip
    kStatic,     //!< verifier diag-key set moved vs the clean program
    kRuntime,    //!< lifecycle lint (or a validator panic) trapped
    kBenign,     //!< ran clean and the output is still correct
    kSilent,     //!< undetected wrong output — the worst case
};

std::set<u64>
diagKeys(const VerifyResult &r)
{
    std::set<u64> keys;
    for (const auto &d : r.diags)
        keys.insert(d.key());
    return keys;
}

MutationVerdict
judgeMutation(SweepEngine &engine, const GenSpec &spec,
              const RunConfig &config, u32 mutationIndex,
              std::string *detail)
{
    SweepJob job;
    job.workload = spec.name();
    job.config = config;
    const PreparedJob p = engine.prepare(job);
    const Program &prog = p.compiled->kernel.program;
    const auto mutations = enumerateReleaseMutations(prog);
    if (mutations.empty())
        return MutationVerdict::kNoMetadata;
    const ReleaseMutation &m = mutations[mutationIndex % mutations.size()];
    if (detail)
        *detail = m.str();
    const Program mutant = applyReleaseMutation(prog, m);

    if (diagKeys(verifyReleaseSoundness(mutant)) !=
        diagKeys(verifyReleaseSoundness(prog)))
        return MutationVerdict::kStatic;

    GpuConfig cfg = p.gpu;
    cfg.regFile.lifecycleLint = true;
    // A premature free can deadlock the mutant; bound the run well
    // below the production ceiling so a hang reads as detection (the
    // cycle-limit panic) rather than a stuck fuzzer.
    cfg.maxCycles = std::min<Cycle>(cfg.maxCycles, 1'000'000);
    GlobalMemory mem(p.workload->memoryBytes(p.launch));
    p.workload->setup(mem, p.launch);
    try {
        Gpu gpu(cfg, mutant, p.launch, mem);
        gpu.run();
    } catch (const InternalError &) {
        return MutationVerdict::kRuntime;
    }

    try {
        p.workload->verify(mem, p.launch);
    } catch (const InternalError &) {
        return MutationVerdict::kSilent;
    }
    return MutationVerdict::kBenign;
}

FuzzFailure
makeFailure(const FuzzScenario &sc, FuzzOracle oracle,
            std::string detail)
{
    FuzzFailure f;
    f.scenario = sc;
    f.oracle = oracle;
    f.detail = std::move(detail);
    f.minimized = sc.spec;
    return f;
}

/**
 * Evaluate one oracle on (spec, config).  Shared by the fresh-scenario
 * path and corpus replay so a committed reproducer re-runs the exact
 * check that found it.
 */
std::optional<std::string>
runOracle(SweepEngine &engine, const GenSpec &spec,
          const RunConfig &config, FuzzOracle oracle, u32 mutationIndex,
          bool expectCaught)
{
    SweepJob job;
    job.workload = spec.name();
    job.config = config;

    switch (oracle) {
      case FuzzOracle::kSelfCheck: {
        // Through the cached execute() path: generated jobs exercise
        // the same artifact-store + result-cache machinery as sweep
        // manifests (and CI replays them warm).
        const SweepJobResult r = engine.execute(job);
        if (!r.ok())
            return serviceStatusName(r.status) + std::string(": ") + r.error;
        return std::nullopt;
      }
      case FuzzOracle::kSoundness: {
        const SweepJobResult r = engine.execute(job);
        if (!r.ok())
            return serviceStatusName(r.status) + std::string(": ") + r.error;
        if (!r.outcome.verified)
            return std::string("soundness oracle needs a verifying "
                               "config (verifyReleases=true)");
        if (!r.outcome.verify.ok())
            return "release-flag verifier reported " +
                   std::to_string(r.outcome.verify.numErrors) +
                   " error(s): " + r.outcome.verify.str();
        return std::nullopt;
      }
      case FuzzOracle::kDiffLoop: {
        SweepJob naive = job;
        naive.config.eventDriven = !job.config.eventDriven;
        // executeLive on both sides: the cache canonicalizes away
        // eventDriven (it does not change results — that is the claim
        // under test), so a cached compare would test nothing.
        const RunOutcome a = engine.executeLive(engine.prepare(job));
        const RunOutcome b = engine.executeLive(engine.prepare(naive));
        if (!equivalentOutcomes(a, b))
            return std::string("event-driven and naive cycle loops "
                               "disagree (sim/energy/compile)");
        return std::nullopt;
      }
      case FuzzOracle::kDiffThreads: {
        SweepJob par = job;
        par.config.numWorkerThreads = 3;
        const RunOutcome a = engine.executeLive(engine.prepare(job));
        const RunOutcome b = engine.executeLive(engine.prepare(par));
        if (!equivalentOutcomes(a, b))
            return std::string("sequential and parallel multi-SM "
                               "loops disagree (sim/energy/compile)");
        return std::nullopt;
      }
      case FuzzOracle::kMutation: {
        std::string detail;
        const MutationVerdict v = judgeMutation(
            engine, spec, config, mutationIndex, &detail);
        if (v == MutationVerdict::kNoMetadata)
            return std::string("mutation oracle needs release "
                               "metadata (virtualized config)");
        if (v == MutationVerdict::kSilent)
            return "SILENT corruption: injected release-flag fault " +
                   detail +
                   " produced wrong output with no static or "
                   "runtime detection";
        // Corpus `caught` entries pin *detection*, not mere absence
        // of corruption: a fault that degrades to benign means the
        // detector regressed.
        if (expectCaught && v == MutationVerdict::kBenign)
            return "injected release-flag fault " + detail +
                   " is no longer detected (was expect=caught)";
        return std::nullopt;
      }
    }
    return std::string("unknown oracle");
}

} // namespace

const char *
fuzzOracleName(FuzzOracle o)
{
    switch (o) {
      case FuzzOracle::kSelfCheck: return "selfcheck";
      case FuzzOracle::kSoundness: return "soundness";
      case FuzzOracle::kDiffLoop: return "diff-loop";
      case FuzzOracle::kDiffThreads: return "diff-threads";
      case FuzzOracle::kMutation: return "mutation";
    }
    return "?";
}

FuzzScenario
deriveScenario(u64 seed, u64 index, u64 mutateEvery)
{
    FuzzScenario sc;
    sc.index = index;
    const SeedSeq node = SeedSeq(seed).child(index);
    Rng rng = node.child(kStreamKnobs).rng();

    GenSpec &s = sc.spec;
    s.seed = node.child(kStreamSpec).seed();
    // Knob draws in FROZEN order (see header).
    s.depth = 1 + static_cast<u32>(rng.below(3));        // 1..3
    s.blocks = 4 + static_cast<u32>(rng.below(7));       // 4..10
    s.loopWeight = static_cast<u32>(rng.below(4));       // 0..3
    s.branchWeight = static_cast<u32>(rng.below(5));     // 0..4
    s.memWeight = static_cast<u32>(rng.below(5));        // 0..4
    s.regs = 8 + static_cast<u32>(rng.below(17));        // 8..24
    s.longLived = static_cast<u32>(rng.below(s.regs / 2 + 1));
    s.auxStores =
        rng.chance(1, 4) ? 1 + static_cast<u32>(rng.below(2)) : 0;
    s.exchanges = rng.chance(1, 3);
    s.earlyExits = rng.chance(1, 2);
    s.threadsPerCta = 32u << rng.below(4);               // 32..256
    s.ctas = 4 + static_cast<u32>(rng.below(13));        // 4..16
    s.concCtasPerSm = 2 + static_cast<u32>(rng.below(5)); // 2..6

    const u32 pick = static_cast<u32>(rng.below(4));
    sc.injectMutation = mutateEvery > 0 && index % mutateEvery == 0;
    // Injection needs release metadata, so force a virtualized config
    // for those scenarios; others draw from the full palette.
    sc.config =
        sc.injectMutation ? paletteConfig(1 + pick % 2) : paletteConfig(pick);
    sc.mutationIndex = static_cast<u32>(rng.below(1u << 16));
    // The soundness oracle needs the verifier's diagnostics.
    if (sc.config.virtualize)
        sc.config.verifyReleases = true;
    return sc;
}

std::optional<FuzzFailure>
checkScenario(SweepEngine &engine, const FuzzScenario &sc,
              FuzzReport *report)
{
    // Oracle order: cheapest structural check last (mutation), the
    // self-check first — a wrong-output kernel makes every other
    // comparison moot.
    const FuzzOracle oracles[] = {
        FuzzOracle::kSelfCheck,
        FuzzOracle::kSoundness,
        FuzzOracle::kDiffLoop,
        FuzzOracle::kDiffThreads,
    };
    for (FuzzOracle o : oracles) {
        if (o == FuzzOracle::kSoundness && !sc.config.verifyReleases)
            continue; // baseline compilations have nothing to verify
        if (report)
            ++report->oracleChecks;
        auto detail = runOracle(engine, sc.spec, sc.config, o,
                                sc.mutationIndex, false);
        if (detail)
            return makeFailure(sc, o, std::move(*detail));
    }
    if (sc.injectMutation) {
        if (report)
            ++report->oracleChecks;
        std::string detail;
        const MutationVerdict v = judgeMutation(
            engine, sc.spec, sc.config, sc.mutationIndex, &detail);
        if (v == MutationVerdict::kNoMetadata)
            return makeFailure(sc, FuzzOracle::kMutation,
                               "mutation oracle needs release metadata "
                               "(virtualized config)");
        if (v == MutationVerdict::kSilent)
            return makeFailure(
                sc, FuzzOracle::kMutation,
                "SILENT corruption: injected release-flag fault " +
                    detail +
                    " produced wrong output with no static or runtime "
                    "detection");
        if (report) {
            if (v == MutationVerdict::kBenign)
                ++report->mutationsBenign;
            else
                ++report->mutationsCaught;
        }
    }
    return std::nullopt;
}

FuzzReport
runFuzz(const FuzzOptions &opts)
{
    const auto start = std::chrono::steady_clock::now();

    SweepOptions sweepOpts;
    sweepOpts.jobs = 1; // parallelism lives at the scenario level
    sweepOpts.cacheDir = opts.cacheDir;
    sweepOpts.useCache = opts.useCache;
    SweepEngine engine(sweepOpts);

    FuzzReport report;
    report.scenarios = opts.scenarios;

    Mutex mu;
    FuzzReport shared; // counters + failures merged under mu
    ThreadPool pool(opts.jobs > 1 ? opts.jobs : 0);
    pool.parallelFor(
        static_cast<u32>(opts.scenarios), [&](u32 i) {
            const FuzzScenario sc =
                deriveScenario(opts.seed, i, opts.mutateEvery);
            FuzzReport local;
            auto failure = checkScenario(engine, sc, &local);
            MutexLock lock(mu);
            shared.oracleChecks += local.oracleChecks;
            shared.mutationsCaught += local.mutationsCaught;
            shared.mutationsBenign += local.mutationsBenign;
            if (failure)
                shared.failures.push_back(std::move(*failure));
        });
    report.oracleChecks = shared.oracleChecks;
    report.mutationsCaught = shared.mutationsCaught;
    report.mutationsBenign = shared.mutationsBenign;
    report.failures = std::move(shared.failures);

    // Deterministic output order regardless of worker interleaving.
    std::sort(report.failures.begin(), report.failures.end(),
              [](const FuzzFailure &a, const FuzzFailure &b) {
                  return a.scenario.index < b.scenario.index;
              });

    if (opts.minimize) {
        for (FuzzFailure &f : report.failures) {
            const RunConfig &config = f.scenario.config;
            const FuzzOracle oracle = f.oracle;
            const u32 mutIdx = f.scenario.mutationIndex;
            const bool expectCaught = oracle == FuzzOracle::kMutation;
            const auto stillFails = [&](const GenSpec &candidate) {
                // Fresh live-only engine per probe: a shrunken spec
                // must reproduce from nothing but its name.
                SweepOptions probeOpts;
                probeOpts.useCache = false;
                SweepEngine probe(probeOpts);
                return runOracle(probe, candidate, config, oracle,
                                 mutIdx, expectCaught)
                    .has_value();
            };
            const MinimizeResult m = minimizeSpec(
                f.scenario.spec, stillFails, opts.minimizeBudget);
            f.minimized = m.spec;
            f.shrinkTests = m.testsRun;
        }
    }

    report.wallSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    return report;
}

RunConfig
fuzzConfigForLabel(const std::string &label)
{
    const RunConfig palette[] = {
        RunConfig::baseline(),
        RunConfig::virtualized(false),
        RunConfig::virtualized(true),
        RunConfig::gpuShrink(50),
        RunConfig::gpuShrink(75),
        RunConfig::hardwareOnly(false),
    };
    for (const RunConfig &cfg : palette) {
        if (cfg.label == label) {
            RunConfig out = cfg;
            if (out.virtualize)
                out.verifyReleases = true;
            return out;
        }
    }
    fatal("unknown fuzz config label: " + label);
}

std::string
corpusLine(const FuzzFailure &f)
{
    std::string line = "spec=" + f.minimized.name() +
                       " config=" + f.scenario.config.label +
                       " oracle=" + fuzzOracleName(f.oracle);
    if (f.oracle == FuzzOracle::kMutation)
        line += " expect=caught mutation=" +
                std::to_string(f.scenario.mutationIndex);
    else
        line += " expect=pass";
    return line;
}

bool
parseCorpusLine(const std::string &line, CorpusEntry &entry,
                std::string &error)
{
    // Strip comments; blank lines return false with an empty error.
    error.clear();
    std::string body = line.substr(0, line.find('#'));
    CorpusEntry out;
    bool haveSpec = false, haveConfig = false, haveOracle = false,
         haveExpect = false;
    size_t pos = 0;
    while (pos < body.size()) {
        while (pos < body.size() && body[pos] == ' ')
            ++pos;
        size_t end = body.find(' ', pos);
        if (end == std::string::npos)
            end = body.size();
        const std::string tok = body.substr(pos, end - pos);
        pos = end;
        if (tok.empty())
            continue;
        const size_t eq = tok.find('=');
        if (eq == std::string::npos) {
            error = "corpus token missing '=': " + tok;
            return false;
        }
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        if (key == "spec") {
            if (!GenSpec::parse(val, out.spec, error))
                return false;
            haveSpec = true;
        } else if (key == "config") {
            out.configLabel = val;
            haveConfig = true;
        } else if (key == "oracle") {
            haveOracle = false;
            for (u8 o = 0; o <= static_cast<u8>(FuzzOracle::kMutation);
                 ++o) {
                if (val == fuzzOracleName(static_cast<FuzzOracle>(o))) {
                    out.oracle = static_cast<FuzzOracle>(o);
                    haveOracle = true;
                }
            }
            if (!haveOracle) {
                error = "unknown corpus oracle: " + val;
                return false;
            }
        } else if (key == "expect") {
            if (val != "pass" && val != "caught") {
                error = "corpus expect must be pass|caught: " + val;
                return false;
            }
            out.expectCaught = val == "caught";
            haveExpect = true;
        } else if (key == "mutation") {
            u32 idx = 0;
            for (char c : val) {
                if (c < '0' || c > '9') {
                    error = "bad corpus mutation index: " + val;
                    return false;
                }
                idx = idx * 10 + static_cast<u32>(c - '0');
            }
            out.mutationIndex = idx;
        } else {
            error = "unknown corpus key: " + key;
            return false;
        }
    }
    if (!haveSpec && !haveConfig && !haveOracle && !haveExpect)
        return false; // blank/comment-only line
    if (!(haveSpec && haveConfig && haveOracle && haveExpect)) {
        error = "corpus line missing required keys: " + line;
        return false;
    }
    entry = std::move(out);
    return true;
}

std::optional<std::string>
replayCorpusEntry(SweepEngine &engine, const CorpusEntry &entry)
{
    const RunConfig config = fuzzConfigForLabel(entry.configLabel);
    return runOracle(engine, entry.spec, config, entry.oracle,
                     entry.mutationIndex, entry.expectCaught);
}

} // namespace rfv
