/**
 * @file
 * Differential fuzz driver over generated kernels.
 *
 * Each *scenario* is a (GenSpec, RunConfig) pair derived from a root
 * seed through SeedSeq child streams, executed under four oracles:
 *
 *   1. self-check   — the generated kernel's output image matches the
 *                     host reference (GenWorkload::verify, exercised
 *                     through the cached SweepEngine::execute path so
 *                     generated jobs behave exactly like sweep jobs)
 *   2. soundness    — the static release-flag verifier reports zero
 *                     errors on the virtualized compilation
 *   3. diff-loop    — the event-driven and naive cycle loops produce
 *                     bit-identical results (sim/energy/compile)
 *   4. diff-threads — the sequential and parallel multi-SM loops
 *                     produce bit-identical results
 *
 * Scenarios can additionally *inject* a release-flag fault
 * (applyReleaseMutation on the compiled program) and assert the
 * layered defense handles it — static verifier diag drift, runtime
 * lifecycle-lint trap, or provably benign output; a fault that evades
 * both layers and corrupts the output is a failure.  The fuzzer
 * fuzzes its own referee.
 *
 * Any failing scenario is shrunk by the delta-debugging minimizer
 * (minimize.h) and rendered as a one-line corpus entry; the committed
 * regression corpus (tests/corpus/fuzz/) is replayed by test_fuzz and
 * `run_fuzz --corpus`.
 */
#ifndef RFV_GEN_FUZZ_H
#define RFV_GEN_FUZZ_H

#include <optional>
#include <string>
#include <vector>

#include "gen/gen_spec.h"
#include "service/sweep.h"

namespace rfv {

/** The four scenario oracles plus the fault-injection meta-oracle. */
enum class FuzzOracle : u8 {
    kSelfCheck,
    kSoundness,
    kDiffLoop,
    kDiffThreads,
    kMutation, //!< injected fault: detected, benign, or SILENT (fail)
};

const char *fuzzOracleName(FuzzOracle o);

/** One derived (kernel, config) test case. */
struct FuzzScenario {
    u64 index = 0;
    GenSpec spec;
    RunConfig config;
    bool injectMutation = false;
    u32 mutationIndex = 0; //!< draw into enumerateReleaseMutations()
};

/** One confirmed oracle violation (pre- and post-minimization). */
struct FuzzFailure {
    FuzzScenario scenario;
    FuzzOracle oracle = FuzzOracle::kSelfCheck;
    std::string detail;
    GenSpec minimized;  //!< == scenario.spec until minimized
    u32 shrinkTests = 0; //!< predicate evaluations the minimizer spent
};

struct FuzzOptions {
    u64 seed = 1;        //!< root of all scenario derivation
    u64 scenarios = 100;
    u32 jobs = 1;        //!< scenario-level worker threads
    std::string cacheDir; //!< self-check oracle cache ("" = memory only)
    bool useCache = true;
    /** Every Nth scenario injects a release-flag fault (0 = never). */
    u64 mutateEvery = 0;
    bool minimize = true;    //!< shrink failures before reporting
    u32 minimizeBudget = 400; //!< predicate-evaluation cap per failure
};

struct FuzzReport {
    u64 scenarios = 0;
    u64 oracleChecks = 0;     //!< individual oracle evaluations
    u64 mutationsCaught = 0;  //!< faults flagged statically or at runtime
    /**
     * Injected faults that evaded both detection layers but left the
     * output correct (e.g. a release moved past the register's last
     * read).  These are not failures — only *silent corruption* is —
     * mirroring test_verifier_mutation.cc's ≥95% layered-rate contract
     * rather than demanding an impossible 100%.
     */
    u64 mutationsBenign = 0;
    std::vector<FuzzFailure> failures;
    double wallSeconds = 0;

    bool ok() const { return failures.empty(); }
};

/**
 * Scenario @p index of root @p seed.  Frozen derivation: committed
 * corpus entries name scenarios by (seed, index), so changing the knob
 * draws below is corpus-invalidating (see SeedSeq).
 */
FuzzScenario deriveScenario(u64 seed, u64 index, u64 mutateEvery);

/**
 * Run every oracle on @p sc; first violation wins.  Thread-safe for
 * distinct scenarios over a shared engine.  nullopt = all green.
 */
std::optional<FuzzFailure> checkScenario(SweepEngine &engine,
                                         const FuzzScenario &sc,
                                         FuzzReport *report = nullptr);

/** Drive @p opts.scenarios scenarios, minimizing any failures. */
FuzzReport runFuzz(const FuzzOptions &opts);

// ---- Regression corpus ---------------------------------------------------

/**
 * One committed reproducer.  Line format (space-separated, no commas —
 * corpus lines must survive CSV-ish logs unquoted):
 *
 *   spec=<gen:...> config=<label> oracle=<name> expect=<pass|caught>
 *       [mutation=<idx>] [# comment]
 */
struct CorpusEntry {
    GenSpec spec;
    std::string configLabel;
    FuzzOracle oracle = FuzzOracle::kSelfCheck;
    bool expectCaught = false; //!< true: injected fault must be caught
    u32 mutationIndex = 0;
};

/** The RunConfig behind a corpus config label (fatal on unknown). */
RunConfig fuzzConfigForLabel(const std::string &label);

/** Render @p f as a corpus line (minimized spec, matching oracle). */
std::string corpusLine(const FuzzFailure &f);

/** Parse one corpus line; false on blank/comment lines. */
bool parseCorpusLine(const std::string &line, CorpusEntry &entry,
                     std::string &error);

/**
 * Re-run one corpus entry.  Green means: a `pass` entry passes every
 * oracle, a `caught` entry's injected fault is still detected.
 * Returns the failure detail, or nullopt when green.
 */
std::optional<std::string> replayCorpusEntry(SweepEngine &engine,
                                             const CorpusEntry &entry);

} // namespace rfv

#endif // RFV_GEN_FUZZ_H
