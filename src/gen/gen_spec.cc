#include "gen/gen_spec.h"

#include <algorithm>
#include <sstream>

#include "common/bit_utils.h"
#include "common/error.h"

namespace rfv {

namespace {

bool
parseU64(const std::string &s, u64 &out)
{
    if (s.empty())
        return false;
    u64 v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        if (v > (~0ull - (c - '0')) / 10)
            return false; // overflow
        v = v * 10 + static_cast<u64>(c - '0');
    }
    out = v;
    return true;
}

bool
parseU32(const std::string &s, u32 &out)
{
    u64 v = 0;
    if (!parseU64(s, v) || v > 0xffffffffull)
        return false;
    out = static_cast<u32>(v);
    return true;
}

/** Split @p s on @p sep (no empty-token elision). */
std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

} // namespace

std::string
GenSpec::name() const
{
    std::ostringstream os;
    os << kGenWorkloadPrefix << "s" << seed << ":d" << depth << ":b"
       << blocks << ":r" << regs << ":l" << longLived << ":w"
       << loopWeight << "." << branchWeight << "." << memWeight << ":a"
       << auxStores << ":x" << (exchanges ? 1 : 0)
       << (earlyExits ? 1 : 0) << ":g" << ctas << "x" << threadsPerCta
       << "x" << concCtasPerSm;
    if (!prune.empty()) {
        os << ":p";
        for (size_t i = 0; i < prune.size(); ++i)
            os << (i ? "." : "") << prune[i];
    }
    return os.str();
}

bool
GenSpec::parse(const std::string &name, GenSpec &spec, std::string &error)
{
    const std::string prefix = kGenWorkloadPrefix;
    if (name.rfind(prefix, 0) != 0) {
        error = "not a generated-workload name (missing '" + prefix +
                "' prefix): " + name;
        return false;
    }
    GenSpec out;
    out.prune.clear();
    out.exchanges = false;
    out.earlyExits = false;

    // Every field must appear exactly once; 'p' is optional.
    u32 seen = 0;
    const auto mark = [&](u32 bit) {
        if (seen & (1u << bit))
            return false;
        seen |= 1u << bit;
        return true;
    };

    const auto fields =
        split(name.substr(prefix.size()), ':');
    for (const std::string &field : fields) {
        if (field.size() < 2) {
            error = "malformed gen field '" + field + "' in " + name;
            return false;
        }
        const char key = field[0];
        const std::string val = field.substr(1);
        bool ok = true;
        switch (key) {
          case 's':
            ok = mark(0) && parseU64(val, out.seed);
            break;
          case 'd':
            ok = mark(1) && parseU32(val, out.depth);
            break;
          case 'b':
            ok = mark(2) && parseU32(val, out.blocks);
            break;
          case 'r':
            ok = mark(3) && parseU32(val, out.regs);
            break;
          case 'l':
            ok = mark(4) && parseU32(val, out.longLived);
            break;
          case 'w': {
            const auto parts = split(val, '.');
            ok = mark(5) && parts.size() == 3 &&
                 parseU32(parts[0], out.loopWeight) &&
                 parseU32(parts[1], out.branchWeight) &&
                 parseU32(parts[2], out.memWeight);
            break;
          }
          case 'a':
            ok = mark(6) && parseU32(val, out.auxStores);
            break;
          case 'x': {
            ok = mark(7) && val.size() == 2 &&
                 (val[0] == '0' || val[0] == '1') &&
                 (val[1] == '0' || val[1] == '1');
            if (ok) {
                out.exchanges = val[0] == '1';
                out.earlyExits = val[1] == '1';
            }
            break;
          }
          case 'g': {
            const auto parts = split(val, 'x');
            ok = mark(8) && parts.size() == 3 &&
                 parseU32(parts[0], out.ctas) &&
                 parseU32(parts[1], out.threadsPerCta) &&
                 parseU32(parts[2], out.concCtasPerSm);
            break;
          }
          case 'p': {
            for (const std::string &id : split(val, '.')) {
                u32 v = 0;
                if (!parseU32(id, v)) {
                    ok = false;
                    break;
                }
                out.prune.push_back(v);
            }
            break;
          }
          default:
            ok = false;
            break;
        }
        if (!ok) {
            error = "bad gen field '" + field + "' in " + name;
            return false;
        }
    }
    if (seen != 0x1ff) {
        error = "gen name missing required fields: " + name;
        return false;
    }
    try {
        out.validate();
    } catch (const ConfigError &e) {
        error = e.what();
        return false;
    }
    spec = std::move(out);
    return true;
}

void
GenSpec::validate()
{
    fatalIf(ctas == 0 || threadsPerCta == 0 || concCtasPerSm == 0,
            "gen spec needs nonzero launch geometry: " + name());
    fatalIf(threadsPerCta > 1024,
            "gen spec threadsPerCta too large: " + name());
    fatalIf(ctas > 4096, "gen spec grid too large: " + name());
    fatalIf(regs < 4 || regs > 48,
            "gen spec regs out of [4, 48]: " + name());
    fatalIf(longLived > regs,
            "gen spec longLived exceeds regs: " + name());
    fatalIf(depth > 4, "gen spec depth out of [0, 4]: " + name());
    fatalIf(blocks == 0 || blocks > 64,
            "gen spec blocks out of [1, 64]: " + name());
    fatalIf(loopWeight > 16 || branchWeight > 16 || memWeight > 16,
            "gen spec construct weight out of [0, 16]: " + name());
    fatalIf(auxStores > 4, "gen spec auxStores out of [0, 4]: " + name());
    fatalIf(exchanges && !isPow2(threadsPerCta),
            "gen spec exchanges need a power-of-two CTA: " + name());
    std::sort(prune.begin(), prune.end());
    prune.erase(std::unique(prune.begin(), prune.end()), prune.end());
}

} // namespace rfv
