/**
 * @file
 * Seed-addressed generated-kernel specification.
 *
 * A GenSpec is the *complete* identity of one generated kernel: the
 * seed plus every knob the generator consults — CFG shape, register
 * pressure, memory intensity, launch geometry, and the minimizer's
 * prune list.  The canonical `gen:` name encoding makes generated
 * kernels first-class workloads: anything that names workloads by
 * string (sweep manifests, the simd daemon, cluster routing keys, the
 * result cache) addresses a generated kernel exactly as it addresses
 * a Table-1 benchmark, and two processes that parse the same name
 * build byte-identical programs.
 *
 * The encoding is colon/dot-separated (never commas) so spec names
 * survive the CSV outputs of run_sweep/simd_client unquoted.
 */
#ifndef RFV_GEN_GEN_SPEC_H
#define RFV_GEN_GEN_SPEC_H

#include <string>
#include <vector>

#include "common/types.h"

namespace rfv {

/** Name prefix that routes a workload string to the generator. */
inline constexpr const char *kGenWorkloadPrefix = "gen:";

/** Words in the read-only input region of every generated kernel. */
inline constexpr u32 kGenInputWords = 4096;

/** Everything the kernel generator consults.  Deterministic identity. */
struct GenSpec {
    u64 seed = 1; //!< root of the generator's SeedSeq streams

    // ---- CFG shape -----------------------------------------------------
    u32 depth = 2;        //!< max nesting depth for loops/ifs
    u32 blocks = 8;       //!< top-level constructs
    u32 loopWeight = 2;   //!< relative weight of loop constructs
    u32 branchWeight = 3; //!< relative weight of if/else constructs

    // ---- register-pressure profile -------------------------------------
    u32 regs = 16;      //!< virtual value registers (>= 4)
    u32 longLived = 4;  //!< regs folded into the final checksum (kept
                        //!< live to the kernel's last instruction)

    // ---- memory intensity ----------------------------------------------
    u32 memWeight = 3;     //!< relative weight of global-load constructs
    u32 auxStores = 0;     //!< extra per-thread output words (aux stg)
    bool exchanges = false; //!< shared-memory exchange stages (pow2 CTA)
    bool earlyExits = true; //!< guarded per-lane exit constructs

    // ---- launch geometry -----------------------------------------------
    u32 ctas = 8;
    u32 threadsPerCta = 64;
    u32 concCtasPerSm = 4;

    /**
     * IR node ids dropped before lowering (delta-debugging shrink
     * state).  Pruning never perturbs the RNG: the IR is built in
     * full first, then pruned, so the surviving constructs are
     * byte-identical to the unpruned kernel's.  Kept sorted/unique by
     * validate().
     */
    std::vector<u32> prune;

    bool operator==(const GenSpec &) const = default;

    /**
     * Canonical name, e.g.
     * `gen:s5:d2:b8:r16:l4:w2.3.3:a0:x01:g8x64x4:p3.17`.
     * parse(name(x)) == x for every valid spec.
     */
    std::string name() const;

    /**
     * Parse a canonical name.  Returns false with @p error set on
     * anything malformed (wrong prefix, unknown field, missing field,
     * unparsable number) — never a silent default.
     */
    static bool parse(const std::string &name, GenSpec &spec,
                      std::string &error);

    /**
     * Clamp-free strict validation; throws ConfigError on impossible
     * knobs (zero geometry, non-power-of-two CTA with exchanges,
     * pressure bounds).  Also canonicalizes the prune list
     * (sort + dedup) so equal kernels have equal names.
     */
    void validate();
};

} // namespace rfv

#endif // RFV_GEN_GEN_SPEC_H
