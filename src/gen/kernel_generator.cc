#include "gen/kernel_generator.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "isa/builder.h"

namespace rfv {

namespace {

// SeedSeq child-stream indices of one spec's root.  Frozen: these
// feed committed corpus entries and golden program hashes.
constexpr u64 kStreamInit = 0;  //!< vreg prologue constants
constexpr u64 kStreamBody = 1;  //!< construct tree
constexpr u64 kStreamInput = 2; //!< input-region content
constexpr u64 kStreamOut = 3;   //!< initial output-region pattern

/** Stateful IR builder walking the construct grammar. */
class IrBuilder {
  public:
    explicit IrBuilder(const GenSpec &spec)
        : spec_(spec), rng_(SeedSeq(spec.seed).child(kStreamBody).rng())
    {
    }

    GenIr
    run()
    {
        GenIr ir;
        ir.spec = spec_;

        Rng initRng = SeedSeq(spec_.seed).child(kStreamInit).rng();
        ir.init.resize(spec_.regs);
        for (GenInit &init : ir.init) {
            // Odd multiplier: gtid*mulA is a bijection mod 2^32, so
            // every thread starts from distinct register values.
            init.mulA = static_cast<u32>(initRng.next64()) | 1u;
            init.addB = static_cast<u32>(initRng.next64());
        }

        ir.top.reserve(spec_.blocks);
        for (u32 i = 0; i < spec_.blocks; ++i)
            ir.top.push_back(construct(0));
        ir.numNodes = nextId_;

        applyPrune(ir.top);
        return ir;
    }

  private:
    u32
    pickReg()
    {
        return static_cast<u32>(rng_.below(spec_.regs));
    }

    GenSrc
    pickSrc()
    {
        if (rng_.chance(1, 4))
            return GenSrc::immediate(
                static_cast<u32>(rng_.below(1u << 16)));
        return GenSrc::reg(pickReg());
    }

    CmpOp
    pickCmp()
    {
        return static_cast<CmpOp>(rng_.below(6));
    }

    GenNode
    makeNode(GenNode::Kind kind)
    {
        GenNode n;
        n.kind = kind;
        n.id = nextId_++;
        return n;
    }

    GenNode
    arith()
    {
        GenNode n = makeNode(GenNode::Kind::kArith);
        n.op = static_cast<GenOp>(rng_.below(11));
        n.dst = pickReg();
        n.a = pickSrc();
        n.b = pickSrc();
        if (n.op == GenOp::kMad)
            n.c = pickSrc();
        return n;
    }

    GenNode
    load()
    {
        GenNode n = makeNode(GenNode::Kind::kLoad);
        n.dst = pickReg();
        n.a = GenSrc::reg(pickReg());
        n.salt = static_cast<u32>(rng_.below(1u << 16));
        return n;
    }

    GenNode
    ifElse(u32 depth)
    {
        GenNode n = makeNode(GenNode::Kind::kIf);
        n.a = GenSrc::reg(pickReg());
        n.cmp = pickCmp();
        n.imm = static_cast<u32>(rng_.below(64));
        body(n.body, depth + 1);
        if (rng_.chance(3, 4))
            body(n.elseBody, depth + 1);
        return n;
    }

    GenNode
    loop(u32 depth)
    {
        GenNode n = makeNode(GenNode::Kind::kLoop);
        n.divergent = rng_.chance(1, 2);
        n.trip = 2 + static_cast<u32>(rng_.below(3));
        body(n.body, depth + 1);
        return n;
    }

    GenNode
    exchange()
    {
        GenNode n = makeNode(GenNode::Kind::kExchange);
        n.a = GenSrc::reg(pickReg());
        n.dst = pickReg();
        n.offset =
            1 + static_cast<u32>(rng_.below(spec_.threadsPerCta - 1));
        return n;
    }

    GenNode
    earlyExit()
    {
        GenNode n = makeNode(GenNode::Kind::kEarlyExit);
        // Half the draws name a tid outside the CTA: no lane exits,
        // but the guarded-exit CFG edge still exists.
        n.salt =
            static_cast<u32>(rng_.below(2ull * spec_.threadsPerCta));
        return n;
    }

    GenNode
    auxStore()
    {
        GenNode n = makeNode(GenNode::Kind::kAuxStore);
        n.aux = 1 + static_cast<u32>(rng_.below(spec_.auxStores));
        n.a = GenSrc::reg(pickReg());
        return n;
    }

    void
    body(std::vector<GenNode> &out, u32 depth)
    {
        const u32 constructs = 1 + static_cast<u32>(rng_.below(3));
        out.reserve(constructs);
        for (u32 i = 0; i < constructs; ++i)
            out.push_back(construct(depth));
    }

    GenNode
    construct(u32 depth)
    {
        // Weighted pick over the constructs legal at this depth.  The
        // weight table is consulted in a fixed order so the RNG
        // consumption is a pure function of (spec, position).
        const bool nested = depth < spec_.depth;
        const bool top = depth == 0;
        const u32 wArith = 6;
        const u32 wLoad = spec_.memWeight;
        const u32 wIf = nested ? spec_.branchWeight : 0;
        const u32 wLoop = nested ? spec_.loopWeight : 0;
        const u32 wExch = (top && spec_.exchanges) ? 2 : 0;
        const u32 wBar = top ? 1 : 0;
        const u32 wExit = (top && spec_.earlyExits) ? 1 : 0;
        const u32 wAux = (top && spec_.auxStores > 0) ? 1 : 0;
        const u32 total = wArith + wLoad + wIf + wLoop + wExch + wBar +
                          wExit + wAux;
        u32 roll = static_cast<u32>(rng_.below(total));

        if (roll < wArith)
            return arith();
        roll -= wArith;
        if (roll < wLoad)
            return load();
        roll -= wLoad;
        if (roll < wIf)
            return ifElse(depth);
        roll -= wIf;
        if (roll < wLoop)
            return loop(depth);
        roll -= wLoop;
        if (roll < wExch)
            return exchange();
        roll -= wExch;
        if (roll < wBar)
            return makeNode(GenNode::Kind::kBarrier);
        roll -= wBar;
        if (roll < wExit)
            return earlyExit();
        return auxStore();
    }

    /** Drop every node whose id is in the spec's prune list. */
    void
    applyPrune(std::vector<GenNode> &nodes)
    {
        if (spec_.prune.empty())
            return;
        const auto pruned = [this](const GenNode &n) {
            return std::binary_search(spec_.prune.begin(),
                                      spec_.prune.end(), n.id);
        };
        nodes.erase(
            std::remove_if(nodes.begin(), nodes.end(), pruned),
            nodes.end());
        for (GenNode &n : nodes) {
            applyPrune(n.body);
            applyPrune(n.elseBody);
        }
    }

    const GenSpec &spec_;
    Rng rng_;
    u32 nextId_ = 0;
};

/** Lowers a pruned IR to builder calls. */
class Lowering {
  public:
    explicit Lowering(const GenIr &ir)
        : ir_(ir), spec_(ir.spec), b_(spec_.name())
    {
    }

    Program
    run()
    {
        // Fixed register file layout: the virtual registers first (so
        // the pressure knob directly sets the low ids the renamer
        // sees), then the addressing/scratch registers, then one
        // counter + limit pair per loop-nesting level.
        for (u32 i = 0; i < spec_.regs; ++i)
            vreg_.push_back(b_.reg());
        tid_ = b_.reg();
        gtid_ = b_.reg();
        outAddr_ = b_.reg();
        scratch_ = b_.reg();
        xtmp_ = b_.reg();
        for (u32 d = 0; d <= spec_.depth; ++d) {
            counter_.push_back(b_.reg());
            limit_.push_back(b_.reg());
        }
        if (spec_.exchanges)
            b_.setSharedMem(spec_.threadsPerCta * 4);

        // Prologue: thread identity, output address, vreg init.
        b_.s2r(tid_, SpecialReg::kTid);
        b_.s2r(gtid_, SpecialReg::kCtaId);
        b_.s2r(scratch_, SpecialReg::kNTid);
        b_.imad(gtid_, R(gtid_), R(scratch_), R(tid_));
        b_.iadd(outAddr_, R(gtid_), I(kGenInputWords));
        b_.shl(outAddr_, R(outAddr_), I(2));
        for (u32 i = 0; i < spec_.regs; ++i) {
            b_.mov(vreg_[i], I(ir_.init[i].addB));
            b_.imad(vreg_[i], R(gtid_), I(ir_.init[i].mulA),
                    R(vreg_[i]));
        }

        for (const GenNode &n : ir_.top)
            lower(n, 0);

        // Checksum epilogue: fold the long-lived band into vreg[0]
        // (keeping those registers live to the last instruction),
        // store the checksum to this thread's output word, exit.
        const u32 first =
            std::max(1u, spec_.regs - spec_.longLived);
        for (u32 i = first; i < spec_.regs; ++i)
            b_.xor_(vreg_[0], R(vreg_[0]), R(vreg_[i]));
        b_.stg(outAddr_, 0, vreg_[0]);
        b_.exit();
        return b_.build();
    }

  private:
    Operand
    src(const GenSrc &s) const
    {
        return s.imm ? I(s.v) : R(vreg_[s.v]);
    }

    void
    lowerArith(const GenNode &n)
    {
        const u32 d = vreg_[n.dst];
        const Operand a = src(n.a);
        const Operand b = src(n.b);
        switch (n.op) {
          case GenOp::kAdd: b_.iadd(d, a, b); break;
          case GenOp::kSub: b_.isub(d, a, b); break;
          case GenOp::kMul: b_.imul(d, a, b); break;
          case GenOp::kMad: b_.imad(d, a, b, src(n.c)); break;
          case GenOp::kMin: b_.imin(d, a, b); break;
          case GenOp::kMax: b_.imax(d, a, b); break;
          case GenOp::kAnd: b_.and_(d, a, b); break;
          case GenOp::kOr: b_.or_(d, a, b); break;
          case GenOp::kXor: b_.xor_(d, a, b); break;
          case GenOp::kShl: b_.shl(d, a, b); break;
          case GenOp::kShr: b_.shr(d, a, b); break;
        }
    }

    void
    lowerLoad(const GenNode &n)
    {
        b_.xor_(scratch_, R(vreg_[n.a.v]), I(n.salt));
        b_.and_(scratch_, R(scratch_), I(kGenInputWords - 1));
        b_.shl(scratch_, R(scratch_), I(2));
        b_.ldg(vreg_[n.dst], scratch_, 0);
    }

    void
    lowerIf(const GenNode &n, u32 depth)
    {
        const u32 p = depth & 3;
        const std::string elseL = "e" + std::to_string(n.id);
        const std::string joinL = "j" + std::to_string(n.id);
        b_.setp(p, n.cmp, R(vreg_[n.a.v]), I(n.imm));
        b_.guard(static_cast<i32>(p), true).bra(elseL);
        for (const GenNode &child : n.body)
            lower(child, depth + 1);
        b_.bra(joinL);
        b_.label(elseL);
        for (const GenNode &child : n.elseBody)
            lower(child, depth + 1);
        b_.label(joinL);
    }

    void
    lowerLoop(const GenNode &n, u32 depth)
    {
        // Counter and divergent limit live in per-depth dedicated
        // registers the body cannot clobber (vregs are disjoint), so
        // the trip count is always bounded.
        const u32 p = 4 + (depth & 3);
        const u32 counter = counter_[std::min<size_t>(
            depth, counter_.size() - 1)];
        const u32 limit =
            limit_[std::min<size_t>(depth, limit_.size() - 1)];
        const std::string topL = "t" + std::to_string(n.id);
        b_.mov(counter, I(0));
        if (n.divergent)
            b_.and_(limit, R(tid_), I(3));
        b_.label(topL);
        for (const GenNode &child : n.body)
            lower(child, depth + 1);
        b_.iadd(counter, R(counter), I(1));
        if (n.divergent)
            b_.setp(p, CmpOp::kLe, R(counter), R(limit));
        else
            b_.setp(p, CmpOp::kLt, R(counter), I(n.trip));
        b_.guard(static_cast<i32>(p)).bra(topL);
    }

    void
    lowerExchange(const GenNode &n)
    {
        // shared[tid] = vreg[a]; bar;
        // vreg[dst] ^= shared[(tid + offset) & (ntid - 1)]; bar.
        // The second barrier keeps a later stage's stores from racing
        // this stage's reads.
        b_.shl(scratch_, R(tid_), I(2));
        b_.sts(scratch_, 0, vreg_[n.a.v]);
        b_.bar();
        b_.s2r(xtmp_, SpecialReg::kNTid);
        b_.isub(xtmp_, R(xtmp_), I(1));
        b_.iadd(scratch_, R(tid_), I(n.offset));
        b_.and_(scratch_, R(scratch_), R(xtmp_));
        b_.shl(scratch_, R(scratch_), I(2));
        b_.lds(scratch_, scratch_, 0);
        b_.xor_(vreg_[n.dst], R(vreg_[n.dst]), R(scratch_));
        b_.bar();
    }

    void
    lowerEarlyExit(const GenNode &n)
    {
        b_.setp(3, CmpOp::kEq, R(tid_), I(n.salt));
        b_.guard(3);
        b_.exit();
    }

    void
    lowerAuxStore(const GenNode &n)
    {
        // out[inputWords + aux*totalThreads + gtid] = vreg[a].  The
        // total thread count is computed at run time (nctaid * ntid)
        // so the program bytes stay independent of the launch scaling.
        b_.s2r(xtmp_, SpecialReg::kNCtaId);
        b_.s2r(scratch_, SpecialReg::kNTid);
        b_.imul(xtmp_, R(xtmp_), R(scratch_));
        b_.imul(xtmp_, R(xtmp_), I(n.aux));
        b_.iadd(xtmp_, R(xtmp_), R(gtid_));
        b_.iadd(xtmp_, R(xtmp_), I(kGenInputWords));
        b_.shl(xtmp_, R(xtmp_), I(2));
        b_.stg(xtmp_, 0, vreg_[n.a.v]);
    }

    void
    lower(const GenNode &n, u32 depth)
    {
        switch (n.kind) {
          case GenNode::Kind::kArith: lowerArith(n); break;
          case GenNode::Kind::kLoad: lowerLoad(n); break;
          case GenNode::Kind::kIf: lowerIf(n, depth); break;
          case GenNode::Kind::kLoop: lowerLoop(n, depth); break;
          case GenNode::Kind::kExchange: lowerExchange(n); break;
          case GenNode::Kind::kBarrier: b_.bar(); break;
          case GenNode::Kind::kEarlyExit: lowerEarlyExit(n); break;
          case GenNode::Kind::kAuxStore: lowerAuxStore(n); break;
        }
    }

    const GenIr &ir_;
    const GenSpec &spec_;
    KernelBuilder b_;
    std::vector<u32> vreg_;
    std::vector<u32> counter_, limit_;
    u32 tid_ = 0, gtid_ = 0, outAddr_ = 0, scratch_ = 0, xtmp_ = 0;
};

void
collectIds(const std::vector<GenNode> &nodes, std::vector<u32> &out)
{
    for (const GenNode &n : nodes) {
        out.push_back(n.id);
        collectIds(n.body, out);
        collectIds(n.elseBody, out);
    }
}

} // namespace

GenIr
buildGenIr(const GenSpec &spec)
{
    GenSpec validated = spec;
    validated.validate();
    return IrBuilder(validated).run();
}

Program
lowerGenIr(const GenIr &ir)
{
    return Lowering(ir).run();
}

std::vector<u32>
genInputWords(const GenSpec &spec)
{
    Rng rng = SeedSeq(spec.seed).child(kStreamInput).rng();
    std::vector<u32> words(kGenInputWords);
    for (u32 &w : words)
        w = static_cast<u32>(rng.next64());
    return words;
}

u32
genInitialOutputWord(const GenSpec &spec, u32 index)
{
    // Random-access derivation: early-exited threads must leave their
    // word untouched, so the reference needs the pre-kernel value of
    // any output word without streaming through the whole region.
    return static_cast<u32>(
        SeedSeq(spec.seed).child(kStreamOut).child(index).seed());
}

std::vector<u32>
collectNodeIds(const GenIr &ir)
{
    std::vector<u32> ids;
    collectIds(ir.top, ids);
    return ids;
}

} // namespace rfv
