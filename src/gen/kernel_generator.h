/**
 * @file
 * Deterministic, seed-addressed kernel generator.
 *
 * Generation is split into three layers so the same intermediate
 * representation drives both the simulated program and its host-side
 * oracle:
 *
 *   GenSpec --buildGenIr--> GenIr --lowerGenIr--------> Program
 *                                 --referenceOutput--> expected memory
 *
 * The IR is a tree of structured constructs (straight-line ALU ops,
 * data-dependent loads, if/else with reconvergence, counted and
 * divergent loops, shared-memory exchanges, barriers, guarded early
 * exits, auxiliary stores).  Every node carries a stable preorder id;
 * the minimizer shrinks kernels by *pruning* subtrees by id, which
 * never perturbs the RNG draws of the surviving nodes — the shrunken
 * kernel is byte-identical to the original minus the pruned code.
 *
 * Self-checking contract: every thread folds its live registers into a
 * checksum and stores it to its private output word; the host-side
 * reference (reference.h) computes the same value from the same IR by
 * independent interpretation, and the workload adapter compares the
 * full output image word by word after simulation.
 *
 * Determinism contract: buildGenIr/lowerGenIr are pure functions of
 * the spec — no globals, no pointers hashed, no iteration-order
 * dependence — so any process, thread, or `-j` level produces
 * byte-identical programs for the same spec (tests/test_gen.cc pins
 * golden program hashes).
 */
#ifndef RFV_GEN_KERNEL_GENERATOR_H
#define RFV_GEN_KERNEL_GENERATOR_H

#include <vector>

#include "gen/gen_spec.h"
#include "isa/program.h"

namespace rfv {

/** IR arithmetic ops (all u32 lane semantics, like the machine). */
enum class GenOp : u8 {
    kAdd,
    kSub,
    kMul,
    kMad, // d = a*b + c
    kMin, // signed
    kMax, // signed
    kAnd,
    kOr,
    kXor,
    kShl, // count masked & 31
    kShr, // logical, count masked & 31
};

/** IR source operand: a virtual register index or an immediate. */
struct GenSrc {
    bool imm = false;
    u32 v = 0; //!< virtual register index, or immediate value

    static GenSrc reg(u32 r) { return {false, r}; }
    static GenSrc immediate(u32 val) { return {true, val}; }
};

/** One structured IR construct. */
struct GenNode {
    enum class Kind : u8 {
        kArith,    //!< vreg[dst] = op(a, b[, c])
        kLoad,     //!< vreg[dst] = input[(vreg[a] ^ salt) & mask]
        kIf,       //!< if (vreg[a] cmp imm) body else elseBody
        kLoop,     //!< counted or divergent (tid & 3) trip count
        kExchange, //!< shared[tid] = vreg[a]; bar; vreg[dst] ^= neighbour
        kBarrier,  //!< CTA barrier (top level only)
        kEarlyExit, //!< lanes with tid == salt retire here
        kAuxStore, //!< out[aux*threads + gtid] = vreg[a]
    };

    Kind kind = Kind::kArith;
    u32 id = 0; //!< stable preorder id (prune handle)

    GenOp op = GenOp::kAdd; //!< kArith
    u32 dst = 0;            //!< kArith / kLoad / kExchange
    GenSrc a, b, c;         //!< operands (a.v = source vreg for most kinds)
    u32 salt = 0;           //!< kLoad address salt / kEarlyExit tid
    CmpOp cmp = CmpOp::kEq; //!< kIf condition
    u32 imm = 0;            //!< kIf comparison immediate
    bool divergent = false; //!< kLoop: trip = tid & 3 instead of a constant
    u32 trip = 2;           //!< kLoop constant trip count
    u32 offset = 1;         //!< kExchange neighbour distance
    u32 aux = 1;            //!< kAuxStore output plane [1, auxStores]

    std::vector<GenNode> body;     //!< kIf then / kLoop body
    std::vector<GenNode> elseBody; //!< kIf else
};

/** Per-vreg prologue initialisation: vreg[i] = gtid * mulA + addB. */
struct GenInit {
    u32 mulA = 1;
    u32 addB = 0;
};

/** The generated kernel, pre-lowering. */
struct GenIr {
    GenSpec spec;              //!< the identity this IR was built from
    std::vector<GenInit> init; //!< one per virtual register
    std::vector<GenNode> top;  //!< top-level construct list (pruned)
    u32 numNodes = 0;          //!< ids assigned before pruning
};

/**
 * Build the IR for @p spec (validated copy), applying its prune list.
 * Pure function of the spec.
 */
GenIr buildGenIr(const GenSpec &spec);

/** Lower @p ir to an executable Program.  Pure function of the IR. */
Program lowerGenIr(const GenIr &ir);

/** Deterministic input-region content for @p spec (kGenInputWords). */
std::vector<u32> genInputWords(const GenSpec &spec);

/**
 * Initial value of output word @p index (the value early-exited
 * threads leave behind; setup() pre-fills the region with these).
 */
u32 genInitialOutputWord(const GenSpec &spec, u32 index);

/** All node ids present in @p ir (preorder; prune candidates). */
std::vector<u32> collectNodeIds(const GenIr &ir);

} // namespace rfv

#endif // RFV_GEN_KERNEL_GENERATOR_H
