#include "gen/minimize.h"

#include <algorithm>

#include "gen/kernel_generator.h"

namespace rfv {

namespace {

/** Budget-capped predicate wrapper. */
class Tester {
  public:
    Tester(const std::function<bool(const GenSpec &)> &pred, u32 budget)
        : pred_(pred), budget_(budget)
    {
    }

    bool
    fails(const GenSpec &candidate)
    {
        if (testsRun_ >= budget_)
            return false; // out of budget: treat as "does not reproduce"
        ++testsRun_;
        return pred_(candidate);
    }

    u32 testsRun() const { return testsRun_; }
    bool exhausted() const { return testsRun_ >= budget_; }

  private:
    const std::function<bool(const GenSpec &)> &pred_;
    const u32 budget_;
    u32 testsRun_ = 0;
};

/**
 * Knob-shrinking pass: each transform proposes a strictly smaller
 * spec; accepted shrinks restart the scan (a smaller kernel may make
 * previously rejected shrinks viable).  Every transform clears the
 * prune list — node ids do not survive a knob change.
 */
GenSpec
shrinkKnobs(GenSpec spec, Tester &tester)
{
    using Transform = bool (*)(GenSpec &);
    // Ordered most-drastic first: dropping whole feature classes
    // before trimming counts converges in fewer predicate calls.
    static constexpr Transform kTransforms[] = {
        [](GenSpec &s) {
            if (s.blocks <= 1)
                return false;
            s.blocks /= 2;
            return true;
        },
        [](GenSpec &s) {
            if (s.depth == 0)
                return false;
            --s.depth;
            return true;
        },
        [](GenSpec &s) {
            if (!s.exchanges)
                return false;
            s.exchanges = false;
            return true;
        },
        [](GenSpec &s) {
            if (!s.earlyExits)
                return false;
            s.earlyExits = false;
            return true;
        },
        [](GenSpec &s) {
            if (s.auxStores == 0)
                return false;
            s.auxStores = 0;
            return true;
        },
        [](GenSpec &s) {
            if (s.memWeight == 0)
                return false;
            s.memWeight = 0;
            return true;
        },
        [](GenSpec &s) {
            if (s.loopWeight == 0)
                return false;
            s.loopWeight = 0;
            return true;
        },
        [](GenSpec &s) {
            if (s.branchWeight == 0)
                return false;
            s.branchWeight = 0;
            return true;
        },
        [](GenSpec &s) {
            if (s.regs <= 4)
                return false;
            s.regs = std::max(4u, s.regs / 2);
            s.longLived = std::min(s.longLived, s.regs);
            return true;
        },
        [](GenSpec &s) {
            if (s.longLived == 0)
                return false;
            s.longLived = 0;
            return true;
        },
        [](GenSpec &s) {
            if (s.ctas <= 1)
                return false;
            s.ctas /= 2;
            return true;
        },
        [](GenSpec &s) {
            // Halving keeps a power of two (exchange constraint).
            if (s.threadsPerCta <= 32)
                return false;
            s.threadsPerCta /= 2;
            return true;
        },
        [](GenSpec &s) {
            if (s.concCtasPerSm <= 1)
                return false;
            s.concCtasPerSm /= 2;
            return true;
        },
    };

    bool progress = true;
    while (progress && !tester.exhausted()) {
        progress = false;
        for (const Transform &transform : kTransforms) {
            GenSpec candidate = spec;
            candidate.prune.clear();
            if (!transform(candidate))
                continue;
            candidate.validate();
            if (tester.fails(candidate)) {
                spec = candidate;
                progress = true;
            }
        }
    }
    return spec;
}

/**
 * ddmin-style node pruning: try removing chunks of the surviving node
 * ids (halving the chunk size down to single nodes) while the failure
 * reproduces.  Pruning a parent id drops its whole subtree, so large
 * chunks converge quickly on tree-shaped kernels.
 */
GenSpec
pruneNodes(GenSpec spec, Tester &tester)
{
    std::vector<u32> alive = collectNodeIds(buildGenIr(spec));
    size_t chunk = std::max<size_t>(1, alive.size() / 2);
    while (!alive.empty() && !tester.exhausted()) {
        bool progress = false;
        for (size_t at = 0; at < alive.size() && !tester.exhausted();) {
            const size_t n = std::min(chunk, alive.size() - at);
            GenSpec candidate = spec;
            candidate.prune.insert(candidate.prune.end(),
                                   alive.begin() + static_cast<long>(at),
                                   alive.begin() + static_cast<long>(at + n));
            candidate.validate(); // re-sorts/dedups the prune list
            if (tester.fails(candidate)) {
                spec = std::move(candidate);
                alive.erase(alive.begin() + static_cast<long>(at),
                            alive.begin() + static_cast<long>(at + n));
                progress = true;
            } else {
                at += n;
            }
        }
        if (chunk == 1 && !progress)
            break;
        chunk = std::max<size_t>(1, chunk / 2);
    }
    return spec;
}

/**
 * Drop prune ids that do no work (descendants of an already-pruned
 * parent): an id earns its place iff the node reappears when the id
 * alone is lifted from the list.  Order-independent, predicate-free.
 */
GenSpec
canonicalizePrune(GenSpec spec)
{
    std::vector<u32> kept;
    for (u32 id : spec.prune) {
        GenSpec trial = spec;
        trial.prune.erase(
            std::remove(trial.prune.begin(), trial.prune.end(), id),
            trial.prune.end());
        const std::vector<u32> alive = collectNodeIds(buildGenIr(trial));
        if (std::find(alive.begin(), alive.end(), id) != alive.end())
            kept.push_back(id);
    }
    spec.prune = std::move(kept);
    spec.validate();
    return spec;
}

} // namespace

MinimizeResult
minimizeSpec(const GenSpec &start,
             const std::function<bool(const GenSpec &)> &stillFails,
             u32 budget)
{
    Tester tester(stillFails, budget);
    // Knobs first: a knob change invalidates node ids (the IR is
    // rebuilt), so pruning must come after the knob set has settled.
    GenSpec spec = shrinkKnobs(start, tester);
    spec = pruneNodes(std::move(spec), tester);
    spec = canonicalizePrune(std::move(spec));
    return {std::move(spec), tester.testsRun()};
}

} // namespace rfv
