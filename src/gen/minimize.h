/**
 * @file
 * Delta-debugging minimizer for generated-kernel failures.
 *
 * Shrinks a failing GenSpec along two axes while a caller-supplied
 * predicate keeps reproducing the failure:
 *
 *   1. knob shrinking — halve/clear the spec's generation knobs
 *      (blocks, depth, weights, registers, geometry, feature toggles).
 *      Each accepted shrink rebuilds the IR from scratch, so the prune
 *      list is reset alongside (node ids are only stable for a fixed
 *      knob set).
 *   2. node pruning — ddmin-style chunked removal of IR subtrees by
 *      stable preorder id.  Pruning never perturbs the RNG draws of
 *      surviving nodes (the IR is built in full, then pruned), so the
 *      surviving code is byte-identical and the failure predicate
 *      shrinks monotonically toward a minimal construct set.
 *
 * The result is a spec whose canonical name *is* the reproducer: it
 * replays the minimal kernel exactly, from any process, and is what
 * gets committed to the regression corpus.
 */
#ifndef RFV_GEN_MINIMIZE_H
#define RFV_GEN_MINIMIZE_H

#include <functional>

#include "gen/gen_spec.h"

namespace rfv {

struct MinimizeResult {
    GenSpec spec;     //!< smallest spec that still fails
    u32 testsRun = 0; //!< predicate evaluations spent
};

/**
 * Shrink @p start under @p stillFails (true = candidate still
 * reproduces).  @p start itself must fail; at most @p budget predicate
 * evaluations are spent.  Deterministic: candidate order is a pure
 * function of the specs visited.
 */
MinimizeResult minimizeSpec(const GenSpec &start,
                            const std::function<bool(const GenSpec &)>
                                &stillFails,
                            u32 budget = 400);

} // namespace rfv

#endif // RFV_GEN_MINIMIZE_H
