#include "gen/reference.h"

#include <algorithm>

namespace rfv {

namespace {

/**
 * One CTA's interpretation state.  Top-level constructs execute in
 * CTA-lockstep phases (matching the barrier placement in the lowered
 * program); nested constructs are purely thread-local and run each
 * thread to completion independently.
 */
class CtaInterp {
  public:
    CtaInterp(const GenIr &ir, const std::vector<u32> &input, u32 ctaId,
              u32 gridCtas, u32 threadsPerCta, std::vector<u32> &out)
        : ir_(ir), input_(input), ctaId_(ctaId), gridCtas_(gridCtas),
          tpc_(threadsPerCta), out_(out)
    {
    }

    void
    run()
    {
        const u32 regs = ir_.spec.regs;
        vregs_.assign(static_cast<size_t>(tpc_) * regs, 0);
        exited_.assign(tpc_, false);
        shared_.assign(tpc_, 0); // zero-filled at CTA launch (sm.cc)

        for (u32 t = 0; t < tpc_; ++t) {
            const u32 gtid = ctaId_ * tpc_ + t;
            for (u32 i = 0; i < regs; ++i)
                vreg(t, i) =
                    gtid * ir_.init[i].mulA + ir_.init[i].addB;
        }

        // Top-level constructs phase by phase: exchanges and barriers
        // synchronise the whole CTA, everything else is thread-local.
        for (const GenNode &n : ir_.top) {
            if (n.kind == GenNode::Kind::kExchange) {
                exchange(n);
                continue;
            }
            if (n.kind == GenNode::Kind::kBarrier)
                continue; // pure synchronisation, no data effect
            for (u32 t = 0; t < tpc_; ++t)
                if (!exited_[t])
                    exec(n, t);
        }

        // Checksum epilogue for threads that reached the end.
        const u32 first = std::max(1u, regs - ir_.spec.longLived);
        for (u32 t = 0; t < tpc_; ++t) {
            if (exited_[t])
                continue;
            u32 acc = vreg(t, 0);
            for (u32 i = first; i < regs; ++i)
                acc ^= vreg(t, i);
            out_[ctaId_ * tpc_ + t] = acc;
        }
    }

  private:
    u32 &
    vreg(u32 t, u32 i)
    {
        return vregs_[static_cast<size_t>(t) * ir_.spec.regs + i];
    }

    u32
    srcVal(u32 t, const GenSrc &s)
    {
        return s.imm ? s.v : vreg(t, s.v);
    }

    void
    arith(const GenNode &n, u32 t)
    {
        const u32 a = srcVal(t, n.a);
        const u32 b = srcVal(t, n.b);
        u32 r = 0;
        switch (n.op) {
          case GenOp::kAdd: r = a + b; break;
          case GenOp::kSub: r = a - b; break;
          case GenOp::kMul: r = a * b; break;
          case GenOp::kMad: r = a * b + srcVal(t, n.c); break;
          case GenOp::kMin:
            r = static_cast<u32>(std::min(static_cast<i32>(a),
                                          static_cast<i32>(b)));
            break;
          case GenOp::kMax:
            r = static_cast<u32>(std::max(static_cast<i32>(a),
                                          static_cast<i32>(b)));
            break;
          case GenOp::kAnd: r = a & b; break;
          case GenOp::kOr: r = a | b; break;
          case GenOp::kXor: r = a ^ b; break;
          case GenOp::kShl: r = a << (b & 31); break;
          case GenOp::kShr: r = a >> (b & 31); break;
        }
        vreg(t, n.dst) = r;
    }

    bool
    cond(const GenNode &n, u32 t)
    {
        // kLt/kLe/kGt/kGe are signed on the machine (cmpMask).
        const i32 a = static_cast<i32>(vreg(t, n.a.v));
        const i32 b = static_cast<i32>(n.imm);
        switch (n.cmp) {
          case CmpOp::kEq: return a == b;
          case CmpOp::kNe: return a != b;
          case CmpOp::kLt: return a < b;
          case CmpOp::kLe: return a <= b;
          case CmpOp::kGt: return a > b;
          case CmpOp::kGe: return a >= b;
        }
        return false;
    }

    void
    exec(const GenNode &n, u32 t)
    {
        switch (n.kind) {
          case GenNode::Kind::kArith:
            arith(n, t);
            break;
          case GenNode::Kind::kLoad:
            vreg(t, n.dst) =
                input_[(vreg(t, n.a.v) ^ n.salt) &
                       (kGenInputWords - 1)];
            break;
          case GenNode::Kind::kIf: {
            const auto &taken = cond(n, t) ? n.body : n.elseBody;
            for (const GenNode &child : taken)
                exec(child, t);
            break;
          }
          case GenNode::Kind::kLoop: {
            const u32 trips = n.divergent ? ((t & 3) + 1) : n.trip;
            for (u32 i = 0; i < trips; ++i)
                for (const GenNode &child : n.body)
                    exec(child, t);
            break;
          }
          case GenNode::Kind::kEarlyExit:
            if (t == n.salt)
                exited_[t] = true;
            break;
          case GenNode::Kind::kAuxStore: {
            const u32 total = gridCtas_ * tpc_;
            out_[n.aux * total + ctaId_ * tpc_ + t] = vreg(t, n.a.v);
            break;
          }
          case GenNode::Kind::kExchange:
          case GenNode::Kind::kBarrier:
            break; // top level only; handled by run()
        }
    }

    void
    exchange(const GenNode &n)
    {
        // Phase 1: every live thread publishes; exited threads leave
        // their slot's previous content (zero or an older exchange).
        for (u32 t = 0; t < tpc_; ++t)
            if (!exited_[t])
                shared_[t] = vreg(t, n.a.v);
        // Phase 2: every live thread folds in its neighbour's word
        // (reads only — no write-after-read hazard to snapshot).
        for (u32 t = 0; t < tpc_; ++t)
            if (!exited_[t])
                vreg(t, n.dst) ^=
                    shared_[(t + n.offset) & (tpc_ - 1)];
    }

    const GenIr &ir_;
    const std::vector<u32> &input_;
    const u32 ctaId_, gridCtas_, tpc_;
    std::vector<u32> &out_;
    std::vector<u32> vregs_;
    std::vector<u32> shared_;
    std::vector<bool> exited_;
};

} // namespace

std::vector<u32>
referenceOutput(const GenIr &ir, u32 gridCtas, u32 threadsPerCta)
{
    const u32 total = gridCtas * threadsPerCta;
    const u32 words = total * (1 + ir.spec.auxStores);
    std::vector<u32> out(words);
    for (u32 i = 0; i < words; ++i)
        out[i] = genInitialOutputWord(ir.spec, i);

    const std::vector<u32> input = genInputWords(ir.spec);
    for (u32 cta = 0; cta < gridCtas; ++cta)
        CtaInterp(ir, input, cta, gridCtas, threadsPerCta, out).run();
    return out;
}

} // namespace rfv
