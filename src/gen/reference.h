/**
 * @file
 * Host-side oracle for generated kernels.
 *
 * Interprets a GenIr with scalar per-thread semantics that mirror the
 * machine exactly (u32 wrap-around arithmetic, signed min/max and
 * compares, shift counts masked & 31, per-CTA zero-initialised shared
 * memory, early-exited lanes skipping all later side effects) and
 * returns the expected content of the kernel's output region.
 *
 * The interpreter is deliberately independent of src/sim: it never
 * models warps, schedulers, or the register file — only architectural
 * thread semantics — so a mismatch against the simulator localises a
 * bug to the execution pipeline rather than to a shared helper.
 */
#ifndef RFV_GEN_REFERENCE_H
#define RFV_GEN_REFERENCE_H

#include <vector>

#include "gen/kernel_generator.h"

namespace rfv {

/**
 * Expected output image for @p ir under the *actual* launch geometry
 * (`scaledLaunch` may cap the grid below `ir.spec.ctas`).  The image
 * covers words [kGenInputWords, kGenInputWords + totalThreads *
 * (1 + auxStores)) of the kernel's memory, indexed from zero:
 * word gtid is the thread's checksum, word aux*totalThreads + gtid its
 * aux-plane store.  Words of early-exited threads (and never-written
 * aux words) hold genInitialOutputWord().
 */
std::vector<u32> referenceOutput(const GenIr &ir, u32 gridCtas,
                                 u32 threadsPerCta);

} // namespace rfv

#endif // RFV_GEN_REFERENCE_H
