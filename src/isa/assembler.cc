#include "isa/assembler.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.h"
#include "isa/metadata.h"

namespace rfv {

namespace {

/** Cursor over one source line. */
class LineParser {
  public:
    LineParser(std::string text, u32 line_no)
        : text_(std::move(text)), lineNo_(line_no) {}

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal("asm line " + std::to_string(lineNo_) + ": " + msg +
              " in '" + text_ + "'");
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

    char
    peek()
    {
        skipSpace();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            error(std::string("expected '") + c + "'");
    }

    /** Read an identifier-like token: [A-Za-z_.%][A-Za-z0-9_.]* */
    std::string
    ident()
    {
        skipSpace();
        std::string out;
        if (pos_ < text_.size() &&
            (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
             text_[pos_] == '_' || text_[pos_] == '.' ||
             text_[pos_] == '%')) {
            out += text_[pos_++];
        } else {
            error("expected identifier");
        }
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '.')) {
            out += text_[pos_++];
        }
        return out;
    }

    /** Parse a (possibly negative, possibly hex) integer. */
    i64
    integer()
    {
        skipSpace();
        std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        int base = 10;
        if (pos_ + 1 < text_.size() && text_[pos_] == '0' &&
            (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
            base = 16;
            pos_ += 2;
        }
        std::size_t digits_start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                (base == 16 &&
                 std::isxdigit(static_cast<unsigned char>(text_[pos_]))))) {
            ++pos_;
        }
        if (pos_ == digits_start)
            error("expected integer");
        const std::string token = text_.substr(start, pos_ - start);
        return std::stoll(token, nullptr, 0);
    }

    /** Parse rN. */
    u32
    regId()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != 'r')
            error("expected register");
        ++pos_;
        return static_cast<u32>(integer());
    }

    /** Parse pN. */
    u32
    predId()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != 'p')
            error("expected predicate");
        ++pos_;
        return static_cast<u32>(integer());
    }

    /** Parse a register or immediate source operand. */
    Operand
    operand()
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == 'r' &&
            pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            return Operand::reg(regId());
        }
        return Operand::imm(static_cast<u32>(integer()));
    }

    /** Remaining raw text (trimmed); used for labels in bra. */
    std::string
    rest()
    {
        skipSpace();
        std::string out = text_.substr(pos_);
        while (!out.empty() &&
               std::isspace(static_cast<unsigned char>(out.back()))) {
            out.pop_back();
        }
        pos_ = text_.size();
        return out;
    }

  private:
    std::string text_;
    std::size_t pos_ = 0;
    u32 lineNo_;
};

std::optional<CmpOp>
parseCmp(const std::string &s)
{
    if (s == "eq") return CmpOp::kEq;
    if (s == "ne") return CmpOp::kNe;
    if (s == "lt") return CmpOp::kLt;
    if (s == "le") return CmpOp::kLe;
    if (s == "gt") return CmpOp::kGt;
    if (s == "ge") return CmpOp::kGe;
    return std::nullopt;
}

std::optional<SpecialReg>
parseSreg(const std::string &s)
{
    if (s == "%tid") return SpecialReg::kTid;
    if (s == "%ctaid") return SpecialReg::kCtaId;
    if (s == "%ntid") return SpecialReg::kNTid;
    if (s == "%nctaid") return SpecialReg::kNCtaId;
    if (s == "%laneid") return SpecialReg::kLaneId;
    if (s == "%warpid") return SpecialReg::kWarpId;
    return std::nullopt;
}

std::optional<Opcode>
parseOpcode(const std::string &s)
{
    static const std::unordered_map<std::string, Opcode> table = {
        {"nop", Opcode::kNop},     {"mov", Opcode::kMov},
        {"iadd", Opcode::kIAdd},   {"isub", Opcode::kISub},
        {"imul", Opcode::kIMul},   {"imad", Opcode::kIMad},
        {"imin", Opcode::kIMin},   {"imax", Opcode::kIMax},
        {"shl", Opcode::kShl},     {"shr", Opcode::kShr},
        {"and", Opcode::kAnd},     {"or", Opcode::kOr},
        {"xor", Opcode::kXor},     {"fadd", Opcode::kFAdd},
        {"fmul", Opcode::kFMul},   {"ffma", Opcode::kFFma},
        {"frcp", Opcode::kFRcp},   {"psel", Opcode::kPSel},
        {"setp", Opcode::kSetP},
        {"s2r", Opcode::kS2R},     {"ldg", Opcode::kLdGlobal},
        {"stg", Opcode::kStGlobal},{"lds", Opcode::kLdShared},
        {"sts", Opcode::kStShared},{"ldl", Opcode::kLdLocal},
        {"stl", Opcode::kStLocal}, {"bra", Opcode::kBra},
        {"atom", Opcode::kAtomAdd},
        {"exit", Opcode::kExit},   {"bar", Opcode::kBar},
        {"pir", Opcode::kPir},     {"pbr", Opcode::kPbr},
    };
    auto it = table.find(s);
    if (it == table.end())
        return std::nullopt;
    return it->second;
}

std::string
stripComment(std::string line)
{
    for (const char *marker : {"//", "#", ";"}) {
        auto pos = line.find(marker);
        if (pos != std::string::npos)
            line = line.substr(0, pos);
    }
    return line;
}

} // namespace

Program
assemble(const std::string &source)
{
    std::istringstream in(source);
    std::string raw;
    u32 line_no = 0;

    std::string kernel_name = "kernel";
    u32 explicit_regs = 0;
    u32 shared_bytes = 0;
    std::vector<Instr> code;
    std::unordered_map<std::string, u32> labels;
    u32 local_slots = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = stripComment(raw);
        LineParser lp(line, line_no);
        if (lp.atEnd())
            continue;

        // Optional "pc:" numeric prefix emitted by the disassembler.
        {
            std::size_t i = 0;
            while (i < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[i]))) {
                ++i;
            }
            std::size_t j = i;
            while (j < line.size() &&
                   std::isdigit(static_cast<unsigned char>(line[j]))) {
                ++j;
            }
            if (j > i && j < line.size() && line[j] == ':') {
                line = line.substr(j + 1);
                lp = LineParser(line, line_no);
                if (lp.atEnd())
                    continue;
            }
        }

        // Directives.
        if (lp.peek() == '.') {
            const std::string dir = lp.ident();
            if (dir == ".kernel") {
                kernel_name = lp.rest();
            } else if (dir == ".regs") {
                explicit_regs = static_cast<u32>(lp.integer());
            } else if (dir == ".shared") {
                shared_bytes = static_cast<u32>(lp.integer());
            } else if (dir == ".local") {
                local_slots = static_cast<u32>(lp.integer());
            } else {
                lp.error("unknown directive " + dir);
            }
            continue;
        }

        // Label definition: "name:".
        {
            const auto colon = line.find(':');
            if (colon != std::string::npos) {
                // A colon with only identifier chars before it is a label.
                bool is_label = colon > 0;
                for (std::size_t i = 0; i < colon && is_label; ++i) {
                    const char c = line[i];
                    if (!(std::isalnum(static_cast<unsigned char>(c)) ||
                          c == '_' ||
                          std::isspace(static_cast<unsigned char>(c)))) {
                        is_label = false;
                    }
                }
                // Must not start with a digit (that's a pc prefix,
                // already stripped) and must contain a letter.
                if (is_label) {
                    std::string name;
                    for (std::size_t i = 0; i < colon; ++i)
                        if (!std::isspace(
                                static_cast<unsigned char>(line[i])))
                            name += line[i];
                    if (!name.empty() &&
                        !std::isdigit(
                            static_cast<unsigned char>(name[0]))) {
                        fatalIf(labels.count(name) != 0,
                                "asm line " + std::to_string(line_no) +
                                    ": duplicate label " + name);
                        labels[name] = static_cast<u32>(code.size());
                        line = line.substr(colon + 1);
                        lp = LineParser(line, line_no);
                        if (lp.atEnd())
                            continue;
                    }
                }
            }
        }

        Instr ins;

        // Optional guard.
        if (lp.consume('@')) {
            ins.guardNeg = lp.consume('!');
            ins.guardPred = static_cast<i32>(lp.predId());
        }

        std::string mnem = lp.ident();
        // setp.<cmp> carries the comparison as a suffix.
        std::string suffix;
        const auto dot = mnem.find('.');
        if (dot != std::string::npos) {
            suffix = mnem.substr(dot + 1);
            mnem = mnem.substr(0, dot);
        }

        const auto op = parseOpcode(mnem);
        if (!op)
            lp.error("unknown mnemonic " + mnem);
        ins.op = *op;

        switch (*op) {
          case Opcode::kNop:
          case Opcode::kExit:
          case Opcode::kBar:
            break;
          case Opcode::kSetP: {
            const auto cmp = parseCmp(suffix);
            if (!cmp)
                lp.error("setp needs a comparison suffix");
            ins.cmp = *cmp;
            ins.dstPred = static_cast<i32>(lp.predId());
            lp.expect(',');
            ins.src[0] = lp.operand();
            lp.expect(',');
            ins.src[1] = lp.operand();
            break;
          }
          case Opcode::kPSel:
            ins.dst = static_cast<i32>(lp.regId());
            lp.expect(',');
            ins.dstPred = static_cast<i32>(lp.predId());
            lp.expect(',');
            ins.src[0] = lp.operand();
            lp.expect(',');
            ins.src[1] = lp.operand();
            break;
          case Opcode::kS2R: {
            ins.dst = static_cast<i32>(lp.regId());
            lp.expect(',');
            const auto sreg = parseSreg(lp.ident());
            if (!sreg)
                lp.error("unknown special register");
            ins.sreg = *sreg;
            break;
          }
          case Opcode::kLdGlobal:
          case Opcode::kLdShared:
            ins.dst = static_cast<i32>(lp.regId());
            lp.expect(',');
            lp.expect('[');
            ins.src[0] = Operand::reg(lp.regId());
            lp.expect('+');
            ins.src[1] = Operand::imm(static_cast<u32>(lp.integer()));
            lp.expect(']');
            break;
          case Opcode::kAtomAdd:
            ins.dst = static_cast<i32>(lp.regId());
            lp.expect(',');
            lp.expect('[');
            ins.src[0] = Operand::reg(lp.regId());
            lp.expect('+');
            ins.src[1] = Operand::imm(static_cast<u32>(lp.integer()));
            lp.expect(']');
            lp.expect(',');
            ins.src[2] = Operand::reg(lp.regId());
            break;
          case Opcode::kStGlobal:
          case Opcode::kStShared:
            lp.expect('[');
            ins.src[0] = Operand::reg(lp.regId());
            lp.expect('+');
            ins.src[1] = Operand::imm(static_cast<u32>(lp.integer()));
            lp.expect(']');
            lp.expect(',');
            ins.src[2] = Operand::reg(lp.regId());
            break;
          case Opcode::kLdLocal: {
            ins.dst = static_cast<i32>(lp.regId());
            lp.expect(',');
            const std::string kw = lp.ident();
            if (kw != "local")
                lp.error("expected local[slot]");
            lp.expect('[');
            ins.localSlot = static_cast<u32>(lp.integer());
            lp.expect(']');
            local_slots = std::max(local_slots, ins.localSlot + 1);
            break;
          }
          case Opcode::kStLocal: {
            const std::string kw = lp.ident();
            if (kw != "local")
                lp.error("expected local[slot]");
            lp.expect('[');
            ins.localSlot = static_cast<u32>(lp.integer());
            lp.expect(']');
            lp.expect(',');
            ins.src[0] = Operand::reg(lp.regId());
            local_slots = std::max(local_slots, ins.localSlot + 1);
            break;
          }
          case Opcode::kBra: {
            const std::string target = lp.rest();
            if (target.empty())
                lp.error("bra needs a target");
            if (std::isdigit(static_cast<unsigned char>(target[0]))) {
                ins.target = static_cast<u32>(std::stoul(target));
            } else {
                ins.pendingLabel = target;
            }
            break;
          }
          case Opcode::kPir:
            ins.metaPayload = static_cast<u64>(lp.integer());
            break;
          case Opcode::kPbr: {
            std::vector<u32> regs;
            while (!lp.atEnd()) {
                regs.push_back(lp.regId());
                if (!lp.consume(','))
                    break;
            }
            ins.metaPayload = encodePbr(regs);
            break;
          }
          default: {
            // Generic ALU: dst, then up to numSrcRegsMax operands.
            const OpInfo &info = opInfo(*op);
            ins.dst = static_cast<i32>(lp.regId());
            for (u32 i = 0; i < info.numSrcRegsMax; ++i) {
                lp.expect(',');
                ins.src[i] = lp.operand();
            }
            break;
          }
        }

        if (!lp.atEnd())
            lp.error("trailing junk");
        code.push_back(std::move(ins));
    }

    // Resolve labels.
    for (auto &ins : code) {
        if (ins.op != Opcode::kBra || ins.pendingLabel.empty())
            continue;
        auto it = labels.find(ins.pendingLabel);
        fatalIf(it == labels.end(),
                "undefined label: " + ins.pendingLabel);
        ins.target = it->second;
        ins.pendingLabel.clear();
    }

    Program p;
    p.name = kernel_name;
    p.code = std::move(code);
    p.sharedMemBytes = shared_bytes;
    p.localMemSlots = local_slots;
    p.numRegs = static_cast<u32>(p.maxRegUsed() + 1);
    if (explicit_regs > 0) {
        fatalIf(explicit_regs < p.numRegs,
                ".regs below registers actually used");
        p.numRegs = explicit_regs;
    }
    p.validate();
    return p;
}

} // namespace rfv
