/**
 * @file
 * Text assembler for the SASS-like ISA.
 *
 * Accepts the same syntax Program::disassemble() emits (optional "pc:"
 * prefixes are ignored), so disassembled programs round-trip.  Grammar
 * sketch:
 *
 *   .kernel <name>           directive (optional; default name "kernel")
 *   .regs <n>                force register footprint
 *   .shared <bytes>          shared memory per CTA
 *   label:                   bind label
 *   [@[!]pN] mnemonic ops    one instruction per line
 *
 * Comments start with "//", "#" or ";" and run to end of line.
 */
#ifndef RFV_ISA_ASSEMBLER_H
#define RFV_ISA_ASSEMBLER_H

#include <string>

#include "isa/program.h"

namespace rfv {

/**
 * Assemble kernel source text into a validated Program.
 * Throws ConfigError with a line-numbered message on any syntax error.
 */
Program assemble(const std::string &source);

} // namespace rfv

#endif // RFV_ISA_ASSEMBLER_H
