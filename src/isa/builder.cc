#include "isa/builder.h"

#include "common/error.h"

namespace rfv {

KernelBuilder::KernelBuilder(std::string name) : name_(std::move(name)) {}

u32
KernelBuilder::reg()
{
    fatalIf(nextReg_ >= kMaxArchRegs, "kernel exceeds 63 registers");
    return nextReg_++;
}

u32
KernelBuilder::regs(u32 n)
{
    const u32 first = nextReg_;
    for (u32 i = 0; i < n; ++i)
        reg();
    return first;
}

void
KernelBuilder::setSharedMem(u32 bytes)
{
    sharedMemBytes_ = bytes;
}

void
KernelBuilder::setNumRegs(u32 n)
{
    fatalIf(n > kMaxArchRegs, "kernel exceeds 63 registers");
    explicitNumRegs_ = n;
}

void
KernelBuilder::label(const std::string &name)
{
    fatalIf(labels_.count(name) != 0, "duplicate label: " + name);
    labels_[name] = static_cast<u32>(code_.size());
}

KernelBuilder &
KernelBuilder::guard(i32 pred, bool negated)
{
    pendingGuard_ = pred;
    pendingGuardNeg_ = negated;
    return *this;
}

void
KernelBuilder::touch(u32 r)
{
    maxReg_ = std::max(maxReg_, r);
    anyReg_ = true;
    nextReg_ = std::max(nextReg_, r + 1);
}

void
KernelBuilder::touch(const Operand &o)
{
    if (o.isReg())
        touch(o.value);
}

Instr &
KernelBuilder::emit(Instr ins)
{
    panicIf(built_, "builder reused after build()");
    ins.guardPred = pendingGuard_;
    ins.guardNeg = pendingGuardNeg_;
    pendingGuard_ = kNoPred;
    pendingGuardNeg_ = false;
    if (ins.dst != kNoReg)
        touch(static_cast<u32>(ins.dst));
    for (const auto &s : ins.src)
        touch(s);
    code_.push_back(std::move(ins));
    return code_.back();
}

namespace {

Instr
threeOp(Opcode op, u32 d, Operand a, Operand b, Operand c = Operand::none())
{
    Instr ins;
    ins.op = op;
    ins.dst = static_cast<i32>(d);
    ins.src[0] = a;
    ins.src[1] = b;
    ins.src[2] = c;
    return ins;
}

} // namespace

void KernelBuilder::mov(u32 d, Operand s)
{
    Instr ins;
    ins.op = Opcode::kMov;
    ins.dst = static_cast<i32>(d);
    ins.src[0] = s;
    emit(ins);
}

void KernelBuilder::iadd(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kIAdd, d, a, b)); }
void KernelBuilder::isub(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kISub, d, a, b)); }
void KernelBuilder::imul(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kIMul, d, a, b)); }
void KernelBuilder::imad(u32 d, Operand a, Operand b, Operand c)
{ emit(threeOp(Opcode::kIMad, d, a, b, c)); }
void KernelBuilder::imin(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kIMin, d, a, b)); }
void KernelBuilder::imax(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kIMax, d, a, b)); }
void KernelBuilder::shl(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kShl, d, a, b)); }
void KernelBuilder::shr(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kShr, d, a, b)); }
void KernelBuilder::and_(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kAnd, d, a, b)); }
void KernelBuilder::or_(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kOr, d, a, b)); }
void KernelBuilder::xor_(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kXor, d, a, b)); }
void KernelBuilder::fadd(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kFAdd, d, a, b)); }
void KernelBuilder::fmul(u32 d, Operand a, Operand b)
{ emit(threeOp(Opcode::kFMul, d, a, b)); }
void KernelBuilder::ffma(u32 d, Operand a, Operand b, Operand c)
{ emit(threeOp(Opcode::kFFma, d, a, b, c)); }

void KernelBuilder::frcp(u32 d, Operand a)
{
    Instr ins;
    ins.op = Opcode::kFRcp;
    ins.dst = static_cast<i32>(d);
    ins.src[0] = a;
    emit(ins);
}

void
KernelBuilder::setp(u32 p, CmpOp c, Operand a, Operand b)
{
    Instr ins;
    ins.op = Opcode::kSetP;
    ins.dstPred = static_cast<i32>(p);
    ins.cmp = c;
    ins.src[0] = a;
    ins.src[1] = b;
    emit(ins);
}

void
KernelBuilder::psel(u32 d, u32 selPred, Operand a, Operand b)
{
    Instr ins;
    ins.op = Opcode::kPSel;
    ins.dst = static_cast<i32>(d);
    ins.dstPred = static_cast<i32>(selPred);
    ins.src[0] = a;
    ins.src[1] = b;
    emit(ins);
}

void
KernelBuilder::s2r(u32 d, SpecialReg s)
{
    Instr ins;
    ins.op = Opcode::kS2R;
    ins.dst = static_cast<i32>(d);
    ins.sreg = s;
    emit(ins);
}

void
KernelBuilder::ldg(u32 d, u32 addr_reg, u32 byte_off)
{
    Instr ins;
    ins.op = Opcode::kLdGlobal;
    ins.dst = static_cast<i32>(d);
    ins.src[0] = R(addr_reg);
    ins.src[1] = I(byte_off);
    emit(ins);
}

void
KernelBuilder::stg(u32 addr_reg, u32 byte_off, u32 val_reg)
{
    Instr ins;
    ins.op = Opcode::kStGlobal;
    ins.src[0] = R(addr_reg);
    ins.src[1] = I(byte_off);
    ins.src[2] = R(val_reg);
    emit(ins);
}

void
KernelBuilder::lds(u32 d, u32 addr_reg, u32 byte_off)
{
    Instr ins;
    ins.op = Opcode::kLdShared;
    ins.dst = static_cast<i32>(d);
    ins.src[0] = R(addr_reg);
    ins.src[1] = I(byte_off);
    emit(ins);
}

void
KernelBuilder::sts(u32 addr_reg, u32 byte_off, u32 val_reg)
{
    Instr ins;
    ins.op = Opcode::kStShared;
    ins.src[0] = R(addr_reg);
    ins.src[1] = I(byte_off);
    ins.src[2] = R(val_reg);
    emit(ins);
}

void
KernelBuilder::atomAdd(u32 d, u32 addr_reg, u32 byte_off, u32 val_reg)
{
    Instr ins;
    ins.op = Opcode::kAtomAdd;
    ins.dst = static_cast<i32>(d);
    ins.src[0] = R(addr_reg);
    ins.src[1] = I(byte_off);
    ins.src[2] = R(val_reg);
    emit(ins);
}

void
KernelBuilder::ldl(u32 d, u32 slot)
{
    Instr ins;
    ins.op = Opcode::kLdLocal;
    ins.dst = static_cast<i32>(d);
    ins.localSlot = slot;
    localSlots_ = std::max(localSlots_, slot + 1);
    emit(ins);
}

void
KernelBuilder::stl(u32 slot, u32 val_reg)
{
    Instr ins;
    ins.op = Opcode::kStLocal;
    ins.src[0] = R(val_reg);
    ins.localSlot = slot;
    localSlots_ = std::max(localSlots_, slot + 1);
    emit(ins);
}

void
KernelBuilder::bra(const std::string &target)
{
    Instr ins;
    ins.op = Opcode::kBra;
    ins.pendingLabel = target;
    emit(ins);
}

void KernelBuilder::bar()
{
    Instr ins;
    ins.op = Opcode::kBar;
    emit(ins);
}

void KernelBuilder::exit()
{
    Instr ins;
    ins.op = Opcode::kExit;
    emit(ins);
}

void KernelBuilder::nop()
{
    Instr ins;
    ins.op = Opcode::kNop;
    emit(ins);
}

Program
KernelBuilder::build()
{
    panicIf(built_, "builder reused after build()");
    built_ = true;

    for (auto &ins : code_) {
        if (ins.op != Opcode::kBra)
            continue;
        auto it = labels_.find(ins.pendingLabel);
        fatalIf(it == labels_.end(),
                "undefined label: " + ins.pendingLabel);
        fatalIf(it->second >= code_.size(),
                "label points past end of kernel: " + ins.pendingLabel);
        ins.target = it->second;
        ins.pendingLabel.clear();
    }

    Program p;
    p.name = name_;
    p.code = std::move(code_);
    p.numRegs = anyReg_ ? maxReg_ + 1 : 0;
    if (explicitNumRegs_ > 0) {
        fatalIf(explicitNumRegs_ < p.numRegs,
                "explicit register count below registers actually used");
        p.numRegs = explicitNumRegs_;
    }
    p.sharedMemBytes = sharedMemBytes_;
    p.localMemSlots = localSlots_;
    p.validate();
    return p;
}

} // namespace rfv
