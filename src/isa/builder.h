/**
 * @file
 * Fluent kernel construction API.
 *
 * The builder is how workloads and tests author kernels in C++.  It
 * resolves symbolic labels, tracks the register footprint, and validates
 * the finished program.
 */
#ifndef RFV_ISA_BUILDER_H
#define RFV_ISA_BUILDER_H

#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.h"

namespace rfv {

/** Shorthand register operand. */
inline Operand
R(u32 r)
{
    return Operand::reg(r);
}

/** Shorthand immediate operand. */
inline Operand
I(u32 v)
{
    return Operand::imm(v);
}

/**
 * Incrementally builds a Program.
 *
 * Typical use:
 * @code
 *   KernelBuilder b("saxpy");
 *   u32 tid = b.reg(), x = b.reg();
 *   b.s2r(tid, SpecialReg::kTid);
 *   b.label("loop");
 *   ...
 *   b.guard(0).bra("loop");
 *   b.exit();
 *   Program p = b.build();
 * @endcode
 */
class KernelBuilder {
  public:
    explicit KernelBuilder(std::string name);

    /** Allocate the next unused register id. */
    u32 reg();

    /** Allocate @p n consecutive registers, returning the first id. */
    u32 regs(u32 n);

    /** Declare shared memory usage per CTA. */
    void setSharedMem(u32 bytes);

    /** Force the register footprint (must cover all used registers). */
    void setNumRegs(u32 n);

    /** Bind a label to the next emitted instruction. */
    void label(const std::string &name);

    /**
     * Guard the next emitted instruction with @@p / @@!p.  The guard is
     * consumed by that one instruction.
     */
    KernelBuilder &guard(i32 pred, bool negated = false);

    // --- Instruction emitters -------------------------------------------
    void mov(u32 d, Operand s);
    void iadd(u32 d, Operand a, Operand b);
    void isub(u32 d, Operand a, Operand b);
    void imul(u32 d, Operand a, Operand b);
    void imad(u32 d, Operand a, Operand b, Operand c);
    void imin(u32 d, Operand a, Operand b);
    void imax(u32 d, Operand a, Operand b);
    void shl(u32 d, Operand a, Operand b);
    void shr(u32 d, Operand a, Operand b);
    void and_(u32 d, Operand a, Operand b);
    void or_(u32 d, Operand a, Operand b);
    void xor_(u32 d, Operand a, Operand b);
    void fadd(u32 d, Operand a, Operand b);
    void fmul(u32 d, Operand a, Operand b);
    void ffma(u32 d, Operand a, Operand b, Operand c);
    void frcp(u32 d, Operand a);
    void setp(u32 p, CmpOp c, Operand a, Operand b);
    void psel(u32 d, u32 selPred, Operand a, Operand b);
    void s2r(u32 d, SpecialReg s);
    void ldg(u32 d, u32 addrReg, u32 byteOff = 0);
    void stg(u32 addrReg, u32 byteOff, u32 valReg);
    void lds(u32 d, u32 addrReg, u32 byteOff = 0);
    void sts(u32 addrReg, u32 byteOff, u32 valReg);
    void atomAdd(u32 d, u32 addrReg, u32 byteOff, u32 valReg);
    void ldl(u32 d, u32 slot);
    void stl(u32 slot, u32 valReg);
    void bra(const std::string &target);
    void bar();
    void exit();
    void nop();

    /** Number of instructions emitted so far. */
    u32 size() const { return static_cast<u32>(code_.size()); }

    /** Resolve labels, compute the footprint, validate, and return. */
    Program build();

  private:
    Instr &emit(Instr ins);
    void touch(u32 r);
    void touch(const Operand &o);

    std::string name_;
    std::vector<Instr> code_;
    std::unordered_map<std::string, u32> labels_;
    u32 nextReg_ = 0;
    u32 maxReg_ = 0;
    bool anyReg_ = false;
    u32 explicitNumRegs_ = 0;
    u32 sharedMemBytes_ = 0;
    u32 localSlots_ = 0;
    i32 pendingGuard_ = kNoPred;
    bool pendingGuardNeg_ = false;
    bool built_ = false;
};

} // namespace rfv

#endif // RFV_ISA_BUILDER_H
