#include "isa/instruction.h"

#include <sstream>

#include "common/error.h"
#include "isa/metadata.h"

namespace rfv {

const char *
cmpName(CmpOp c)
{
    switch (c) {
      case CmpOp::kEq: return "eq";
      case CmpOp::kNe: return "ne";
      case CmpOp::kLt: return "lt";
      case CmpOp::kLe: return "le";
      case CmpOp::kGt: return "gt";
      case CmpOp::kGe: return "ge";
    }
    panic("bad cmp op");
}

const char *
specialRegName(SpecialReg s)
{
    switch (s) {
      case SpecialReg::kTid: return "%tid";
      case SpecialReg::kCtaId: return "%ctaid";
      case SpecialReg::kNTid: return "%ntid";
      case SpecialReg::kNCtaId: return "%nctaid";
      case SpecialReg::kLaneId: return "%laneid";
      case SpecialReg::kWarpId: return "%warpid";
    }
    panic("bad special register");
}

namespace {

std::string
operandStr(const Operand &o)
{
    if (o.isReg())
        return "r" + std::to_string(o.value);
    if (o.isImm())
        return std::to_string(static_cast<i32>(o.value));
    return "<none>";
}

} // namespace

std::string
formatInstr(const Instr &ins)
{
    std::ostringstream os;
    if (ins.guardPred != kNoPred)
        os << '@' << (ins.guardNeg ? "!" : "") << 'p' << ins.guardPred
           << ' ';

    switch (ins.op) {
      case Opcode::kSetP:
        os << "setp." << cmpName(ins.cmp) << " p" << ins.dstPred << ", "
           << operandStr(ins.src[0]) << ", " << operandStr(ins.src[1]);
        break;
      case Opcode::kPSel:
        os << "psel r" << ins.dst << ", p" << ins.dstPred << ", "
           << operandStr(ins.src[0]) << ", " << operandStr(ins.src[1]);
        break;
      case Opcode::kS2R:
        os << "s2r r" << ins.dst << ", " << specialRegName(ins.sreg);
        break;
      case Opcode::kLdGlobal:
      case Opcode::kLdShared:
        os << opName(ins.op) << " r" << ins.dst << ", ["
           << operandStr(ins.src[0]) << "+" << ins.src[1].value << "]";
        break;
      case Opcode::kAtomAdd:
        os << "atom r" << ins.dst << ", [" << operandStr(ins.src[0])
           << "+" << ins.src[1].value << "], "
           << operandStr(ins.src[2]);
        break;
      case Opcode::kStGlobal:
      case Opcode::kStShared:
        os << opName(ins.op) << " [" << operandStr(ins.src[0]) << "+"
           << ins.src[1].value << "], " << operandStr(ins.src[2]);
        break;
      case Opcode::kLdLocal:
        os << "ldl r" << ins.dst << ", local[" << ins.localSlot << "]";
        break;
      case Opcode::kStLocal:
        os << "stl local[" << ins.localSlot << "], "
           << operandStr(ins.src[0]);
        break;
      case Opcode::kBra:
        os << "bra ";
        if (!ins.pendingLabel.empty())
            os << ins.pendingLabel;
        else
            os << ins.target;
        break;
      case Opcode::kExit:
      case Opcode::kBar:
      case Opcode::kNop:
        os << opName(ins.op);
        break;
      case Opcode::kPir: {
        os << "pir";
        const auto masks = decodePir(ins.metaPayload);
        os << " 0x" << std::hex << ins.metaPayload << std::dec;
        (void)masks;
        break;
      }
      case Opcode::kPbr: {
        os << "pbr";
        const auto regs = decodePbr(ins.metaPayload);
        for (std::size_t i = 0; i < regs.size(); ++i)
            os << (i ? ", r" : " r") << regs[i];
        break;
      }
      default: {
        // Generic ALU formatting: op dst, srcs...
        os << opName(ins.op);
        if (ins.dst != kNoReg)
            os << " r" << ins.dst;
        bool first = ins.dst == kNoReg;
        for (const auto &s : ins.src) {
            if (s.isNone())
                continue;
            os << (first ? " " : ", ") << operandStr(s);
            first = false;
        }
        break;
      }
    }
    return os.str();
}

} // namespace rfv
