/**
 * @file
 * Instruction word representation.
 *
 * Instructions are held decoded.  Every instruction occupies one slot in
 * the program; the program counter is an instruction index.  Each
 * instruction corresponds to one 64-bit word in the modeled machine
 * encoding (the paper relies on CUDA's 64-bit alignment to host 54-bit
 * release-flag payloads next to a 10-bit opcode).
 */
#ifndef RFV_ISA_INSTRUCTION_H
#define RFV_ISA_INSTRUCTION_H

#include <string>

#include "common/types.h"
#include "isa/opcode.h"

namespace rfv {

/** Special (read-only) registers exposed via s2r. */
enum class SpecialReg : u8 {
    kTid,      //!< thread id within the CTA
    kCtaId,    //!< CTA id within the grid
    kNTid,     //!< threads per CTA
    kNCtaId,   //!< CTAs in the grid
    kLaneId,   //!< lane within the warp
    kWarpId,   //!< warp id within the CTA
};

/** Comparison operators for setp. */
enum class CmpOp : u8 { kEq, kNe, kLt, kLe, kGt, kGe };

/** A source operand: nothing, a register, or a 32-bit immediate. */
struct Operand {
    enum class Kind : u8 { kNone, kReg, kImm };

    Kind kind = Kind::kNone;
    u32 value = 0; //!< register id, or immediate value

    static Operand none() { return {}; }
    static Operand reg(u32 r) { return {Kind::kReg, r}; }
    static Operand imm(u32 v) { return {Kind::kImm, v}; }

    bool isReg() const { return kind == Kind::kReg; }
    bool isImm() const { return kind == Kind::kImm; }
    bool isNone() const { return kind == Kind::kNone; }

    bool
    operator==(const Operand &o) const
    {
        return kind == o.kind && (isNone() || value == o.value);
    }
};

/**
 * One decoded instruction.
 *
 * Operand conventions:
 *  - ALU ops: dst, src[0..2].
 *  - setp:    dstPred, src[0], src[1], cmp.
 *  - psel:    dst = dstPred ? src[0] : src[1]; dstPred is *read* as the
 *             selector (it is not written).
 *  - ldg/lds: dst, src[0] = address register, src[1] = immediate offset.
 *  - stg/sts: src[0] = address register, src[1] = immediate offset,
 *             src[2] = value register.
 *  - ldl/stl: localSlot = per-thread spill slot index; stl value in src[0].
 *  - bra:     target (+ reconvPc filled by the compiler); optional guard.
 *  - pir/pbr: metaPayload holds the 54-bit flag payload.
 */
struct Instr {
    Opcode op = Opcode::kNop;

    i32 dst = kNoReg;     //!< destination register, kNoReg if none
    Operand src[3];       //!< source operands

    i32 dstPred = kNoPred;   //!< setp destination predicate
    i32 guardPred = kNoPred; //!< @p / @!p execution guard
    bool guardNeg = false;   //!< guard is negated (@!p)
    CmpOp cmp = CmpOp::kEq;  //!< setp comparison
    SpecialReg sreg = SpecialReg::kTid; //!< s2r source

    u32 target = kInvalidPc;   //!< branch target (instruction index)
    u32 reconvPc = kInvalidPc; //!< reconvergence pc for divergent branches
    u32 localSlot = 0;         //!< ldl/stl per-thread slot index

    u64 metaPayload = 0; //!< 54-bit pir/pbr payload (encoded)

    /**
     * Authoritative per-source release bits, filled by the compiler's
     * lifetime analysis.  Bit i set means src[i]'s register dies after
     * this instruction reads it.  The in-stream kPir instructions carry
     * the same information in machine-encoded form for the fetch-cost
     * and cache modeling; encode/decode consistency is enforced by
     * Program::validate().
     */
    u8 pirMask = 0;

    /** Unresolved branch-target label (builder/assembler only). */
    std::string pendingLabel;

    /** Number of register source operands actually present. */
    u32
    numRegSrcs() const
    {
        u32 n = 0;
        for (const auto &s : src)
            if (s.isReg())
                ++n;
        return n;
    }

    /** True if this instruction reads register @p r as a source. */
    bool
    readsReg(u32 r) const
    {
        for (const auto &s : src)
            if (s.isReg() && s.value == r)
                return true;
        return false;
    }

    /** True if this instruction writes register @p r. */
    bool
    writesReg(u32 r) const
    {
        return dst != kNoReg && static_cast<u32>(dst) == r;
    }
};

/** Render one instruction as assembly text (without trailing newline). */
std::string formatInstr(const Instr &ins);

/** Parse helpers shared by the assembler. */
const char *cmpName(CmpOp c);
const char *specialRegName(SpecialReg s);

} // namespace rfv

#endif // RFV_ISA_INSTRUCTION_H
