#include "isa/metadata.h"

#include "common/bit_utils.h"
#include "common/error.h"

namespace rfv {

u64
encodePir(const std::array<u8, kPirSlots> &masks)
{
    u64 payload = 0;
    for (u32 i = 0; i < kPirSlots; ++i) {
        panicIf(masks[i] > 7, "pir slot mask wider than 3 bits");
        payload = insertBits(payload, i * 3, 3, masks[i]);
    }
    return payload;
}

std::array<u8, kPirSlots>
decodePir(u64 payload)
{
    std::array<u8, kPirSlots> masks{};
    for (u32 i = 0; i < kPirSlots; ++i)
        masks[i] = static_cast<u8>(bits(payload, i * 3, 3));
    return masks;
}

u64
encodePbr(const std::vector<u32> &regs)
{
    panicIf(regs.size() > kPbrSlots, "pbr releases more than 9 registers");
    u64 payload = 0;
    for (u32 i = 0; i < kPbrSlots; ++i) {
        u32 slot = kPbrEmptySlot;
        if (i < regs.size()) {
            panicIf(regs[i] >= kPbrEmptySlot,
                    "pbr register id must be < 63");
            slot = regs[i];
        }
        payload = insertBits(payload, i * 6, 6, slot);
    }
    return payload;
}

std::vector<u32>
decodePbr(u64 payload)
{
    std::vector<u32> regs;
    for (u32 i = 0; i < kPbrSlots; ++i) {
        const u32 slot = static_cast<u32>(bits(payload, i * 6, 6));
        if (slot != kPbrEmptySlot)
            regs.push_back(slot);
    }
    return regs;
}

u32
decodePbrInto(u64 payload, std::array<u32, kPbrSlots> &regs)
{
    u32 n = 0;
    for (u32 i = 0; i < kPbrSlots; ++i) {
        const u32 slot = static_cast<u32>(bits(payload, i * 6, 6));
        if (slot != kPbrEmptySlot)
            regs[n++] = slot;
    }
    return n;
}

} // namespace rfv
