/**
 * @file
 * Encoding of the two release-flag metadata instructions (paper Sec. 6.2).
 *
 * Both flavors occupy one 64-bit instruction word: a 10-bit opcode
 * (split 4+6 to match the Fermi encoding format) and a 54-bit payload.
 *
 *  - pir: 18 consecutive 3-bit per-instruction release flags.  Slot i
 *    describes the i-th *regular* instruction following the pir within
 *    the basic block; bit b of a slot releases source operand b after
 *    that instruction reads it.
 *  - pbr: up to 9 six-bit architected register ids to release at the
 *    reconvergence point.  The all-ones pattern (63) marks an unused
 *    slot, which is why threads are limited to 63 (not 64) registers.
 */
#ifndef RFV_ISA_METADATA_H
#define RFV_ISA_METADATA_H

#include <array>
#include <vector>

#include "common/types.h"

namespace rfv {

/** Number of 3-bit flag slots in one pir instruction. */
inline constexpr u32 kPirSlots = 18;

/** Number of 6-bit register slots in one pbr instruction. */
inline constexpr u32 kPbrSlots = 9;

/** Sentinel register id marking an unused pbr slot. */
inline constexpr u32 kPbrEmptySlot = 63;

/** Pack 18 three-bit release masks into a 54-bit pir payload. */
u64 encodePir(const std::array<u8, kPirSlots> &masks);

/** Unpack a pir payload into 18 three-bit release masks. */
std::array<u8, kPirSlots> decodePir(u64 payload);

/**
 * Pack up to 9 register ids into a 54-bit pbr payload.
 * Register ids must be < 63.
 */
u64 encodePbr(const std::vector<u32> &regs);

/** Unpack a pbr payload into the list of register ids it releases. */
std::vector<u32> decodePbr(u64 payload);

/**
 * Allocation-free pbr decode for hot paths and predecode passes:
 * writes the released register ids into @p regs and returns how many
 * slots are used.  Identical results to decodePbr().
 */
u32 decodePbrInto(u64 payload, std::array<u32, kPbrSlots> &regs);

} // namespace rfv

#endif // RFV_ISA_METADATA_H
