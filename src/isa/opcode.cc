#include "isa/opcode.h"

#include "common/error.h"

namespace rfv {

namespace {

constexpr OpInfo kOpTable[] = {
    // mnemonic     class                 srcs  dst
    {"nop",         OpClass::kAlu,        0,    false}, // kNop
    {"mov",         OpClass::kAlu,        1,    true},  // kMov
    {"iadd",        OpClass::kAlu,        2,    true},  // kIAdd
    {"isub",        OpClass::kAlu,        2,    true},  // kISub
    {"imul",        OpClass::kMul,        2,    true},  // kIMul
    {"imad",        OpClass::kMul,        3,    true},  // kIMad
    {"imin",        OpClass::kAlu,        2,    true},  // kIMin
    {"imax",        OpClass::kAlu,        2,    true},  // kIMax
    {"shl",         OpClass::kAlu,        2,    true},  // kShl
    {"shr",         OpClass::kAlu,        2,    true},  // kShr
    {"and",         OpClass::kAlu,        2,    true},  // kAnd
    {"or",          OpClass::kAlu,        2,    true},  // kOr
    {"xor",         OpClass::kAlu,        2,    true},  // kXor
    {"fadd",        OpClass::kFpu,        2,    true},  // kFAdd
    {"fmul",        OpClass::kFpu,        2,    true},  // kFMul
    {"ffma",        OpClass::kFpu,        3,    true},  // kFFma
    {"frcp",        OpClass::kSfu,        1,    true},  // kFRcp
    {"setp",        OpClass::kAlu,        2,    false}, // kSetP
    {"psel",        OpClass::kAlu,        2,    true},  // kPSel
    {"s2r",         OpClass::kAlu,        0,    true},  // kS2R
    {"ldg",         OpClass::kMemGlobal,  1,    true},  // kLdGlobal
    {"stg",         OpClass::kMemGlobal,  2,    false}, // kStGlobal
    {"lds",         OpClass::kMemShared,  1,    true},  // kLdShared
    {"sts",         OpClass::kMemShared,  2,    false}, // kStShared
    {"ldl",         OpClass::kMemLocal,   0,    true},  // kLdLocal
    {"stl",         OpClass::kMemLocal,   1,    false}, // kStLocal
    {"atom",        OpClass::kMemGlobal,  2,    true},  // kAtomAdd
    {"bra",         OpClass::kControl,    0,    false}, // kBra
    {"exit",        OpClass::kControl,    0,    false}, // kExit
    {"bar",         OpClass::kControl,    0,    false}, // kBar
    {"pir",         OpClass::kMeta,       0,    false}, // kPir
    {"pbr",         OpClass::kMeta,       0,    false}, // kPbr
};

constexpr std::size_t kNumOps = sizeof(kOpTable) / sizeof(kOpTable[0]);

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    const auto idx = static_cast<std::size_t>(op);
    panicIf(idx >= kNumOps, "opcode out of range");
    return kOpTable[idx];
}

std::string_view
opName(Opcode op)
{
    return opInfo(op).mnemonic;
}

} // namespace rfv
