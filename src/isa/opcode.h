/**
 * @file
 * Opcode enumeration and static opcode traits for the SASS-like ISA.
 *
 * The ISA mirrors the structural properties the paper depends on:
 * at most three register source operands per instruction (so 3 release
 * bits per instruction suffice), 6-bit architected register ids (up to
 * 63 registers per thread), predicate-guarded branches, and 64-bit
 * aligned instruction words that leave room for metadata instructions.
 */
#ifndef RFV_ISA_OPCODE_H
#define RFV_ISA_OPCODE_H

#include <string_view>

#include "common/types.h"

namespace rfv {

/** All operations in the ISA. */
enum class Opcode : u8 {
    kNop,
    // Integer arithmetic / logic.
    kMov,
    kIAdd,
    kISub,
    kIMul,
    kIMad,
    kIMin,
    kIMax,
    kShl,
    kShr,
    kAnd,
    kOr,
    kXor,
    // Floating point (operands are bit-cast IEEE-754 singles).
    kFAdd,
    kFMul,
    kFFma,
    kFRcp,
    // Predicates.
    kSetP, //!< dstPred = cmp(src0, src1)
    kPSel, //!< dst = guardPred ? src0 : src1 (predicate-select)
    // Special register read.
    kS2R,
    // Memory.
    kLdGlobal,
    kStGlobal,
    kLdShared,
    kStShared,
    kLdLocal, //!< per-thread local slot (spill space)
    kStLocal,
    kAtomAdd, //!< global atomic add; dst receives the old value
    // Control.
    kBra,
    kExit,
    kBar,
    // Compiler-generated metadata (release flags, Section 6.2).
    kPir, //!< per-instruction release flags for the next 18 instructions
    kPbr, //!< per-branch release flags at a reconvergence point
};

/** Coarse functional-unit / latency class of an opcode. */
enum class OpClass : u8 {
    kAlu,       //!< simple integer ops
    kMul,       //!< integer multiply / multiply-add
    kFpu,       //!< single-precision FP
    kSfu,       //!< special function (reciprocal)
    kMemGlobal, //!< global memory access
    kMemShared, //!< shared memory access
    kMemLocal,  //!< local (per-thread) memory access
    kControl,   //!< branch / exit / barrier
    kMeta,      //!< metadata, never issued to an execution unit
};

/** Static properties of an opcode. */
struct OpInfo {
    std::string_view mnemonic;
    OpClass cls;
    u8 numSrcRegsMax; //!< maximum register source operands
    bool hasDst;      //!< writes a general-purpose destination register
};

/** Trait lookup; total for every opcode. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic string for an opcode. */
std::string_view opName(Opcode op);

inline bool
isMemory(Opcode op)
{
    const OpClass c = opInfo(op).cls;
    return c == OpClass::kMemGlobal || c == OpClass::kMemShared ||
           c == OpClass::kMemLocal;
}

inline bool
isLoad(Opcode op)
{
    return op == Opcode::kLdGlobal || op == Opcode::kLdShared ||
           op == Opcode::kLdLocal;
}

inline bool
isAtomic(Opcode op)
{
    return op == Opcode::kAtomAdd;
}

inline bool
isStore(Opcode op)
{
    return op == Opcode::kStGlobal || op == Opcode::kStShared ||
           op == Opcode::kStLocal;
}

inline bool
isMeta(Opcode op)
{
    return op == Opcode::kPir || op == Opcode::kPbr;
}

inline bool
isBranch(Opcode op)
{
    return op == Opcode::kBra;
}

/** True if the op ends a basic block (branch or exit). */
inline bool
endsBlock(Opcode op)
{
    return op == Opcode::kBra || op == Opcode::kExit;
}

} // namespace rfv

#endif // RFV_ISA_OPCODE_H
