#include "isa/program.h"

#include <iomanip>
#include <sstream>

#include "common/error.h"
#include "isa/metadata.h"

namespace rfv {

u32
Program::staticRegularCount() const
{
    u32 n = 0;
    for (const auto &ins : code)
        if (!isMeta(ins.op))
            ++n;
    return n;
}

u32
Program::staticMetaCount() const
{
    u32 n = 0;
    for (const auto &ins : code)
        if (isMeta(ins.op))
            ++n;
    return n;
}

i32
Program::maxRegUsed() const
{
    i32 hi = -1;
    for (const auto &ins : code) {
        if (ins.dst != kNoReg)
            hi = std::max(hi, ins.dst);
        for (const auto &s : ins.src)
            if (s.isReg())
                hi = std::max(hi, static_cast<i32>(s.value));
    }
    return hi;
}

namespace {

void
checkReg(const Operand &o, u32 num_regs, u32 pc, const char *what)
{
    if (o.isReg() && o.value >= num_regs) {
        panic("pc " + std::to_string(pc) + ": " + what +
              " register id out of range");
    }
}

void
checkPred(i32 p, u32 pc)
{
    if (p != kNoPred && (p < 0 || p >= static_cast<i32>(kNumPredRegs)))
        panic("pc " + std::to_string(pc) + ": predicate id out of range");
}

} // namespace

void
Program::validate() const
{
    panicIf(numRegs > kMaxArchRegs, "kernel uses more than 63 registers");
    panicIf(numExemptRegs > numRegs, "exempt register count exceeds regs");
    panicIf(maxRegUsed() >= static_cast<i32>(numRegs),
            "register referenced beyond kernel register footprint");

    for (u32 pc = 0; pc < code.size(); ++pc) {
        const Instr &ins = code[pc];
        const OpInfo &info = opInfo(ins.op);

        checkPred(ins.guardPred, pc);
        checkPred(ins.dstPred, pc);
        if (ins.dst != kNoReg) {
            checkReg(Operand::reg(static_cast<u32>(ins.dst)), numRegs, pc,
                     "destination");
        }
        for (const auto &s : ins.src)
            checkReg(s, numRegs, pc, "source");

        if (info.hasDst && ins.dst == kNoReg)
            panic("pc " + std::to_string(pc) + ": missing destination");
        if (!info.hasDst && ins.dst != kNoReg)
            panic("pc " + std::to_string(pc) + ": unexpected destination");

        // Release bits may only cover register sources.
        for (u32 b = 0; b < 3; ++b) {
            if ((ins.pirMask >> b) & 1) {
                if (!ins.src[b].isReg()) {
                    panic("pc " + std::to_string(pc) +
                          ": pir bit on non-register operand");
                }
            }
        }

        switch (ins.op) {
          case Opcode::kBra:
            if (ins.target >= code.size())
                panic("pc " + std::to_string(pc) + ": branch target oob");
            break;
          case Opcode::kSetP:
            if (ins.dstPred == kNoPred)
                panic("pc " + std::to_string(pc) + ": setp needs dst pred");
            break;
          case Opcode::kPSel:
            if (ins.dstPred == kNoPred)
                panic("pc " + std::to_string(pc) + ": psel needs selector");
            break;
          case Opcode::kLdGlobal:
          case Opcode::kLdShared:
            if (!ins.src[0].isReg() || !ins.src[1].isImm())
                panic("pc " + std::to_string(pc) + ": bad load operands");
            break;
          case Opcode::kStGlobal:
          case Opcode::kStShared:
            if (!ins.src[0].isReg() || !ins.src[1].isImm() ||
                !ins.src[2].isReg()) {
                panic("pc " + std::to_string(pc) + ": bad store operands");
            }
            break;
          case Opcode::kAtomAdd:
            if (!ins.src[0].isReg() || !ins.src[1].isImm() ||
                !ins.src[2].isReg()) {
                panic("pc " + std::to_string(pc) +
                      ": bad atomic operands");
            }
            break;
          case Opcode::kLdLocal:
          case Opcode::kStLocal:
            if (ins.localSlot >= localMemSlots)
                panic("pc " + std::to_string(pc) + ": local slot oob");
            if (ins.op == Opcode::kStLocal && !ins.src[0].isReg())
                panic("pc " + std::to_string(pc) + ": stl needs value reg");
            break;
          case Opcode::kPbr:
            for (u32 r : decodePbr(ins.metaPayload)) {
                if (r >= numRegs)
                    panic("pc " + std::to_string(pc) + ": pbr reg oob");
            }
            break;
          default:
            break;
        }
    }

    // pir payload consistency: each pir's slot i must equal the pirMask
    // of the i-th following regular instruction in the same block span.
    if (hasReleaseMetadata) {
        for (u32 pc = 0; pc < code.size(); ++pc) {
            if (code[pc].op != Opcode::kPir)
                continue;
            const auto masks = decodePir(code[pc].metaPayload);
            u32 slot = 0;
            for (u32 q = pc + 1; q < code.size() && slot < kPirSlots; ++q) {
                if (isMeta(code[q].op))
                    break; // next metadata instruction takes over
                if (code[q].pirMask != masks[slot]) {
                    panic("pc " + std::to_string(pc) + ": pir slot " +
                          std::to_string(slot) +
                          " disagrees with instruction flags");
                }
                ++slot;
            }
        }
    }
}

std::string
Program::disassemble() const
{
    std::ostringstream os;
    os << ".kernel " << name << "\n";
    os << ".regs " << numRegs << "\n";
    if (sharedMemBytes)
        os << ".shared " << sharedMemBytes << "\n";
    if (localMemSlots)
        os << ".local " << localMemSlots << "\n";
    for (u32 pc = 0; pc < code.size(); ++pc) {
        os << std::setw(4) << pc << ":  " << formatInstr(code[pc]) << "\n";
    }
    return os.str();
}

} // namespace rfv
