/**
 * @file
 * A kernel program: a flat instruction vector plus kernel-level metadata.
 */
#ifndef RFV_ISA_PROGRAM_H
#define RFV_ISA_PROGRAM_H

#include <string>
#include <vector>

#include "common/types.h"
#include "isa/instruction.h"

namespace rfv {

/**
 * One compiled kernel.
 *
 * The program counter is an index into @ref code.  Regular and metadata
 * instructions live in the same stream, as in the modeled machine
 * encoding; the simulator's fetch stage skips metadata cheaply (or pays
 * a fetch/decode cost on release-flag-cache misses).
 */
struct Program {
    std::string name;
    std::vector<Instr> code;

    /** Architected registers per thread (compiler register footprint). */
    u32 numRegs = 0;

    /**
     * The lowest numExemptRegs register ids are renaming-exempt: the
     * compiler renumbered long-lived registers into this range and the
     * hardware maps them to fixed physical registers (Section 7.1).
     */
    u32 numExemptRegs = 0;

    /** Shared memory bytes per CTA. */
    u32 sharedMemBytes = 0;

    /** Per-thread local-memory slots (4 bytes each) for spills. */
    u32 localMemSlots = 0;

    /** True once the compiler inserted pir/pbr metadata instructions. */
    bool hasReleaseMetadata = false;

    /** Count of non-metadata instructions. */
    u32 staticRegularCount() const;

    /** Count of metadata (pir/pbr) instructions. */
    u32 staticMetaCount() const;

    /**
     * Check structural well-formedness; throws InternalError on any
     * violation.  Verifies operand conventions per opcode, register id
     * bounds, branch-target validity, predicate bounds, local-slot
     * bounds, and — when release metadata is present — that each pir
     * payload agrees with the authoritative Instr::pirMask bits of the
     * following regular instructions.
     */
    void validate() const;

    /** Highest register id referenced, or -1 if none. */
    i32 maxRegUsed() const;

    /** Full disassembly, one instruction per line with pc prefixes. */
    std::string disassemble() const;
};

} // namespace rfv

#endif // RFV_ISA_PROGRAM_H
