#include "net/client.h"

#include <thread>

#include "common/framing.h"
#include "common/rng.h"

namespace rfv {

SimdClient::SimdClient(ClientOptions opts)
    // Derive the jitter stream through SeedSeq: callers hand out
    // jitterSeed, jitterSeed+1, ... to sibling clients, and the
    // split keeps those adjacent raw seeds from producing correlated
    // backoff schedules (thundering retries defeat full jitter).
    : opts_(std::move(opts)), jitter_(SeedSeq(opts_.jitterSeed).rng())
{
}

ServiceStatus
SimdClient::connect(std::string &error)
{
    disconnect();
    sock_ = connectTcp(opts_.host, opts_.port,
                       deadlineAfterMs(opts_.connectTimeoutMs));
    if (!sock_.valid()) {
        error = "cannot connect to " + opts_.host + ":" +
                std::to_string(opts_.port);
        return ServiceStatus::kInternalError;
    }

    Message welcome;
    const ServiceStatus s = roundTrip(makeHello(), welcome, error);
    if (s != ServiceStatus::kOk)
        return s;
    if (!checkWelcome(welcome, error)) {
        disconnect();
        return ServiceStatus::kVersionMismatch;
    }
    return ServiceStatus::kOk;
}

ServiceStatus
SimdClient::roundTrip(const Message &request, Message &response,
                      std::string &error)
{
    if (!sock_.valid()) {
        error = "not connected";
        return ServiceStatus::kInternalError;
    }
    if (writeFrame(sock_, request.encode(),
                   deadlineAfterMs(opts_.connectTimeoutMs)) !=
        FrameStatus::kOk) {
        disconnect();
        error = "request send failed";
        return ServiceStatus::kInternalError;
    }
    std::string payload;
    const FrameStatus fs =
        readFrame(sock_, payload, kMaxResponseFrameBytes,
                  opts_.responseTimeoutMs >= 0
                      ? deadlineAfterMs(opts_.responseTimeoutMs)
                      : IoDeadline{});
    if (fs != FrameStatus::kOk) {
        disconnect();
        error = std::string("response receive failed: ") +
                frameStatusName(fs);
        return ServiceStatus::kInternalError;
    }
    if (!Message::decode(payload, response, error)) {
        disconnect();
        return ServiceStatus::kInternalError;
    }
    return ServiceStatus::kOk;
}

ServiceStatus
SimdClient::run(const ServiceRequest &req, SweepJobResult &res,
                std::string &error, Message *rawResponse)
{
    if (!connected()) {
        const ServiceStatus s = connect(error);
        if (s != ServiceStatus::kOk)
            return s;
    }
    Message response;
    const ServiceStatus transport =
        roundTrip(encodeRunRequest(req), response, error);
    if (transport != ServiceStatus::kOk)
        return transport;
    const ServiceStatus s = decodeResult(response, res, error);
    if (rawResponse)
        *rawResponse = std::move(response);
    if (res.error.empty() && !error.empty())
        res.error = error;
    return s;
}

ServiceStatus
SimdClient::request(const Message &req, Message &response,
                    std::string &error)
{
    if (!connected()) {
        const ServiceStatus s = connect(error);
        if (s != ServiceStatus::kOk)
            return s;
    }
    return roundTrip(req, response, error);
}

i64
SimdClient::backoffMsForAttempt(u32 attempt)
{
    // Full jitter: uniform in [base/2, min(cap, base << attempt)].
    i64 cap = opts_.backoffBaseMs;
    for (u32 i = 0; i < attempt && cap < opts_.backoffCapMs; ++i)
        cap *= 2;
    cap = std::min<i64>(cap, opts_.backoffCapMs);
    const i64 lo = std::max<i64>(1, opts_.backoffBaseMs / 2);
    if (cap <= lo)
        return lo;
    return lo + static_cast<i64>(
                    jitter_.below(static_cast<u64>(cap - lo + 1)));
}

ServiceStatus
SimdClient::runWithRetry(const ServiceRequest &req, SweepJobResult &res,
                         std::string &error, u32 *attempts)
{
    ServiceStatus last = ServiceStatus::kInternalError;
    const u32 maxAttempts = std::max<u32>(1, opts_.maxAttempts);

    // The retry budget is capped by the request's own deadline: the
    // server stops waiting at deadlineMs, so wall time a client
    // spends beyond it — however it is split between backoff sleeps
    // and attempts — can only produce answers nobody is owed.
    const auto t0 = std::chrono::steady_clock::now();
    const auto budgetLeftMs = [&]() -> i64 {
        const i64 elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return req.deadlineMs - elapsed;
    };

    u32 used = 0;
    for (u32 attempt = 0; attempt < maxAttempts; ++attempt) {
        if (attempt > 0) {
            i64 sleepMs = backoffMsForAttempt(attempt);
            if (req.deadlineMs >= 0) {
                const i64 left = budgetLeftMs();
                if (left <= 0)
                    break; // budget exhausted: return the last status
                sleepMs = std::min(sleepMs, left);
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleepMs));
        }
        used = attempt + 1;

        if (!connected()) {
            last = connect(error);
            if (last == ServiceStatus::kVersionMismatch) {
                // A version mismatch is permanent for this binary.
                if (attempts)
                    *attempts = used;
                return last;
            }
            if (last != ServiceStatus::kOk)
                continue; // transport failure: back off and retry
        }

        last = run(req, res, error);
        if (last == ServiceStatus::kOk || !isRetryable(last)) {
            // kInternalError from run() means the transport died
            // mid-request; that is retryable even though the *status*
            // is terminal for a server-side failure.
            const bool transportFailure =
                last == ServiceStatus::kInternalError && !connected();
            if (!transportFailure) {
                if (attempts)
                    *attempts = used;
                return last;
            }
        }
    }
    if (attempts)
        *attempts = used;
    return last;
}

ServiceStatus
SimdClient::stats(Message &out, std::string &error)
{
    if (!connected()) {
        const ServiceStatus s = connect(error);
        if (s != ServiceStatus::kOk)
            return s;
    }
    Message req;
    req.verb = kVerbStats;
    const ServiceStatus transport = roundTrip(req, out, error);
    if (transport != ServiceStatus::kOk)
        return transport;
    if (out.verb != kVerbStats) {
        error = "expected STATS response, got '" + out.verb + "'";
        return ServiceStatus::kBadRequest;
    }
    return ServiceStatus::kOk;
}

} // namespace rfv
