/**
 * @file
 * Client library for the `simd` daemon: connect + handshake, submit
 * RUN/STATS requests, and a retry wrapper implementing exponential
 * backoff with jitter for transient failures (RETRY_LATER shedding,
 * SHUTTING_DOWN, refused or dropped connections).
 *
 * Backoff is full-jitter: attempt n sleeps a uniform draw from
 * [base/2, min(cap, base * 2^n)], using the repo's deterministic Rng
 * so tests can pin the schedule via the seed.  Non-retryable statuses
 * (BAD_CONFIG, UNKNOWN_WORKLOAD, VERSION_MISMATCH, …) are returned
 * immediately — retrying an invalid request can never help.
 *
 * The retry budget is additionally capped by the request's own
 * deadline: with deadlineMs >= 0 the total wall time across attempts
 * and backoff sleeps never exceeds deadlineMs — a client must not
 * spend longer retrying than the deadline it asked the server to
 * enforce.
 */
#ifndef RFV_NET_CLIENT_H
#define RFV_NET_CLIENT_H

#include <string>

#include "common/rng.h"
#include "common/socket.h"
#include "net/protocol.h"

namespace rfv {

struct ClientOptions {
    std::string host = "127.0.0.1";
    u16 port = 0;
    i64 connectTimeoutMs = 5000;
    /** Bound on waiting for a response frame; < 0 = wait forever. */
    i64 responseTimeoutMs = -1;
    u32 maxAttempts = 5;     //!< total tries in runWithRetry()
    i64 backoffBaseMs = 100; //!< first-retry backoff scale
    i64 backoffCapMs = 5000; //!< upper bound on one backoff sleep
    u64 jitterSeed = 0x5eed; //!< deterministic jitter stream
};

class SimdClient {
  public:
    explicit SimdClient(ClientOptions opts);

    /**
     * Connect and run the HELLO/WELCOME handshake.  kOk,
     * kVersionMismatch (server refused the session), or
     * kInternalError with @p error for transport failures.
     */
    ServiceStatus connect(std::string &error);

    bool connected() const { return sock_.valid(); }
    void disconnect() { sock_.close(); }

    /**
     * Submit one RUN request and decode the response into @p res,
     * connecting (with handshake) first if no session is open.
     * Returns the response status; kInternalError with @p error on
     * transport failure (the connection is closed and must be
     * re-established).  @p rawResponse, when non-null, receives the
     * undecoded RESULT — cluster routers read the NOT_OWNER/REDIRECT
     * owner list from it (see protocol.h decodeRedirect).
     */
    ServiceStatus run(const ServiceRequest &req, SweepJobResult &res,
                      std::string &error,
                      Message *rawResponse = nullptr);

    /**
     * run() plus the retry policy: reconnects as needed, retries
     * transient statuses and transport failures with exponential
     * backoff + jitter, gives up after maxAttempts.  @p attempts
     * (optional) receives the number of tries consumed.
     */
    ServiceStatus runWithRetry(const ServiceRequest &req,
                               SweepJobResult &res, std::string &error,
                               u32 *attempts = nullptr);

    /** Fetch the server's STATS counters (connects on demand). */
    ServiceStatus stats(Message &out, std::string &error);

    /**
     * One generic request/response round trip, connecting (with
     * handshake) on demand — the transport for the v2 cluster verbs
     * (CLUSTER, PING, STORE).  kInternalError with @p error on
     * transport failure; the response is otherwise returned verbatim
     * for the caller to interpret.
     */
    ServiceStatus request(const Message &req, Message &response,
                          std::string &error);

    /** The backoff the retry loop would sleep before try @p attempt. */
    i64 backoffMsForAttempt(u32 attempt);

    /**
     * Override the response-frame wait (cluster routers tighten it to
     * the request's remaining deadline so a dead node is detected at
     * request grain, not only by heartbeat).
     */
    void setResponseTimeoutMs(i64 ms) { opts_.responseTimeoutMs = ms; }

    const ClientOptions &options() const { return opts_; }

  private:
    ServiceStatus roundTrip(const Message &request, Message &response,
                            std::string &error);

    ClientOptions opts_;
    Socket sock_;
    Rng jitter_;
};

} // namespace rfv

#endif // RFV_NET_CLIENT_H
