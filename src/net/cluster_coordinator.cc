#include "net/cluster_coordinator.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "service/request.h"

namespace rfv {

namespace {

i64
steadyNowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

ClusterCoordinator::ClusterCoordinator(CoordinatorOptions opts)
    : opts_(std::move(opts))
{
    std::vector<RingNode> nodes;
    nodes.reserve(opts_.nodes.size());
    std::string error;
    for (const std::string &endpoint : opts_.nodes) {
        RingNode node;
        if (!parseEndpoint(endpoint, node, error))
            throw ConfigError("cluster node: " + error);
        nodes.push_back(std::move(node));
    }
    // Throws on empty/duplicate membership; mu_ is not needed yet
    // (no other thread can hold a half-constructed coordinator).
    MutexLock lk(mu_);
    ring_ = HashRing::build(std::move(nodes), opts_.vnodes,
                            opts_.replication, opts_.epoch);
}

HashRing
ClusterCoordinator::ringSnapshot() const
{
    MutexLock lk(mu_);
    return ring_;
}

u64
ClusterCoordinator::ringEpoch() const
{
    MutexLock lk(mu_);
    return ring_.epoch();
}

ClusterCoordinator::Stats
ClusterCoordinator::statsSnapshot() const
{
    MutexLock lk(mu_);
    return stats_;
}

// ---- connection pool ---------------------------------------------------

std::unique_ptr<SimdClient>
ClusterCoordinator::acquire(const std::string &endpoint)
{
    u64 seed = 0;
    {
        MutexLock lk(mu_);
        auto &idle = pool_[endpoint];
        if (!idle.empty()) {
            std::unique_ptr<SimdClient> client =
                std::move(idle.back());
            idle.pop_back();
            return client;
        }
        // Distinct jitter streams per connection keep concurrent
        // workers' backoff schedules decorrelated yet deterministic.
        seed = opts_.client.jitterSeed + ++nextJitterSeed_;
    }
    RingNode node;
    std::string error;
    if (!parseEndpoint(endpoint, node, error))
        throw ConfigError("cluster endpoint: " + error);
    ClientOptions copts = opts_.client;
    copts.host = node.host;
    copts.port = node.port;
    copts.jitterSeed = seed;
    return std::make_unique<SimdClient>(std::move(copts));
}

void
ClusterCoordinator::release(const std::string &endpoint,
                            std::unique_ptr<SimdClient> client)
{
    client->setResponseTimeoutMs(opts_.client.responseTimeoutMs);
    MutexLock lk(mu_);
    pool_[endpoint].push_back(std::move(client));
}

// ---- health ------------------------------------------------------------

void
ClusterCoordinator::markDown(const std::string &endpoint)
{
    MutexLock lk(mu_);
    health_[endpoint].downUntilMs =
        steadyNowMs() + std::max<i64>(1, opts_.downHoldoffMs);
    ++stats_.nodesMarkedDown;
}

bool
ClusterCoordinator::usable(const std::string &endpoint, i64 nowMs)
{
    MutexLock lk(mu_);
    const auto it = health_.find(endpoint);
    return it == health_.end() || it->second.downUntilMs <= nowMs;
}

bool
ClusterCoordinator::probe(const std::string &endpoint)
{
    {
        MutexLock lk(mu_);
        ++stats_.probes;
    }
    std::unique_ptr<SimdClient> client = acquire(endpoint);
    client->setResponseTimeoutMs(opts_.probeTimeoutMs);
    Message ping;
    ping.verb = kVerbPing;
    Message pong;
    std::string error;
    const bool ok =
        client->request(ping, pong, error) == ServiceStatus::kOk &&
        pong.verb == kVerbPong;
    if (ok) {
        release(endpoint, std::move(client));
        MutexLock lk(mu_);
        health_[endpoint].downUntilMs = 0;
        return true;
    }
    MutexLock lk(mu_);
    ++stats_.probeFailures;
    health_[endpoint].downUntilMs =
        steadyNowMs() + std::max<i64>(1, opts_.downHoldoffMs);
    return false;
}

// ---- ring maintenance --------------------------------------------------

bool
ClusterCoordinator::adoptRing(const HashRing &ring)
{
    MutexLock lk(mu_);
    if (ring.epoch() < ring_.epoch())
        return false; // never roll the view backwards
    ring_ = ring;
    return true;
}

ServiceStatus
ClusterCoordinator::refreshRing(std::string &error)
{
    const HashRing snapshot = ringSnapshot();
    std::string lastError = "cluster has no nodes";
    for (const RingNode &node : snapshot.nodes()) {
        const std::string endpoint = node.endpoint();
        std::unique_ptr<SimdClient> client = acquire(endpoint);
        client->setResponseTimeoutMs(opts_.probeTimeoutMs);
        Message request;
        request.verb = kVerbCluster;
        Message response;
        std::string err;
        if (client->request(request, response, err) !=
            ServiceStatus::kOk) {
            lastError = endpoint + ": " + err;
            continue; // dead node; try the next member
        }
        release(endpoint, std::move(client));
        HashRing ring;
        std::string self;
        if (!decodeClusterInfo(response, ring, self, err)) {
            lastError = endpoint + ": " + err;
            continue;
        }
        adoptRing(ring);
        MutexLock lk(mu_);
        ++stats_.ringRefreshes;
        return ServiceStatus::kOk;
    }
    error = "no cluster node answered CLUSTER (last: " + lastError + ")";
    return ServiceStatus::kInternalError;
}

std::vector<std::string>
ClusterCoordinator::ownersOf(const SweepJob &job) const
{
    std::vector<std::string> endpoints;
    Hash128 rkey;
    try {
        rkey = routingKey(job.workload, job.config);
    } catch (const std::exception &) {
        return endpoints;
    }
    const HashRing ring = ringSnapshot();
    for (const u32 index : ring.ownersFor(rkey))
        endpoints.push_back(ring.nodes()[index].endpoint());
    return endpoints;
}

// ---- routed dispatch ---------------------------------------------------

ServiceStatus
ClusterCoordinator::runOnce(const std::string &endpoint,
                            const ServiceRequest &req,
                            SweepJobResult &res, Message &raw,
                            std::string &error, i64 responseTimeoutMs,
                            bool &transportFailed)
{
    std::unique_ptr<SimdClient> client = acquire(endpoint);
    client->setResponseTimeoutMs(responseTimeoutMs);
    const ServiceStatus s = client->run(req, res, error, &raw);
    transportFailed =
        s == ServiceStatus::kInternalError && !client->connected();
    if (!transportFailed)
        release(endpoint, std::move(client));
    // A dead transport's client is discarded: its socket is already
    // closed and the next dispatch to this node reconnects cleanly.
    return s;
}

ServiceStatus
ClusterCoordinator::run(const ServiceRequest &req, SweepJobResult &res,
                        std::string &error)
{
    res = SweepJobResult{};

    // Resolve the job locally first: the routing key needs the
    // resolved config, and a request no server could parse should
    // fail here without burning a network round trip.
    SweepJob job;
    ServiceStatus s = buildJob(req, job, error);
    if (s != ServiceStatus::kOk) {
        res.status = s;
        res.error = error;
        return s;
    }
    Hash128 rkey;
    try {
        rkey = routingKey(job.workload, job.config);
    } catch (const std::exception &e) {
        res.status = ServiceStatus::kBadConfig;
        res.error = error = e.what();
        return res.status;
    }

    // One cluster-wide budget, stamped now: every re-dispatch below
    // forwards only what is left of it.
    const auto t0 = std::chrono::steady_clock::now();
    const i64 budgetMs = req.deadlineMs;
    const auto budgetLeftMs = [&]() -> i64 {
        const i64 elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return budgetMs - elapsed;
    };
    const auto deadlineExhausted = [&]() -> ServiceStatus {
        {
            MutexLock lk(mu_);
            ++stats_.deadlineExhausted;
        }
        res = SweepJobResult{};
        res.job = job;
        res.status = ServiceStatus::kDeadlineExceeded;
        res.error = error =
            "cluster-wide deadline of " + std::to_string(budgetMs) +
            " ms exhausted before a node could answer";
        return res.status;
    };

    Rng backoffJitter(0);
    {
        MutexLock lk(mu_);
        // Child-stream derivation: dispatch n gets stream child(n) of
        // the configured jitter root, decorrelated from every sibling
        // dispatch (adjacent raw xor-seeds are not).
        backoffJitter =
            SeedSeq(opts_.client.jitterSeed).child(++nextJitterSeed_).rng();
    }

    std::vector<std::string> preferred; //!< owner hint from a redirect
    ServiceStatus last = ServiceStatus::kInternalError;
    std::string lastError = "no dispatch attempted";
    u32 shedRounds = 0;

    const u32 maxDispatches = std::max<u32>(1, opts_.maxDispatches);
    for (u32 dispatch = 0; dispatch < maxDispatches; ++dispatch) {
        if (budgetMs >= 0 && budgetLeftMs() <= 0)
            return deadlineExhausted();

        // Owner list for this attempt: a fresh redirect hint wins,
        // otherwise the ring's view.
        std::vector<std::string> owners;
        if (!preferred.empty()) {
            owners = std::move(preferred);
            preferred.clear();
        } else {
            const HashRing ring = ringSnapshot();
            for (const u32 index : ring.ownersFor(rkey))
                owners.push_back(ring.nodes()[index].endpoint());
        }
        if (owners.empty()) {
            error = "cluster ring is empty";
            return ServiceStatus::kInternalError;
        }

        // First healthy owner, primary first.  With every owner
        // quarantined, heartbeat them (PING) and take the first that
        // answers; a cluster that is entirely dark still gets one
        // forced attempt so the caller sees the real transport error.
        std::string target;
        const i64 nowMs = steadyNowMs();
        for (const std::string &endpoint : owners)
            if (usable(endpoint, nowMs)) {
                target = endpoint;
                break;
            }
        if (target.empty())
            for (const std::string &endpoint : owners)
                if (probe(endpoint)) {
                    target = endpoint;
                    break;
                }
        if (target.empty())
            target = owners.front();

        ServiceRequest attempt = req;
        attempt.ringEpoch = ringEpoch();
        i64 responseTimeoutMs = opts_.client.responseTimeoutMs;
        if (budgetMs >= 0) {
            const i64 left = budgetLeftMs();
            if (left <= 0)
                return deadlineExhausted();
            attempt.deadlineMs = left;
            // The transport wait tracks the job budget (plus slack
            // for the DEADLINE_EXCEEDED answer itself) so a node that
            // dies mid-request is detected at request grain.
            const i64 capped = left + 2000;
            if (responseTimeoutMs < 0 || capped < responseTimeoutMs)
                responseTimeoutMs = capped;
        }

        Message raw;
        bool transportFailed = false;
        error.clear();
        last = runOnce(target, attempt, res, raw, error,
                       responseTimeoutMs, transportFailed);
        {
            MutexLock lk(mu_);
            ++stats_.dispatches;
        }
        if (!error.empty())
            lastError = target + ": " + error;

        if (last == ServiceStatus::kOk)
            return last;

        if (transportFailed) {
            // Request-level failure detection: quarantine the node
            // and fail over to the next replica of the same key.
            markDown(target);
            {
                MutexLock lk(mu_);
                ++stats_.failovers;
            }
            continue;
        }

        if (isRerouteable(last)) {
            {
                MutexLock lk(mu_);
                ++stats_.reroutes;
            }
            RedirectInfo info;
            if (decodeRedirect(raw, info)) {
                if (info.ringEpoch > ringEpoch()) {
                    // The refusing node has a newer membership view:
                    // refresh before trusting any more routing.
                    std::string refreshError;
                    refreshRing(refreshError);
                }
                for (const std::string &owner : info.owners)
                    if (owner != target)
                        preferred.push_back(owner);
            }
            continue;
        }

        if (isRetryable(last)) {
            // Shed or draining: spill to the key's other replicas
            // first (cluster-wide scheduling — capacity elsewhere is
            // used before waiting); once every owner shed, back off.
            {
                MutexLock lk(mu_);
                ++stats_.shedRetries;
            }
            for (const std::string &owner : owners)
                if (owner != target)
                    preferred.push_back(owner);
            if (preferred.empty()) {
                i64 cap = opts_.client.backoffBaseMs;
                for (u32 i = 0;
                     i < shedRounds && cap < opts_.shedBackoffCapMs;
                     ++i)
                    cap *= 2;
                cap = std::min<i64>(cap, opts_.shedBackoffCapMs);
                const i64 lo =
                    std::max<i64>(1, opts_.client.backoffBaseMs / 2);
                i64 sleepMs =
                    cap <= lo ? lo
                              : lo + static_cast<i64>(backoffJitter.below(
                                         static_cast<u64>(cap - lo + 1)));
                if (budgetMs >= 0) {
                    const i64 left = budgetLeftMs();
                    if (left <= 0)
                        return deadlineExhausted();
                    sleepMs = std::min(sleepMs, left);
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(sleepMs));
                ++shedRounds;
            }
            continue;
        }

        // Terminal: bad request/config, version mismatch, server-side
        // internal error, deadline, cancellation — nothing a different
        // node could answer differently.
        return last;
    }

    if (error.empty())
        error = "cluster dispatch budget exhausted after " +
                std::to_string(maxDispatches) + " attempts (last: " +
                lastError + ")";
    if (res.status == ServiceStatus::kOk)
        res.status = last;
    return last;
}

std::vector<std::pair<std::string, Message>>
ClusterCoordinator::statsAll()
{
    std::vector<std::pair<std::string, Message>> out;
    const HashRing ring = ringSnapshot();
    for (const RingNode &node : ring.nodes()) {
        const std::string endpoint = node.endpoint();
        std::unique_ptr<SimdClient> client = acquire(endpoint);
        client->setResponseTimeoutMs(opts_.probeTimeoutMs);
        Message stats;
        std::string error;
        if (client->stats(stats, error) == ServiceStatus::kOk) {
            release(endpoint, std::move(client));
            out.emplace_back(endpoint, std::move(stats));
        }
    }
    return out;
}

} // namespace rfv
