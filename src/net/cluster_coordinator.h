/**
 * @file
 * Client-side cluster coordinator: the routed front door to a set of
 * SimdServer nodes.
 *
 * Routing: every job's routing key (service/hash.h routingKey) maps
 * to an owner list on the consistent-hash ring; the coordinator
 * dispatches to the first *healthy* owner, primary first.  The ring
 * is bootstrapped locally from the seed list and refreshed through
 * the CLUSTER verb whenever a node answers NOT_OWNER/REDIRECT with a
 * newer epoch — the membership view converges without a coordination
 * service.
 *
 * Failure detection is two-layered: request-level (a connect/send/
 * receive failure or response timeout marks the node down and fails
 * over to the next replica in the same dispatch) and heartbeat (a
 * down node past its holdoff is PINGed before it is trusted with
 * traffic again).  Because replicas answer from the same ResultCache
 * serialization — or recompute bit-identically on a cold miss — a
 * failover re-dispatch returns the same bytes the dead node would
 * have.
 *
 * Deadlines are cluster-wide: one budget is stamped when run() is
 * entered, and every re-dispatch (failover, redirect, retry-later
 * backoff) forwards only the *remaining* budget, so "deadline_ms=500"
 * bounds the job across however many nodes end up touching it — not
 * 500 ms per node.
 *
 * Thread-safe: worker threads share one coordinator; per-node
 * connections are pooled and handed out exclusively.
 */
#ifndef RFV_NET_CLUSTER_COORDINATOR_H
#define RFV_NET_CLUSTER_COORDINATOR_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "net/client.h"
#include "net/cluster_ring.h"

namespace rfv {

struct CoordinatorOptions {
    /** Seed node endpoints; also the bootstrap ring membership. */
    std::vector<std::string> nodes;

    /** Per-connection template (timeouts, backoff, jitter seed). */
    ClientOptions client;

    // Bootstrap ring geometry (replaced on the first CLUSTER refresh
    // with whatever the cluster actually runs).
    u32 vnodes = 64;
    u32 replication = 2;
    u64 epoch = 1;

    i64 probeTimeoutMs = 1000; //!< PING round-trip budget
    i64 downHoldoffMs = 2000;  //!< quarantine after a node failure
    u32 maxDispatches = 8;     //!< routing attempts per request

    /**
     * Backoff cap when every owner sheds load (RETRY_LATER); the
     * actual sleep is jittered via the client template's backoff
     * parameters and capped by the remaining deadline.
     */
    i64 shedBackoffCapMs = 1000;
};

class ClusterCoordinator {
  public:
    /** Routing counters (one coordinator, all worker threads). */
    struct Stats {
        u64 dispatches = 0;   //!< RUNs sent to some node
        u64 reroutes = 0;     //!< NOT_OWNER/REDIRECT follow-ups
        u64 failovers = 0;    //!< transport-failure re-dispatches
        u64 shedRetries = 0;  //!< RETRY_LATER re-dispatches
        u64 ringRefreshes = 0;
        u64 probes = 0;       //!< PING health checks sent
        u64 probeFailures = 0;
        u64 nodesMarkedDown = 0;
        u64 deadlineExhausted = 0; //!< budget died before an answer
    };

    /** Throws ConfigError on an empty or malformed node list. */
    explicit ClusterCoordinator(CoordinatorOptions opts);

    /**
     * Route one request to its owner and return the decoded result —
     * the cluster-side analogue of SimdClient::runWithRetry.  Handles
     * NOT_OWNER/REDIRECT re-routing, ring refresh on epoch change,
     * failover to replicas on node failure, load-shed backoff, and
     * remaining-deadline propagation.  Returns the final status;
     * kDeadlineExceeded when the cluster-wide budget ran out first.
     */
    ServiceStatus run(const ServiceRequest &req, SweepJobResult &res,
                      std::string &error) RFV_EXCLUDES(mu_);

    /** Fetch ring membership from any reachable node (CLUSTER). */
    ServiceStatus refreshRing(std::string &error) RFV_EXCLUDES(mu_);

    /**
     * PING @p endpoint; true marks the node up, false extends its
     * quarantine.  Exposed so harnesses can drive failure detection
     * deterministically.
     */
    bool probe(const std::string &endpoint) RFV_EXCLUDES(mu_);

    /** STATS from every node (endpoint, response) — skips dead ones. */
    std::vector<std::pair<std::string, Message>> statsAll()
        RFV_EXCLUDES(mu_);

    /** The endpoints this job's key routes to, primary first. */
    std::vector<std::string> ownersOf(const SweepJob &job) const
        RFV_EXCLUDES(mu_);

    HashRing ringSnapshot() const RFV_EXCLUDES(mu_);
    u64 ringEpoch() const RFV_EXCLUDES(mu_);
    Stats statsSnapshot() const RFV_EXCLUDES(mu_);

  private:
    struct NodeHealth {
        i64 downUntilMs = 0; //!< steady-clock ms; <= now means usable
    };

    std::unique_ptr<SimdClient> acquire(const std::string &endpoint)
        RFV_EXCLUDES(mu_);
    void release(const std::string &endpoint,
                 std::unique_ptr<SimdClient> client) RFV_EXCLUDES(mu_);
    void markDown(const std::string &endpoint) RFV_EXCLUDES(mu_);
    bool usable(const std::string &endpoint, i64 nowMs)
        RFV_EXCLUDES(mu_);
    ServiceStatus runOnce(const std::string &endpoint,
                          const ServiceRequest &req, SweepJobResult &res,
                          Message &raw, std::string &error,
                          i64 responseTimeoutMs, bool &transportFailed)
        RFV_EXCLUDES(mu_);
    bool adoptRing(const HashRing &ring) RFV_EXCLUDES(mu_);

    CoordinatorOptions opts_;

    mutable Mutex mu_;
    HashRing ring_ RFV_GUARDED_BY(mu_);
    std::map<std::string, NodeHealth> health_ RFV_GUARDED_BY(mu_);
    std::map<std::string, std::vector<std::unique_ptr<SimdClient>>>
        pool_ RFV_GUARDED_BY(mu_);
    Stats stats_ RFV_GUARDED_BY(mu_);
    u64 nextJitterSeed_ RFV_GUARDED_BY(mu_) = 0;
};

} // namespace rfv

#endif // RFV_NET_CLUSTER_COORDINATOR_H
