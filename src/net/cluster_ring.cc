#include "net/cluster_ring.h"

#include <algorithm>

#include "common/error.h"

namespace rfv {

bool
parseEndpoint(const std::string &text, RingNode &out, std::string &error)
{
    const size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == text.size()) {
        error = "endpoint is not host:port: '" + text + "'";
        return false;
    }
    u64 port = 0;
    for (size_t i = colon + 1; i < text.size(); ++i) {
        const char c = text[i];
        if (c < '0' || c > '9') {
            error = "endpoint port is not a number: '" + text + "'";
            return false;
        }
        port = port * 10 + static_cast<u64>(c - '0');
        if (port > 65535) {
            error = "endpoint port out of range: '" + text + "'";
            return false;
        }
    }
    if (port == 0) {
        error = "endpoint port must be nonzero: '" + text + "'";
        return false;
    }
    out.host = text.substr(0, colon);
    out.port = static_cast<u16>(port);
    return true;
}

bool
parseEndpointList(const std::string &text, std::vector<RingNode> &out,
                  std::string &error)
{
    out.clear();
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string part = text.substr(pos, comma - pos);
        if (part.empty()) {
            error = "empty endpoint in list '" + text + "'";
            return false;
        }
        RingNode node;
        if (!parseEndpoint(part, node, error))
            return false;
        out.push_back(std::move(node));
        pos = comma + 1;
        if (comma == text.size())
            break;
    }
    if (out.empty()) {
        error = "empty endpoint list";
        return false;
    }
    return true;
}

u64
HashRing::positionOf(const Hash128 &key)
{
    // Fold both independent lanes so a collision needs to line up in
    // 128 bits, not 64.
    return key.hi ^ key.lo;
}

HashRing
HashRing::build(std::vector<RingNode> nodes, u32 vnodes, u32 replication,
                u64 epoch)
{
    if (nodes.empty())
        throw ConfigError("cluster ring needs at least one node");
    if (replication == 0)
        throw ConfigError("cluster replication factor must be >= 1");
    if (vnodes == 0)
        throw ConfigError("cluster vnodes must be >= 1");
    for (size_t i = 0; i < nodes.size(); ++i)
        for (size_t j = i + 1; j < nodes.size(); ++j)
            if (nodes[i].endpoint() == nodes[j].endpoint())
                throw ConfigError("duplicate cluster node '" +
                                  nodes[i].endpoint() + "'");

    HashRing ring;
    ring.nodes_ = std::move(nodes);
    ring.vnodes_ = vnodes;
    ring.replication_ = std::min<u32>(
        replication, static_cast<u32>(ring.nodes_.size()));
    ring.epoch_ = epoch;

    ring.points_.reserve(ring.nodes_.size() * vnodes);
    for (u32 n = 0; n < ring.nodes_.size(); ++n) {
        const std::string endpoint = ring.nodes_[n].endpoint();
        for (u32 v = 0; v < vnodes; ++v) {
            Hasher h;
            h.str(endpoint);
            h.u32v(v);
            ring.points_.emplace_back(positionOf(h.digest()), n);
        }
    }
    // Position ties (vanishingly rare) break by node index, keeping
    // the sort — and thus ownership — fully deterministic.
    std::sort(ring.points_.begin(), ring.points_.end());
    return ring;
}

i32
HashRing::indexOf(const std::string &endpoint) const
{
    for (size_t i = 0; i < nodes_.size(); ++i)
        if (nodes_[i].endpoint() == endpoint)
            return static_cast<i32>(i);
    return -1;
}

std::vector<u32>
HashRing::ownersFor(const Hash128 &key) const
{
    std::vector<u32> owners;
    if (points_.empty())
        return owners;
    const u64 pos = positionOf(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(pos, static_cast<u32>(0)));
    const u32 want =
        std::min<u32>(replication_, static_cast<u32>(nodes_.size()));
    owners.reserve(want);
    for (size_t step = 0; step < points_.size() && owners.size() < want;
         ++step) {
        if (it == points_.end())
            it = points_.begin(); // clockwise wrap
        const u32 node = it->second;
        if (std::find(owners.begin(), owners.end(), node) == owners.end())
            owners.push_back(node);
        ++it;
    }
    return owners;
}

u32
HashRing::primaryFor(const Hash128 &key) const
{
    const std::vector<u32> owners = ownersFor(key);
    return owners.empty() ? 0 : owners[0];
}

bool
HashRing::owns(const std::string &endpoint, const Hash128 &key) const
{
    const i32 index = indexOf(endpoint);
    if (index < 0)
        return false;
    const std::vector<u32> owners = ownersFor(key);
    return std::find(owners.begin(), owners.end(),
                     static_cast<u32>(index)) != owners.end();
}

// ---- CLUSTER verb codec ------------------------------------------------

Message
encodeClusterInfo(const HashRing &ring, const std::string &self)
{
    Message m;
    m.verb = kVerbCluster;
    m.add("status", serviceStatusName(ServiceStatus::kOk));
    m.addU64("ring_epoch", ring.epoch());
    m.addU64("replication", ring.replication());
    m.addU64("vnodes", ring.vnodesPerNode());
    m.add("self", self);
    for (const RingNode &node : ring.nodes())
        m.add("node", node.endpoint());
    return m;
}

bool
decodeClusterInfo(const Message &msg, HashRing &out, std::string &self,
                  std::string &error)
{
    if (msg.verb != kVerbCluster) {
        error = "expected CLUSTER, got '" + msg.verb + "'";
        return false;
    }
    u64 epoch = 0, replication = 0, vnodes = 0;
    if (!msg.getU64("ring_epoch", epoch)) {
        error = "CLUSTER without numeric ring_epoch";
        return false;
    }
    if (!msg.getU64("replication", replication) || replication == 0 ||
        replication > 0xffffffffull) {
        error = "CLUSTER with bad replication '" +
                msg.get("replication") + "'";
        return false;
    }
    if (!msg.getU64("vnodes", vnodes) || vnodes == 0 || vnodes > 4096) {
        error = "CLUSTER with bad vnodes '" + msg.get("vnodes") + "'";
        return false;
    }
    std::vector<RingNode> nodes;
    for (const std::string &endpoint : msg.getAll("node")) {
        RingNode node;
        if (!parseEndpoint(endpoint, node, error))
            return false;
        nodes.push_back(std::move(node));
    }
    if (nodes.empty()) {
        error = "CLUSTER without node list";
        return false;
    }
    self = msg.get("self");
    if (self.empty()) {
        error = "CLUSTER without self endpoint";
        return false;
    }
    try {
        out = HashRing::build(std::move(nodes),
                              static_cast<u32>(vnodes),
                              static_cast<u32>(replication), epoch);
    } catch (const ConfigError &e) {
        error = e.what();
        return false;
    }
    if (out.indexOf(self) < 0) {
        error = "CLUSTER self '" + self + "' not in node list";
        return false;
    }
    return true;
}

} // namespace rfv
