/**
 * @file
 * Consistent-hash ring over the ResultCache keyspace.
 *
 * Every cluster node is projected onto a 64-bit ring at `vnodes`
 * pseudo-random positions (virtual nodes flatten the ownership
 * distribution); a key's owners are the first `replication` distinct
 * nodes clockwise from the key's position.  The ring is a pure
 * function of (node list, vnodes, replication, epoch): every client
 * and server that agrees on those four inputs computes identical
 * ownership, so routing needs no coordination service — the CLUSTER
 * verb ships the inputs, not the ring.
 *
 * The epoch is a monotonically increasing version of the membership
 * view.  A node answering NOT_OWNER attaches its epoch so a client
 * holding a stale ring knows to refresh before re-routing; nodes
 * never proxy requests, keeping the data path one hop.
 *
 * Ring positions hash only the node *endpoint string* and the vnode
 * index through the repo's deterministic two-lane Hasher — no
 * platform-dependent std::hash — so ownership is reproducible across
 * builds, platforms and processes (the same property the result-cache
 * key already guarantees).
 */
#ifndef RFV_NET_CLUSTER_RING_H
#define RFV_NET_CLUSTER_RING_H

#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "service/hash.h"

namespace rfv {

/** One cluster member, addressed as "host:port". */
struct RingNode {
    std::string host;
    u16 port = 0;

    std::string
    endpoint() const
    {
        return host + ":" + std::to_string(port);
    }

    bool operator==(const RingNode &) const = default;
};

/** Parse "host:port"; false (with @p error) on malformed input. */
bool parseEndpoint(const std::string &text, RingNode &out,
                   std::string &error);

/** Parse a comma-separated endpoint list ("h1:p1,h2:p2,..."). */
bool parseEndpointList(const std::string &text,
                       std::vector<RingNode> &out, std::string &error);

class HashRing {
  public:
    /** Default ring is empty: no cluster, every key owned locally. */
    HashRing() = default;

    /**
     * Build a ring deterministically from its inputs.  Throws
     * ConfigError on an empty node list, a duplicate endpoint, or
     * replication == 0.  Replication is clamped to the node count.
     */
    static HashRing build(std::vector<RingNode> nodes, u32 vnodes,
                          u32 replication, u64 epoch);

    bool empty() const { return nodes_.empty(); }
    u64 epoch() const { return epoch_; }
    u32 replication() const { return replication_; }
    u32 vnodesPerNode() const { return vnodes_; }
    const std::vector<RingNode> &nodes() const { return nodes_; }

    /** Index of @p endpoint in nodes(), or -1 when absent. */
    i32 indexOf(const std::string &endpoint) const;

    /**
     * The first min(replication, nodes) distinct node indices
     * clockwise from @p key's ring position, primary first.  Every
     * caller that shares this ring gets the same list for the same
     * key — that agreement *is* the routing protocol.
     */
    std::vector<u32> ownersFor(const Hash128 &key) const;

    /** ownersFor(key)[0]. */
    u32 primaryFor(const Hash128 &key) const;

    /** True when @p endpoint is one of ownersFor(key). */
    bool owns(const std::string &endpoint, const Hash128 &key) const;

    /** Ring position of a key: both digest lanes folded together. */
    static u64 positionOf(const Hash128 &key);

    bool
    operator==(const HashRing &o) const
    {
        return nodes_ == o.nodes_ && vnodes_ == o.vnodes_ &&
               replication_ == o.replication_ && epoch_ == o.epoch_;
    }

  private:
    std::vector<RingNode> nodes_;
    u32 vnodes_ = 0;
    u32 replication_ = 1;
    u64 epoch_ = 0;
    /** (ring position, node index), sorted by position then index. */
    std::vector<std::pair<u64, u32>> points_;
};

// ---- CLUSTER verb codec ------------------------------------------------

/**
 * CLUSTER response: the ring's defining inputs plus the answering
 * node's own endpoint (`self`), so a client can both rebuild the ring
 * and learn which member it is talking to.
 */
Message encodeClusterInfo(const HashRing &ring, const std::string &self);

/**
 * Parse a CLUSTER response and rebuild the ring.  False (with
 * @p error) on a missing/malformed field, an unparsable endpoint, a
 * duplicate node, or a `self` not present in the node list.
 */
bool decodeClusterInfo(const Message &msg, HashRing &out,
                       std::string &self, std::string &error);

} // namespace rfv

#endif // RFV_NET_CLUSTER_RING_H
