#include "net/protocol.h"

#include <algorithm>
#include <sstream>

#include "service/result_cache.h"
#include "service/version.h"

namespace rfv {

const std::string *
Message::find(const std::string &key) const
{
    for (const auto &[k, v] : fields)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
Message::get(const std::string &key, const std::string &fallback) const
{
    const std::string *v = find(key);
    return v ? *v : fallback;
}

bool
Message::getU64(const std::string &key, u64 &out) const
{
    const std::string *v = find(key);
    if (!v || v->empty())
        return false;
    u64 x = 0;
    for (char c : *v) {
        if (c < '0' || c > '9')
            return false;
        const u64 next = x * 10 + static_cast<u64>(c - '0');
        if (next < x)
            return false;
        x = next;
    }
    out = x;
    return true;
}

bool
Message::getI64(const std::string &key, i64 &out) const
{
    const std::string *v = find(key);
    if (!v || v->empty())
        return false;
    const bool neg = (*v)[0] == '-';
    u64 mag = 0;
    const std::string digits = neg ? v->substr(1) : *v;
    if (digits.empty())
        return false;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return false;
        mag = mag * 10 + static_cast<u64>(c - '0');
        if (mag > (1ull << 62))
            return false;
    }
    out = neg ? -static_cast<i64>(mag) : static_cast<i64>(mag);
    return true;
}

std::vector<std::string>
Message::getAll(const std::string &key) const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : fields)
        if (k == key)
            out.push_back(v);
    return out;
}

std::string
Message::encode() const
{
    std::string out = verb;
    out += '\n';
    for (const auto &[k, v] : fields) {
        out += k;
        out += '=';
        out += v;
        out += '\n';
    }
    out += '\n';
    out += blob;
    return out;
}

bool
Message::decode(const std::string &payload, Message &out,
                std::string &error)
{
    out = Message{};
    size_t pos = 0;

    auto nextLine = [&](std::string &line) -> bool {
        const size_t nl = payload.find('\n', pos);
        if (nl == std::string::npos)
            return false;
        line = payload.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    };

    std::string line;
    if (!nextLine(line) || line.empty()) {
        error = "message has no verb line";
        return false;
    }
    if (line.find('\0') != std::string::npos) {
        error = "NUL byte in verb";
        return false;
    }
    out.verb = line;

    for (;;) {
        if (!nextLine(line)) {
            error = "message not terminated by a blank line";
            return false;
        }
        if (line.empty())
            break; // header/blob separator
        const size_t eq = line.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "field line without key=value: '" + line + "'";
            return false;
        }
        if (line.find('\0') != std::string::npos) {
            error = "NUL byte in field";
            return false;
        }
        out.fields.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
    out.blob = payload.substr(pos);
    return true;
}

// ---- handshake ---------------------------------------------------------

Message
makeHello()
{
    Message m;
    m.verb = kVerbHello;
    m.addU64("proto_min", kProtoVersionMin);
    m.addU64("proto_max", kProtoVersionMax);
    m.add("sim", kSimulatorVersion);
    return m;
}

Message
makeWelcome(const Message &hello, bool &ok)
{
    ok = false;
    Message m;
    m.verb = kVerbWelcome;
    m.addU64("proto", kProtoVersionMax);
    m.add("sim", kSimulatorVersion);

    u64 protoMin = 0, protoMax = 0;
    if (hello.verb != kVerbHello || !hello.getU64("proto_min", protoMin) ||
        !hello.getU64("proto_max", protoMax) || protoMin > protoMax) {
        m.add("status", serviceStatusName(ServiceStatus::kBadRequest));
        m.add("error", "malformed hello");
        return m;
    }
    const u64 lo = std::max<u64>(protoMin, kProtoVersionMin);
    const u64 hi = std::min<u64>(protoMax, kProtoVersionMax);
    if (lo > hi) {
        m.add("status",
              serviceStatusName(ServiceStatus::kVersionMismatch));
        m.add("error", "no common protocol version (client " +
                           std::to_string(protoMin) + ".." +
                           std::to_string(protoMax) + ", server " +
                           std::to_string(kProtoVersionMin) + ".." +
                           std::to_string(kProtoVersionMax) + ")");
        return m;
    }
    const std::string sim = hello.get("sim");
    if (sim != kSimulatorVersion) {
        m.add("status",
              serviceStatusName(ServiceStatus::kVersionMismatch));
        m.add("error", "simulator version mismatch (client '" + sim +
                           "', server '" + kSimulatorVersion + "')");
        return m;
    }
    // Rewrite the negotiated version (field order: proto was added
    // first, so rebuild).
    m.fields.clear();
    m.addU64("proto", hi);
    m.add("sim", kSimulatorVersion);
    m.add("status", serviceStatusName(ServiceStatus::kOk));
    ok = true;
    return m;
}

bool
checkWelcome(const Message &welcome, std::string &error)
{
    if (welcome.verb != kVerbWelcome) {
        error = "expected WELCOME, got '" + welcome.verb + "'";
        return false;
    }
    ServiceStatus s = ServiceStatus::kInternalError;
    if (!serviceStatusFromName(welcome.get("status"), s)) {
        error = "WELCOME with unparsable status '" +
                welcome.get("status") + "'";
        return false;
    }
    if (s != ServiceStatus::kOk) {
        // Lead with the status name so callers (and logs) can tell a
        // terminal refusal from a transport hiccup at a glance.
        error = std::string(serviceStatusName(s)) + ": " +
                welcome.get("error", "server rejected session");
        return false;
    }
    u64 proto = 0;
    if (!welcome.getU64("proto", proto) || proto < kProtoVersionMin ||
        proto > kProtoVersionMax) {
        error = "server negotiated unsupported protocol version '" +
                welcome.get("proto") + "'";
        return false;
    }
    if (welcome.get("sim") != kSimulatorVersion) {
        error = "simulator version mismatch (server '" +
                welcome.get("sim") + "', client '" + kSimulatorVersion +
                "')";
        return false;
    }
    return true;
}

// ---- RUN ---------------------------------------------------------------

Message
encodeRunRequest(const ServiceRequest &req)
{
    Message m;
    m.verb = kVerbRun;
    m.add("workload", req.workload);
    m.add("config", req.configName);
    for (const auto &[key, value] : req.overrides)
        m.add("set", key + "=" + value);
    if (req.deadlineMs >= 0)
        m.addI64("deadline_ms", req.deadlineMs);
    if (req.ringEpoch != 0)
        m.addU64("ring_epoch", req.ringEpoch);
    return m;
}

ServiceStatus
decodeRunRequest(const Message &msg, ServiceRequest &req,
                 std::string &error)
{
    req = ServiceRequest{};
    if (msg.verb != kVerbRun) {
        error = "expected RUN, got '" + msg.verb + "'";
        return ServiceStatus::kBadRequest;
    }
    req.workload = msg.get("workload");
    if (req.workload.empty()) {
        error = "RUN without workload";
        return ServiceStatus::kBadRequest;
    }
    req.configName = msg.get("config", "baseline");
    for (const std::string &kv : msg.getAll("set")) {
        const size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "override is not key=value: '" + kv + "'";
            return ServiceStatus::kBadRequest;
        }
        req.overrides.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
    }
    if (msg.find("deadline_ms") &&
        !msg.getI64("deadline_ms", req.deadlineMs)) {
        error = "unparsable deadline_ms '" + msg.get("deadline_ms") + "'";
        return ServiceStatus::kBadRequest;
    }
    if (msg.find("ring_epoch") &&
        !msg.getU64("ring_epoch", req.ringEpoch)) {
        error = "unparsable ring_epoch '" + msg.get("ring_epoch") + "'";
        return ServiceStatus::kBadRequest;
    }
    return ServiceStatus::kOk;
}

// ---- RESULT ------------------------------------------------------------

Message
encodeResult(const SweepJobResult &res)
{
    Message m;
    m.verb = kVerbResult;
    m.add("status", serviceStatusName(res.status));
    if (!res.error.empty())
        m.add("error", res.error);
    m.add("from_cache", res.fromCache ? "1" : "0");
    if (!res.key.empty())
        m.add("key", res.key);
    m.add("seconds", std::to_string(res.seconds));
    if (res.ok()) {
        std::ostringstream blob;
        ResultCache::serialize(blob, res.outcome);
        m.blob = blob.str();
    }
    return m;
}

Message
makeErrorResult(ServiceStatus status, const std::string &error)
{
    SweepJobResult res;
    res.status = status;
    res.error = error;
    return encodeResult(res);
}

Message
makeRedirectResult(ServiceStatus status,
                   const std::vector<std::string> &owners, u64 ringEpoch,
                   const std::string &error)
{
    Message m = makeErrorResult(status, error);
    m.addU64("ring_epoch", ringEpoch);
    for (const std::string &owner : owners)
        m.add("owner", owner);
    return m;
}

bool
decodeRedirect(const Message &msg, RedirectInfo &out)
{
    out = RedirectInfo{};
    if (!msg.getU64("ring_epoch", out.ringEpoch))
        return false;
    out.owners = msg.getAll("owner");
    return !out.owners.empty();
}

// ---- STORE (replica push) ----------------------------------------------

Message
encodeStoreRequest(const ServiceRequest &req, const std::string &keyHex,
                   const std::string &outcomeBlob)
{
    Message m = encodeRunRequest(req);
    m.verb = kVerbStore;
    m.add("key", keyHex);
    m.blob = outcomeBlob;
    return m;
}

ServiceStatus
decodeStoreRequest(const Message &msg, ServiceRequest &req,
                   std::string &keyHex, std::string &error)
{
    if (msg.verb != kVerbStore) {
        error = "expected STORE, got '" + msg.verb + "'";
        return ServiceStatus::kBadRequest;
    }
    Message asRun = msg;
    asRun.verb = kVerbRun;
    const ServiceStatus s = decodeRunRequest(asRun, req, error);
    if (s != ServiceStatus::kOk)
        return s;
    keyHex = msg.get("key");
    if (keyHex.empty()) {
        error = "STORE without key";
        return ServiceStatus::kBadRequest;
    }
    if (msg.blob.empty()) {
        error = "STORE without outcome blob";
        return ServiceStatus::kBadRequest;
    }
    return ServiceStatus::kOk;
}

ServiceStatus
decodeResult(const Message &msg, SweepJobResult &res, std::string &error)
{
    res = SweepJobResult{};
    if (msg.verb != kVerbResult) {
        error = "expected RESULT, got '" + msg.verb + "'";
        return ServiceStatus::kBadRequest;
    }
    ServiceStatus s = ServiceStatus::kInternalError;
    if (!serviceStatusFromName(msg.get("status"), s)) {
        error = "RESULT with unparsable status '" + msg.get("status") +
                "'";
        return ServiceStatus::kBadRequest;
    }
    res.status = s;
    res.error = msg.get("error");
    res.fromCache = msg.get("from_cache") == "1";
    res.key = msg.get("key");
    try {
        res.seconds = std::stod(msg.get("seconds", "0"));
    } catch (const std::exception &) {
        res.seconds = 0;
    }
    if (s == ServiceStatus::kOk) {
        if (msg.blob.empty()) {
            error = "OK RESULT without outcome blob";
            res.status = ServiceStatus::kBadRequest;
            return res.status;
        }
        try {
            std::istringstream blob(msg.blob);
            res.outcome = ResultCache::deserialize(blob);
        } catch (const std::exception &e) {
            error = std::string("malformed outcome blob: ") + e.what();
            res.status = ServiceStatus::kBadRequest;
            return res.status;
        }
    }
    return res.status;
}

} // namespace rfv
