/**
 * @file
 * The `simd` wire protocol: versioned key=value messages inside
 * length-prefixed frames (common/framing.h).
 *
 * One message is a text payload:
 *
 *     VERB\n
 *     key=value\n
 *     ...\n
 *     \n
 *     <binary blob — the bytes after the blank line>
 *
 * Keys may repeat (RUN carries one `set=key=value` line per config
 * override).  The blob carries a serialized RunOutcome on RESULT
 * responses, re-using the ResultCache codec so a served outcome is
 * bit-identical to a locally simulated one by construction.
 *
 * Session shape:
 *
 *     client                          server
 *     HELLO {proto_min,proto_max,sim} ->
 *                                     <- WELCOME {status,proto,sim}
 *     RUN {workload,config,set*,deadline_ms} ->
 *                                     <- RESULT {status,...} + blob
 *     STATS ->
 *                                     <- STATS {counter=value ...}
 *
 * Version negotiation: the server picks the highest protocol version
 * inside [proto_min, proto_max] that it speaks, and rejects the
 * session (status=VERSION_MISMATCH) when the ranges do not overlap or
 * when the client's simulator version differs from its own — results
 * and cache keys are only meaningful between identical simulators.
 */
#ifndef RFV_NET_PROTOCOL_H
#define RFV_NET_PROTOCOL_H

#include <string>
#include <utility>
#include <vector>

#include "service/request.h"
#include "service/sweep.h"

namespace rfv {

/**
 * Protocol versions this build can speak.  v2 adds the cluster tier:
 * CLUSTER/PING/PONG/STORE verbs, the optional ring_epoch field on
 * RUN, and NOT_OWNER/REDIRECT results carrying an owner list.  All
 * v2 additions are optional fields or new verbs, so v1 peers
 * interoperate untouched (the min stays at 1).
 */
inline constexpr u32 kProtoVersionMin = 1;
inline constexpr u32 kProtoVersionMax = 2;

/** Server-side payload cap: requests are small. */
inline constexpr u32 kMaxRequestFrameBytes = 1u << 20;

/** Client-side payload cap: RESULT blobs carry per-register stats. */
inline constexpr u32 kMaxResponseFrameBytes = 64u << 20;

// Verbs.
inline constexpr const char *kVerbHello = "HELLO";
inline constexpr const char *kVerbWelcome = "WELCOME";
inline constexpr const char *kVerbRun = "RUN";
inline constexpr const char *kVerbResult = "RESULT";
inline constexpr const char *kVerbStats = "STATS";
inline constexpr const char *kVerbError = "ERROR";
// v2 cluster verbs.
inline constexpr const char *kVerbCluster = "CLUSTER"; //!< ring fetch
inline constexpr const char *kVerbPing = "PING";       //!< heartbeat
inline constexpr const char *kVerbPong = "PONG";
inline constexpr const char *kVerbStore = "STORE";   //!< replica push
inline constexpr const char *kVerbStored = "STORED"; //!< STORE ack

/** One decoded message: verb, ordered fields, optional binary blob. */
struct Message {
    std::string verb;
    std::vector<std::pair<std::string, std::string>> fields;
    std::string blob;

    void
    add(const std::string &key, const std::string &value)
    {
        fields.emplace_back(key, value);
    }

    void
    addU64(const std::string &key, u64 value)
    {
        add(key, std::to_string(value));
    }

    void
    addI64(const std::string &key, i64 value)
    {
        add(key, std::to_string(value));
    }

    /** First value for @p key, or nullptr. */
    const std::string *find(const std::string &key) const;

    /** First value for @p key, or @p fallback. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** Strict u64 parse of @p key; false when absent or malformed. */
    bool getU64(const std::string &key, u64 &out) const;

    /** Strict i64 parse of @p key; false when absent or malformed. */
    bool getI64(const std::string &key, i64 &out) const;

    /** Every value whose key equals @p key, in order. */
    std::vector<std::string> getAll(const std::string &key) const;

    /** Encode into one frame payload. */
    std::string encode() const;

    /**
     * Parse a frame payload.  False (with @p error set) on structural
     * violations: empty payload, missing blank-line terminator, a
     * field line without '=', or an embedded NUL in the header.
     */
    static bool decode(const std::string &payload, Message &out,
                       std::string &error);
};

// ---- typed codecs over Message -----------------------------------------

/** Client hello advertising [kProtoVersionMin, kProtoVersionMax]. */
Message makeHello();

/**
 * Server-side hello processing: negotiate the protocol version and
 * check the simulator version.  Returns the WELCOME reply and sets
 * @p ok; on failure the reply carries status VERSION_MISMATCH (or
 * BAD_REQUEST for a structurally invalid hello) and a diagnostic.
 */
Message makeWelcome(const Message &hello, bool &ok);

/**
 * Client-side WELCOME validation: false (with @p error) unless the
 * server accepted the session and speaks our simulator version.
 */
bool checkWelcome(const Message &welcome, std::string &error);

/** RUN request for @p req. */
Message encodeRunRequest(const ServiceRequest &req);

/** Parse a RUN message; kOk or a client-error status with @p error. */
ServiceStatus decodeRunRequest(const Message &msg, ServiceRequest &req,
                               std::string &error);

/**
 * RESULT response for a finished (or failed/shed/timed-out) job.
 * When @p res.ok(), the blob carries the ResultCache-serialized
 * RunOutcome.
 */
Message encodeResult(const SweepJobResult &res);

/** Shorthand: RESULT carrying only a failure status. */
Message makeErrorResult(ServiceStatus status, const std::string &error);

/**
 * RESULT for a cluster routing outcome (NOT_OWNER or REDIRECT): the
 * refusing node's ring epoch plus the endpoints that *can* serve the
 * key, primary first, so the client re-dispatches without a second
 * round trip (and refreshes its ring when the epochs differ).
 */
Message makeRedirectResult(ServiceStatus status,
                           const std::vector<std::string> &owners,
                           u64 ringEpoch, const std::string &error);

/** Routing payload of a NOT_OWNER/REDIRECT result. */
struct RedirectInfo {
    u64 ringEpoch = 0;
    std::vector<std::string> owners; //!< endpoints, primary first
};

/** Extract the routing payload; false when absent or malformed. */
bool decodeRedirect(const Message &msg, RedirectInfo &out);

/**
 * STORE request: push one finished outcome to a replica.  Carries the
 * job naming (so the replica can recompute — and thereby verify — the
 * cache key itself), the sender's key as a cross-check, and the
 * ResultCache-serialized outcome as the blob.
 */
Message encodeStoreRequest(const ServiceRequest &req,
                           const std::string &keyHex,
                           const std::string &outcomeBlob);

/**
 * Parse a STORE request into the job naming + claimed key; the blob
 * stays in @p msg.blob.  kOk or a client-error status with @p error.
 */
ServiceStatus decodeStoreRequest(const Message &msg, ServiceRequest &req,
                                 std::string &keyHex, std::string &error);

/**
 * Parse a RESULT message into @p res (including blob deserialization
 * on OK).  Returns the transported status; BAD_REQUEST with @p error
 * when the message itself is malformed.
 */
ServiceStatus decodeResult(const Message &msg, SweepJobResult &res,
                           std::string &error);

} // namespace rfv

#endif // RFV_NET_PROTOCOL_H
