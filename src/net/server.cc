#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>

#include "common/error.h"
#include "common/framing.h"
#include "net/client.h"
#include "service/version.h"

namespace rfv {

namespace {

/** Poll slice for loops that must observe shutdown flags. */
constexpr i64 kPollSliceMs = 100;

SweepOptions
serverSweepOptions(SweepOptions sweep)
{
    // The daemon's parallelism lives in its executor threads; each
    // execute() call must not spin up a nested scheduler.
    sweep.jobs = 1;
    sweep.cancel = nullptr;
    return sweep;
}

} // namespace

SimdServer::SimdServer(ServerOptions opts)
    : opts_(std::move(opts)), engine_(serverSweepOptions(opts_.sweep))
{
}

SimdServer::~SimdServer() { stop(); }

void
SimdServer::start()
{
    MutexLock lifecycle(lifecycleMu_);
    if (running_)
        return;
    listener_.emplace(opts_.port);
    port_ = listener_->port();
    startTime_ = std::chrono::steady_clock::now();
    draining_ = false;
    closing_ = false;
    running_ = true;

    if (opts_.cluster.enabled())
        configureCluster(opts_.cluster);
    {
        MutexLock lk(replMu_);
        replDraining_ = false;
    }

    const u32 executors = std::max<u32>(1, opts_.executors);
    executors_.reserve(executors);
    for (u32 i = 0; i < executors; ++i)
        executors_.emplace_back([this] { executorLoop(); });
    replThread_ = Thread([this] { replicatorLoop(); });
    acceptThread_ = Thread([this] { acceptLoop(); });
}

void
SimdServer::stop()
{
    // The whole drain runs under lifecycleMu_ so a concurrent stop()
    // (destructor racing a signal handler) blocks until the first
    // caller finishes instead of double-joining half-dead threads.
    // Before this lock existed, `if (!running_) return;` was a
    // check-then-act race: both callers could pass the test and both
    // run the drain.
    MutexLock lifecycle(lifecycleMu_);
    if (!running_)
        return;
    // Phase 1: stop accepting.  The accept loop polls in kPollSliceMs
    // slices and re-checks draining_ between slices, so it exits on
    // its own within one slice; only then is the listener closed.
    // (Closing it *before* the join — the old fast-path — raced the
    // accept thread's poll on the listening fd: Socket::close()
    // writes fd_ = -1 while Listener::accept() reads it.  TSan caught
    // this once the service suites ran under the tsan preset.)
    // Connections stay up for now: new RUNs are refused with
    // SHUTTING_DOWN (handleRun checks draining_ under the queue lock)
    // while admitted jobs keep executing.
    draining_ = true;
    queueCv_.notifyAll();
    if (acceptThread_.joinable())
        acceptThread_.join();
    listener_->close();

    // Phase 2: executors drain the admitted queue and exit.  Every
    // admitted job's promise is fulfilled before this join returns, so
    // connection threads blocked on an in-flight result are released.
    queueCv_.notifyAll();
    for (Thread &t : executors_)
        if (t.joinable())
            t.join();
    executors_.clear();

    // Phase 2.5: flush the replication queue.  Executors are done, so
    // nothing enqueues anymore; pushing the backlog now (peers may be
    // draining too — failures are counted and dropped) keeps a rolling
    // cluster restart from losing the freshest results.
    {
        MutexLock lk(replMu_);
        replDraining_ = true;
    }
    replCv_.notifyAll();
    if (replThread_.joinable())
        replThread_.join();

    // Phase 3: nothing is in flight anymore — drop the connections.
    closing_ = true;
    joinAllConnections();

    // Phase 4: join the cache's write-behind publisher.  Stores are
    // admitted to the memory tier synchronously but reach disk via a
    // background queue; draining it here guarantees every result the
    // server answered is durable before the process exits.
    engine_.results().drain();
    running_ = false;
}

// ---- cluster membership ------------------------------------------------

void
SimdServer::configureCluster(const ClusterConfig &cfg)
{
    if (!cfg.enabled()) {
        {
            MutexLock lk(clusterMu_);
            cluster_.reset();
        }
        clustered_ = false;
        return;
    }
    std::vector<RingNode> nodes;
    nodes.reserve(cfg.nodes.size());
    std::string error;
    for (const std::string &endpoint : cfg.nodes) {
        RingNode node;
        if (!parseEndpoint(endpoint, node, error))
            throw ConfigError("cluster node: " + error);
        nodes.push_back(std::move(node));
    }
    auto state = std::make_shared<ClusterState>();
    state->ring = HashRing::build(std::move(nodes), cfg.vnodes,
                                  cfg.replication, cfg.epoch);
    state->self = cfg.self;
    if (state->ring.indexOf(cfg.self) < 0)
        throw ConfigError("cluster self '" + cfg.self +
                          "' is not in the node list");
    {
        MutexLock lk(clusterMu_);
        cluster_ = std::move(state);
    }
    clustered_ = true;
}

std::shared_ptr<const SimdServer::ClusterState>
SimdServer::clusterState() const
{
    MutexLock lk(clusterMu_);
    return cluster_;
}

HashRing
SimdServer::ringSnapshot() const
{
    const auto state = clusterState();
    return state ? state->ring : HashRing{};
}

// ---- replication -------------------------------------------------------

void
SimdServer::enqueueReplication(const ServiceRequest &naming,
                               const SweepJobResult &res)
{
    bool dropped = false;
    {
        MutexLock lk(replMu_);
        if (replQueue_.size() >= opts_.replicationQueueDepth ||
            replDraining_) {
            dropped = true;
        } else {
            ReplicationItem item;
            item.naming = naming;
            item.job = res.job;
            item.keyHex = res.key;
            item.outcome = res.outcome;
            replQueue_.push_back(std::move(item));
        }
    }
    if (dropped) {
        MutexLock lk(statsMu_);
        ++stats_.replicationDropped;
        return;
    }
    replCv_.notifyOne();
}

void
SimdServer::replicatorLoop()
{
    // Peer sessions are owned by this thread alone: created on first
    // use, reconnected on demand by SimdClient, discarded on failure.
    std::map<std::string, std::unique_ptr<SimdClient>> peers;

    for (;;) {
        ReplicationItem item;
        {
            MutexLock lk(replMu_);
            while (replQueue_.empty() && !replDraining_) {
                replBusy_ = false;
                replCv_.notifyAll(); // wake drainReplication waiters
                replCv_.wait(lk);
            }
            if (replQueue_.empty()) {
                replBusy_ = false;
                replCv_.notifyAll();
                return; // draining and drained
            }
            item = std::move(replQueue_.front());
            replQueue_.pop_front();
            replBusy_ = true;
        }

        const auto state = clusterState();
        if (!state)
            continue;

        Hash128 rkey;
        try {
            rkey = routingKey(item.job.workload, item.job.config);
        } catch (const std::exception &) {
            continue; // cannot route an unroutable config
        }
        std::string blob;
        {
            std::ostringstream os;
            ResultCache::serialize(os, item.outcome);
            blob = os.str();
        }
        const Message store =
            encodeStoreRequest(item.naming, item.keyHex, blob);

        for (const u32 ownerIndex : state->ring.ownersFor(rkey)) {
            const std::string endpoint =
                state->ring.nodes()[ownerIndex].endpoint();
            if (endpoint == state->self)
                continue;
            std::unique_ptr<SimdClient> &peer = peers[endpoint];
            if (!peer) {
                RingNode node;
                std::string parseError;
                if (!parseEndpoint(endpoint, node, parseError))
                    continue; // ring admits only parsable endpoints
                ClientOptions copts;
                copts.host = node.host;
                copts.port = node.port;
                copts.connectTimeoutMs = 2000;
                copts.responseTimeoutMs = 10000;
                peer = std::make_unique<SimdClient>(copts);
            }
            Message ack;
            std::string error;
            const bool sent =
                peer->request(store, ack, error) ==
                    ServiceStatus::kOk &&
                ack.verb == kVerbStored && ack.get("stored") == "1";
            {
                MutexLock lk(statsMu_);
                if (sent)
                    ++stats_.replicationSent;
                else
                    ++stats_.replicationFailed;
            }
            if (!sent)
                peer->disconnect(); // force a clean reconnect next time
        }
    }
}

void
SimdServer::drainReplication()
{
    MutexLock lk(replMu_);
    while (!replQueue_.empty() || replBusy_)
        replCv_.wait(lk);
}

bool
SimdServer::handleStore(Connection *conn, const Message &msg)
{
    Socket &sock = conn->sock;
    const auto reply = [&](const Message &m) {
        return writeFrame(sock, m.encode(),
                          deadlineAfterMs(opts_.frameTimeoutMs)) ==
               FrameStatus::kOk;
    };

    ServiceStatus s = ServiceStatus::kOk;
    std::string error;
    ServiceRequest req;
    std::string keyHex;
    SweepJob job;

    if (!clustered_) {
        s = ServiceStatus::kBadRequest;
        error = "STORE on a standalone server";
    }
    if (s == ServiceStatus::kOk)
        s = decodeStoreRequest(msg, req, keyHex, error);
    if (s == ServiceStatus::kOk)
        s = buildJob(req, job, error);
    if (s == ServiceStatus::kOk) {
        // Never trust the sender's key: recompute it from the job
        // naming (prepare() is memoized, so this compiles each unique
        // config once per process) and admit the outcome only under a
        // key this node would itself have produced.  A replica can
        // therefore never poison the cache with a mislabeled result.
        try {
            const PreparedJob p = engine_.prepare(job);
            if (p.key.hex() != keyHex) {
                s = ServiceStatus::kBadRequest;
                error = "STORE key mismatch: claimed " + keyHex +
                        ", computed " + p.key.hex();
            } else {
                std::istringstream is(msg.blob);
                const RunOutcome outcome = ResultCache::deserialize(is);
                engine_.results().store(p.key, outcome);
            }
        } catch (const std::exception &e) {
            s = ServiceStatus::kBadRequest;
            error = std::string("STORE rejected: ") + e.what();
        }
    }

    {
        MutexLock lk(statsMu_);
        if (s == ServiceStatus::kOk)
            ++stats_.replicationStored;
        else
            ++stats_.replicationRejected;
    }
    Message ack;
    ack.verb = kVerbStored;
    ack.add("status", serviceStatusName(s));
    ack.add("stored", s == ServiceStatus::kOk ? "1" : "0");
    if (!error.empty())
        ack.add("error", error);
    return reply(ack);
}

// ---- accept / connection lifecycle -------------------------------------

void
SimdServer::acceptLoop()
{
    while (!draining_) {
        std::optional<Socket> sock = listener_->accept(kPollSliceMs);
        reapFinishedConnections();
        if (!sock)
            continue;

        MutexLock lk(connMu_);
        if (connections_.size() >= opts_.maxConnections) {
            MutexLock slk(statsMu_);
            ++stats_.connectionsRejected;
            continue; // Socket closes on scope exit; client retries.
        }
        {
            MutexLock slk(statsMu_);
            ++stats_.connectionsAccepted;
        }
        auto conn = std::make_unique<Connection>();
        conn->sock = std::move(*sock);
        Connection *raw = conn.get();
        conn->thread = Thread([this, raw] { serveConnection(raw); });
        connections_.push_back(std::move(conn));
    }
}

void
SimdServer::reapFinishedConnections()
{
    MutexLock lk(connMu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
        if ((*it)->done) {
            if ((*it)->thread.joinable())
                (*it)->thread.join();
            it = connections_.erase(it);
        } else {
            ++it;
        }
    }
}

void
SimdServer::joinAllConnections()
{
    MutexLock lk(connMu_);
    for (auto &conn : connections_)
        if (conn->thread.joinable())
            conn->thread.join();
    connections_.clear();
}

void
SimdServer::serveConnection(Connection *conn)
{
    Socket &sock = conn->sock;
    const auto frameDeadline = [this] {
        return deadlineAfterMs(opts_.frameTimeoutMs);
    };
    const auto sendMessage = [&](const Message &m) {
        return writeFrame(sock, m.encode(), frameDeadline()) ==
               FrameStatus::kOk;
    };
    const auto countBadFrame = [this] {
        MutexLock lk(statsMu_);
        ++stats_.badFrames;
    };
    // Clustered peers push STORE frames carrying full outcome blobs;
    // plain clients stay under the small request cap.
    const auto requestCap = [this] {
        return clustered_ ? kMaxResponseFrameBytes
                          : kMaxRequestFrameBytes;
    };

    // Wait for the next frame's first byte in short slices so closing_
    // and the idle budget are observed without ever expiring a
    // deadline *inside* a frame.  kOk = data pending.
    const auto awaitData = [&](std::chrono::steady_clock::time_point
                                   since) -> IoStatus {
        while (!closing_) {
            const IoStatus ready =
                sock.waitReadable(deadlineAfterMs(kPollSliceMs));
            if (ready != IoStatus::kTimedOut)
                return ready;
            const auto idleMs =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - since)
                    .count();
            if (opts_.idleTimeoutMs >= 0 && idleMs > opts_.idleTimeoutMs) {
                MutexLock lk(statsMu_);
                ++stats_.connectionsReaped;
                return IoStatus::kTimedOut;
            }
        }
        return IoStatus::kClosed;
    };

    // ---- handshake -----------------------------------------------------
    std::string payload;
    if (awaitData(std::chrono::steady_clock::now()) != IoStatus::kOk) {
        conn->done = true;
        return;
    }
    const FrameStatus hs =
        readFrame(sock, payload, requestCap(), frameDeadline());
    if (hs != FrameStatus::kOk) {
        if (hs != FrameStatus::kClosed)
            countBadFrame();
        conn->done = true;
        return;
    }
    Message hello;
    std::string parseError;
    bool helloOk = false;
    if (Message::decode(payload, hello, parseError)) {
        const Message welcome = makeWelcome(hello, helloOk);
        if (!sendMessage(welcome))
            helloOk = false;
    } else {
        countBadFrame();
        Message reject;
        bool ignored = false;
        reject = makeWelcome(Message{}, ignored); // BAD_REQUEST welcome
        sendMessage(reject);
    }
    if (!helloOk) {
        conn->done = true;
        return;
    }

    // ---- request loop --------------------------------------------------
    // The loop runs until closing_, not draining_: during a drain the
    // connection stays up so new RUNs get an explicit SHUTTING_DOWN
    // answer instead of a dropped connection.
    while (!closing_) {
        if (awaitData(std::chrono::steady_clock::now()) != IoStatus::kOk)
            break;

        const FrameStatus fs =
            readFrame(sock, payload, requestCap(), frameDeadline());
        if (fs == FrameStatus::kClosed)
            break; // orderly client exit
        if (fs != FrameStatus::kOk) {
            // Bad magic, oversized declaration, truncation: the byte
            // stream can no longer be trusted, so answer (best effort)
            // and drop only this connection — the process lives on.
            countBadFrame();
            sendMessage(makeErrorResult(
                ServiceStatus::kBadRequest,
                std::string("unreadable frame: ") + frameStatusName(fs)));
            break;
        }

        Message msg;
        if (!Message::decode(payload, msg, parseError)) {
            // The frame boundary is intact, so the connection can
            // survive a malformed payload.
            countBadFrame();
            if (!sendMessage(makeErrorResult(ServiceStatus::kBadRequest,
                                             parseError)))
                break;
            continue;
        }

        if (msg.verb == kVerbRun) {
            if (!handleRun(conn, msg))
                break;
        } else if (msg.verb == kVerbStats) {
            {
                MutexLock lk(statsMu_);
                ++stats_.statsRequests;
            }
            if (!sendMessage(statsMessage()))
                break;
        } else if (msg.verb == kVerbCluster) {
            {
                MutexLock lk(statsMu_);
                ++stats_.clusterRequests;
            }
            const auto state = clusterState();
            const Message response =
                state ? encodeClusterInfo(state->ring, state->self)
                      : makeErrorResult(ServiceStatus::kBadRequest,
                                        "server is not clustered");
            if (!sendMessage(response))
                break;
        } else if (msg.verb == kVerbPing) {
            {
                MutexLock lk(statsMu_);
                ++stats_.pingRequests;
            }
            const auto state = clusterState();
            Message pong;
            pong.verb = kVerbPong;
            pong.add("status", serviceStatusName(ServiceStatus::kOk));
            pong.addU64("ring_epoch",
                        state ? state->ring.epoch() : 0);
            pong.add("draining", draining_ ? "1" : "0");
            if (!sendMessage(pong))
                break;
        } else if (msg.verb == kVerbStore) {
            if (!handleStore(conn, msg))
                break;
        } else {
            if (!sendMessage(makeErrorResult(
                    ServiceStatus::kBadRequest,
                    "unknown verb '" + msg.verb + "'")))
                break;
        }
    }
    sock.close();
    conn->done = true;
}

bool
SimdServer::handleRun(Connection *conn, const Message &msg)
{
    Socket &sock = conn->sock;
    const auto frameDeadline = [this] {
        return deadlineAfterMs(opts_.frameTimeoutMs);
    };
    const auto reply = [&](const Message &m) {
        return writeFrame(sock, m.encode(), frameDeadline()) ==
               FrameStatus::kOk;
    };

    // Requests rejected before admission (undecodable RUN, unknown
    // config, bad override) still count as failed requests: the STATS
    // ledger must reconcile with what clients observed.
    const auto replyFailed = [&](ServiceStatus s,
                                 const std::string &error) {
        {
            MutexLock lk(statsMu_);
            ++stats_.requestsFailed;
        }
        return reply(makeErrorResult(s, error));
    };

    ServiceRequest req;
    std::string error;
    ServiceStatus s = decodeRunRequest(msg, req, error);
    if (s != ServiceStatus::kOk)
        return replyFailed(s, error);

    SweepJob job;
    s = buildJob(req, job, error);
    if (s != ServiceStatus::kOk)
        return replyFailed(s, error);

    // Cluster ownership: only a ring owner of this job's routing key
    // may serve it.  The owner list is computed once here and reused
    // for the drain-time REDIRECT below.
    std::vector<std::string> otherOwners;
    u64 ringEpoch = 0;
    if (clustered_) {
        if (const auto state = clusterState()) {
            ringEpoch = state->ring.epoch();
            bool owned = true;
            try {
                const Hash128 rkey =
                    routingKey(job.workload, job.config);
                owned = false;
                for (const u32 index : state->ring.ownersFor(rkey)) {
                    const std::string endpoint =
                        state->ring.nodes()[index].endpoint();
                    if (endpoint == state->self)
                        owned = true;
                    else
                        otherOwners.push_back(endpoint);
                }
            } catch (const std::exception &) {
                // Unroutable config: serve it here and let execute()
                // classify the error into the per-job result.
                owned = true;
            }
            if (!owned) {
                {
                    MutexLock lk(statsMu_);
                    ++stats_.requestsNotOwner;
                }
                return reply(makeRedirectResult(
                    ServiceStatus::kNotOwner, otherOwners, ringEpoch,
                    "key is owned by another node under ring epoch " +
                        std::to_string(ringEpoch)));
            }
        }
    }

    const i64 deadlineMs = req.deadlineMs;
    const IoDeadline deadline =
        deadlineMs >= 0 ? deadlineAfterMs(deadlineMs) : std::nullopt;

    // Admission control: a full queue sheds the request immediately —
    // never an unbounded queue, never a blocked connection.
    auto pending = std::make_unique<PendingRequest>();
    pending->job = std::move(job);
    pending->naming = std::move(req);
    pending->deadline = deadline;
    std::future<SweepJobResult> future = pending->promise.get_future();
    bool drainRefused = false, shed = false;
    {
        MutexLock lk(queueMu_);
        // Checked under queueMu_: the executors decide to exit under
        // the same lock (draining_ && empty queue), so a job admitted
        // here is guaranteed an executor that will run it.  The reply
        // itself happens after the lock is released — a slow socket
        // must not stall admissions.
        if (draining_) {
            drainRefused = true;
        } else if (queue_.size() >= opts_.queueCapacity) {
            shed = true;
        } else {
            queue_.push_back(std::move(pending));
            MutexLock slk(statsMu_);
            ++stats_.requestsAccepted;
            stats_.queueDepth = queue_.size();
            stats_.queueHighWater =
                std::max<u64>(stats_.queueHighWater, queue_.size());
        }
    }
    if (drainRefused) {
        // A draining cluster node knows who else can serve the key:
        // answer REDIRECT with the surviving replicas so the client
        // re-dispatches in one hop instead of blindly retrying.
        if (clustered_ && !otherOwners.empty()) {
            {
                MutexLock lk(statsMu_);
                ++stats_.requestsRedirected;
            }
            return reply(makeRedirectResult(
                ServiceStatus::kRedirect, otherOwners, ringEpoch,
                "server is draining; re-dispatch to a replica"));
        }
        {
            MutexLock lk(statsMu_);
            ++stats_.requestsShutdown;
        }
        return reply(makeErrorResult(ServiceStatus::kShuttingDown,
                                     "server is draining"));
    }
    if (shed) {
        {
            MutexLock lk(statsMu_);
            ++stats_.requestsShed;
        }
        return reply(makeErrorResult(
            ServiceStatus::kRetryLater,
            "admission queue full (" +
                std::to_string(opts_.queueCapacity) + " pending)"));
    }
    queueCv_.notifyOne();

    // Wait for the executor.  On client-deadline expiry the request is
    // answered DEADLINE_EXCEEDED; the job itself still completes on
    // the executor and warms the result cache for the retry.
    if (deadline) {
        if (future.wait_until(*deadline) != std::future_status::ready) {
            MutexLock lk(statsMu_);
            ++stats_.requestsTimedOut;
            return reply(makeErrorResult(
                ServiceStatus::kDeadlineExceeded,
                "deadline of " + std::to_string(deadlineMs) +
                    " ms expired while the job was in flight"));
        }
    }
    const SweepJobResult res = future.get();

    {
        MutexLock lk(statsMu_);
        if (res.ok()) {
            ++stats_.requestsOk;
            if (res.fromCache)
                ++stats_.servedFromCache;
            stats_.aggregateCycles += res.outcome.sim.cycles;
            stats_.aggregateInstrs += res.outcome.sim.issuedInstrs;
        } else if (res.status == ServiceStatus::kDeadlineExceeded) {
            ++stats_.requestsTimedOut;
        } else {
            ++stats_.requestsFailed;
        }
    }
    return reply(encodeResult(res));
}

// ---- executors ---------------------------------------------------------

void
SimdServer::executorLoop()
{
    for (;;) {
        std::unique_ptr<PendingRequest> pending;
        {
            MutexLock lk(queueMu_);
            // While-loop (not a predicate lambda): queue_ is guarded
            // by queueMu_, and the analysis cannot see a lambda's
            // body holding the caller's capability.
            while (queue_.empty() && !draining_.load())
                queueCv_.wait(lk);
            if (queue_.empty()) {
                if (draining_)
                    return; // drained: queue is empty and stays empty
                continue;
            }
            pending = std::move(queue_.front());
            queue_.pop_front();
            MutexLock slk(statsMu_);
            stats_.queueDepth = queue_.size();
        }

        if (opts_.executeHook)
            opts_.executeHook();

        // A request that died of old age in the queue is not worth
        // simulating: its connection has already answered (or is about
        // to).  Skipping it keeps a backlog from wasting executor time
        // on results nobody will read.
        if (pending->deadline &&
            std::chrono::steady_clock::now() > *pending->deadline) {
            SweepJobResult res;
            res.job = pending->job;
            res.status = ServiceStatus::kDeadlineExceeded;
            res.error = "deadline expired before execution started";
            pending->promise.set_value(std::move(res));
            continue;
        }

        SweepJobResult res = engine_.execute(pending->job);
        // Freshly computed results fan out to the key's other owners
        // (bounded queue, best effort) so a failover target usually
        // answers the re-dispatched job from its warmed cache instead
        // of re-simulating.
        if (clustered_ && res.ok() && !res.fromCache)
            enqueueReplication(pending->naming, res);
        pending->promise.set_value(std::move(res));
    }
}

// ---- stats -------------------------------------------------------------

SimdServer::Stats
SimdServer::statsSnapshot() const
{
    Stats s;
    {
        MutexLock lk(statsMu_);
        s = stats_;
    }
    // Taken outside statsMu_: handleRun nests statsMu_ *inside*
    // queueMu_, so acquiring them here in the opposite order would be
    // an ABBA deadlock (statsMu_ is RFV_ACQUIRED_AFTER(queueMu_)).
    {
        MutexLock qlk(queueMu_);
        s.queueDepth = queue_.size();
    }
    s.uptimeSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      startTime_)
            .count();
    return s;
}

Message
SimdServer::statsMessage()
{
    const Stats s = statsSnapshot();
    const ResultCache::Stats cache = engine_.results().stats();

    Message m;
    m.verb = kVerbStats;
    m.add("sim_version", kSimulatorVersion);
    m.addU64("proto_version", kProtoVersionMax);
    m.add("uptime_seconds", std::to_string(s.uptimeSeconds));
    m.addU64("connections_accepted", s.connectionsAccepted);
    m.addU64("connections_rejected", s.connectionsRejected);
    m.addU64("connections_reaped", s.connectionsReaped);
    m.addU64("bad_frames", s.badFrames);
    m.addU64("requests_accepted", s.requestsAccepted);
    m.addU64("requests_shed", s.requestsShed);
    m.addU64("requests_shutdown", s.requestsShutdown);
    m.addU64("requests_ok", s.requestsOk);
    m.addU64("requests_failed", s.requestsFailed);
    m.addU64("requests_timed_out", s.requestsTimedOut);
    m.addU64("stats_requests", s.statsRequests);
    m.addU64("served_from_cache", s.servedFromCache);
    if (clustered_) {
        const HashRing ring = ringSnapshot();
        m.addU64("ring_epoch", ring.epoch());
        m.addU64("ring_nodes", ring.nodes().size());
        m.addU64("ring_replication", ring.replication());
        m.addU64("requests_not_owner", s.requestsNotOwner);
        m.addU64("requests_redirected", s.requestsRedirected);
        m.addU64("cluster_requests", s.clusterRequests);
        m.addU64("ping_requests", s.pingRequests);
        m.addU64("replication_sent", s.replicationSent);
        m.addU64("replication_failed", s.replicationFailed);
        m.addU64("replication_dropped", s.replicationDropped);
        m.addU64("replication_stored", s.replicationStored);
        m.addU64("replication_rejected", s.replicationRejected);
    }
    m.addU64("queue_depth", s.queueDepth);
    m.addU64("queue_high_water", s.queueHighWater);
    m.addU64("cache_memory_hits", cache.memoryHits);
    m.addU64("cache_disk_hits", cache.diskHits);
    m.addU64("cache_misses", cache.misses);
    m.addU64("cache_stores", cache.stores);
    m.addU64("cache_bad_entries", cache.badEntries);
    m.addU64("cache_evictions", cache.evictions);
    m.addU64("cache_memory_bytes", cache.memoryBytes);
    m.addU64("cache_write_behind_depth", cache.writeBehindDepth);
    m.addU64("cache_write_behind_drops", cache.writeBehindDrops);
    m.addU64("aggregate_cycles", s.aggregateCycles);
    m.addU64("aggregate_instrs", s.aggregateInstrs);
    m.add("cycles_per_sec", std::to_string(s.cyclesPerSec()));
    return m;
}

} // namespace rfv
