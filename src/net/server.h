/**
 * @file
 * `simd` — the simulation daemon: a TCP front-end over SweepEngine.
 *
 * Threading model:
 *
 *   accept thread ──> connection threads (one per client, capped)
 *                         │  parse frame -> RUN/STATS
 *                         ▼
 *                bounded admission queue  ── full? ──> RETRY_LATER
 *                         │
 *                executor threads ──> SweepEngine::execute()
 *                         │               (ArtifactStore + ResultCache)
 *                         ▼
 *                per-request promise ──> connection thread replies
 *
 * Backpressure is explicit: the admission queue has a fixed capacity
 * and a full queue sheds load with RETRY_LATER instead of queueing
 * unboundedly or blocking the connection.  Deadlines are enforced at
 * two points — a request whose deadline expires while queued is
 * failed without simulating, and a connection whose client deadline
 * passes while the job is in flight answers DEADLINE_EXCEEDED (the
 * job still completes and warms the result cache; simulations are
 * never preempted mid-run).  Idle connections are reaped after
 * idleTimeoutMs.  stop() drains gracefully: the listener closes, new
 * RUNs get SHUTTING_DOWN, admitted jobs finish and answer, then all
 * threads join.
 */
#ifndef RFV_NET_SERVER_H
#define RFV_NET_SERVER_H

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "common/socket.h"
#include "common/sync.h"
#include "net/cluster_ring.h"
#include "net/protocol.h"
#include "service/sweep.h"

namespace rfv {

/**
 * Static cluster membership for one node.  Every node of a cluster
 * is started with the *same* node list/vnodes/replication/epoch (the
 * ring is a pure function of them — see cluster_ring.h) plus its own
 * `self` endpoint.  A clustered node:
 *
 *  - refuses RUNs whose routing key it does not own (NOT_OWNER with
 *    the owner list attached),
 *  - answers CLUSTER with the ring inputs and PING with its epoch,
 *  - redirects RUNs to the surviving replicas while draining
 *    (REDIRECT instead of a bare SHUTTING_DOWN), and
 *  - pushes every live-computed outcome to the key's other replicas
 *    (best-effort STORE), so a failover target usually answers the
 *    re-dispatched job from its warmed cache.
 */
struct ClusterConfig {
    std::vector<std::string> nodes; //!< "host:port", same order on all
    std::string self;               //!< this node's entry in nodes
    u32 vnodes = 64;                //!< virtual nodes per member
    u32 replication = 2;            //!< owners per key (clamped to N)
    u64 epoch = 1;                  //!< membership-view version

    bool enabled() const { return !nodes.empty(); }
};

struct ServerOptions {
    u16 port = 0;           //!< 0 = ephemeral (read back via port())
    u32 executors = 1;      //!< simulation worker threads
    u32 queueCapacity = 16; //!< admitted-but-unstarted request cap
    u32 maxConnections = 64;
    i64 idleTimeoutMs = 30000; //!< reap connections idle this long
    i64 frameTimeoutMs = 10000; //!< max wall time for one frame's bytes
    SweepOptions sweep;         //!< cache dir etc. (jobs is ignored)
    ClusterConfig cluster;      //!< empty nodes = standalone daemon

    /** Replication push queue depth; overflow drops the push. */
    u32 replicationQueueDepth = 256;

    /**
     * Test seam: runs on the executor thread immediately before each
     * job executes.  Lets tests hold the executor hostage to fill the
     * admission queue deterministically.
     */
    std::function<void()> executeHook;
};

class SimdServer {
  public:
    /** Counters exported by the STATS verb.  Plain values (snapshot). */
    struct Stats {
        u64 connectionsAccepted = 0;
        u64 connectionsRejected = 0; //!< over maxConnections
        u64 connectionsReaped = 0;   //!< idle-timeout closures
        u64 badFrames = 0;       //!< framing/parse violations survived
        u64 requestsAccepted = 0;    //!< admitted to the queue
        u64 requestsShed = 0;        //!< RETRY_LATER (queue full)
        u64 requestsShutdown = 0;    //!< SHUTTING_DOWN during drain
        u64 requestsOk = 0;
        u64 requestsFailed = 0;   //!< structured per-job errors
        u64 requestsTimedOut = 0; //!< deadline expiry (queued or waiting)
        u64 statsRequests = 0;
        u64 servedFromCache = 0;
        u64 requestsNotOwner = 0;   //!< RUNs refused: key owned elsewhere
        u64 requestsRedirected = 0; //!< RUNs redirected during drain
        u64 clusterRequests = 0;    //!< CLUSTER verb servings
        u64 pingRequests = 0;       //!< PING verb servings
        u64 replicationSent = 0;    //!< STOREs acked by a peer
        u64 replicationFailed = 0;  //!< STOREs a peer refused/dropped
        u64 replicationDropped = 0; //!< pushes dropped (queue full)
        u64 replicationStored = 0;  //!< peer STOREs admitted locally
        u64 replicationRejected = 0; //!< peer STOREs refused locally
        u64 queueDepth = 0;
        u64 queueHighWater = 0;
        u64 aggregateCycles = 0;
        u64 aggregateInstrs = 0;
        double uptimeSeconds = 0;

        double
        cyclesPerSec() const
        {
            return uptimeSeconds > 0
                       ? static_cast<double>(aggregateCycles) /
                             uptimeSeconds
                       : 0.0;
        }
    };

    explicit SimdServer(ServerOptions opts);
    ~SimdServer();

    SimdServer(const SimdServer &) = delete;
    SimdServer &operator=(const SimdServer &) = delete;

    /** Bind and start all threads; throws ConfigError on bind failure. */
    void start() RFV_EXCLUDES(lifecycleMu_);

    /**
     * Graceful drain: stop accepting, fail new RUNs with
     * SHUTTING_DOWN, finish admitted jobs, answer waiting clients,
     * join every thread.  Idempotent, and safe against concurrent
     * callers (a signal-handler path racing the destructor): the
     * whole drain runs under lifecycleMu_, so a second caller blocks
     * until the first finishes and then sees running_ == false.
     */
    void stop() RFV_EXCLUDES(lifecycleMu_);

    bool running() const { return running_; }
    u16 port() const { return port_; }

    Stats statsSnapshot() const RFV_EXCLUDES(statsMu_, queueMu_);

    /** STATS response message (shared by the verb handler and tests). */
    Message statsMessage();

    /** The engine (tests inspect cache/artifact counters). */
    SweepEngine &engine() { return engine_; }

    /**
     * Install (or replace) the cluster view.  Callable before or
     * after start() — harnesses that bind ephemeral ports only learn
     * the endpoints once every node is up.  An empty node list
     * reverts the server to standalone.  Throws ConfigError when
     * `self` is not in the node list or an endpoint is malformed.
     */
    void configureCluster(const ClusterConfig &cfg)
        RFV_EXCLUDES(clusterMu_);

    bool clustered() const { return clustered_; }

    /** Current ring (empty when standalone). */
    HashRing ringSnapshot() const RFV_EXCLUDES(clusterMu_);

    /**
     * Block until every queued replication push has been attempted
     * (tests assert a peer's cache warmed; returns immediately when
     * standalone).
     */
    void drainReplication() RFV_EXCLUDES(replMu_);

  private:
    struct PendingRequest {
        SweepJob job;
        ServiceRequest naming; //!< wire naming, forwarded on STORE
        IoDeadline deadline; //!< absolute; expired-in-queue check
        std::promise<SweepJobResult> promise;
    };

    /** Immutable cluster view, swapped wholesale by configureCluster. */
    struct ClusterState {
        HashRing ring;
        std::string self;
    };

    /** One live outcome queued for best-effort push to replicas. */
    struct ReplicationItem {
        ServiceRequest naming;
        SweepJob job;
        std::string keyHex;
        RunOutcome outcome;
    };

    struct Connection {
        Socket sock;
        Thread thread;
        std::atomic<bool> done{false};
    };

    void acceptLoop() RFV_EXCLUDES(connMu_, statsMu_);
    void executorLoop() RFV_EXCLUDES(queueMu_, statsMu_);
    void serveConnection(Connection *conn) RFV_EXCLUDES(statsMu_);
    bool handleRun(Connection *conn, const Message &msg)
        RFV_EXCLUDES(queueMu_, statsMu_);
    bool handleStore(Connection *conn, const Message &msg)
        RFV_EXCLUDES(statsMu_);
    void reapFinishedConnections() RFV_EXCLUDES(connMu_);
    void joinAllConnections() RFV_EXCLUDES(connMu_);

    std::shared_ptr<const ClusterState> clusterState() const
        RFV_EXCLUDES(clusterMu_);
    void enqueueReplication(const ServiceRequest &naming,
                            const SweepJobResult &res)
        RFV_EXCLUDES(replMu_, statsMu_);
    void replicatorLoop() RFV_EXCLUDES(replMu_, statsMu_);

    ServerOptions opts_;
    SweepEngine engine_;
    std::optional<Listener> listener_;
    u16 port_ = 0;

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false}; //!< refuse new RUNs
    std::atomic<bool> closing_{false};  //!< in-flight done; drop conns

    /** Serializes start()/stop() (lifecycle transitions only). */
    Mutex lifecycleMu_;

    Thread acceptThread_;
    std::vector<Thread> executors_;

    // Admission queue.  Refuse-vs-admit is decided under queueMu_:
    // the executors decide to exit under the same lock (draining_ &&
    // empty queue), so a job admitted here always has an executor.
    mutable Mutex queueMu_;
    CondVar queueCv_;
    std::deque<std::unique_ptr<PendingRequest>>
        queue_ RFV_GUARDED_BY(queueMu_);

    // Connection registry.
    Mutex connMu_;
    std::vector<std::unique_ptr<Connection>>
        connections_ RFV_GUARDED_BY(connMu_);

    // Counters (all under statsMu_; coarse is fine at request grain).
    // Lock order: statsMu_ is innermost — handleRun and executorLoop
    // nest it inside queueMu_, acceptLoop inside connMu_; declaring
    // the edges lets -Wthread-safety-beta reject an ABBA inversion
    // (statsSnapshot once took them in the opposite order).
    mutable Mutex statsMu_ RFV_ACQUIRED_AFTER(queueMu_, connMu_);
    Stats stats_ RFV_GUARDED_BY(statsMu_);
    std::chrono::steady_clock::time_point startTime_;

    // Cluster view.  Readers copy the shared_ptr under a short lock
    // and use the immutable state outside it; configureCluster swaps
    // the pointer wholesale — no reader ever observes a half-built
    // ring.
    mutable Mutex clusterMu_;
    std::shared_ptr<const ClusterState>
        cluster_ RFV_GUARDED_BY(clusterMu_);
    std::atomic<bool> clustered_{false};

    // Replication push queue (bounded, drop-on-overflow): executors
    // enqueue live outcomes, one replicator thread pushes them to the
    // key's other owners.  Best effort by design — a replica that
    // missed a push simply recomputes on failover, bit-identically.
    mutable Mutex replMu_;
    CondVar replCv_;
    std::deque<ReplicationItem> replQueue_ RFV_GUARDED_BY(replMu_);
    bool replBusy_ RFV_GUARDED_BY(replMu_) = false;
    bool replDraining_ RFV_GUARDED_BY(replMu_) = false;
    Thread replThread_;
};

} // namespace rfv

#endif // RFV_NET_SERVER_H
