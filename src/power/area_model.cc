#include "power/area_model.h"

#include <cmath>

namespace rfv {

double
registerFileAreaMm2(u32 bytes_per_sm, u32 num_sms, const AreaParams &p)
{
    const double kb = static_cast<double>(bytes_per_sm) / 1024.0 *
                      num_sms;
    return kb * p.mm2PerKb * p.bankingOverhead;
}

double
dieYield(double die_mm2, const AreaParams &p)
{
    // Poisson model: Y = exp(-A * D0).
    const double area_cm2 = die_mm2 / 100.0;
    return std::exp(-area_cm2 * p.defectsPerCm2);
}

double
diesPerWafer(double die_mm2, const AreaParams &p)
{
    // Gross dies with the standard edge-loss correction.
    const double d = p.waferDiameterMm;
    const double waferArea = M_PI * d * d / 4.0;
    return waferArea / die_mm2 -
           M_PI * d / std::sqrt(2.0 * die_mm2);
}

AreaYieldPoint
evaluateRfSize(u32 bytes_per_sm, u32 num_sms, const AreaParams &p)
{
    // The modeled chip: baseDieMm2 includes a 128 KB/SM register file;
    // changing the file size changes the die by the area delta.
    const double baseRf = registerFileAreaMm2(128 * 1024, num_sms, p);
    AreaYieldPoint pt;
    pt.rfBytesPerSm = bytes_per_sm;
    pt.rfAreaMm2 = registerFileAreaMm2(bytes_per_sm, num_sms, p);
    pt.dieMm2 = p.baseDieMm2 - baseRf + pt.rfAreaMm2;
    pt.yield = dieYield(pt.dieMm2, p);
    pt.goodDiesPerWafer = diesPerWafer(pt.dieMm2, p) * pt.yield;
    return pt;
}

} // namespace rfv
