/**
 * @file
 * Register-file area and die-yield model.
 *
 * The paper's introduction argues that halving the register file —
 * whose total capacity rivals a CPU's shared last-level cache — has
 * "significant economic and yield impact" (citing Rabaey et al. [45]).
 * This model quantifies that claim: CACTI-style SRAM area at 40 nm
 * with banking overhead, a Poisson defect-yield model, and dies-per-
 * wafer accounting.
 */
#ifndef RFV_POWER_AREA_MODEL_H
#define RFV_POWER_AREA_MODEL_H

#include "common/types.h"

namespace rfv {

/** Area/yield constants (40 nm-class process). */
struct AreaParams {
    /** SRAM macro density including periphery, mm^2 per KB at 40 nm. */
    double mm2PerKb = 0.0042;
    /** Extra area factor for banking/operand-collector wiring. */
    double bankingOverhead = 1.25;
    /** Fermi-class die area in mm^2 (GF100 ~529 mm^2). */
    double baseDieMm2 = 529.0;
    /** Poisson defect density per cm^2 (mature 40 nm line). */
    double defectsPerCm2 = 0.25;
    /** Wafer diameter in mm (300 mm line). */
    double waferDiameterMm = 300.0;
};

/** Register-file area across the chip, in mm^2. */
double registerFileAreaMm2(u32 bytesPerSm, u32 numSms,
                           const AreaParams &p = {});

/** Poisson yield for a die of @p dieMm2. */
double dieYield(double dieMm2, const AreaParams &p = {});

/** Gross dies per wafer for a die of @p dieMm2 (Murphy edge model). */
double diesPerWafer(double dieMm2, const AreaParams &p = {});

/** One row of the area/yield comparison. */
struct AreaYieldPoint {
    u32 rfBytesPerSm;
    double rfAreaMm2;   //!< register-file area across all SMs
    double dieMm2;      //!< resulting die area
    double yield;       //!< Poisson die yield
    double goodDiesPerWafer;
};

/** Evaluate a register-file size option on the modeled chip. */
AreaYieldPoint evaluateRfSize(u32 bytesPerSm, u32 numSms,
                              const AreaParams &p = {});

} // namespace rfv

#endif // RFV_POWER_AREA_MODEL_H
