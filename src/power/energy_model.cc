#include "power/energy_model.h"

#include <cmath>

namespace rfv {

EnergyBreakdown
computeEnergy(const SimResult &result, const GpuConfig &cfg,
              const EnergyParams &params)
{
    EnergyBreakdown out;
    const RegFileConfig &rf = cfg.regFile;
    const double clock_hz = params.clockGhz * 1e9;

    // ---- Dynamic: bank accesses, per-access energy scaled by size ----
    u64 accesses = 0;
    for (u64 reads : result.rf.bankReads)
        accesses += reads;
    for (u64 writes : result.rf.bankWrites)
        accesses += writes;
    const double size_ratio =
        static_cast<double>(rf.sizeBytes) / (128.0 * 1024.0);
    const double per_access_j = params.rfPerAccessPj * 1e-12 *
                                std::pow(size_ratio,
                                         params.dynSizeExponent);
    out.dynamicJ = static_cast<double>(accesses) * per_access_j;

    // ---- Static: leakage of powered subarrays over time ---------------
    // activeSubarrayCycles integrates powered-on subarrays per SM-cycle
    // (all subarrays when power gating is off).
    const double subarray_bytes =
        static_cast<double>(rf.sizeBytes) /
        (rf.numBanks * rf.subarraysPerBank);
    const double leak_w_per_subarray =
        params.rfLeakPerMw4kb * 1e-3 * (subarray_bytes / 4096.0);
    out.staticJ = static_cast<double>(result.rf.activeSubarrayCycles) *
                  leak_w_per_subarray / clock_hz;

    // ---- Renaming table ------------------------------------------------
    if (rf.mode != RegFileMode::kBaseline) {
        const u64 table_accesses =
            result.rename.lookups + result.rename.updates;
        out.renameTableJ =
            static_cast<double>(table_accesses) *
                params.renameTablePerAccessPj * 1e-12 +
            params.renameTableBanks * params.renameTableLeakPerBankMw *
                1e-3 * static_cast<double>(result.rename.sampledCycles) /
                clock_hz;
    }

    // ---- Flag instructions (fetch/decode + flag cache) -----------------
    if (result.metaEncounters > 0) {
        const u64 probes = result.flagCacheHits + result.flagCacheMisses;
        out.flagInstrJ =
            static_cast<double>(result.metaDecoded) * params.flagDecodePj *
                1e-12 +
            static_cast<double>(probes) * params.flagCacheAccessPj *
                1e-12 +
            params.flagCacheLeakMw * 1e-3 *
                static_cast<double>(result.rename.sampledCycles) /
                clock_hz;
    }
    return out;
}

std::vector<PowerVsSizePoint>
powerVsSizeSweep(u32 points, const EnergyParams &params)
{
    // Operating-point split at full size (Fig. 7's calibration): the
    // 128 KB register file burns roughly 2/3 dynamic, 1/3 leakage.
    constexpr double kDynShare = 2.0 / 3.0;
    constexpr double kLeakShare = 1.0 / 3.0;

    std::vector<PowerVsSizePoint> sweep;
    for (u32 i = 0; i < points; ++i) {
        const double reduction =
            50.0 * static_cast<double>(i) / (points - 1);
        const double ratio = 1.0 - reduction / 100.0;
        const double dyn = std::pow(ratio, params.dynSizeExponent);
        const double leak = ratio;
        sweep.push_back({reduction, 100.0 * dyn, 100.0 * leak,
                         100.0 * (kDynShare * dyn + kLeakShare * leak)});
    }
    return sweep;
}

const std::vector<TechNode> &
technologyLeakageTable()
{
    // Shape from paper Fig. 9 (GPUWattch + PTM): leakage climbs with
    // planar scaling, FinFET at 22 nm resets to roughly the 40 nm
    // fraction, then the climb resumes toward 10 nm.
    static const std::vector<TechNode> table = {
        {"40nm-P", false, 1.00},
        {"32nm-P", false, 1.12},
        {"22nm-P", false, 1.38},
        {"22nm-F", true, 0.98},
        {"16nm-F", true, 1.12},
        {"10nm-F", true, 1.27},
    };
    return table;
}

} // namespace rfv
