/**
 * @file
 * Register-file energy model (paper Table 2, Figs. 7, 9 and 12).
 *
 * Parameters come from the paper's CACTI-5.3 numbers at 40 nm
 * (Table 2).  Per-access energy scales with register-file size using an
 * exponent calibrated to the paper's Fig. 7 ("halving the RF reduces
 * dynamic power by ~20%"); leakage scales linearly with (active) size.
 * The technology table reproduces the planar-vs-FinFET leakage shape of
 * Fig. 9.
 */
#ifndef RFV_POWER_ENERGY_MODEL_H
#define RFV_POWER_ENERGY_MODEL_H

#include <string>
#include <vector>

#include "sim/gpu.h"

namespace rfv {

/** Energy/power constants (Table 2 plus GPUWattch-style estimates). */
struct EnergyParams {
    // Renaming table: 1 KB, 4 banks (Table 2).
    double renameTablePerAccessPj = 1.14;
    double renameTableLeakPerBankMw = 0.27;
    u32 renameTableBanks = 4;

    // Main register file (per warp-wide bank access; 4 KB CACTI bank).
    double rfPerAccessPj = 4.68;
    double rfLeakPerMw4kb = 2.8; //!< leakage per 4 KB of SRAM

    // Release-flag metadata handling.
    double flagDecodePj = 35.0;      //!< fetch+decode one metadata instr
    double flagCacheAccessPj = 0.05; //!< probe of the 68 B flag cache
    double flagCacheLeakMw = 0.004;

    double clockGhz = 0.7;

    /**
     * Per-access energy ~ (size/128KB)^exponent; 0.3219 makes a 50%
     * file cost 80% per access, matching Fig. 7's 20% dynamic saving.
     */
    double dynSizeExponent = 0.3219;
};

/** Joule breakdown of register-file energy (Fig. 12 components). */
struct EnergyBreakdown {
    double dynamicJ = 0;
    double staticJ = 0;
    double renameTableJ = 0;
    double flagInstrJ = 0;

    double
    totalJ() const
    {
        return dynamicJ + staticJ + renameTableJ + flagInstrJ;
    }

    bool operator==(const EnergyBreakdown &) const = default;
};

/** Compute the breakdown for one finished run. */
EnergyBreakdown computeEnergy(const SimResult &result,
                              const GpuConfig &cfg,
                              const EnergyParams &params = {});

/** One point of the Fig. 7 power-vs-size model sweep. */
struct PowerVsSizePoint {
    double sizeReductionPct; //!< 0..50
    double dynPowerPct;      //!< normalized to the 128 KB file
    double leakPowerPct;
    double totalPowerPct;
};

/**
 * Analytic Fig. 7 sweep: register-file power versus size reduction,
 * normalized to the full-size file.  Uses a 2:1 dynamic:leakage power
 * split at full size (40 nm operating point).
 */
std::vector<PowerVsSizePoint> powerVsSizeSweep(u32 points = 11,
                                               const EnergyParams &p = {});

/** One technology node of the Fig. 9 leakage model. */
struct TechNode {
    std::string name;   //!< e.g. "32nm-P", "16nm-F"
    bool finfet;
    double leakageNorm; //!< leakage fraction normalized to 40 nm planar
};

/**
 * Leakage fraction across technology nodes, normalized to 40 nm planar
 * (paper Fig. 9): planar scaling climbs, FinFET resets the baseline at
 * 22 nm, then the climb resumes.
 */
const std::vector<TechNode> &technologyLeakageTable();

} // namespace rfv

#endif // RFV_POWER_ENERGY_MODEL_H
