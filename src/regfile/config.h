/**
 * @file
 * Register-file configuration shared by the regfile, sim and power
 * modules.
 */
#ifndef RFV_REGFILE_CONFIG_H
#define RFV_REGFILE_CONFIG_H

#include "common/error.h"
#include "common/types.h"

namespace rfv {

/** Register management policy of an SM. */
enum class RegFileMode : u8 {
    /**
     * Classic GPU allocation: every architected register of every warp
     * of a CTA gets a physical register at CTA launch, released at CTA
     * completion.  (The paper's baseline; also used for the
     * compiler-spill comparison, where the program itself was rewritten
     * to use fewer registers.)
     */
    kBaseline,
    /**
     * This paper: compiler-guided renaming.  Physical registers are
     * allocated on write and released at pir/pbr release points,
     * allowing warps to share the physical file.
     */
    kVirtualized,
    /**
     * Hardware-only renaming (NVIDIA patent [46]): allocate on first
     * write, release only when the architected register is redefined or
     * the CTA completes.  No compiler lifetime knowledge.
     */
    kHardwareOnly,
};

inline const char *
regFileModeName(RegFileMode mode)
{
    switch (mode) {
      case RegFileMode::kBaseline: return "baseline";
      case RegFileMode::kVirtualized: return "virtualized";
      case RegFileMode::kHardwareOnly: return "hardware-only";
    }
    panic("bad register file mode");
}

/** Physical register file configuration (per SM). */
struct RegFileConfig {
    u32 sizeBytes = 128 * 1024;    //!< Fermi-like baseline: 128 KB
    u32 numBanks = kNumRegBanks;   //!< 4 main banks
    u32 subarraysPerBank = 4;      //!< power-gating granularity
    RegFileMode mode = RegFileMode::kBaseline;

    /** Renamed registers stay in their compiler-assigned bank. */
    bool bankRestrictedRenaming = true;

    /** Subarray-level power gating enabled. */
    bool powerGating = false;

    /** Cycles to wake a gated subarray. */
    u32 wakeupLatency = 1;

    /** Overwrite released registers with a poison pattern (testing). */
    bool poisonOnRelease = false;

    /**
     * Debug lint: track a per-(warp, architected-register) lifecycle
     * state machine and trap reads of released or never-written
     * registers with a precise diagnostic.  Implies poisonOnRelease so
     * any stale value that escapes the trap is at least deterministic.
     */
    bool lifecycleLint = false;

    /** Release-flag cache entries (0 disables the cache). */
    u32 flagCacheEntries = 10;

    u32
    physRegs() const
    {
        return sizeBytes / kBytesPerWarpReg;
    }

    u32
    regsPerBank() const
    {
        return physRegs() / numBanks;
    }

    u32
    regsPerSubarray() const
    {
        return regsPerBank() / subarraysPerBank;
    }

    void
    validate() const
    {
        fatalIf(numBanks == 0 || subarraysPerBank == 0,
                "register file needs banks and subarrays");
        fatalIf(sizeBytes % (kBytesPerWarpReg * numBanks) != 0,
                "register file size must divide evenly into banks");
        fatalIf(regsPerBank() % subarraysPerBank != 0,
                "bank size must divide evenly into subarrays");
        fatalIf(physRegs() == 0, "empty register file");
    }
};

} // namespace rfv

#endif // RFV_REGFILE_CONFIG_H
