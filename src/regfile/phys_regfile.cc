#include "regfile/phys_regfile.h"

#include "common/bit_utils.h"

namespace rfv {

PhysRegFile::PhysRegFile(const RegFileConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
    const u32 n = cfg_.physRegs();
    freeBits_.assign(ceilDiv(n, 64), ~0ull);
    // Clear padding bits beyond n.
    if (n % 64)
        freeBits_.back() = lowMask(n % 64);
    values_.assign(n, WarpValue{});
    subarrayAllocCount_.assign(totalSubarrays(), 0);
    // Without power gating every subarray is always on; with gating,
    // empty subarrays start gated.
    subarrayOn_.assign(totalSubarrays(), !cfg_.powerGating);
    activeCount_ = cfg_.powerGating ? 0 : totalSubarrays();
    freeCount_ = n;
    touched_.assign(n, false);
    lastOwner_.assign(n, kNoOwner);
    stats_.bankReads.assign(cfg_.numBanks, 0);
    stats_.bankWrites.assign(cfg_.numBanks, 0);
}

u32
PhysRegFile::subarrayOf(u32 phys) const
{
    const u32 bank = bankOf(phys);
    const u32 idx = phys % cfg_.regsPerBank();
    return bank * cfg_.subarraysPerBank + idx / cfg_.regsPerSubarray();
}

void
PhysRegFile::onAlloc(u32 phys, u32 &wakeCycles, u32 owner)
{
    if (owner != kNoOwner && lastOwner_[phys] != kNoOwner) {
        if (lastOwner_[phys] != owner)
            ++stats_.crossWarpReuse;
        else
            ++stats_.sameWarpReuse;
    }
    if (owner != kNoOwner)
        lastOwner_[phys] = owner;
    freeBits_[phys / 64] &= ~(1ull << (phys % 64));
    --freeCount_;
    const u32 sub = subarrayOf(phys);
    ++subarrayAllocCount_[sub];
    wakeCycles = 0;
    if (!subarrayOn_[sub]) {
        subarrayOn_[sub] = true;
        ++activeCount_;
        ++stats_.wakeEvents;
        wakeCycles = cfg_.wakeupLatency;
    }
    ++stats_.allocations;
    if (!touched_[phys]) {
        touched_[phys] = true;
        ++stats_.touchedCount;
    }
    stats_.allocWatermark = std::max(stats_.allocWatermark,
                                     allocatedTotal());
}

u32
PhysRegFile::alloc(u32 bank, u32 fromIdx, u32 &wakeCycles, u32 owner)
{
    panicIf(bank >= cfg_.numBanks, "bank out of range");
    const u32 per_bank = cfg_.regsPerBank();
    const u32 base = bank * per_bank;
    const u32 floor = base + std::min(fromIdx, per_bank);
    const u32 end = base + per_bank; // exclusive
    // Scan the 64-bit words overlapping [floor, end) for the lowest
    // free bit inside the range.
    for (u32 word = floor / 64; word * 64 < end; ++word) {
        const u32 word_lo = word * 64;
        const u32 range_lo = std::max(floor, word_lo);
        const u32 range_hi = std::min(end, word_lo + 64);
        if (range_lo >= range_hi)
            continue;
        u64 bits = freeBits_[word];
        if (range_lo > word_lo)
            bits &= ~lowMask(range_lo - word_lo);
        if (range_hi < word_lo + 64)
            bits &= lowMask(range_hi - word_lo);
        if (!bits)
            continue;
        const u32 phys = word_lo + findFirstSet(bits);
        onAlloc(phys, wakeCycles, owner);
        return phys;
    }
    return kInvalidPhysReg;
}

void
PhysRegFile::allocAt(u32 phys, u32 &wakeCycles)
{
    panicIf(phys >= numRegs(), "physical register out of range");
    panicIf(isAllocated(phys), "allocAt on an allocated register");
    onAlloc(phys, wakeCycles);
}

void
PhysRegFile::release(u32 phys)
{
    panicIf(!isAllocated(phys), "release of a free register");
    freeBits_[phys / 64] |= 1ull << (phys % 64);
    ++freeCount_;
    const u32 sub = subarrayOf(phys);
    panicIf(subarrayAllocCount_[sub] == 0, "subarray count underflow");
    if (--subarrayAllocCount_[sub] == 0 && cfg_.powerGating) {
        subarrayOn_[sub] = false;
        --activeCount_;
    }
    if (cfg_.poisonOnRelease)
        values_[phys].fill(0xdeadbeefu);
    ++stats_.releases;
}

u32
PhysRegFile::freeInBank(u32 bank) const
{
    const u32 per_bank = cfg_.regsPerBank();
    const u32 base = bank * per_bank;
    const u32 end = base + per_bank;
    u32 count = 0;
    for (u32 word = base / 64; word * 64 < end; ++word) {
        const u32 word_lo = word * 64;
        const u32 range_lo = std::max(base, word_lo);
        const u32 range_hi = std::min(end, word_lo + 64);
        u64 bits = freeBits_[word];
        if (range_lo > word_lo)
            bits &= ~lowMask(range_lo - word_lo);
        if (range_hi < word_lo + 64)
            bits &= lowMask(range_hi - word_lo);
        count += popcount64(bits);
    }
    return count;
}

u32
PhysRegFile::freeTotal() const
{
    // Maintained incrementally in onAlloc()/release(): the SM's
    // throttle evaluation reads this every cycle, so the bitmap
    // popcount scan (see freeInBank) would sit on the hot path.
    return freeCount_;
}

u32
PhysRegFile::activeSubarrays() const
{
    // Maintained incrementally on the gating transitions in onAlloc()
    // and release(): sampleCycle() reads this every simulated cycle,
    // so a scan over subarrayOn_ would sit on the hot path.
    return activeCount_;
}

void
PhysRegFile::sampleCycle()
{
    stats_.activeSubarrayCycles += activeSubarrays();
    stats_.sampledCycles += 1;
}

void
PhysRegFile::sampleCycles(u64 n)
{
    stats_.activeSubarrayCycles +=
        static_cast<u64>(activeSubarrays()) * n;
    stats_.sampledCycles += n;
}

} // namespace rfv
