/**
 * @file
 * Banked physical register file with subarray power gating.
 *
 * Warp-wide registers (32 x 4 bytes) are the allocation unit.  Each
 * bank keeps a free bitmap; allocation prefers the lowest free index so
 * active registers consolidate into few subarrays, which is what makes
 * subarray-level power gating effective (paper Section 8.2).
 */
#ifndef RFV_REGFILE_PHYS_REGFILE_H
#define RFV_REGFILE_PHYS_REGFILE_H

#include <array>
#include <vector>

#include "common/error.h"
#include "regfile/config.h"

namespace rfv {

/** Lane values of one warp-wide register. */
using WarpValue = std::array<u32, kWarpSize>;

/** Counters exported to the power model. */
struct PhysRegFileStats {
    std::vector<u64> bankReads;  //!< per-bank warp-wide read accesses
    std::vector<u64> bankWrites; //!< per-bank warp-wide write accesses
    u64 allocations = 0;
    u64 releases = 0;
    u64 wakeEvents = 0;
    /** Sum over sampled cycles of powered-on subarrays. */
    u64 activeSubarrayCycles = 0;
    /** Sampled cycles times total subarrays (for averaging). */
    u64 sampledCycles = 0;
    /**
     * Peak simultaneously-allocated registers.  A high-water mark,
     * not an event count: cross-SM aggregation takes the max (see
     * aggregateResults), unlike the additive counters above.
     */
    u32 allocWatermark = 0;
    /** Distinct physical registers touched at least once. */
    u32 touchedCount = 0;
    /** Allocations that reused a register released by another warp. */
    u64 crossWarpReuse = 0;
    /** Allocations that reused a register this warp itself released. */
    u64 sameWarpReuse = 0;

    bool operator==(const PhysRegFileStats &) const = default;
};

/** The physical register file of one SM. */
class PhysRegFile {
  public:
    explicit PhysRegFile(const RegFileConfig &cfg);

    u32 numRegs() const { return cfg_.physRegs(); }
    u32 regsPerBank() const { return cfg_.regsPerBank(); }
    u32 numBanks() const { return cfg_.numBanks; }

    /** Bank that physical register @p phys lives in. */
    u32 bankOf(u32 phys) const { return phys / cfg_.regsPerBank(); }

    /**
     * Allocate the lowest free register in @p bank at in-bank index
     * >= @p fromIdx (used to keep dynamic allocations out of the
     * region reserved for renaming-exempt registers).
     * @param owner warp slot receiving the register (cross-warp reuse
     *        accounting; pass kNoOwner to skip).
     * @return physical register id, or kInvalidPhysReg if the bank is
     *         full.  @p wakeCycles receives the subarray wakeup penalty
     *         (0 when the subarray was already on).
     */
    u32 alloc(u32 bank, u32 fromIdx, u32 &wakeCycles,
              u32 owner = kNoOwner);

    /** Sentinel owner for reuse accounting. */
    static constexpr u32 kNoOwner = 0xffffffffu;

    /** Allocate a specific register (reservations). Must be free. */
    void allocAt(u32 phys, u32 &wakeCycles);

    /** True if @p phys is currently allocated. */
    bool
    isAllocated(u32 phys) const
    {
        return !((freeBits_[phys / 64] >> (phys % 64)) & 1);
    }

    /** Free @p phys; optionally poisons the value. */
    void release(u32 phys);

    /** Number of free registers in @p bank. */
    u32 freeInBank(u32 bank) const;

    /** Total free registers. */
    u32 freeTotal() const;

    /** Total allocated registers. */
    u32
    allocatedTotal() const
    {
        return numRegs() - freeTotal();
    }

    /** Lane values of an allocated register. */
    WarpValue &
    values(u32 phys)
    {
        panicIf(!isAllocated(phys), "value access to a free register");
        return values_[phys];
    }
    const WarpValue &
    values(u32 phys) const
    {
        panicIf(!isAllocated(phys), "value access to a free register");
        return values_[phys];
    }

    /** Count a warp-wide read access to @p phys 's bank. */
    void countRead(u32 phys) { ++stats_.bankReads[bankOf(phys)]; }

    /** Count a warp-wide write access to @p phys 's bank. */
    void countWrite(u32 phys) { ++stats_.bankWrites[bankOf(phys)]; }

    /** Integrate power-gating state for one elapsed cycle. */
    void sampleCycle();

    /**
     * Integrate @p n cycles of unchanged state at once (event-driven
     * fast-forward).  Subarray on/off state only changes at alloc and
     * release events, so sampleCycles(n) over a window with no such
     * events is exactly n sampleCycle() calls.
     */
    void sampleCycles(u64 n);

    /**
     * Rollback-only: restore a stats snapshot taken before a
     * speculative alloc sequence (failed CTA launch), so a failed
     * attempt leaves no trace and retrying it every cycle is a no-op.
     */
    void restoreStats(const PhysRegFileStats &s) { stats_ = s; }

    /** Number of currently powered-on subarrays. */
    u32 activeSubarrays() const;

    /** Allocated registers in subarray @p idx (bank-major order). */
    u32
    subarrayCount(u32 idx) const
    {
        return subarrayAllocCount_[idx];
    }

    /** True if subarray @p idx is powered on. */
    bool subarrayPowered(u32 idx) const { return subarrayOn_[idx]; }

    u32 totalSubarrays() const
    {
        return cfg_.numBanks * cfg_.subarraysPerBank;
    }

    const PhysRegFileStats &stats() const { return stats_; }

  private:
    u32 subarrayOf(u32 phys) const;
    void onAlloc(u32 phys, u32 &wakeCycles, u32 owner = kNoOwner);

    RegFileConfig cfg_;
    std::vector<u64> freeBits_;            //!< one bit per phys reg; 1=free
    std::vector<WarpValue> values_;
    std::vector<u32> subarrayAllocCount_;  //!< per (bank,subarray)
    std::vector<bool> subarrayOn_;         //!< powered on?
    u32 activeCount_ = 0;                  //!< # of true subarrayOn_ bits
    u32 freeCount_ = 0;                    //!< # of set freeBits_ bits
    std::vector<bool> touched_;
    std::vector<u32> lastOwner_; //!< last warp slot that held each reg
    PhysRegFileStats stats_;
};

} // namespace rfv

#endif // RFV_REGFILE_PHYS_REGFILE_H
