#include "regfile/register_manager.h"

#include <algorithm>

namespace rfv {

namespace {

/** The lifecycle lint implies poisoned frees (see RegFileConfig). */
RegFileConfig
withLintAdjustments(RegFileConfig cfg)
{
    if (cfg.lifecycleLint)
        cfg.poisonOnRelease = true;
    return cfg;
}

} // namespace

RegisterManager::RegisterManager(const RegFileConfig &cfg, u32 max_warp_slots)
    : cfg_(withLintAdjustments(cfg)), maxWarpSlots_(max_warp_slots),
      file_(cfg_)
{
    fatalIf(max_warp_slots == 0, "SM needs at least one warp slot");
    configureKernel(0, 0);
}

void
RegisterManager::configureKernel(u32 regs_per_warp, u32 num_exempt)
{
    fatalIf(regs_per_warp > kMaxArchRegs, "kernel exceeds 63 registers");
    fatalIf(num_exempt > regs_per_warp, "exempt count exceeds footprint");
    regsPerWarp_ = regs_per_warp;
    numExempt_ = cfg_.mode == RegFileMode::kVirtualized ? num_exempt : 0;

    file_ = PhysRegFile(cfg_);
    mapping_.assign(maxWarpSlots_ * (kMaxArchRegs + 1), kInvalidPhysReg);
    state_.assign(mapping_.size(), RegState::kUnmapped);
    spilledCount_.assign(maxWarpSlots_, 0);
    lint_.assign(cfg_.lifecycleLint ? mapping_.size() : 0,
                 RegLifecycle::kFresh);
    spillStore_.assign(mapping_.size(), WarpValue{});
    ctaAlloc_.assign(maxWarpSlots_, 0); // at most one CTA per warp slot
    mapped_ = 0;
    ++allocEpoch_;
    renameStats_ = RenameStats{};

    // Exempt-region geometry: exempt register r of warp slot w lives
    // at in-bank index w * exemptInBank[bank] + rank(r).  Cap the
    // fixed-home reservation at half of each bank so renamed registers
    // always have capacity; exempt registers beyond the cap allocate
    // dynamically on first write (they are still never released).
    fixedExempt_ = numExempt_;
    auto reservationFits = [&](u32 m) {
        u32 perBank[kNumRegBanks] = {};
        for (u32 r = 0; r < m; ++r)
            ++perBank[archBank(r)];
        for (u32 b = 0; b < cfg_.numBanks; ++b) {
            if (perBank[b] * maxWarpSlots_ > cfg_.regsPerBank() / 2)
                return false;
        }
        return true;
    };
    while (fixedExempt_ > 0 && !reservationFits(fixedExempt_))
        --fixedExempt_;

    exemptInBank_.assign(cfg_.numBanks, 0);
    exemptRankInBank_.assign(fixedExempt_, 0);
    for (u32 r = 0; r < fixedExempt_; ++r) {
        exemptRankInBank_[r] = exemptInBank_[archBank(r)]++;
    }
    reservedPerBank_.assign(cfg_.numBanks, 0);
    for (u32 b = 0; b < cfg_.numBanks; ++b)
        reservedPerBank_[b] = exemptInBank_[b] * maxWarpSlots_;
}

u32
RegisterManager::exemptHome(u32 warp_slot, u32 reg) const
{
    const u32 bank = archBank(reg);
    const u32 idx =
        warp_slot * exemptInBank_[bank] + exemptRankInBank_[reg];
    return bank * cfg_.regsPerBank() + idx;
}

bool
RegisterManager::launchCta(u32 cta_slot, u32 first_warp_slot, u32 num_warps)
{
    panicIf(first_warp_slot + num_warps > maxWarpSlots_,
            "warp slots out of range");
    // Bumped even when no register moves (HardwareOnly, or Virtualized
    // with no fixed homes): the resident-CTA set flips on success, and
    // the throttle must observe that.
    ++allocEpoch_;
    std::vector<std::pair<u32, u32>> done; // (warpSlot, reg) for rollback

    // A failed launch must be a complete no-op: the dispatcher retries
    // it every cycle, and the event-driven loop proves those retries
    // are pure so it can skip them.  The mapping rollback below already
    // restores the free bitmap; the stats snapshot restores the
    // alloc/release/watermark counters the speculative allocs bumped.
    const PhysRegFileStats stats_snapshot = file_.stats();
    auto rollback = [&]() {
        for (auto [w, r] : done)
            freeMapping(w, cta_slot, r);
        file_.restoreStats(stats_snapshot);
    };

    if (cfg_.mode == RegFileMode::kBaseline) {
        for (u32 w = first_warp_slot; w < first_warp_slot + num_warps;
             ++w) {
            for (u32 r = 0; r < regsPerWarp_; ++r) {
                u32 wake = 0;
                const u32 phys = file_.alloc(archBank(r), 0, wake);
                if (phys == kInvalidPhysReg) {
                    rollback();
                    return false;
                }
                mapping_[slotIndex(w, r)] = phys;
                state_[slotIndex(w, r)] = RegState::kMapped;
                ++mapped_;
                ++ctaAlloc_[cta_slot];
                done.emplace_back(w, r);
            }
        }
        return true;
    }

    if (cfg_.mode == RegFileMode::kVirtualized && fixedExempt_ > 0) {
        for (u32 w = first_warp_slot; w < first_warp_slot + num_warps;
             ++w) {
            for (u32 r = 0; r < fixedExempt_; ++r) {
                u32 wake = 0;
                file_.allocAt(exemptHome(w, r), wake);
                mapping_[slotIndex(w, r)] = exemptHome(w, r);
                state_[slotIndex(w, r)] = RegState::kMapped;
                ++mapped_;
                ++ctaAlloc_[cta_slot];
            }
        }
    }
    return true;
}

void
RegisterManager::completeCta(u32 cta_slot, u32 first_warp_slot,
                             u32 num_warps)
{
    ++allocEpoch_; // the resident-CTA set shrinks even if no reg is held
    for (u32 w = first_warp_slot; w < first_warp_slot + num_warps; ++w) {
        for (u32 r = 0; r <= kMaxArchRegs; ++r) {
            const u32 idx = slotIndex(w, r);
            if (state_[idx] == RegState::kMapped)
                freeMapping(w, cta_slot, r);
            else
                state_[idx] = RegState::kUnmapped;
            if (cfg_.lifecycleLint)
                lint_[idx] = RegLifecycle::kFresh;
        }
        spilledCount_[w] = 0;
    }
}

void
RegisterManager::completeWarp(u32 warp_slot, u32 cta_slot)
{
    if (cfg_.mode != RegFileMode::kVirtualized)
        return;
    for (u32 r = 0; r <= kMaxArchRegs; ++r) {
        const u32 idx = slotIndex(warp_slot, r);
        if (state_[idx] == RegState::kMapped)
            freeMapping(warp_slot, cta_slot, r);
        else
            state_[idx] = RegState::kUnmapped;
        // Reads from a finished warp's slot are bugs; completeCta
        // resets the slot to kFresh for the next occupant.
        if (cfg_.lifecycleLint)
            lint_[idx] = RegLifecycle::kReleased;
    }
    if (spilledCount_[warp_slot] != 0) {
        spilledCount_[warp_slot] = 0;
        ++allocEpoch_;
    }
}

RegisterManager::AllocOutcome
RegisterManager::allocRenamed(u32 warp_slot, u32 cta_slot, u32 reg)
{
    const u32 bank = archBank(reg);
    u32 wake = 0;
    u32 phys = file_.alloc(bank, reservedPerBank_[bank], wake,
                           warp_slot);
    if (phys == kInvalidPhysReg && !cfg_.bankRestrictedRenaming) {
        for (u32 b = 0; b < cfg_.numBanks && phys == kInvalidPhysReg;
             ++b) {
            if (b != bank)
                phys = file_.alloc(b, reservedPerBank_[b], wake,
                                   warp_slot);
        }
    }
    if (phys == kInvalidPhysReg)
        return {false, 0};
    const u32 idx = slotIndex(warp_slot, reg);
    mapping_[idx] = phys;
    state_[idx] = RegState::kMapped;
    ++mapped_;
    ++ctaAlloc_[cta_slot];
    ++allocEpoch_;
    ++renameStats_.updates;
    return {true, wake};
}

RegisterManager::AllocOutcome
RegisterManager::ensureMappedForWrite(u32 warp_slot, u32 cta_slot, u32 reg)
{
    const u32 idx = slotIndex(warp_slot, reg);
    switch (cfg_.mode) {
      case RegFileMode::kBaseline:
        panicIf(state_[idx] != RegState::kMapped,
                "baseline write to an unmapped register");
        return {true, 0};
      case RegFileMode::kHardwareOnly:
      case RegFileMode::kVirtualized:
        if (state_[idx] == RegState::kMapped)
            return {true, 0};
        panicIf(state_[idx] == RegState::kSpilled,
                "write to a spilled register without refill");
        return allocRenamed(warp_slot, cta_slot, reg);
    }
    panic("bad register file mode");
}

void
RegisterManager::lintTrapRead(u32 warp_slot, u32 reg) const
{
    switch (lint_[slotIndex(warp_slot, reg)]) {
      case RegLifecycle::kWritten:
        return;
      case RegLifecycle::kFresh:
        panic("lifecycle lint: read of never-written register r" +
              std::to_string(reg) + " of warp slot " +
              std::to_string(warp_slot));
      case RegLifecycle::kReleased:
        panic("lifecycle lint: read of released register r" +
              std::to_string(reg) + " of warp slot " +
              std::to_string(warp_slot) +
              " (value freed by a pir/pbr flag and poisoned)");
    }
}

RegLifecycle
RegisterManager::lifecycle(u32 warp_slot, u32 reg) const
{
    if (!cfg_.lifecycleLint)
        return RegLifecycle::kWritten;
    return lint_[slotIndex(warp_slot, reg)];
}

void
RegisterManager::freeMapping(u32 warp_slot, u32 cta_slot, u32 reg)
{
    const u32 idx = slotIndex(warp_slot, reg);
    panicIf(state_[idx] != RegState::kMapped, "free of unmapped register");
    file_.release(mapping_[idx]);
    mapping_[idx] = kInvalidPhysReg;
    state_[idx] = RegState::kUnmapped;
    panicIf(mapped_ == 0, "mapped count underflow");
    --mapped_;
    panicIf(ctaAlloc_[cta_slot] == 0, "CTA allocation count underflow");
    --ctaAlloc_[cta_slot];
    ++allocEpoch_;
}

void
RegisterManager::releaseReg(u32 warp_slot, u32 cta_slot, u32 reg)
{
    if (cfg_.mode != RegFileMode::kVirtualized)
        return;
    if (reg < numExempt_)
        return;
    const u32 idx = slotIndex(warp_slot, reg);
    if (state_[idx] != RegState::kMapped)
        return; // releasing an absent mapping is a no-op by design
    freeMapping(warp_slot, cta_slot, reg);
    ++renameStats_.updates;
    if (cfg_.lifecycleLint)
        lint_[idx] = RegLifecycle::kReleased;
}

std::vector<u32>
RegisterManager::spillCandidates(u32 warp_slot) const
{
    std::vector<u32> out;
    for (u32 r = fixedExempt_; r < regsPerWarp_; ++r)
        if (state_[slotIndex(warp_slot, r)] == RegState::kMapped)
            out.push_back(r);
    return out;
}

u32
RegisterManager::countSpillCandidates(u32 warp_slot, u32 need_bank,
                                      bool &has_need) const
{
    u32 count = 0;
    has_need = false;
    for (u32 r = fixedExempt_; r < regsPerWarp_; ++r) {
        if (state_[slotIndex(warp_slot, r)] != RegState::kMapped)
            continue;
        ++count;
        has_need |= (r % cfg_.numBanks) == need_bank;
    }
    return count;
}

u32
RegisterManager::firstSpilledReg(u32 warp_slot) const
{
    for (u32 r = fixedExempt_; r < regsPerWarp_; ++r)
        if (state_[slotIndex(warp_slot, r)] == RegState::kSpilled)
            return r;
    panic("firstSpilledReg on a warp with no spilled registers");
}

void
RegisterManager::spillReg(u32 warp_slot, u32 cta_slot, u32 reg)
{
    const u32 idx = slotIndex(warp_slot, reg);
    panicIf(state_[idx] != RegState::kMapped, "spill of unmapped register");
    panicIf(reg < fixedExempt_,
            "fixed-home exempt registers are never spilled");
    spillStore_[idx] = file_.values(mapping_[idx]);
    freeMapping(warp_slot, cta_slot, reg);
    state_[idx] = RegState::kSpilled;
    ++spilledCount_[warp_slot];
    ++renameStats_.spills;
    ++renameStats_.updates;
}

RegisterManager::AllocOutcome
RegisterManager::refillReg(u32 warp_slot, u32 cta_slot, u32 reg)
{
    const u32 idx = slotIndex(warp_slot, reg);
    panicIf(state_[idx] != RegState::kSpilled,
            "refill of a register that is not spilled");
    state_[idx] = RegState::kUnmapped;
    const AllocOutcome res = allocRenamed(warp_slot, cta_slot, reg);
    if (!res.ok) {
        state_[idx] = RegState::kSpilled;
        return res;
    }
    file_.values(mapping_[idx]) = spillStore_[idx];
    --spilledCount_[warp_slot];
    ++renameStats_.refills;
    return res;
}

std::vector<u32>
RegisterManager::spilledRegs(u32 warp_slot) const
{
    std::vector<u32> out;
    for (u32 r = fixedExempt_; r < regsPerWarp_; ++r)
        if (state_[slotIndex(warp_slot, r)] == RegState::kSpilled)
            out.push_back(r);
    return out;
}

void
RegisterManager::sampleCycles(u64 n)
{
    file_.sampleCycles(n);
    renameStats_.mappedRegCycles += static_cast<u64>(mapped_) * n;
    renameStats_.sampledCycles += n;
}

} // namespace rfv
