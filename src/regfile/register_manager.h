/**
 * @file
 * Mode-aware register management for one SM (paper Sections 7 and 8).
 *
 * All register values flow through the architected-to-physical mapping,
 * so an unsafe release (compiler bug, hardware bug) corrupts results
 * and is caught by the functional test suite — the renaming is not just
 * bookkeeping.
 *
 * Modes:
 *  - Baseline: all registers of a CTA allocated at launch, freed at
 *    completion.  Launch fails when the file is too small (occupancy
 *    pressure), exactly like a real GPU.
 *  - Virtualized: exempt registers (< numExempt) get fixed reserved
 *    homes at launch; renamed registers are allocated on write
 *    (bank-restricted to preserve compiler bank assignment) and freed
 *    at pir/pbr release points.  Spill/refill hooks support the
 *    GPU-shrink throttle's corner case.
 *  - HardwareOnly: patent [46] - allocate on first write, free only on
 *    CTA completion (redefinition reuses the mapping, which is
 *    occupancy-equivalent to dealloc+realloc).
 */
#ifndef RFV_REGFILE_REGISTER_MANAGER_H
#define RFV_REGFILE_REGISTER_MANAGER_H

#include <vector>

#include "regfile/phys_regfile.h"

namespace rfv {

/** Renaming-layer counters for the power model. */
struct RenameStats {
    u64 lookups = 0;     //!< renaming-table reads (operand lookups)
    u64 updates = 0;     //!< renaming-table writes (alloc/release)
    u64 spills = 0;      //!< registers spilled by the scheduler engine
    u64 refills = 0;     //!< registers refilled from spill space
    /** Sum over sampled cycles of mapped architected registers. */
    u64 mappedRegCycles = 0;
    u64 sampledCycles = 0;

    bool operator==(const RenameStats &) const = default;
};

/** Mapping state of one architected register of one warp slot. */
enum class RegState : u8 { kUnmapped, kMapped, kSpilled };

/**
 * Lifecycle-lint state of one architected register of one warp slot.
 * Orthogonal to RegState: RegState tracks the physical mapping, the
 * lifecycle tracks whether the *value* is trustworthy.  Reads are legal
 * only in kWritten; a read in kFresh sees an undefined value and a read
 * in kReleased sees a freed (poisoned) one.
 */
enum class RegLifecycle : u8 { kFresh, kWritten, kReleased };

/** Per-SM register manager. */
class RegisterManager {
  public:
    RegisterManager(const RegFileConfig &cfg, u32 maxWarpSlots);

    /** Bind the kernel's footprint; resets all state. */
    void configureKernel(u32 regsPerWarp, u32 numExempt);

    /**
     * CTA launch: Baseline maps every register of every warp;
     * Virtualized maps the exempt registers into their reserved homes.
     * @return false (with full rollback) if physical registers ran out —
     *         the CTA cannot be resident yet.
     */
    bool launchCta(u32 ctaSlot, u32 firstWarpSlot, u32 numWarps);

    /** CTA completion: frees everything the CTA still holds. */
    void completeCta(u32 ctaSlot, u32 firstWarpSlot, u32 numWarps);

    /**
     * Warp exit (Virtualized only; no-op otherwise): frees the warp's
     * remaining footprint — mapped registers, including exempt ones
     * that have no release points, and any spill-store residue.  A
     * finished warp's values are dead, so the renaming table can hand
     * them back the moment the warp exits instead of waiting for
     * completeCta.  Under GPU-shrink this is a forward-progress
     * requirement: early-exited warps would otherwise pin exempt
     * registers in exactly the banks the surviving warps need to
     * refill, and the spill engine cannot victimize finished warps.
     */
    void completeWarp(u32 warpSlot, u32 ctaSlot);

    /** Outcome of a write-side mapping request. */
    struct AllocOutcome {
        bool ok = false;
        u32 wakeCycles = 0;
    };

    /**
     * Ensure the destination register is mapped before a write.
     * Virtualized/HardwareOnly allocate on demand; Baseline expects the
     * mapping to exist.  Fails (ok=false) when the register file bank
     * is exhausted — the caller stalls or invokes the spill engine.
     */
    AllocOutcome ensureMappedForWrite(u32 warpSlot, u32 ctaSlot, u32 reg);

    RegState
    state(u32 warpSlot, u32 reg) const
    {
        return state_[slotIndex(warpSlot, reg)];
    }

    /** Physical register backing (panics unless mapped). */
    u32
    physOf(u32 warpSlot, u32 reg) const
    {
        const u32 idx = slotIndex(warpSlot, reg);
        panicIf(state_[idx] != RegState::kMapped,
                "physOf on an unmapped register r" + std::to_string(reg) +
                    " of warp slot " + std::to_string(warpSlot));
        return mapping_[idx];
    }

    /** Physical bank backing the register (operand-collector model). */
    u32
    physBankOf(u32 warpSlot, u32 reg) const
    {
        return file_.bankOf(physOf(warpSlot, reg));
    }

    /** Lane values (panics unless mapped). */
    WarpValue &
    values(u32 warpSlot, u32 reg)
    {
        return file_.values(physOf(warpSlot, reg));
    }

    /** Account a warp-wide operand read (bank + renaming lookups). */
    void
    countOperandRead(u32 warpSlot, u32 reg)
    {
        file_.countRead(physOf(warpSlot, reg));
        if (cfg_.mode != RegFileMode::kBaseline && reg >= fixedExempt_)
            ++renameStats_.lookups;
    }

    /**
     * Fused operand-collection query: account the warp-wide read and
     * return the physical bank serving it.  One mapping lookup instead
     * of the two a countOperandRead() + physBankOf() pair would do —
     * this runs per source operand of every issued instruction.
     */
    u32
    readOperandBank(u32 warpSlot, u32 reg)
    {
        const u32 phys = physOf(warpSlot, reg);
        file_.countRead(phys);
        if (cfg_.mode != RegFileMode::kBaseline && reg >= fixedExempt_)
            ++renameStats_.lookups;
        return file_.bankOf(phys);
    }

    /** Account a warp-wide result write. */
    void
    countOperandWrite(u32 warpSlot, u32 reg)
    {
        file_.countWrite(physOf(warpSlot, reg));
        if (cfg_.mode != RegFileMode::kBaseline && reg >= fixedExempt_)
            ++renameStats_.lookups;
        if (cfg_.lifecycleLint) [[unlikely]]
            lint_[slotIndex(warpSlot, reg)] = RegLifecycle::kWritten;
    }

    /**
     * Lifecycle lint (RegFileConfig::lifecycleLint): throw an
     * InternalError when a read would observe a released or
     * never-written register.  The simulator's issue path wraps the
     * call and annotates the error with (pc, instruction); this
     * message carries (warp slot, register, state).  No-op when the
     * lint is disabled.
     */
    void
    lintCheckRead(u32 warpSlot, u32 reg) const
    {
        if (!cfg_.lifecycleLint)
            return;
        lintTrapRead(warpSlot, reg);
    }

    /** Current lint state (kWritten when the lint is disabled). */
    RegLifecycle lifecycle(u32 warpSlot, u32 reg) const;

    /**
     * Release an architected register (pir/pbr).  No-op for exempt or
     * unmapped registers (releasing an absent mapping is harmless by
     * design) and in Baseline/HardwareOnly modes.
     */
    void releaseReg(u32 warpSlot, u32 ctaSlot, u32 reg);

    // ---- GPU-shrink spill engine hooks ---------------------------------
    /** Renamed, mapped registers of a warp (spill victims). */
    std::vector<u32> spillCandidates(u32 warpSlot) const;

    /**
     * Victim-scoring scan without materializing the candidate list:
     * the count of spillCandidates(warpSlot) plus whether any of them
     * lives in @p needBank.  The spill engine scores every resident
     * warp per allocation stall, so the per-warp vector allocations of
     * spillCandidates() would dominate the shrink-mode hot path.
     */
    u32 countSpillCandidates(u32 warpSlot, u32 needBank,
                             bool &hasNeed) const;

    /** Lowest spilled register of a warp; panics if there is none. */
    u32 firstSpilledReg(u32 warpSlot) const;

    /** Save values to spill storage and free the physical register. */
    void spillReg(u32 warpSlot, u32 ctaSlot, u32 reg);

    /** Re-allocate and restore a spilled register. */
    AllocOutcome refillReg(u32 warpSlot, u32 ctaSlot, u32 reg);

    /**
     * True if the warp has any spilled register.  spilledCount_ is
     * maintained on the spillReg()/refillReg()/completeCta()
     * transitions: this is queried per issue attempt, where an
     * O(regsPerWarp) scan would sit on the hot path.
     */
    bool
    hasSpilledRegs(u32 warpSlot) const
    {
        return spilledCount_[warpSlot] != 0;
    }

    /** Spilled registers of a warp. */
    std::vector<u32> spilledRegs(u32 warpSlot) const;

    // ---- Queries ---------------------------------------------------------
    u32 freeRegs() const { return file_.freeTotal(); }
    u32 ctaAllocated(u32 ctaSlot) const { return ctaAlloc_[ctaSlot]; }
    u32 mappedCount() const { return mapped_; }
    u32 numExempt() const { return numExempt_; }
    u32 fixedExempt() const { return fixedExempt_; }
    u32 regsPerWarp() const { return regsPerWarp_; }

    PhysRegFile &file() { return file_; }
    const PhysRegFile &file() const { return file_; }
    const RenameStats &renameStats() const { return renameStats_; }

    /**
     * Monotonic count of allocation-state changes: bumped whenever the
     * free-register pool, a CTA's held-register count, or the resident
     * CTA set can have changed (kernel reset, CTA launch/completion,
     * renamed alloc, mapping free — spill/refill flow through the last
     * two).  Consumers whose output is a pure function of that state
     * (the GPU-shrink throttle) can skip recomputation while the epoch
     * is unchanged.
     */
    u64 allocEpoch() const { return allocEpoch_; }

    /** Integrate per-cycle state (power gating, live-register trace). */
    void
    sampleCycle()
    {
        file_.sampleCycle();
        renameStats_.mappedRegCycles += mapped_;
        renameStats_.sampledCycles += 1;
    }

    /**
     * Integrate @p n unchanged cycles at once (event-driven
     * fast-forward): mapped_ and the subarray states only change at
     * alloc/release events, so this equals n sampleCycle() calls over
     * a window with no such events.
     */
    void sampleCycles(u64 n);

  private:
    u32
    slotIndex(u32 warpSlot, u32 reg) const
    {
        return warpSlot * (kMaxArchRegs + 1) + reg;
    }
    /** Slow path of lintCheckRead (lint enabled only). */
    void lintTrapRead(u32 warpSlot, u32 reg) const;
    u32 archBank(u32 reg) const { return reg % cfg_.numBanks; }
    u32 exemptHome(u32 warpSlot, u32 reg) const;
    AllocOutcome allocRenamed(u32 warpSlot, u32 ctaSlot, u32 reg);
    void freeMapping(u32 warpSlot, u32 ctaSlot, u32 reg);

    RegFileConfig cfg_;
    u32 maxWarpSlots_;
    u32 regsPerWarp_ = 0;
    u32 numExempt_ = 0;
    /**
     * Exempt registers with fixed reserved homes.  May be fewer than
     * numExempt_ when the reservation (exempt regs x warp slots) would
     * starve a bank of renamed capacity; the remainder allocate
     * dynamically on first write and — since the compiler never emits
     * releases for exempt registers — still live until CTA completion.
     */
    u32 fixedExempt_ = 0;
    PhysRegFile file_;

    std::vector<u32> mapping_;   //!< (slot, reg) -> phys
    std::vector<RegState> state_;
    std::vector<u32> spilledCount_; //!< # kSpilled regs per warp slot
    std::vector<RegLifecycle> lint_; //!< populated only when linting
    std::vector<WarpValue> spillStore_;
    std::vector<u32> ctaAlloc_;  //!< registers held per CTA slot
    u32 mapped_ = 0;
    u64 allocEpoch_ = 0; //!< see allocEpoch()

    // Exempt-region geometry.
    std::vector<u32> exemptInBank_;   //!< exempt regs per bank
    std::vector<u32> exemptRankInBank_; //!< rank of exempt reg in its bank
    std::vector<u32> reservedPerBank_;

    RenameStats renameStats_;
};

} // namespace rfv

#endif // RFV_REGFILE_REGISTER_MANAGER_H
