#include "regfile/release_flag_cache.h"

namespace rfv {

ReleaseFlagCache::ReleaseFlagCache(u32 entries) : entries_(entries)
{
    reset();
}

void
ReleaseFlagCache::reset()
{
    tags_.assign(entries_ ? entries_ : 0, kInvalidPc);
    // A reset accompanies a kernel switch: hit/miss counts belong to
    // the outgoing kernel and must not leak into the next one's
    // Fig. 13 / power accounting.
    stats_ = FlagCacheStats{};
}

bool
ReleaseFlagCache::access(u32 pc)
{
    if (entries_ == 0) {
        ++stats_.misses;
        return false;
    }
    const u32 idx = indexOf(pc);
    if (tags_[idx] == pc) {
        ++stats_.hits;
        return true;
    }
    tags_[idx] = pc;
    ++stats_.misses;
    return false;
}

} // namespace rfv
