/**
 * @file
 * Release flag cache (paper Section 7.2).
 *
 * A small, direct-mapped, PC-indexed cache of pir payloads shared by
 * all warps of an SM.  Warps within a CTA execute the same code close
 * together in time, so a ~10-entry cache absorbs nearly all repeated
 * metadata fetch/decode work (paper Fig. 13).
 */
#ifndef RFV_REGFILE_RELEASE_FLAG_CACHE_H
#define RFV_REGFILE_RELEASE_FLAG_CACHE_H

#include <vector>

#include "common/types.h"

namespace rfv {

/** Hit/miss accounting for the power model and Fig. 13. */
struct FlagCacheStats {
    u64 hits = 0;
    u64 misses = 0; //!< pir fetched+decoded from the instruction cache
    u64 probes() const { return hits + misses; }
};

/** Direct-mapped PC-indexed cache of 54-bit pir payloads. */
class ReleaseFlagCache {
  public:
    /** @param entries number of cache entries; 0 disables the cache. */
    explicit ReleaseFlagCache(u32 entries);

    /**
     * Probe for the pir at @p pc; on miss the caller fetched and
     * decoded it, and the entry is filled (replacing the resident one).
     * @return true on hit.
     */
    bool access(u32 pc);

    /** Drop all entries and clear stats (kernel switch). */
    void reset();

    const FlagCacheStats &stats() const { return stats_; }

  private:
    u32 indexOf(u32 pc) const { return pc % entries_; }

    u32 entries_;
    std::vector<u32> tags_; //!< resident pc per entry; kInvalidPc empty
    FlagCacheStats stats_;
};

} // namespace rfv

#endif // RFV_REGFILE_RELEASE_FLAG_CACHE_H
