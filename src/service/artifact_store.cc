#include "service/artifact_store.h"

#include "analysis/verifier.h"

namespace rfv {

std::shared_ptr<const InputArtifact>
ArtifactStore::inputProgram(const std::string &name,
                            const std::function<Program()> &build)
{
    return inputs_.getOrBuild(
        name,
        [&]() -> std::shared_ptr<const InputArtifact> {
            auto art = std::make_shared<InputArtifact>();
            art->program = build();
            art->hash = hashProgram(art->program);
            return art;
        },
        programsBuilt_, programsReused_);
}

std::shared_ptr<const CompiledArtifact>
ArtifactStore::compiled(const std::shared_ptr<const InputArtifact> &input,
                        const CompileOptions &opts)
{
    Hasher h;
    h.u64v(input->hash.hi);
    h.u64v(input->hash.lo);
    addCompileOptions(h, opts);
    return compiles_.getOrBuild(
        h.digest().hex(),
        [&]() -> std::shared_ptr<const CompiledArtifact> {
            auto art = std::make_shared<CompiledArtifact>();
            art->kernel = compileKernel(input->program, opts);
            art->programHash = hashProgram(art->kernel.program);
            return art;
        },
        compilesBuilt_, compilesReused_);
}

std::shared_ptr<const VerifyResult>
ArtifactStore::verifyFor(const std::shared_ptr<const CompiledArtifact> &ck)
{
    return verifies_.getOrBuild(
        ck->programHash.hex(),
        [&]() -> std::shared_ptr<const VerifyResult> {
            return std::make_shared<VerifyResult>(
                verifyReleaseSoundness(ck->kernel.program));
        },
        verifiesBuilt_, verifiesReused_);
}

std::shared_ptr<const DecodeArtifact>
ArtifactStore::decode(const std::shared_ptr<const CompiledArtifact> &ck,
                      const GpuConfig &gpu)
{
    Hasher h;
    h.u64v(ck->programHash.hi);
    h.u64v(ck->programHash.lo);
    // addGpuConfig already canonicalizes the decode-irrelevant knobs
    // (eventDriven, numWorkerThreads, checkSmOverlap), so the naive
    // and event-driven loops share one DecodeCache.
    addGpuConfig(h, gpu);
    return decodes_.getOrBuild(
        h.digest().hex(),
        [&]() -> std::shared_ptr<const DecodeArtifact> {
            return std::make_shared<DecodeArtifact>(ck->kernel.program,
                                                    gpu);
        },
        decodesBuilt_, decodesReused_);
}

ArtifactStore::Stats
ArtifactStore::stats() const
{
    Stats s;
    // relaxed: monotonic statistics, read for reporting only — each
    // load below is an independent counter snapshot.
    const auto ld = [](const std::atomic<u64> &c) {
        // relaxed: see above.
        return c.load(std::memory_order_relaxed);
    };
    s.programsBuilt = ld(programsBuilt_);
    s.programsReused = ld(programsReused_);
    s.compilesBuilt = ld(compilesBuilt_);
    s.compilesReused = ld(compilesReused_);
    s.verifiesBuilt = ld(verifiesBuilt_);
    s.verifiesReused = ld(verifiesReused_);
    s.decodesBuilt = ld(decodesBuilt_);
    s.decodesReused = ld(decodesReused_);
    return s;
}

} // namespace rfv
