/**
 * @file
 * Content-addressed store of immutable per-program artifacts, shared
 * across every job of a sweep (and across repeats of the same job).
 *
 * A batch manifest runs the same workload under many configurations;
 * without sharing, every job re-assembles the kernel, re-runs the
 * compile pipeline, re-verifies and re-builds the DecodeCache — all
 * deterministic functions of (program, options).  The store memoizes
 * each level by content hash:
 *
 *   input program   keyed by workload name (assembled once, hashed once)
 *   compiled kernel keyed by (input hash, CompileOptions)
 *   verify result   keyed by compiled-program hash
 *   decode cache    keyed by (compiled hash, decode-relevant GpuConfig)
 *
 * All getters are thread-safe: the first caller builds while
 * concurrent callers for the same key block on a shared_future, so an
 * artifact is built exactly once per process regardless of scheduling
 * (this is the fix for the duplicate DecodeCache construction the
 * one-shot drivers suffered when sweeping configs in-process).  The
 * DecodeCache's build-time cross-check against the on-demand decode
 * path still runs — once, on the building thread.
 */
#ifndef RFV_SERVICE_ARTIFACT_STORE_H
#define RFV_SERVICE_ARTIFACT_STORE_H

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "analysis/verifier.h"
#include "common/sync.h"
#include "compiler/pipeline.h"
#include "service/hash.h"
#include "sim/decode_cache.h"

namespace rfv {

/** Assembled (metadata-free) input program plus its content hash. */
struct InputArtifact {
    Program program;
    Hash128 hash;
};

/** One compile-pipeline output plus the compiled program's hash. */
struct CompiledArtifact {
    CompiledKernel kernel;
    Hash128 programHash; //!< hash of kernel.program (post-compile)
};

/** One DecodeCache (immutable after construction). */
struct DecodeArtifact {
    DecodeCache cache;

    DecodeArtifact(const Program &prog, const GpuConfig &cfg)
        : cache(prog, cfg)
    {
    }
};

class ArtifactStore {
  public:
    struct Stats {
        u64 programsBuilt = 0;
        u64 programsReused = 0;
        u64 compilesBuilt = 0;
        u64 compilesReused = 0;
        u64 verifiesBuilt = 0;
        u64 verifiesReused = 0;
        u64 decodesBuilt = 0;
        u64 decodesReused = 0;
    };

    /** Assemble (via @p build) or reuse the input program for @p name. */
    std::shared_ptr<const InputArtifact>
    inputProgram(const std::string &name,
                 const std::function<Program()> &build);

    /** Compile or reuse @p input under @p opts. */
    std::shared_ptr<const CompiledArtifact>
    compiled(const std::shared_ptr<const InputArtifact> &input,
             const CompileOptions &opts);

    /** Run or reuse the release-soundness verifier for @p ck. */
    std::shared_ptr<const VerifyResult>
    verifyFor(const std::shared_ptr<const CompiledArtifact> &ck);

    /** Build or reuse the DecodeCache for @p ck under @p gpu. */
    std::shared_ptr<const DecodeArtifact>
    decode(const std::shared_ptr<const CompiledArtifact> &ck,
           const GpuConfig &gpu);

    Stats stats() const;

  private:
    /**
     * get-or-build memo: exactly one build per key; racing callers
     * block on the builder's shared_future.  A build that throws
     * propagates to every waiter.
     */
    template <typename V>
    class Memo {
      public:
        std::shared_ptr<const V>
        getOrBuild(const std::string &key,
                   const std::function<std::shared_ptr<const V>()> &build,
                   std::atomic<u64> &built, std::atomic<u64> &reused)
        {
            std::shared_future<std::shared_ptr<const V>> fut;
            std::promise<std::shared_ptr<const V>> mine;
            bool builder = false;
            {
                MutexLock lk(mu_);
                auto it = map_.find(key);
                if (it != map_.end()) {
                    // relaxed: monotonic statistic.
                    reused.fetch_add(1, std::memory_order_relaxed);
                    fut = it->second;
                } else {
                    fut = mine.get_future().share();
                    map_.emplace(key, fut);
                    builder = true;
                }
            }
            if (builder) {
                // relaxed: monotonic statistic.
                built.fetch_add(1, std::memory_order_relaxed);
                try {
                    mine.set_value(build());
                } catch (...) {
                    mine.set_exception(std::current_exception());
                }
            }
            return fut.get();
        }

      private:
        Mutex mu_;
        std::unordered_map<std::string,
                           std::shared_future<std::shared_ptr<const V>>>
            map_ RFV_GUARDED_BY(mu_);
    };

    Memo<InputArtifact> inputs_;
    Memo<CompiledArtifact> compiles_;
    Memo<VerifyResult> verifies_;
    Memo<DecodeArtifact> decodes_;

    std::atomic<u64> programsBuilt_{0}, programsReused_{0};
    std::atomic<u64> compilesBuilt_{0}, compilesReused_{0};
    std::atomic<u64> verifiesBuilt_{0}, verifiesReused_{0};
    std::atomic<u64> decodesBuilt_{0}, decodesReused_{0};
};

} // namespace rfv

#endif // RFV_SERVICE_ARTIFACT_STORE_H
