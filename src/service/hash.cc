#include "service/hash.h"

#include <cstdio>

#include "core/simulator.h"

namespace rfv {

namespace {

inline u64
rotl(u64 v, int s)
{
    return (v << s) | (v >> (64 - s));
}

} // namespace

void
Hasher::bytes(const void *data, size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        hi_ = (hi_ ^ p[i]) * 0x00000100000001B3ull;
        lo_ = rotl(lo_ ^ (p[i] * 0x9E3779B97F4A7C15ull), 23) *
              0xBF58476D1CE4E5B9ull;
    }
}

void
Hasher::f64v(double v)
{
    u64 bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64v(bits);
}

void
Hasher::str(const std::string &s)
{
    u64v(s.size());
    bytes(s.data(), s.size());
}

std::string
Hash128::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

Hash128
hashProgram(const Program &prog)
{
    Hasher h;
    h.u32v(prog.numRegs);
    h.u32v(prog.numExemptRegs);
    h.u32v(prog.sharedMemBytes);
    h.u32v(prog.localMemSlots);
    h.boolv(prog.hasReleaseMetadata);
    h.u64v(prog.code.size());
    for (const Instr &ins : prog.code) {
        h.enumv(ins.op);
        h.i32v(ins.dst);
        for (const Operand &s : ins.src) {
            h.enumv(s.kind);
            h.u32v(s.isNone() ? 0 : s.value);
        }
        h.i32v(ins.dstPred);
        h.i32v(ins.guardPred);
        h.boolv(ins.guardNeg);
        h.enumv(ins.cmp);
        h.enumv(ins.sreg);
        h.u32v(ins.target);
        h.u32v(ins.reconvPc);
        h.u32v(ins.localSlot);
        h.u64v(ins.metaPayload);
        h.u32v(ins.pirMask);
        // pendingLabel is builder-only scaffolding, never simulated.
    }
    return h.digest();
}

// Layout tripwires: adding a field to these structs changes their size,
// and the hash functions below must then be taught about the new field
// (or the new field must be explicitly canonicalized out).  Sizes are
// for the x86-64 System V ABI both CI and the dev container use.
static_assert(sizeof(RegFileConfig) == 28,
              "RegFileConfig changed: update addGpuConfig()");
static_assert(sizeof(GpuConfig) == 152,
              "GpuConfig changed: update addGpuConfig()");
static_assert(sizeof(CompileOptions) == 20,
              "CompileOptions changed: update addCompileOptions()");
static_assert(sizeof(RunConfig) == 80,
              "RunConfig changed: update canonicalConfigHash()");

void
addGpuConfig(Hasher &h, const GpuConfig &cfg)
{
    h.u32v(cfg.numSms);
    h.u32v(cfg.maxCtasPerSm);
    h.u32v(cfg.maxWarpsPerSm);
    h.u32v(cfg.issuePerCycle);
    h.u32v(cfg.readyQueueSize);
    h.enumv(cfg.scheduler);
    h.u32v(cfg.icacheInstrs);
    h.u32v(cfg.icacheLineInstrs);
    h.u32v(cfg.icacheMissLatency);
    h.u32v(cfg.dcacheLines);
    h.u32v(cfg.dcacheLineBytes);
    h.u32v(cfg.dcacheHitLatency);
    h.u32v(cfg.aluLatency);
    h.u32v(cfg.mulLatency);
    h.u32v(cfg.fpuLatency);
    h.u32v(cfg.sfuLatency);
    h.u32v(cfg.sharedLatency);
    h.u32v(cfg.globalLatency);
    h.u32v(cfg.mshrsPerSm);
    h.u32v(cfg.dramCyclesPerTransaction);
    h.f64v(cfg.clockGhz);
    h.u32v(cfg.renamingLatency);
    h.boolv(cfg.flagMissBubble);
    h.u32v(cfg.spillCooldown);
    h.u64v(cfg.maxCycles);
    // Canonicalized out: eventDriven, numWorkerThreads (bit-identical
    // results either way; enforced by test_event_equivalence and
    // test_parallel_equivalence) and checkSmOverlap (debug assertion
    // only, changes no counter).
    h.u32v(cfg.regFile.sizeBytes);
    h.u32v(cfg.regFile.numBanks);
    h.u32v(cfg.regFile.subarraysPerBank);
    h.enumv(cfg.regFile.mode);
    h.boolv(cfg.regFile.bankRestrictedRenaming);
    h.boolv(cfg.regFile.powerGating);
    h.u32v(cfg.regFile.wakeupLatency);
    h.boolv(cfg.regFile.poisonOnRelease);
    h.boolv(cfg.regFile.lifecycleLint);
    h.u32v(cfg.regFile.flagCacheEntries);
}

void
addCompileOptions(Hasher &h, const CompileOptions &opts)
{
    h.boolv(opts.virtualize);
    h.boolv(opts.aggressiveDiverged);
    h.u32v(opts.renamingTableBytes);
    h.u32v(opts.tableEntryBits);
    h.u32v(opts.residentWarps);
    h.u32v(opts.spillRegBudget);
}

Hash128
canonicalConfigHash(const RunConfig &cfg, const GpuConfig &gpu)
{
    Hasher h;
    addGpuConfig(h, gpu);
    // RunConfig fields that shape compilation or launch geometry but
    // do not land in GpuConfig.  label, numWorkerThreads and
    // eventDriven are deliberately absent (see file comment).
    h.boolv(cfg.virtualize);
    h.boolv(cfg.aggressiveDiverged);
    h.u32v(cfg.renamingTableBytes);
    h.boolv(cfg.compilerSpill);
    h.boolv(cfg.verifyReleases);
    h.u32v(cfg.roundsPerSm);
    return h.digest();
}

Hash128
canonicalConfigHash(const RunConfig &cfg)
{
    return canonicalConfigHash(cfg, Simulator(cfg).gpuConfig());
}

Hash128
resultKey(const std::string &workload, const Hash128 &program_hash,
          const Hash128 &config_hash, const LaunchParams &launch,
          const std::string &sim_version)
{
    Hasher h;
    h.str(workload);
    h.u64v(program_hash.hi);
    h.u64v(program_hash.lo);
    h.u64v(config_hash.hi);
    h.u64v(config_hash.lo);
    h.u32v(launch.gridCtas);
    h.u32v(launch.threadsPerCta);
    h.u32v(launch.concCtasPerSm);
    h.str(sim_version);
    return h.digest();
}

Hash128
routingKey(const std::string &workload, const RunConfig &cfg)
{
    const Hash128 config = canonicalConfigHash(cfg);
    Hasher h;
    h.str("route");
    h.str(workload);
    h.u64v(config.hi);
    h.u64v(config.lo);
    return h.digest();
}

} // namespace rfv
