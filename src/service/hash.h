/**
 * @file
 * Content hashing for the batch engine: programs, configurations and
 * cache keys.
 *
 * Two independent 64-bit lanes give a 128-bit digest — not
 * cryptographic, but collision odds are negligible for the corpus
 * sizes a sweep cache sees, and the function is exactly reproducible
 * across builds and platforms (explicit field-by-field hashing, no
 * raw struct memory, no pointer values).
 *
 * Canonicalization: the result-cache key must identify the *simulated
 * outcome*, so fields proven not to affect results are normalized out
 * before hashing — RunConfig::label (cosmetic), numWorkerThreads and
 * eventDriven (bit-identical by the PR 1/PR 3 equivalence suites) and
 * the debug-only checkSmOverlap flag.  Every other GpuConfig and
 * RunConfig field feeds the key, so changing any of them invalidates
 * cached results (tests/test_sweep_cache.cc exercises this field by
 * field).
 */
#ifndef RFV_SERVICE_HASH_H
#define RFV_SERVICE_HASH_H

#include <cstddef>
#include <string>

#include "compiler/pipeline.h"
#include "core/run_config.h"
#include "isa/program.h"

namespace rfv {

/** 128-bit content digest. */
struct Hash128 {
    u64 hi = 0;
    u64 lo = 0;

    /** 32 lowercase hex chars (filename-safe cache key). */
    std::string hex() const;

    bool operator==(const Hash128 &) const = default;
};

/** Incremental two-lane hasher. */
class Hasher {
  public:
    void bytes(const void *data, size_t len);

    void
    u64v(u64 v)
    {
        bytes(&v, sizeof(v));
    }

    void
    u32v(u32 v)
    {
        u64v(v);
    }

    void
    i32v(i32 v)
    {
        u64v(static_cast<u64>(static_cast<i64>(v)));
    }

    void
    boolv(bool v)
    {
        u64v(v ? 1 : 0);
    }

    /** Doubles hash by bit pattern: exact, no rounding ambiguity. */
    void f64v(double v);

    /** Length-prefixed, so "ab"+"c" and "a"+"bc" differ. */
    void str(const std::string &s);

    template <typename E>
    void
    enumv(E e)
    {
        u64v(static_cast<u64>(e));
    }

    Hash128
    digest() const
    {
        return {hi_, lo_};
    }

  private:
    u64 hi_ = 0xcbf29ce484222325ull; //!< FNV-1a lane
    u64 lo_ = 0x9e3779b97f4a7c15ull; //!< mix-rotate lane
};

/**
 * Hash a program's semantic content: every instruction field the
 * simulator or compiler can observe, plus kernel-level metadata.
 * The program *name* is excluded — identical code under different
 * names is the same content (the result-cache key carries the
 * workload identity separately).
 */
Hash128 hashProgram(const Program &prog);

/**
 * Feed every result-relevant GpuConfig field into @p h, with the
 * canonicalized fields (numWorkerThreads, eventDriven, checkSmOverlap)
 * normalized out.
 */
void addGpuConfig(Hasher &h, const GpuConfig &cfg);

/** Feed a full CompileOptions into @p h. */
void addCompileOptions(Hasher &h, const CompileOptions &opts);

/**
 * Canonical configuration digest of a RunConfig: the derived GpuConfig
 * (via Simulator::gpuConfig) plus the compile- and launch-relevant
 * RunConfig extras.  label/numWorkerThreads/eventDriven do not feed
 * the digest.
 */
Hash128 canonicalConfigHash(const RunConfig &cfg);

/** Test seam: same as above but with an explicit derived GpuConfig. */
Hash128 canonicalConfigHash(const RunConfig &cfg, const GpuConfig &gpu);

/**
 * Result-cache key: workload identity x program content x canonical
 * config x launch geometry x simulator version.
 */
Hash128 resultKey(const std::string &workload, const Hash128 &programHash,
                  const Hash128 &configHash, const LaunchParams &launch,
                  const std::string &simVersion);

/**
 * Cluster routing key: workload identity x canonical config.  A
 * strict coarsening of resultKey — every field of the full key is a
 * function of (workload, config), so all cache keys that share a
 * routing key land on the same ring owner — computable identically
 * by client and server without assembling or compiling the program
 * (the expensive inputs to resultKey).
 */
Hash128 routingKey(const std::string &workload, const RunConfig &cfg);

} // namespace rfv

#endif // RFV_SERVICE_HASH_H
