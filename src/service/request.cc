#include "service/request.h"

#include <istream>
#include <sstream>

#include "service/sweep.h"

namespace rfv {

bool
runConfigByName(const std::string &name, RunConfig &cfg)
{
    if (name == "baseline")
        cfg = RunConfig::baseline();
    else if (name == "virtualized")
        cfg = RunConfig::virtualized();
    else if (name == "virtualized-gating")
        cfg = RunConfig::virtualized(true);
    else if (name == "shrink25")
        cfg = RunConfig::gpuShrink(25);
    else if (name == "shrink50")
        cfg = RunConfig::gpuShrink(50);
    else if (name == "shrink50-gating")
        cfg = RunConfig::gpuShrink(50, true);
    else if (name == "spill50")
        cfg = RunConfig::compilerSpillShrink(50);
    else if (name == "hwonly")
        cfg = RunConfig::hardwareOnly();
    else
        return false;
    return true;
}

const std::vector<std::string> &
runConfigNames()
{
    static const std::vector<std::string> names = {
        "baseline",        "virtualized", "virtualized-gating",
        "shrink25",        "shrink50",    "shrink50-gating",
        "spill50",         "hwonly",
    };
    return names;
}

namespace {

bool
parseU32(const std::string &v, u32 &out)
{
    if (v.empty())
        return false;
    u64 x = 0;
    for (char c : v) {
        if (c < '0' || c > '9')
            return false;
        x = x * 10 + static_cast<u64>(c - '0');
        if (x > 0xffffffffull)
            return false;
    }
    out = static_cast<u32>(x);
    return true;
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "1" || v == "true") {
        out = true;
        return true;
    }
    if (v == "0" || v == "false") {
        out = false;
        return true;
    }
    return false;
}

} // namespace

ServiceStatus
applyConfigOverride(RunConfig &cfg, const std::string &key,
                    const std::string &value, std::string &error)
{
    bool parsed = false;
    if (key == "numSms")
        parsed = parseU32(value, cfg.numSms);
    else if (key == "roundsPerSm")
        parsed = parseU32(value, cfg.roundsPerSm);
    else if (key == "rfSizeBytes")
        parsed = parseU32(value, cfg.rfSizeBytes);
    else if (key == "wakeupLatency")
        parsed = parseU32(value, cfg.wakeupLatency);
    else if (key == "flagCacheEntries")
        parsed = parseU32(value, cfg.flagCacheEntries);
    else if (key == "renamingTableBytes")
        parsed = parseU32(value, cfg.renamingTableBytes);
    else if (key == "numWorkerThreads")
        parsed = parseU32(value, cfg.numWorkerThreads);
    else if (key == "powerGating")
        parsed = parseBool(value, cfg.powerGating);
    else if (key == "aggressiveDiverged")
        parsed = parseBool(value, cfg.aggressiveDiverged);
    else if (key == "bankRestricted")
        parsed = parseBool(value, cfg.bankRestricted);
    else if (key == "compilerSpill")
        parsed = parseBool(value, cfg.compilerSpill);
    else if (key == "verifyReleases")
        parsed = parseBool(value, cfg.verifyReleases);
    else if (key == "eventDriven")
        parsed = parseBool(value, cfg.eventDriven);
    else if (key == "label") {
        cfg.label = value;
        parsed = true;
    } else {
        error = "unknown config override key '" + key + "'";
        return ServiceStatus::kBadConfig;
    }
    if (!parsed) {
        error = "invalid value '" + value + "' for override '" + key + "'";
        return ServiceStatus::kBadConfig;
    }
    return ServiceStatus::kOk;
}

ServiceStatus
buildJob(const ServiceRequest &req, SweepJob &job, std::string &error)
{
    if (req.workload.empty()) {
        error = "request has no workload";
        return ServiceStatus::kBadRequest;
    }
    RunConfig cfg;
    if (!runConfigByName(req.configName, cfg)) {
        error = "unknown config '" + req.configName + "'";
        return ServiceStatus::kBadConfig;
    }
    for (const auto &[key, value] : req.overrides) {
        const ServiceStatus s = applyConfigOverride(cfg, key, value, error);
        if (s != ServiceStatus::kOk)
            return s;
    }
    job.workload = req.workload;
    job.config = cfg;
    return ServiceStatus::kOk;
}

std::vector<ManifestEntry>
parseManifest(std::istream &in, const std::string &name)
{
    std::vector<ManifestEntry> entries;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string workload, config;
        if (!(ls >> workload))
            continue; // blank/comment line

        ManifestEntry e;
        e.source = name + ":" + std::to_string(lineno);
        e.workload = workload;
        if (!(ls >> config)) {
            e.status = ServiceStatus::kBadRequest;
            e.error = e.source + ": expected 'workload config'";
            entries.push_back(std::move(e));
            continue;
        }
        e.configName = config;
        if (!runConfigByName(config, e.config)) {
            e.status = ServiceStatus::kBadConfig;
            e.error = e.source + ": unknown config '" + config + "'";
            entries.push_back(std::move(e));
            continue;
        }
        std::string token;
        while (ls >> token) {
            const size_t eq = token.find('=');
            std::string err;
            if (eq == std::string::npos || eq == 0) {
                e.status = ServiceStatus::kBadRequest;
                e.error = e.source + ": expected key=value, got '" +
                          token + "'";
                break;
            }
            const std::string key = token.substr(0, eq);
            const std::string value = token.substr(eq + 1);
            const ServiceStatus s =
                applyConfigOverride(e.config, key, value, err);
            if (s != ServiceStatus::kOk) {
                e.status = s;
                e.error = e.source + ": " + err;
                break;
            }
            e.overrides.emplace_back(key, value);
        }
        entries.push_back(std::move(e));
    }
    return entries;
}

} // namespace rfv
