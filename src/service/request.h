/**
 * @file
 * Request layer of the simulation service: the shared vocabulary by
 * which any front-end — the `run_sweep` CLI, the `simd` daemon, a
 * test — names a job.
 *
 * A job is (workload name, base config name, key=value overrides,
 * optional deadline).  This file owns:
 *
 *  - the named-config registry (baseline, virtualized, shrink50, …)
 *    formerly private to run_sweep,
 *  - the override parser mapping "numSms=2" onto RunConfig fields
 *    with strict validation (unknown key / unparsable value =
 *    kBadConfig, never a silent default),
 *  - manifest parsing with *per-line* structured errors: a malformed
 *    line yields an error entry, not an aborted batch, and
 *  - ServiceRequest -> SweepJob resolution for the daemon.
 */
#ifndef RFV_SERVICE_REQUEST_H
#define RFV_SERVICE_REQUEST_H

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/run_config.h"
#include "service/status.h"

namespace rfv {

/** Resolve a named base configuration; false on unknown names. */
bool runConfigByName(const std::string &name, RunConfig &cfg);

/** All names runConfigByName accepts (usage strings, docs). */
const std::vector<std::string> &runConfigNames();

/**
 * Apply one "key=value" override onto @p cfg.  Returns kOk, or
 * kBadConfig with @p error set on an unknown key or a value that does
 * not parse (booleans accept 0/1/true/false).
 */
ServiceStatus applyConfigOverride(RunConfig &cfg, const std::string &key,
                                  const std::string &value,
                                  std::string &error);

/**
 * One request as submitted by a client: the job naming plus an
 * advisory deadline the server enforces at admission and response
 * time (a simulation in flight is never preempted; see SERVICE.md).
 */
struct ServiceRequest {
    std::string workload;
    std::string configName = "baseline";
    std::vector<std::pair<std::string, std::string>> overrides;
    i64 deadlineMs = -1; //!< < 0 = no deadline

    /**
     * Ring epoch the sender routed by (0 = not cluster-routed).  A
     * clustered server answering NOT_OWNER attaches its own epoch so
     * a stale sender knows to refresh before re-dispatching.
     */
    u64 ringEpoch = 0;
};

struct SweepJob;

/**
 * Validate @p req's config naming and build the SweepJob (workload
 * existence is checked at execution time so the error lands in the
 * per-job result).  Returns kOk or kBadConfig/kBadRequest with
 * @p error set.
 */
ServiceStatus buildJob(const ServiceRequest &req, SweepJob &job,
                       std::string &error);

/**
 * One parsed manifest line: a runnable job, or a structured parse
 * error carried alongside the line's source position.
 */
struct ManifestEntry {
    ServiceStatus status = ServiceStatus::kOk;
    std::string error; //!< set when status != kOk
    std::string source; //!< "name:line" provenance
    std::string workload;
    RunConfig config; //!< resolved base config + overrides

    // Raw naming as written, so a network client can transmit the
    // (name, overrides) pair and let the server resolve it.
    std::string configName;
    std::vector<std::pair<std::string, std::string>> overrides;
};

/**
 * Parse a manifest ("workload config [key=value ...]" per line, '#'
 * comments).  Malformed lines become error entries; parsing always
 * consumes the whole stream.
 */
std::vector<ManifestEntry> parseManifest(std::istream &in,
                                         const std::string &name);

} // namespace rfv

#endif // RFV_SERVICE_REQUEST_H
