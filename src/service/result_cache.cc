#include "service/result_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unistd.h>

namespace rfv {

namespace {

constexpr const char *kMagic = "rfv-result";
constexpr u64 kFormatVersion = 1;

/** Line-oriented tagged writer: "u key value", "d key hexbits", …. */
class Writer {
  public:
    explicit Writer(std::ostream &os) : os_(os) {}

    void
    u(const char *key, u64 v)
    {
        os_ << "u " << key << ' ' << v << '\n';
    }

    void
    d(const char *key, double v)
    {
        u64 bits;
        __builtin_memcpy(&bits, &v, sizeof(bits));
        char buf[17];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(bits));
        os_ << "d " << key << ' ' << buf << '\n';
    }

    void
    s(const char *key, const std::string &v)
    {
        os_ << "s " << key << ' ' << v.size() << '\n';
        os_.write(v.data(), static_cast<std::streamsize>(v.size()));
        os_ << '\n';
    }

  private:
    std::ostream &os_;
};

/** Strict reader: every tag and key must match the writing order. */
class Reader {
  public:
    explicit Reader(std::istream &is) : is_(is) {}

    u64
    u(const char *key)
    {
        expect("u", key);
        u64 v = 0;
        if (!(is_ >> v))
            bad(key);
        return v;
    }

    double
    d(const char *key)
    {
        expect("d", key);
        std::string hex;
        if (!(is_ >> hex) || hex.size() != 16)
            bad(key);
        const u64 bits = std::stoull(hex, nullptr, 16);
        double v;
        __builtin_memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    s(const char *key)
    {
        expect("s", key);
        u64 len = 0;
        if (!(is_ >> len) || len > (64u << 20))
            bad(key);
        is_.get(); // the newline after the length
        std::string v(len, '\0');
        is_.read(v.data(), static_cast<std::streamsize>(len));
        if (!is_)
            bad(key);
        return v;
    }

  private:
    void
    expect(const char *tag, const char *key)
    {
        std::string t, k;
        if (!(is_ >> t >> k) || t != tag || k != key)
            bad(key);
    }

    [[noreturn]] void
    bad(const char *key)
    {
        throw std::runtime_error(std::string("malformed cache entry at ") +
                                 key);
    }

    std::istream &is_;
};

void
writeVec(Writer &w, const char *key, const std::vector<u64> &v)
{
    w.u(key, v.size());
    for (u64 x : v)
        w.u("item", x);
}

std::vector<u64>
readVec(Reader &r, const char *key)
{
    const u64 n = r.u(key);
    if (n > (1u << 20))
        throw std::runtime_error("oversized vector in cache entry");
    std::vector<u64> v(n);
    for (u64 i = 0; i < n; ++i)
        v[i] = r.u("item");
    return v;
}

} // namespace

void
ResultCache::serialize(std::ostream &os, const RunOutcome &o)
{
    Writer w(os);
    os << kMagic << ' ' << kFormatVersion << '\n';
    w.s("workload", o.workload);
    w.s("configLabel", o.configLabel);

    w.u("gridCtas", o.launch.gridCtas);
    w.u("threadsPerCta", o.launch.threadsPerCta);
    w.u("concCtasPerSm", o.launch.concCtasPerSm);

    const CompileStats &c = o.compile;
    w.u("inputRegs", c.inputRegs);
    w.u("finalRegs", c.finalRegs);
    w.u("numExempt", c.numExempt);
    w.u("staticRegular", c.staticRegular);
    w.u("staticMeta", c.staticMeta);
    w.u("numPirInstrs", c.numPirInstrs);
    w.u("numPbrInstrs", c.numPbrInstrs);
    w.u("numPirBits", c.numPirBits);
    w.u("numPbrRegs", c.numPbrRegs);
    w.u("unconstrainedTableBytes", c.unconstrainedTableBytes);
    w.u("constrainedTableBytes", c.constrainedTableBytes);
    w.u("demotedRegs", c.demotedRegs);
    w.u("spillLoads", c.spillLoads);
    w.u("spillStores", c.spillStores);
    w.u("regStats", c.regStats.size());
    for (const RegisterStat &rs : c.regStats) {
        w.u("defs", rs.defs);
        w.u("uses", rs.uses);
        w.u("liveSpan", rs.liveSpan);
    }

    const SimResult &s = o.sim;
    w.u("cycles", s.cycles);
    w.u("issuedInstrs", s.issuedInstrs);
    w.u("threadInstrs", s.threadInstrs);
    w.u("metaEncounters", s.metaEncounters);
    w.u("metaDecoded", s.metaDecoded);
    w.u("flagCacheHits", s.flagCacheHits);
    w.u("flagCacheMisses", s.flagCacheMisses);
    w.u("scoreboardStalls", s.scoreboardStalls);
    w.u("allocStallEvents", s.allocStallEvents);
    w.u("throttleActiveCycles", s.throttleActiveCycles);
    w.u("bankConflictCycles", s.bankConflictCycles);
    w.u("spillEvents", s.spillEvents);
    w.u("spilledRegs", s.spilledRegs);
    w.u("refilledRegs", s.refilledRegs);
    w.u("wakeStallEvents", s.wakeStallEvents);
    w.u("icacheHits", s.icacheHits);
    w.u("icacheMisses", s.icacheMisses);
    w.u("dcacheHits", s.dcacheHits);
    w.u("dcacheMisses", s.dcacheMisses);
    w.u("peakResidentWarps", s.peakResidentWarps);
    w.u("completedCtas", s.completedCtas);
    w.u("regsPerWarp", s.regsPerWarp);

    writeVec(w, "bankReads", s.rf.bankReads);
    writeVec(w, "bankWrites", s.rf.bankWrites);
    w.u("allocations", s.rf.allocations);
    w.u("releases", s.rf.releases);
    w.u("wakeEvents", s.rf.wakeEvents);
    w.u("activeSubarrayCycles", s.rf.activeSubarrayCycles);
    w.u("rfSampledCycles", s.rf.sampledCycles);
    w.u("allocWatermark", s.rf.allocWatermark);
    w.u("touchedCount", s.rf.touchedCount);
    w.u("crossWarpReuse", s.rf.crossWarpReuse);
    w.u("sameWarpReuse", s.rf.sameWarpReuse);

    w.u("lookups", s.rename.lookups);
    w.u("updates", s.rename.updates);
    w.u("renameSpills", s.rename.spills);
    w.u("renameRefills", s.rename.refills);
    w.u("mappedRegCycles", s.rename.mappedRegCycles);
    w.u("renameSampledCycles", s.rename.sampledCycles);

    w.u("dramRequests", s.dram.requests);
    w.u("dramTransactions", s.dram.transactions);
    w.u("dramQueueCycles", s.dram.queueCycles);

    w.u("steppedCycles", o.loop.steppedCycles);
    w.u("skippedCycles", o.loop.skippedCycles);
    w.u("smStepsElided", o.loop.smStepsElided);

    w.d("dynamicJ", o.energy.dynamicJ);
    w.d("staticJ", o.energy.staticJ);
    w.d("renameTableJ", o.energy.renameTableJ);
    w.d("flagInstrJ", o.energy.flagInstrJ);

    w.u("verified", o.verified ? 1 : 0);
    w.u("releasesChecked", o.verify.releasesChecked);
    w.u("numErrors", o.verify.numErrors);
    w.u("numWarnings", o.verify.numWarnings);
    w.u("diags", o.verify.diags.size());
    for (const VerifyDiag &dg : o.verify.diags) {
        w.u("kind", static_cast<u64>(dg.kind));
        w.u("severity", static_cast<u64>(dg.severity));
        w.u("pc", dg.pc);
        w.u("reg", dg.reg);
        w.s("message", dg.message);
    }
    os << "end\n";
}

RunOutcome
ResultCache::deserialize(std::istream &is)
{
    std::string magic;
    u64 fmt = 0;
    if (!(is >> magic >> fmt) || magic != kMagic || fmt != kFormatVersion)
        throw std::runtime_error("bad cache entry header");

    Reader r(is);
    RunOutcome o;
    o.workload = r.s("workload");
    o.configLabel = r.s("configLabel");

    o.launch.gridCtas = static_cast<u32>(r.u("gridCtas"));
    o.launch.threadsPerCta = static_cast<u32>(r.u("threadsPerCta"));
    o.launch.concCtasPerSm = static_cast<u32>(r.u("concCtasPerSm"));

    CompileStats &c = o.compile;
    c.inputRegs = static_cast<u32>(r.u("inputRegs"));
    c.finalRegs = static_cast<u32>(r.u("finalRegs"));
    c.numExempt = static_cast<u32>(r.u("numExempt"));
    c.staticRegular = static_cast<u32>(r.u("staticRegular"));
    c.staticMeta = static_cast<u32>(r.u("staticMeta"));
    c.numPirInstrs = static_cast<u32>(r.u("numPirInstrs"));
    c.numPbrInstrs = static_cast<u32>(r.u("numPbrInstrs"));
    c.numPirBits = static_cast<u32>(r.u("numPirBits"));
    c.numPbrRegs = static_cast<u32>(r.u("numPbrRegs"));
    c.unconstrainedTableBytes =
        static_cast<u32>(r.u("unconstrainedTableBytes"));
    c.constrainedTableBytes =
        static_cast<u32>(r.u("constrainedTableBytes"));
    c.demotedRegs = static_cast<u32>(r.u("demotedRegs"));
    c.spillLoads = static_cast<u32>(r.u("spillLoads"));
    c.spillStores = static_cast<u32>(r.u("spillStores"));
    const u64 nrs = r.u("regStats");
    if (nrs > (1u << 20))
        throw std::runtime_error("oversized regStats in cache entry");
    c.regStats.resize(nrs);
    for (RegisterStat &rs : c.regStats) {
        rs.defs = static_cast<u32>(r.u("defs"));
        rs.uses = static_cast<u32>(r.u("uses"));
        rs.liveSpan = static_cast<u32>(r.u("liveSpan"));
    }

    SimResult &s = o.sim;
    s.cycles = r.u("cycles");
    s.issuedInstrs = r.u("issuedInstrs");
    s.threadInstrs = r.u("threadInstrs");
    s.metaEncounters = r.u("metaEncounters");
    s.metaDecoded = r.u("metaDecoded");
    s.flagCacheHits = r.u("flagCacheHits");
    s.flagCacheMisses = r.u("flagCacheMisses");
    s.scoreboardStalls = r.u("scoreboardStalls");
    s.allocStallEvents = r.u("allocStallEvents");
    s.throttleActiveCycles = r.u("throttleActiveCycles");
    s.bankConflictCycles = r.u("bankConflictCycles");
    s.spillEvents = r.u("spillEvents");
    s.spilledRegs = r.u("spilledRegs");
    s.refilledRegs = r.u("refilledRegs");
    s.wakeStallEvents = r.u("wakeStallEvents");
    s.icacheHits = r.u("icacheHits");
    s.icacheMisses = r.u("icacheMisses");
    s.dcacheHits = r.u("dcacheHits");
    s.dcacheMisses = r.u("dcacheMisses");
    s.peakResidentWarps = static_cast<u32>(r.u("peakResidentWarps"));
    s.completedCtas = static_cast<u32>(r.u("completedCtas"));
    s.regsPerWarp = static_cast<u32>(r.u("regsPerWarp"));

    s.rf.bankReads = readVec(r, "bankReads");
    s.rf.bankWrites = readVec(r, "bankWrites");
    s.rf.allocations = r.u("allocations");
    s.rf.releases = r.u("releases");
    s.rf.wakeEvents = r.u("wakeEvents");
    s.rf.activeSubarrayCycles = r.u("activeSubarrayCycles");
    s.rf.sampledCycles = r.u("rfSampledCycles");
    s.rf.allocWatermark = static_cast<u32>(r.u("allocWatermark"));
    s.rf.touchedCount = static_cast<u32>(r.u("touchedCount"));
    s.rf.crossWarpReuse = r.u("crossWarpReuse");
    s.rf.sameWarpReuse = r.u("sameWarpReuse");

    s.rename.lookups = r.u("lookups");
    s.rename.updates = r.u("updates");
    s.rename.spills = r.u("renameSpills");
    s.rename.refills = r.u("renameRefills");
    s.rename.mappedRegCycles = r.u("mappedRegCycles");
    s.rename.sampledCycles = r.u("renameSampledCycles");

    s.dram.requests = r.u("dramRequests");
    s.dram.transactions = r.u("dramTransactions");
    s.dram.queueCycles = r.u("dramQueueCycles");

    o.loop.steppedCycles = r.u("steppedCycles");
    o.loop.skippedCycles = r.u("skippedCycles");
    o.loop.smStepsElided = r.u("smStepsElided");

    o.energy.dynamicJ = r.d("dynamicJ");
    o.energy.staticJ = r.d("staticJ");
    o.energy.renameTableJ = r.d("renameTableJ");
    o.energy.flagInstrJ = r.d("flagInstrJ");

    o.verified = r.u("verified") != 0;
    o.verify.releasesChecked = static_cast<u32>(r.u("releasesChecked"));
    o.verify.numErrors = static_cast<u32>(r.u("numErrors"));
    o.verify.numWarnings = static_cast<u32>(r.u("numWarnings"));
    const u64 nd = r.u("diags");
    if (nd > (1u << 20))
        throw std::runtime_error("oversized diags in cache entry");
    o.verify.diags.resize(nd);
    for (VerifyDiag &dg : o.verify.diags) {
        dg.kind = static_cast<VerifyKind>(r.u("kind"));
        dg.severity = static_cast<VerifySeverity>(r.u("severity"));
        dg.pc = static_cast<u32>(r.u("pc"));
        dg.reg = static_cast<u32>(r.u("reg"));
        dg.message = r.s("message");
    }

    std::string tail;
    if (!(is >> tail) || tail != "end")
        throw std::runtime_error("truncated cache entry");
    return o;
}

u64
ResultCache::entryBytes(const RunOutcome &o)
{
    u64 b = sizeof(RunOutcome);
    b += o.workload.capacity() + o.configLabel.capacity();
    b += o.compile.regStats.capacity() * sizeof(RegisterStat);
    b += o.sim.rf.bankReads.capacity() * sizeof(u64);
    b += o.sim.rf.bankWrites.capacity() * sizeof(u64);
    b += o.verify.diags.capacity() * sizeof(VerifyDiag);
    for (const VerifyDiag &dg : o.verify.diags)
        b += dg.message.capacity();
    return b;
}

namespace {

u32
roundUpPow2(u32 v)
{
    u32 p = 1;
    while (p < v && p < (1u << 16))
        p <<= 1;
    return p;
}

} // namespace

ResultCache::ResultCache(std::string dir)
    : ResultCache(ResultCacheOptions{std::move(dir)})
{
}

ResultCache::ResultCache(ResultCacheOptions opts) : opts_(std::move(opts))
{
    const u32 n = roundUpPow2(std::max(opts_.shards, 1u));
    shardMask_ = n - 1;
    shards_.reserve(n);
    for (u32 i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<Shard>());
    if (opts_.memoryBudgetBytes)
        budgetPerShard_ = std::max<u64>(opts_.memoryBudgetBytes / n, 1);
    if (!opts_.dir.empty()) {
        std::filesystem::create_directories(opts_.dir);
        publisher_ = Thread([this] { publisherLoop(); });
    }
}

ResultCache::~ResultCache()
{
    if (!publisher_.joinable())
        return;
    {
        MutexLock lk(pubMu_);
        pubStop_ = true;
    }
    // The publisher drains the remaining queue before honouring the
    // stop flag, so every admitted publish survives shutdown.
    pubCv_.notifyAll();
    publisher_.join();
}

ResultCache::Shard &
ResultCache::shardFor(const Hash128 &key)
{
    // key.lo is the mix-rotate hash lane: already well distributed,
    // so the low bits pick the stripe directly.
    return *shards_[key.lo & shardMask_];
}

std::string
ResultCache::entryPath(const std::string &hex) const
{
    return opts_.dir + "/" + hex + ".rfvres";
}

std::optional<RunOutcome>
ResultCache::lookup(const Hash128 &key)
{
    const std::string hex = key.hex();
    Shard &sh = shardFor(key);

    // Memory tier: shared lock only.  Recency is tracked through
    // per-entry atomics so a hit never needs the exclusive lock, and
    // the caller's copy is made after the lock is dropped.
    std::shared_ptr<const RunOutcome> found;
    {
        ReaderLock lk(sh.mu);
        auto it = sh.map.find(hex);
        if (it != sh.map.end()) {
            Entry &e = *it->second;
            // relaxed: recency metadata only steers eviction — a
            // stale tick/ref bit costs at worst one suboptimal
            // victim choice, never correctness.
            e.lastUse.store(tick_.fetch_add(1, std::memory_order_relaxed),
                            std::memory_order_relaxed);
            e.referenced.store(true, std::memory_order_relaxed);
            // relaxed: monotonic statistic.
            sh.memoryHits.fetch_add(1, std::memory_order_relaxed);
            found = e.outcome;
        }
    }
    if (found)
        return *found;

    if (opts_.dir.empty()) {
        // relaxed: monotonic statistic.
        sh.misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }

    // Disk tier: open/read/deserialize with no lock held at all.
    std::ifstream in(entryPath(hex), std::ios::binary);
    if (!in) {
        // relaxed: monotonic statistic.
        sh.misses.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    std::shared_ptr<const RunOutcome> loaded;
    try {
        loaded = std::make_shared<const RunOutcome>(deserialize(in));
    } catch (const std::exception &) {
        // Quarantine: a malformed entry left in place would be
        // re-opened and re-parsed on every future lookup of this key.
        // Deleting it makes the next lookup a clean (cheap) miss and
        // the next store a clean republish.
        in.close();
        // relaxed: monotonic statistics.
        sh.badEntries.fetch_add(1, std::memory_order_relaxed);
        sh.misses.fetch_add(1, std::memory_order_relaxed);
        std::error_code ec;
        std::filesystem::remove(entryPath(hex), ec);
        return std::nullopt;
    }
    // relaxed: monotonic statistic.
    sh.diskHits.fetch_add(1, std::memory_order_relaxed);
    admit(sh, hex, loaded); // promote back into the memory tier
    return *loaded;
}

void
ResultCache::store(const Hash128 &key, const RunOutcome &outcome)
{
    const std::string hex = key.hex();
    Shard &sh = shardFor(key);
    auto sp = std::make_shared<const RunOutcome>(outcome);
    // relaxed: monotonic statistic.
    sh.stores.fetch_add(1, std::memory_order_relaxed);
    admit(sh, hex, sp);
    if (!opts_.dir.empty())
        enqueuePublish(hex, std::move(sp));
}

void
ResultCache::admit(Shard &sh, const std::string &hex,
                   std::shared_ptr<const RunOutcome> outcome)
{
    const u64 bytes = entryBytes(*outcome);
    WriterLock lk(sh.mu);
    auto it = sh.map.find(hex);
    if (it != sh.map.end()) {
        Entry &e = *it->second;
        sh.bytes -= e.bytes;
        e.outcome = std::move(outcome);
        e.bytes = bytes;
        sh.bytes += bytes;
        // relaxed: recency metadata; see lookup().
        e.lastUse.store(tick_.fetch_add(1, std::memory_order_relaxed),
                        std::memory_order_relaxed);
        e.referenced.store(true, std::memory_order_relaxed);
    } else {
        auto e = std::make_unique<Entry>();
        e->outcome = std::move(outcome);
        e->bytes = bytes;
        // relaxed: recency metadata; see lookup().
        e->lastUse.store(tick_.fetch_add(1, std::memory_order_relaxed),
                         std::memory_order_relaxed);
        sh.ring.push_back(hex);
        e->ringPos = std::prev(sh.ring.end());
        sh.bytes += bytes;
        sh.map.emplace(hex, std::move(e));
    }
    evictLocked(sh, hex);
}

void
ResultCache::eraseLocked(
    Shard &sh,
    std::unordered_map<std::string, std::unique_ptr<Entry>>::iterator it)
{
    if (sh.hand == it->second->ringPos)
        ++sh.hand;
    sh.ring.erase(it->second->ringPos);
    sh.bytes -= it->second->bytes;
    sh.map.erase(it);
    // relaxed: monotonic statistic.
    sh.evictions.fetch_add(1, std::memory_order_relaxed);
}

void
ResultCache::evictLocked(Shard &sh, const std::string &protect)
{
    if (!budgetPerShard_)
        return;
    // Demote-to-disk, never drop the entry just touched: the budget is
    // soft by exactly one entry per shard, so an outcome larger than a
    // whole slice still gets served from memory while it is hot.
    while (sh.bytes > budgetPerShard_ && sh.map.size() > 1) {
        auto victim = sh.map.end();
        if (opts_.eviction == EvictionPolicy::kLru) {
            u64 oldest = ~0ull;
            for (auto it = sh.map.begin(); it != sh.map.end(); ++it) {
                if (it->first == protect)
                    continue;
                // relaxed: recency metadata; see lookup().
                const u64 t =
                    it->second->lastUse.load(std::memory_order_relaxed);
                if (t < oldest) {
                    oldest = t;
                    victim = it;
                }
            }
        } else {
            // CLOCK: sweep the insertion ring from the hand, giving a
            // referenced entry one second chance.  Two laps always
            // produce a victim (the first lap clears every bit).
            for (u64 step = 0, cap = 2 * sh.ring.size() + 1;
                 step < cap; ++step) {
                if (sh.hand == sh.ring.end())
                    sh.hand = sh.ring.begin();
                auto it = sh.map.find(*sh.hand);
                if (it->first == protect) {
                    ++sh.hand;
                    continue;
                }
                // relaxed: recency metadata; see lookup().
                if (it->second->referenced.exchange(
                        false, std::memory_order_relaxed)) {
                    ++sh.hand;
                    continue;
                }
                victim = it;
                break;
            }
        }
        if (victim == sh.map.end())
            return;
        eraseLocked(sh, victim);
    }
}

void
ResultCache::enqueuePublish(const std::string &hex,
                            std::shared_ptr<const RunOutcome> outcome)
{
    {
        MutexLock lk(pubMu_);
        if (pubQueue_.size() >= opts_.writeBehindCapacity) {
            // Shedding the publish is safe: the entry is resident in
            // the memory tier, and if it gets demoted before a reuse
            // the job simply re-simulates.  Bounding the queue keeps a
            // burst of stores from buffering unbounded serialized
            // state — the same backpressure discipline as the daemon's
            // admission queue.
            //
            // relaxed: monotonic statistic.
            writeBehindDrops_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        pubQueue_.push_back({hex, std::move(outcome)});
    }
    pubCv_.notifyOne();
}

void
ResultCache::publisherLoop()
{
    for (;;) {
        PublishJob job;
        {
            MutexLock lk(pubMu_);
            while (pubQueue_.empty() && !pubStop_)
                pubCv_.wait(lk);
            if (pubQueue_.empty())
                return; // stop requested and the backlog is flushed
            job = std::move(pubQueue_.front());
            pubQueue_.pop_front();
            pubWriting_ = true;
        }
        publishOne(job); // file I/O with no lock held
        {
            MutexLock lk(pubMu_);
            pubWriting_ = false;
            if (pubQueue_.empty())
                drainCv_.notifyAll();
        }
    }
}

void
ResultCache::publishOne(const PublishJob &job) const
{
    // Atomic publish: write a unique temp file, then rename over the
    // final name.  Readers either see the old complete entry or the
    // new complete entry, never a torn write.  The name carries the
    // pid as well as a per-process counter: cache directories are
    // shared between processes (two daemons, or a daemon plus a CLI
    // sweep), and a counter alone would let both write the same tmp
    // path and clobber each other before the rename.
    static std::atomic<u64> tmpCounter{0};
    const std::string path = entryPath(job.hex);
    // relaxed: the counter only needs uniqueness, not ordering.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(tmpCounter.fetch_add(1, std::memory_order_relaxed));
    bool ok = false;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (out) {
            serialize(out, *job.outcome);
            ok = static_cast<bool>(out);
        }
    }
    // Cache write failures are non-fatal by design (the run already
    // succeeded); just never leave a partial file behind.
    std::error_code ec;
    if (ok) {
        std::filesystem::rename(tmp, path, ec);
        if (!ec)
            return;
    }
    std::filesystem::remove(tmp, ec);
}

void
ResultCache::drain()
{
    if (!publisher_.joinable())
        return;
    MutexLock lk(pubMu_);
    // While-loop wait: the predicate reads pubMu_-guarded state, so
    // it must live here where the analysis sees the lock held.
    while (!pubQueue_.empty() || pubWriting_)
        drainCv_.wait(lk);
}

ResultCache::Stats
ResultCache::stats() const
{
    Stats s;
    for (const auto &shp : shards_) {
        const Shard &sh = *shp;
        ReaderLock lk(sh.mu);
        // relaxed: monotonic statistics, aggregated for reporting;
        // sh.bytes is the only field needing the (shared) lock.
        s.memoryHits += sh.memoryHits.load(std::memory_order_relaxed);
        s.diskHits += sh.diskHits.load(std::memory_order_relaxed);
        s.misses += sh.misses.load(std::memory_order_relaxed);
        s.stores += sh.stores.load(std::memory_order_relaxed);
        s.badEntries += sh.badEntries.load(std::memory_order_relaxed);
        s.evictions += sh.evictions.load(std::memory_order_relaxed);
        s.memoryBytes += sh.bytes;
    }
    {
        MutexLock lk(pubMu_);
        s.writeBehindDepth = pubQueue_.size() + (pubWriting_ ? 1 : 0);
    }
    // relaxed: monotonic statistic.
    s.writeBehindDrops =
        writeBehindDrops_.load(std::memory_order_relaxed);
    return s;
}

} // namespace rfv
