/**
 * @file
 * Memoized simulation results: a two-tier (memory + disk) cache from
 * result key to RunOutcome.
 *
 * Soundness rests on three facts: simulation is deterministic, results
 * are independent of the canonicalized execution knobs (thread count,
 * cycle-loop flavour — PR 1/PR 3 bit-identity guarantees), and the key
 * covers everything else that can influence the outcome (program
 * content, canonical config, launch geometry, simulator version — see
 * service/hash.h and service/version.h).  A hit therefore replays the
 * stored outcome bit-identically to a live run, including energy
 * doubles (serialized as raw bit patterns) and verifier diagnostics.
 *
 * Structure, mirroring the paper's small-physical/large-virtual
 * discipline: a bounded memory tier serves hot keys at ns latency and
 * the disk tier holds everything ever published.
 *
 *  - The memory tier is hash-partitioned into lock-striped shards,
 *    each under its own std::shared_mutex: memory hits take a shared
 *    lock only (recency is tracked with per-entry atomics), so
 *    concurrent readers never serialize.  Entries hold shared_ptrs;
 *    the outcome copy handed to the caller is made after the lock is
 *    released.
 *  - The memory tier is byte-budgeted.  Crossing the budget evicts
 *    cold entries (LRU or CLOCK, ResultCacheOptions::eviction) —
 *    demoting them to the disk tier rather than pinning every outcome
 *    for the life of the process.  A demoted key is still a (disk)
 *    hit and is re-admitted on access.
 *  - Disk publishes are write-behind: store() only enqueues onto a
 *    bounded queue serviced by one publisher thread, so no file I/O
 *    ever happens under a shard lock.  The destructor flushes the
 *    queue (flush-on-shutdown); drain() blocks until it is empty —
 *    SweepEngine::run() and daemon shutdown call it so no admitted
 *    result is lost.  A full queue drops the disk publish (counted in
 *    Stats::writeBehindDrops) — the entry stays served by the memory
 *    tier and a later miss just re-simulates; cache write failures
 *    have always been non-fatal.
 *
 * Disk layout: one self-describing text file per key under the cache
 * directory, written atomically (temp file + rename) so concurrent
 * sweeps and aborted runs can never publish a torn entry.  Any
 * malformed or truncated entry is treated as a miss, quarantined
 * (deleted) so it is never re-parsed, and re-simulated.
 */
#ifndef RFV_SERVICE_RESULT_CACHE_H
#define RFV_SERVICE_RESULT_CACHE_H

#include <atomic>
#include <deque>
#include <iosfwd>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "core/simulator.h"
#include "service/hash.h"

namespace rfv {

/** Replacement policy for the byte-budgeted memory tier. */
enum class EvictionPolicy : u8 {
    kLru,   //!< evict the least-recently-used entry (exact, tick-based)
    kClock, //!< second-chance ring sweep (cheaper metadata churn)
};

struct ResultCacheOptions {
    /** "" keeps the cache in-memory only (no persistence). */
    std::string dir;

    /**
     * Memory-tier byte budget across all shards (0 = unbounded).
     * Soft: a shard never evicts below one resident entry, so a
     * single entry larger than its slice stays admitted.
     */
    u64 memoryBudgetBytes = 256ull << 20;

    EvictionPolicy eviction = EvictionPolicy::kLru;

    /** Lock-striped shard count; rounded up to a power of two, >=1. */
    u32 shards = 16;

    /** Write-behind queue capacity; overflow drops the disk publish. */
    u32 writeBehindCapacity = 256;
};

class ResultCache {
  public:
    struct Stats {
        u64 memoryHits = 0;
        u64 diskHits = 0;
        u64 misses = 0;
        u64 stores = 0;
        u64 badEntries = 0; //!< malformed disk entries, quarantined
        u64 evictions = 0;  //!< entries demoted out of the memory tier
        u64 memoryBytes = 0; //!< resident memory-tier footprint
        u64 writeBehindDepth = 0; //!< publish queue depth (snapshot)
        u64 writeBehindDrops = 0; //!< publishes skipped, queue full
    };

    /** @p dir = "" keeps the cache in-memory only (no persistence). */
    explicit ResultCache(std::string dir);
    explicit ResultCache(ResultCacheOptions opts);
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** Replay a stored outcome, or nullopt on a miss. */
    std::optional<RunOutcome> lookup(const Hash128 &key);

    /** Record a live run's outcome (memory now, disk write-behind). */
    void store(const Hash128 &key, const RunOutcome &outcome);

    /**
     * Block until every queued disk publish has landed.  Called by
     * SweepEngine::run() and daemon shutdown; tests call it before
     * reopening the directory with a fresh instance.
     */
    void drain() RFV_EXCLUDES(pubMu_);

    bool persistent() const { return !opts_.dir.empty(); }
    Stats stats() const RFV_EXCLUDES(pubMu_);

    /** Exact round-trip codec (public for tests). */
    static void serialize(std::ostream &os, const RunOutcome &outcome);
    /** Throws std::runtime_error on any malformed input. */
    static RunOutcome deserialize(std::istream &is);

    /**
     * Memory-tier footprint estimate of one outcome: struct size plus
     * heap payloads (strings, per-register stats, per-bank counters,
     * verifier diagnostics).
     */
    static u64 entryBytes(const RunOutcome &outcome);

  private:
    struct Entry {
        std::shared_ptr<const RunOutcome> outcome;
        u64 bytes = 0;
        std::atomic<u64> lastUse{0};        //!< LRU recency tick
        std::atomic<bool> referenced{true}; //!< CLOCK second chance
        std::list<std::string>::iterator ringPos;
    };

    struct Shard {
        mutable SharedMutex mu;
        std::unordered_map<std::string, std::unique_ptr<Entry>>
            map RFV_GUARDED_BY(mu);
        std::list<std::string> ring RFV_GUARDED_BY(mu); //!< CLOCK order
        std::list<std::string>::iterator hand RFV_GUARDED_BY(mu) =
            ring.end();
        u64 bytes RFV_GUARDED_BY(mu) = 0; //!< resident payload bytes

        // Counters bumped off the exclusive path (memory hits under a
        // shared lock, disk-path counters under no shard lock at all).
        std::atomic<u64> memoryHits{0};
        std::atomic<u64> diskHits{0};
        std::atomic<u64> misses{0};
        std::atomic<u64> stores{0};
        std::atomic<u64> badEntries{0};
        std::atomic<u64> evictions{0};
    };

    struct PublishJob {
        std::string hex;
        std::shared_ptr<const RunOutcome> outcome;
    };

    Shard &shardFor(const Hash128 &key);
    std::string entryPath(const std::string &hex) const;

    /** Insert/refresh @p hex in the memory tier, then evict to budget. */
    void admit(Shard &sh, const std::string &hex,
               std::shared_ptr<const RunOutcome> outcome)
        RFV_EXCLUDES(sh.mu);
    /** Evict under sh.mu (exclusive) until the shard fits its slice. */
    void evictLocked(Shard &sh, const std::string &protect)
        RFV_REQUIRES(sh.mu);
    void eraseLocked(Shard &sh,
                     std::unordered_map<std::string,
                                        std::unique_ptr<Entry>>::iterator
                         it) RFV_REQUIRES(sh.mu);

    void enqueuePublish(const std::string &hex,
                        std::shared_ptr<const RunOutcome> outcome)
        RFV_EXCLUDES(pubMu_);
    void publisherLoop() RFV_EXCLUDES(pubMu_);
    void publishOne(const PublishJob &job) const;

    ResultCacheOptions opts_;
    u32 shardMask_ = 0;
    u64 budgetPerShard_ = 0; //!< 0 = unbounded
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<u64> tick_{1};

    // Write-behind publisher.  No file I/O ever runs under pubMu_:
    // publisherLoop pops a job, drops the lock, writes, re-locks to
    // clear pubWriting_ (drain() keys off queue-empty AND idle).
    Thread publisher_;
    mutable Mutex pubMu_;
    CondVar pubCv_;   //!< work available / stop
    CondVar drainCv_; //!< queue fully flushed
    std::deque<PublishJob> pubQueue_ RFV_GUARDED_BY(pubMu_);
    bool pubWriting_ RFV_GUARDED_BY(pubMu_) = false;
    bool pubStop_ RFV_GUARDED_BY(pubMu_) = false;
    std::atomic<u64> writeBehindDrops_{0};
};

} // namespace rfv

#endif // RFV_SERVICE_RESULT_CACHE_H
