/**
 * @file
 * Memoized simulation results: a two-level (memory + disk) cache from
 * result key to RunOutcome.
 *
 * Soundness rests on three facts: simulation is deterministic, results
 * are independent of the canonicalized execution knobs (thread count,
 * cycle-loop flavour — PR 1/PR 3 bit-identity guarantees), and the key
 * covers everything else that can influence the outcome (program
 * content, canonical config, launch geometry, simulator version — see
 * service/hash.h and service/version.h).  A hit therefore replays the
 * stored outcome bit-identically to a live run, including energy
 * doubles (serialized as raw bit patterns) and verifier diagnostics.
 *
 * Disk layout: one self-describing text file per key under the cache
 * directory, written atomically (temp file + rename) so concurrent
 * sweeps and aborted runs can never publish a torn entry.  Any
 * malformed or truncated entry is treated as a miss and re-simulated.
 */
#ifndef RFV_SERVICE_RESULT_CACHE_H
#define RFV_SERVICE_RESULT_CACHE_H

#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/simulator.h"
#include "service/hash.h"

namespace rfv {

class ResultCache {
  public:
    struct Stats {
        u64 memoryHits = 0;
        u64 diskHits = 0;
        u64 misses = 0;
        u64 stores = 0;
        u64 badEntries = 0; //!< malformed disk entries treated as misses
    };

    /** @p dir = "" keeps the cache in-memory only (no persistence). */
    explicit ResultCache(std::string dir);

    /** Replay a stored outcome, or nullopt on a miss. */
    std::optional<RunOutcome> lookup(const Hash128 &key);

    /** Record a live run's outcome (memory + disk when persistent). */
    void store(const Hash128 &key, const RunOutcome &outcome);

    bool persistent() const { return !dir_.empty(); }
    Stats stats() const;

    /** Exact round-trip codec (public for tests). */
    static void serialize(std::ostream &os, const RunOutcome &outcome);
    /** Throws std::runtime_error on any malformed input. */
    static RunOutcome deserialize(std::istream &is);

  private:
    std::string entryPath(const Hash128 &key) const;

    std::string dir_;
    mutable std::mutex mu_;
    std::unordered_map<std::string, RunOutcome> memory_;
    Stats stats_;
};

} // namespace rfv

#endif // RFV_SERVICE_RESULT_CACHE_H
