#include "service/status.h"

#include <array>
#include <utility>

namespace rfv {

namespace {

constexpr std::array<std::pair<ServiceStatus, const char *>, 12> kNames{{
    {ServiceStatus::kOk, "OK"},
    {ServiceStatus::kBadRequest, "BAD_REQUEST"},
    {ServiceStatus::kUnknownWorkload, "UNKNOWN_WORKLOAD"},
    {ServiceStatus::kBadConfig, "BAD_CONFIG"},
    {ServiceStatus::kVersionMismatch, "VERSION_MISMATCH"},
    {ServiceStatus::kRetryLater, "RETRY_LATER"},
    {ServiceStatus::kShuttingDown, "SHUTTING_DOWN"},
    {ServiceStatus::kNotOwner, "NOT_OWNER"},
    {ServiceStatus::kRedirect, "REDIRECT"},
    {ServiceStatus::kDeadlineExceeded, "DEADLINE_EXCEEDED"},
    {ServiceStatus::kCancelled, "CANCELLED"},
    {ServiceStatus::kInternalError, "INTERNAL_ERROR"},
}};

} // namespace

const char *
serviceStatusName(ServiceStatus s)
{
    for (const auto &[status, name] : kNames)
        if (status == s)
            return name;
    return "INTERNAL_ERROR";
}

bool
serviceStatusFromName(const std::string &name, ServiceStatus &s)
{
    for (const auto &[status, statusName] : kNames)
        if (name == statusName) {
            s = status;
            return true;
        }
    return false;
}

} // namespace rfv
