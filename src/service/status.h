/**
 * @file
 * Error taxonomy of the simulation service.
 *
 * One status enum covers every layer that can reject or fail a job —
 * manifest parsing, request validation, admission control, execution —
 * so a sweep result row, a daemon response and a client retry decision
 * all speak the same vocabulary.  The wire protocol transmits the
 * symbolic name, never the numeric value, so the enum can be reordered
 * without breaking deployed clients.
 */
#ifndef RFV_SERVICE_STATUS_H
#define RFV_SERVICE_STATUS_H

#include <string>

#include "common/types.h"

namespace rfv {

enum class ServiceStatus : u32 {
    kOk = 0,

    // Client-side / request errors (retrying the same request cannot
    // succeed).
    kBadRequest,      //!< malformed request or manifest line
    kUnknownWorkload, //!< workload name not in the registry
    kBadConfig,       //!< unknown config name or invalid override
    kVersionMismatch, //!< protocol or simulator version disagreement

    // Server-side transient conditions (retrying may succeed).
    kRetryLater,   //!< admission queue full — load was shed
    kShuttingDown, //!< server is draining; no new work accepted

    // Cluster routing outcomes (retrying the *same node* cannot
    // succeed, but re-dispatching to a node from the attached owner
    // list can — see net/cluster_ring.h).
    kNotOwner, //!< key is owned by another node per the ring epoch
    kRedirect, //!< node cannot serve now; try the attached owners

    // Terminal per-job outcomes.
    kDeadlineExceeded, //!< the request's deadline expired
    kCancelled,        //!< sweep was interrupted before this job ran
    kInternalError,    //!< simulator invariant violation or I/O failure
};

/** Stable symbolic name, e.g. "OK", "RETRY_LATER" (wire format). */
const char *serviceStatusName(ServiceStatus s);

/** Reverse of serviceStatusName(); false on unknown names. */
bool serviceStatusFromName(const std::string &name, ServiceStatus &s);

/** True for statuses a client may retry verbatim. */
inline bool
isRetryable(ServiceStatus s)
{
    return s == ServiceStatus::kRetryLater ||
           s == ServiceStatus::kShuttingDown;
}

/**
 * True for statuses a cluster-aware client should answer by
 * re-dispatching to a node from the response's owner list rather
 * than retrying the same node (which can never succeed).
 */
inline bool
isRerouteable(ServiceStatus s)
{
    return s == ServiceStatus::kNotOwner ||
           s == ServiceStatus::kRedirect;
}

} // namespace rfv

#endif // RFV_SERVICE_STATUS_H
