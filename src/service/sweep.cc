#include "service/sweep.h"

#include <chrono>
#include <sstream>

#include "common/error.h"
#include "common/thread_pool.h"
#include "core/simulator.h"
#include "service/version.h"
#include "sim/gpu.h"

namespace rfv {
namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

ResultCacheOptions
cacheOptions(const SweepOptions &opts)
{
    ResultCacheOptions c;
    c.dir = opts.useCache ? opts.cacheDir : "";
    c.memoryBudgetBytes = opts.cacheMemoryBudget;
    c.eviction = opts.cacheEviction;
    c.shards = opts.cacheShards;
    c.writeBehindCapacity = opts.cacheWriteBehindDepth;
    return c;
}

} // namespace

std::string
SweepStats::summary() const
{
    std::ostringstream os;
    os << "sweep: " << jobsTotal << " jobs (" << jobsRun << " run, "
       << jobsCached << " cached, hit rate "
       << static_cast<int>(hitRate() * 100 + 0.5) << "%";
    if (jobsFailed)
        os << ", " << jobsFailed << " failed";
    if (jobsCancelled)
        os << ", " << jobsCancelled << " cancelled";
    os << ")\n";
    os << "artifacts: programs " << artifacts.programsBuilt << " built/"
       << artifacts.programsReused << " reused, compiles "
       << artifacts.compilesBuilt << "/" << artifacts.compilesReused
       << ", verifies " << artifacts.verifiesBuilt << "/"
       << artifacts.verifiesReused << ", decodes "
       << artifacts.decodesBuilt << "/" << artifacts.decodesReused
       << "\n";
    os << "cache: " << cache.memoryHits << " memory hits, "
       << cache.diskHits << " disk hits, " << cache.misses << " misses, "
       << cache.stores << " stores";
    if (cache.badEntries)
        os << ", " << cache.badEntries << " bad entries";
    os << "\n";
    os << "cache tier: " << cache.memoryBytes << " bytes resident, "
       << cache.evictions << " evictions, write-behind depth "
       << cache.writeBehindDepth << ", drops "
       << cache.writeBehindDrops << "\n";
    os << "scheduler: " << steals << " steals, " << parks << " parks\n";
    os << "throughput: " << aggregateCycles << " cycles, "
       << aggregateInstrs << " instrs in " << wallSeconds << " s ("
       << static_cast<u64>(cyclesPerSec()) << " cycles/s)";
    return os.str();
}

SweepEngine::SweepEngine(SweepOptions opts)
    : opts_(std::move(opts)), cache_(cacheOptions(opts_))
{
}

PreparedJob
SweepEngine::prepare(const SweepJob &job)
{
    PreparedJob p;
    p.job = job;
    p.workload = findWorkload(job.workload);

    const Simulator sim(job.config);
    p.gpu = sim.gpuConfig();
    p.launch = p.workload->scaledLaunch(job.config.numSms,
                                        job.config.roundsPerSm);

    const Workload &wl = *p.workload;
    p.input = store_.inputProgram(
        wl.name(), [&wl]() { return wl.buildKernel(); });
    p.key = resultKey(wl.name(), p.input->hash,
                      canonicalConfigHash(job.config, p.gpu), p.launch,
                      kSimulatorVersion);

    const u32 resident =
        p.launch.warpsPerCta() *
        std::min(p.launch.concCtasPerSm, p.gpu.maxCtasPerSm);
    CompileOptions copts = sim.compileOptions(resident);
    if (job.config.compilerSpill)
        copts.spillRegBudget =
            sim.spillBudget(p.input->program.numRegs, p.launch);

    p.compiled = store_.compiled(p.input, copts);
    if (job.config.verifyReleases)
        p.verify = store_.verifyFor(p.compiled);
    p.decode = store_.decode(p.compiled, p.gpu);
    return p;
}

RunOutcome
SweepEngine::executeLive(const PreparedJob &p, double *runSeconds) const
{
    const RunConfig &cfg = p.job.config;

    RunOutcome out;
    out.workload = p.workload->name();
    out.configLabel = cfg.label;
    out.launch = p.launch;
    out.compile = p.compiled->kernel.stats;
    if (p.verify) {
        out.verified = true;
        out.verify = *p.verify;
    }

    GlobalMemory mem(p.workload->memoryBytes(p.launch));
    p.workload->setup(mem, p.launch);

    Gpu machine(p.gpu, p.compiled->kernel.program, p.launch, mem, {},
                &p.decode->cache);
    const auto t0 = std::chrono::steady_clock::now();
    out.sim = machine.run();
    if (runSeconds)
        *runSeconds = secondsSince(t0);
    out.loop = machine.loopStats();

    EnergyParams ep;
    ep.clockGhz = p.gpu.clockGhz;
    out.energy = computeEnergy(out.sim, p.gpu, ep);

    p.workload->verify(mem, p.launch);
    return out;
}

SweepJobResult
SweepEngine::execute(const SweepJob &job)
{
    // Classify failures into the service taxonomy: a workload name
    // that is not in the registry is its own category (retrying the
    // request cannot help), any other ConfigError is a bad
    // configuration, and everything else — simulator panics, workload
    // verify mismatches, I/O failures — is an internal error.
    try {
        findWorkload(job.workload);
    } catch (const ConfigError &e) {
        SweepJobResult res;
        res.job = job;
        res.status = ServiceStatus::kUnknownWorkload;
        res.error = e.what();
        return res;
    }
    try {
        return runOne(job);
    } catch (const ConfigError &e) {
        SweepJobResult res;
        res.job = job;
        res.status = ServiceStatus::kBadConfig;
        res.error = e.what();
        return res;
    } catch (const std::exception &e) {
        SweepJobResult res;
        res.job = job;
        res.status = ServiceStatus::kInternalError;
        res.error = e.what();
        return res;
    }
}

SweepJobResult
SweepEngine::runOne(const SweepJob &job)
{
    const auto t0 = std::chrono::steady_clock::now();

    SweepJobResult res;
    res.job = job;

    // The cache key needs only the assembled program and the config —
    // on a hit, compilation, verification and decode are all skipped.
    const std::shared_ptr<Workload> wl = findWorkload(job.workload);
    const GpuConfig gpu = Simulator(job.config).gpuConfig();
    const LaunchParams launch =
        wl->scaledLaunch(job.config.numSms, job.config.roundsPerSm);
    const auto input = store_.inputProgram(
        wl->name(), [&wl]() { return wl->buildKernel(); });
    const Hash128 key =
        resultKey(wl->name(), input->hash,
                  canonicalConfigHash(job.config, gpu), launch,
                  kSimulatorVersion);
    res.key = key.hex();

    if (opts_.useCache) {
        if (auto hit = cache_.lookup(key)) {
            res.outcome = std::move(*hit);
            // The label is cosmetic and excluded from the key; restore
            // this job's spelling so reports read naturally.
            res.outcome.workload = wl->name();
            res.outcome.configLabel = job.config.label;
            res.fromCache = true;
            res.seconds = secondsSince(t0);
            return res;
        }
    }

    const PreparedJob p = prepare(job);
    res.outcome = executeLive(p);
    if (opts_.useCache)
        cache_.store(key, res.outcome);
    res.seconds = secondsSince(t0);
    return res;
}

std::vector<SweepJobResult>
SweepEngine::run(const std::vector<SweepJob> &manifest)
{
    const auto t0 = std::chrono::steady_clock::now();

    stats_ = SweepStats{};
    stats_.jobsTotal = manifest.size();

    std::vector<SweepJobResult> results(manifest.size());
    std::vector<char> done(manifest.size(), 0);

    WorkStealingPool pool(opts_.jobs);
    std::exception_ptr err;
    try {
        pool.run(static_cast<u32>(manifest.size()),
                 [&](u32 jobIndex, u32 /*workerId*/) {
                     // relaxed: cancellation is cooperative and
                     // level-triggered; observing it one job late
                     // only runs one more (correct) job.
                     if (opts_.cancel &&
                         opts_.cancel->load(std::memory_order_relaxed)) {
                         results[jobIndex].job = manifest[jobIndex];
                         results[jobIndex].status =
                             ServiceStatus::kCancelled;
                         results[jobIndex].error =
                             "sweep interrupted before this job started";
                     } else {
                         results[jobIndex] = execute(manifest[jobIndex]);
                     }
                     done[jobIndex] = 1;
                 });
    } catch (...) {
        err = std::current_exception();
    }

    stats_.steals = pool.steals();
    stats_.parks = pool.parks();
    stats_.artifacts = store_.stats();
    // Join the write-behind publisher's backlog before reporting: a
    // finished sweep's results are durably on disk (a second engine —
    // or a second process — opening the same directory replays them),
    // and the reported writeBehindDepth is deterministically zero.
    cache_.drain();
    stats_.cache = cache_.stats();
    for (size_t i = 0; i < results.size(); ++i) {
        if (!done[i])
            continue;
        if (results[i].status == ServiceStatus::kCancelled) {
            ++stats_.jobsCancelled;
            continue;
        }
        if (!results[i].ok()) {
            ++stats_.jobsFailed;
            continue;
        }
        if (results[i].fromCache)
            ++stats_.jobsCached;
        else
            ++stats_.jobsRun;
        stats_.aggregateCycles += results[i].outcome.sim.cycles;
        stats_.aggregateInstrs += results[i].outcome.sim.issuedInstrs;
    }
    stats_.wallSeconds = secondsSince(t0);

    if (err)
        std::rethrow_exception(err);
    return results;
}

} // namespace rfv
