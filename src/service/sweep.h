/**
 * @file
 * Batch simulation engine: execute a manifest of (workload, RunConfig)
 * jobs on a work-stealing scheduler, sharing immutable per-program
 * artifacts and memoizing results.
 *
 * Layering per job:
 *
 *   ResultCache hit?  -> replay the stored RunOutcome (bit-identical)
 *   else              -> ArtifactStore supplies the assembled program,
 *                        compiled kernel, verify result and DecodeCache
 *                        (each built once per unique content), the job
 *                        runs its own Gpu + GlobalMemory, and the
 *                        outcome is stored for next time.
 *
 * Per-job results are bit-identical to Simulator::runWorkload under
 * any --jobs value and any manifest order (tests/
 * test_sweep_determinism.cc): jobs share only immutable artifacts,
 * every mutable structure (memory, SMs, DRAM channels) is private to
 * a job, and the inner cycle loop is untouched.
 */
#ifndef RFV_SERVICE_SWEEP_H
#define RFV_SERVICE_SWEEP_H

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "service/artifact_store.h"
#include "service/result_cache.h"
#include "service/status.h"
#include "workloads/workload.h"

namespace rfv {

/** One manifest entry. */
struct SweepJob {
    std::string workload;
    RunConfig config;
};

/**
 * One finished job.  A job never aborts the batch: failures (unknown
 * workload, invalid configuration, simulator panic) land here as a
 * structured (status, error) pair and the rest of the sweep proceeds.
 */
struct SweepJobResult {
    SweepJob job;
    ServiceStatus status = ServiceStatus::kOk;
    std::string error;   //!< diagnostic when status != kOk
    RunOutcome outcome;  //!< valid only when ok()
    bool fromCache = false;
    double seconds = 0;  //!< end-to-end job wall time (hit: lookup time)
    std::string key;     //!< result-cache key (hex)

    bool ok() const { return status == ServiceStatus::kOk; }
};

/** Engine-level counters for one run() call. */
struct SweepStats {
    u64 jobsTotal = 0;
    u64 jobsRun = 0;       //!< simulated live
    u64 jobsCached = 0;    //!< replayed from the result cache
    u64 jobsFailed = 0;    //!< finished with a structured error
    u64 jobsCancelled = 0; //!< skipped because the sweep was interrupted
    ArtifactStore::Stats artifacts;
    ResultCache::Stats cache;
    u64 steals = 0; //!< jobs executed by a non-owning worker
    u64 parks = 0;  //!< scheduler idle-parking events
    u64 aggregateCycles = 0; //!< simulated cycles over all jobs
    u64 aggregateInstrs = 0; //!< issued warp instructions over all jobs
    double wallSeconds = 0;

    double
    cyclesPerSec() const
    {
        return wallSeconds > 0
                   ? static_cast<double>(aggregateCycles) / wallSeconds
                   : 0.0;
    }

    /**
     * Fraction of *attempted* jobs served from the result cache.
     * Cancelled jobs never reach the cache at all, so they are
     * excluded from the denominator — a SIGINT-interrupted warm sweep
     * reports the hit rate of the work it actually did instead of
     * deflating toward zero (and spuriously failing
     * `run_sweep --expect-hit-rate`).
     */
    double
    hitRate() const
    {
        const u64 attempted = jobsTotal - std::min(jobsCancelled, jobsTotal);
        return attempted ? static_cast<double>(jobsCached) /
                               static_cast<double>(attempted)
                         : 0.0;
    }

    /** Human-readable multi-line block for CLI reports. */
    std::string summary() const;
};

struct SweepOptions {
    /** Total worker threads including the caller (>= 1). */
    u32 jobs = 1;

    /** Result-cache directory; "" keeps memoization in-memory only. */
    std::string cacheDir;

    /** false = always simulate live, neither read nor write results. */
    bool useCache = true;

    /** Memory-tier byte budget for the result cache (0 = unbounded). */
    u64 cacheMemoryBudget = 256ull << 20;

    /** Memory-tier replacement policy (LRU default, CLOCK optional). */
    EvictionPolicy cacheEviction = EvictionPolicy::kLru;

    /** Lock-striped shard count (rounded up to a power of two). */
    u32 cacheShards = 16;

    /** Write-behind publish queue depth; overflow drops the publish. */
    u32 cacheWriteBehindDepth = 256;

    /**
     * Cooperative interruption: when non-null and set, jobs that have
     * not started are finished as kCancelled (in-flight jobs complete
     * and publish normally, so the cache is never torn).
     */
    const std::atomic<bool> *cancel = nullptr;
};

/**
 * Everything needed to execute one job, with all shared artifacts
 * resolved.  Exposed so measurement harnesses (bench/trajectory) can
 * drive the engine's artifact path while owning their own timing.
 */
struct PreparedJob {
    SweepJob job;
    GpuConfig gpu;
    LaunchParams launch;
    std::shared_ptr<Workload> workload;
    std::shared_ptr<const InputArtifact> input;
    std::shared_ptr<const CompiledArtifact> compiled;
    std::shared_ptr<const VerifyResult> verify; //!< null unless verifying
    std::shared_ptr<const DecodeArtifact> decode;
    Hash128 key; //!< result-cache key
};

class SweepEngine {
  public:
    explicit SweepEngine(SweepOptions opts = {});

    /**
     * Execute every job of @p manifest; results are returned in
     * manifest order regardless of scheduling.  Per-job failures are
     * reported in the corresponding SweepJobResult (status, error) —
     * a bad job never aborts the batch.
     */
    std::vector<SweepJobResult> run(const std::vector<SweepJob> &manifest);

    /**
     * Execute one job end to end — cache lookup, live run, store —
     * returning a structured result.  Never throws; safe to call from
     * any thread (the daemon's executors call this concurrently).
     */
    SweepJobResult execute(const SweepJob &job);

    /** Counters of the most recent run() (plus store/cache totals). */
    const SweepStats &stats() const { return stats_; }

    // NOTE on thread-safety: run() and stats() belong to one driving
    // thread (the CLI or a test); only execute() and prepare() are
    // safe to call concurrently (the daemon's executors do).  stats_
    // is therefore deliberately unguarded — the annotation rollout
    // found a statsMu_ here that was declared but never locked, which
    // was worse than no mutex: it documented a guarantee the code
    // never provided.  The single-threaded contract is the real one.

    /** Resolve all shared artifacts for one job (thread-safe). */
    PreparedJob prepare(const SweepJob &job);

    /**
     * Run one prepared job live (no cache).  @p runSeconds, when
     * non-null, receives the wall time of Gpu::run() alone.
     */
    RunOutcome executeLive(const PreparedJob &p,
                           double *runSeconds = nullptr) const;

    ArtifactStore &artifacts() { return store_; }
    ResultCache &results() { return cache_; }

  private:
    SweepJobResult runOne(const SweepJob &job);

    SweepOptions opts_;
    ArtifactStore store_;
    ResultCache cache_;
    SweepStats stats_; //!< owned by the run() caller thread (see above)
};

} // namespace rfv

#endif // RFV_SERVICE_SWEEP_H
