/**
 * @file
 * Simulator version constant for result-cache keys.
 *
 * Memoized replay is only sound while the simulator is behaviourally
 * identical to the build that produced the cached result.  Any change
 * that can alter a SimResult, CompileStats, EnergyBreakdown or
 * VerifyResult — new counters, timing model changes, compiler pass
 * changes — MUST bump this constant; stale entries then miss and are
 * re-simulated.  Pure harness changes (CLI, scheduling, reporting)
 * need no bump: PR 1/PR 3 guarantee results are independent of thread
 * count and cycle-loop choice, and those knobs are canonicalized out
 * of the key (see service/hash.h).
 */
#ifndef RFV_SERVICE_VERSION_H
#define RFV_SERVICE_VERSION_H

namespace rfv {

inline constexpr const char *kSimulatorVersion = "rfv-sim-4.0";

} // namespace rfv

#endif // RFV_SERVICE_VERSION_H
