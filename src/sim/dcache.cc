#include "sim/dcache.h"

namespace rfv {

DCache::DCache(u32 lines, u32 line_bytes)
    : numLines_(lines), lineBytes_(line_bytes ? line_bytes : 128)
{
    reset();
}

void
DCache::reset()
{
    tags_.assign(numLines_, kInvalidPc);
}

} // namespace rfv
