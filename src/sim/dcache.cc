#include "sim/dcache.h"

namespace rfv {

DCache::DCache(u32 lines, u32 line_bytes)
    : numLines_(lines), lineBytes_(line_bytes ? line_bytes : 128)
{
    reset();
}

void
DCache::reset()
{
    tags_.assign(numLines_, kInvalidPc);
}

bool
DCache::access(u32 byte_addr)
{
    if (numLines_ == 0)
        return false;
    const u32 line = byte_addr / lineBytes_;
    const u32 idx = line % numLines_;
    if (tags_[idx] == line) {
        ++stats_.hits;
        return true;
    }
    tags_[idx] = line;
    ++stats_.misses;
    return false;
}

} // namespace rfv
