/**
 * @file
 * Optional per-SM L1 data cache (timing only).
 *
 * Disabled by default: the paper's Fermi-era evaluation pays DRAM for
 * global and local (spill) traffic, which is what makes the
 * compiler-spill baseline so expensive in Fig. 11(a).  Enabling the
 * cache is an ablation: it shows how an L1 would soften the spill
 * penalty without changing any functional result (values always come
 * from the functional memory; the cache only decides latency).
 */
#ifndef RFV_SIM_DCACHE_H
#define RFV_SIM_DCACHE_H

#include <vector>

#include "common/types.h"

namespace rfv {

/** Hit/miss counters. */
struct DCacheStats {
    u64 hits = 0;
    u64 misses = 0;
};

/** Direct-mapped, read-allocate, write-through/no-allocate cache. */
class DCache {
  public:
    /**
     * @param lines      number of cache lines (0 disables: every access
     *                   misses, i.e. DRAM timing as in the paper)
     * @param lineBytes  line size in bytes (Fermi L1: 128)
     */
    DCache(u32 lines, u32 lineBytes);

    bool enabled() const { return numLines_ != 0; }

    /**
     * Probe the line holding @p byteAddr; fills it on a miss.
     * @return true on hit.  With the cache disabled every probe
     *         reports a miss and is not counted.
     */
    bool
    access(u32 byteAddr)
    {
        if (numLines_ == 0)
            return false;
        const u32 line = byteAddr / lineBytes_;
        const u32 idx = line % numLines_;
        if (tags_[idx] == line) {
            ++stats_.hits;
            return true;
        }
        tags_[idx] = line;
        ++stats_.misses;
        return false;
    }

    /** Drop all lines. */
    void reset();

    const DCacheStats &stats() const { return stats_; }

  private:
    u32 numLines_;
    u32 lineBytes_;
    std::vector<u32> tags_;
    DCacheStats stats_;
};

} // namespace rfv

#endif // RFV_SIM_DCACHE_H
