#include "sim/decode_cache.h"

#include "common/error.h"
#include "compiler/liveness.h"

namespace rfv {

namespace {

u32
configuredLatency(OpClass cls, const GpuConfig &cfg)
{
    u32 lat = cfg.aluLatency;
    switch (cls) {
      case OpClass::kAlu: lat = cfg.aluLatency; break;
      case OpClass::kMul: lat = cfg.mulLatency; break;
      case OpClass::kFpu: lat = cfg.fpuLatency; break;
      case OpClass::kSfu: lat = cfg.sfuLatency; break;
      case OpClass::kMemShared: lat = cfg.sharedLatency; break;
      default: lat = cfg.aluLatency; break;
    }
    if (cfg.regFile.mode != RegFileMode::kBaseline)
        lat += cfg.renamingLatency;
    return lat;
}

} // namespace

DecodeCache::DecodeCache(const Program &prog, const GpuConfig &cfg)
{
    entries_.resize(prog.code.size());
    for (u32 pc = 0; pc < prog.code.size(); ++pc) {
        const Instr &ins = prog.code[pc];
        StaticDecode &d = entries_[pc];
        d.cls = opInfo(ins.op).cls;
        d.meta = isMeta(ins.op);
        d.needRegs = useMask(ins) | defMask(ins);
        d.defRegs = defMask(ins);
        if (ins.guardPred != kNoPred)
            d.needPreds |= 1u << ins.guardPred;
        if (ins.dstPred != kNoPred)
            d.needPreds |= 1u << ins.dstPred;
        d.dramLoad = isLoad(ins.op) && (d.cls == OpClass::kMemGlobal ||
                                        d.cls == OpClass::kMemLocal);
        d.warpLatency = configuredLatency(d.cls, cfg);
        for (u32 i = 0; i < 3; ++i) {
            if (ins.src[i].isReg())
                d.srcRegIdx[d.numSrcRegs++] = static_cast<u8>(i);
        }
        if (ins.op == Opcode::kPbr)
            d.pbrCount = decodePbrInto(ins.metaPayload, d.pbrRegs);
        else if (ins.op == Opcode::kPir)
            d.pirSlots = decodePir(ins.metaPayload);

        // Cross-check the cached entry against the on-demand decode
        // path once per static instruction, so the per-execution
        // asserts in the simulator can be debug-only without losing
        // the equivalence guarantee in release builds.
        if (ins.op == Opcode::kPbr) {
            const auto ref = decodePbr(ins.metaPayload);
            panicIf(ref.size() != d.pbrCount,
                    "predecode: pbr slot count diverged at pc " +
                        std::to_string(pc));
            for (u32 i = 0; i < d.pbrCount; ++i) {
                panicIf(ref[i] != d.pbrRegs[i],
                        "predecode: pbr register diverged at pc " +
                            std::to_string(pc));
            }
        } else if (ins.op == Opcode::kPir) {
            panicIf(decodePir(ins.metaPayload) != d.pirSlots,
                    "predecode: pir slots diverged at pc " +
                        std::to_string(pc));
        }
    }
}

} // namespace rfv
