/**
 * @file
 * Predecode table: per-static-instruction state the issue path would
 * otherwise recompute on every dynamic execution.
 *
 * Mirrors the release-flag cache's one-cost-per-static-instruction
 * principle (paper Sec. 6.3): scoreboard masks, operand/bank layout,
 * execution class, and the decoded pir/pbr metadata payloads are all
 * functions of the instruction word alone, so they are decoded once at
 * program load and shared read-only by every warp on every SM.  This
 * removes the per-execution decodePbr() vector allocation and the
 * per-attempt useMask/defMask operand scans from the hot path.
 */
#ifndef RFV_SIM_DECODE_CACHE_H
#define RFV_SIM_DECODE_CACHE_H

#include <array>
#include <vector>

#include "isa/metadata.h"
#include "isa/program.h"
#include "sim/sim_config.h"

namespace rfv {

/** Everything the issue path needs that is static per instruction. */
struct StaticDecode {
    // Scoreboard masks (useMask | defMask, and the def side alone for
    // write-back), plus the predicate bits read or written.
    u64 needRegs = 0;
    u64 defRegs = 0;
    u32 needPreds = 0;

    OpClass cls = OpClass::kAlu;
    bool meta = false;     //!< pir/pbr
    bool dramLoad = false; //!< load class that occupies an MSHR
    u32 warpLatency = 0;   //!< issue-to-writeback latency (config-baked)

    /** Register source operands: src[] indices that hold registers. */
    std::array<u8, 3> srcRegIdx{};
    u32 numSrcRegs = 0;

    /** Decoded pbr payload (kPbr only). */
    std::array<u32, kPbrSlots> pbrRegs{};
    u32 pbrCount = 0;

    /** Decoded pir payload (kPir only; Instr::pirMask stays the
        authoritative per-instruction copy the issue path consumes). */
    std::array<u8, kPirSlots> pirSlots{};
};

/**
 * The predecode table for one program under one machine config.
 * Built once per Gpu; indexed by pc.  Construction cross-checks every
 * cached entry against the on-demand decode path (decodePir/decodePbr
 * and the liveness operand scans) and panics on any mismatch.
 */
class DecodeCache {
  public:
    DecodeCache(const Program &prog, const GpuConfig &cfg);

    const StaticDecode &
    at(u32 pc) const
    {
        return entries_[pc];
    }

    u32 size() const { return static_cast<u32>(entries_.size()); }

  private:
    std::vector<StaticDecode> entries_;
};

} // namespace rfv

#endif // RFV_SIM_DECODE_CACHE_H
