#include "sim/gpu.h"

namespace rfv {

Gpu::Gpu(const GpuConfig &cfg, const Program &prog,
         const LaunchParams &launch, GlobalMemory &gmem, TraceHooks hooks)
    : cfg_(cfg), prog_(prog), launch_(launch), gmem_(gmem),
      hooks_(std::move(hooks)),
      dram_(cfg.globalLatency, cfg.dramCyclesPerTransaction)
{
    cfg_.validate();
    prog_.validate();
    fatalIf(launch_.gridCtas == 0, "empty grid");
    fatalIf(launch_.threadsPerCta == 0, "empty CTA");
    for (u32 s = 0; s < cfg_.numSms; ++s) {
        sms_.push_back(std::make_unique<Sm>(s, cfg_, prog_, launch_,
                                            gmem_, dram_, hooks_));
    }
}

SimResult
aggregateResults(const std::vector<std::unique_ptr<Sm>> &sms,
                 const DramModel &dram, Cycle cycles, u32 regs_per_warp)
{
    SimResult res;
    res.cycles = cycles;
    res.regsPerWarp = regs_per_warp;
    res.dram = dram.stats();
    res.rf.bankReads.assign(kNumRegBanks, 0);
    res.rf.bankWrites.assign(kNumRegBanks, 0);
    for (const auto &sm : sms) {
        const SmStats &s = sm->stats();
        res.issuedInstrs += s.issuedInstrs;
        res.threadInstrs += s.threadInstrs;
        res.metaEncounters += s.metaEncounters;
        res.metaDecoded += s.metaDecoded;
        res.scoreboardStalls += s.scoreboardStalls;
        res.allocStallEvents += s.allocStallEvents;
        res.throttleActiveCycles += s.throttleActiveCycles;
        res.bankConflictCycles += s.bankConflictCycles;
        res.spillEvents += s.spillEvents;
        res.spilledRegs += s.spilledRegs;
        res.refilledRegs += s.refilledRegs;
        res.wakeStallEvents += s.wakeStallEvents;
        res.icacheHits += s.icacheHits;
        res.icacheMisses += s.icacheMisses;
        res.dcacheHits += s.dcacheHits;
        res.dcacheMisses += s.dcacheMisses;
        res.peakResidentWarps += s.peakResidentWarps;
        res.completedCtas += sm->completedCtas();

        const auto &fc = sm->flagCache().stats();
        res.flagCacheHits += fc.hits;
        res.flagCacheMisses += fc.misses;

        const auto &rf = sm->regs().file().stats();
        for (u32 b = 0; b < rf.bankReads.size() && b < kNumRegBanks; ++b) {
            res.rf.bankReads[b] += rf.bankReads[b];
            res.rf.bankWrites[b] += rf.bankWrites[b];
        }
        res.rf.allocations += rf.allocations;
        res.rf.releases += rf.releases;
        res.rf.wakeEvents += rf.wakeEvents;
        res.rf.activeSubarrayCycles += rf.activeSubarrayCycles;
        res.rf.sampledCycles += rf.sampledCycles;
        res.rf.allocWatermark += rf.allocWatermark;
        res.rf.touchedCount += rf.touchedCount;
        res.rf.crossWarpReuse += rf.crossWarpReuse;
        res.rf.sameWarpReuse += rf.sameWarpReuse;

        const auto &rn = sm->regs().renameStats();
        res.rename.lookups += rn.lookups;
        res.rename.updates += rn.updates;
        res.rename.spills += rn.spills;
        res.rename.refills += rn.refills;
        res.rename.mappedRegCycles += rn.mappedRegCycles;
        res.rename.sampledCycles += rn.sampledCycles;
    }
    return res;
}

SimResult
Gpu::run()
{
    u32 next_cta = 0;
    u32 completed = 0;
    Cycle cycle = 0;

    auto dispatch = [&]() {
        // Round-robin CTAs onto SMs with free slots.
        bool progress = true;
        while (progress && next_cta < launch_.gridCtas) {
            progress = false;
            for (auto &sm : sms_) {
                if (next_cta >= launch_.gridCtas)
                    break;
                if (sm->tryLaunchCta(next_cta, cycle)) {
                    ++next_cta;
                    progress = true;
                }
            }
        }
    };

    dispatch();
    fatalIf(next_cta == 0,
            "no CTA could be launched: kernel exceeds the register file "
            "even for a single CTA in baseline mode");

    while (true) {
        bool busy = false;
        for (auto &sm : sms_)
            busy |= sm->busy();
        if (!busy && next_cta >= launch_.gridCtas)
            break;

        for (auto &sm : sms_)
            sm->step(cycle);

        if (next_cta < launch_.gridCtas)
            dispatch();

        ++cycle;
        if (cycle >= cfg_.maxCycles) {
            panic("watchdog: kernel exceeded " +
                  std::to_string(cfg_.maxCycles) + " cycles");
        }
    }

    completed = 0;
    for (const auto &sm : sms_)
        completed += sm->completedCtas();
    panicIf(completed != launch_.gridCtas,
            "not all CTAs completed at end of simulation");

    return aggregateResults(sms_, dram_, cycle, prog_.numRegs);
}

} // namespace rfv
