#include "sim/gpu.h"

#include <algorithm>

namespace rfv {

Gpu::Gpu(const GpuConfig &cfg, const Program &prog,
         const LaunchParams &launch, GlobalMemory &gmem, TraceHooks hooks,
         const DecodeCache *shared_decode)
    : cfg_(cfg), prog_(prog), launch_(launch), gmem_(gmem),
      hooks_(std::move(hooks)),
      ownedDecode_(shared_decode
                       ? nullptr
                       : std::make_unique<DecodeCache>(prog, cfg_)),
      decode_(shared_decode ? *shared_decode : *ownedDecode_)
{
    cfg_.validate();
    prog_.validate();
    fatalIf(launch_.gridCtas == 0, "empty grid");
    fatalIf(launch_.threadsPerCta == 0, "empty CTA");
    if (cfg_.checkSmOverlap)
        gmem_.enableOverlapCheck();
    // One DRAM channel per SM: SMs share no mutable timing state, so
    // stepping them on worker threads cannot reorder DRAM service.
    // dramCyclesPerTransaction is the GPU-wide service interval, so
    // each channel gets an SM-count multiple of it — aggregate
    // bandwidth stays fixed as the machine scales, each SM owning a
    // fair share.  Reserve up front — SMs keep references into the
    // vector.
    drams_.reserve(cfg_.numSms);
    for (u32 s = 0; s < cfg_.numSms; ++s) {
        drams_.emplace_back(cfg_.globalLatency,
                            cfg_.dramCyclesPerTransaction * cfg_.numSms);
        sms_.push_back(std::make_unique<Sm>(s, cfg_, prog_, decode_,
                                            launch_, gmem_, drams_[s],
                                            hooks_));
    }
}

SimResult
aggregateResults(const std::vector<std::unique_ptr<Sm>> &sms,
                 const std::vector<DramModel> &drams, Cycle cycles,
                 u32 regs_per_warp)
{
    SimResult res;
    res.cycles = cycles;
    res.regsPerWarp = regs_per_warp;
    for (const DramModel &d : drams)
        res.dram += d.stats();
    res.rf.bankReads.assign(kNumRegBanks, 0);
    res.rf.bankWrites.assign(kNumRegBanks, 0);
    for (const auto &sm : sms) {
        const SmStats &s = sm->stats();
        // Event counts are additive across SMs ...
        res.issuedInstrs += s.issuedInstrs;
        res.threadInstrs += s.threadInstrs;
        res.metaEncounters += s.metaEncounters;
        res.metaDecoded += s.metaDecoded;
        res.scoreboardStalls += s.scoreboardStalls;
        res.allocStallEvents += s.allocStallEvents;
        res.throttleActiveCycles += s.throttleActiveCycles;
        res.bankConflictCycles += s.bankConflictCycles;
        res.spillEvents += s.spillEvents;
        res.spilledRegs += s.spilledRegs;
        res.refilledRegs += s.refilledRegs;
        res.wakeStallEvents += s.wakeStallEvents;
        res.icacheHits += s.icacheHits;
        res.icacheMisses += s.icacheMisses;
        res.dcacheHits += s.dcacheHits;
        res.dcacheMisses += s.dcacheMisses;
        // ... but high-water marks are not: summing per-SM peaks
        // would overstate GPU-wide pressure by up to the SM count
        // (they also feed allocationReductionPct, which must compare
        // a per-SM watermark against a per-SM reservation).
        res.peakResidentWarps =
            std::max(res.peakResidentWarps, s.peakResidentWarps);
        res.completedCtas += sm->completedCtas();

        const auto &fc = sm->flagCache().stats();
        res.flagCacheHits += fc.hits;
        res.flagCacheMisses += fc.misses;

        const auto &rf = sm->regs().file().stats();
        for (u32 b = 0; b < rf.bankReads.size() && b < kNumRegBanks; ++b) {
            res.rf.bankReads[b] += rf.bankReads[b];
            res.rf.bankWrites[b] += rf.bankWrites[b];
        }
        res.rf.allocations += rf.allocations;
        res.rf.releases += rf.releases;
        res.rf.wakeEvents += rf.wakeEvents;
        res.rf.activeSubarrayCycles += rf.activeSubarrayCycles;
        res.rf.sampledCycles += rf.sampledCycles;
        // Peak, same rule as peakResidentWarps.
        res.rf.allocWatermark =
            std::max(res.rf.allocWatermark, rf.allocWatermark);
        res.rf.touchedCount += rf.touchedCount;
        res.rf.crossWarpReuse += rf.crossWarpReuse;
        res.rf.sameWarpReuse += rf.sameWarpReuse;

        const auto &rn = sm->regs().renameStats();
        res.rename.lookups += rn.lookups;
        res.rename.updates += rn.updates;
        res.rename.spills += rn.spills;
        res.rename.refills += rn.refills;
        res.rename.mappedRegCycles += rn.mappedRegCycles;
        res.rename.sampledCycles += rn.sampledCycles;
    }
    return res;
}

SimResult
Gpu::run()
{
    u32 next_cta = 0;
    u32 completed = 0;
    Cycle cycle = 0;
    loopStats_ = LoopStats{};

    // Worker pool for SM stepping (coordinator participates, so N
    // workers means N+1 stepping threads; capped at one worker per
    // SM beyond the coordinator's share).
    std::unique_ptr<ThreadPool> pool;
    const u32 num_sms = static_cast<u32>(sms_.size());
    if (cfg_.numWorkerThreads > 0 && num_sms > 1) {
        pool = std::make_unique<ThreadPool>(
            std::min(cfg_.numWorkerThreads, num_sms - 1));
    }

    // Per-cycle trace hooks observe every cycle, so they force the
    // naive loop; results are bit-identical either way.
    const bool event_driven =
        cfg_.eventDriven && !hooks_.liveSample && !hooks_.regEvent;

    // Earliest cycle each SM's state can change (0 = step immediately).
    // Not vector<bool>: workers write distinct elements concurrently.
    std::vector<Cycle> next_wake(num_sms, 0);
    std::vector<u8> stepped(num_sms, 1);
    std::vector<u8> launched(num_sms, 0);

    auto dispatch = [&]() {
        // Round-robin CTAs onto SMs with free slots.  A failed
        // tryLaunchCta is side-effect free (RegisterManager::launchCta
        // rolls back its allocations and stats), so skipping the
        // retries during a quiescent window cannot change results.
        bool progress = true;
        while (progress && next_cta < launch_.gridCtas) {
            progress = false;
            for (u32 i = 0; i < num_sms; ++i) {
                if (next_cta >= launch_.gridCtas)
                    break;
                if (sms_[i]->tryLaunchCta(next_cta, cycle)) {
                    ++next_cta;
                    progress = true;
                    launched[i] = 1;
                }
            }
        }
    };

    dispatch();
    fatalIf(next_cta == 0,
            "no CTA could be launched: kernel exceeds the register file "
            "even for a single CTA in baseline mode");

    while (true) {
        bool busy = false;
        for (auto &sm : sms_)
            busy |= sm->busy();
        if (!busy && next_cta >= launch_.gridCtas)
            break;

        if (event_driven) {
            // Fleet fast-forward: when no SM can progress this cycle,
            // jump straight to the earliest fleet-wide wakeup and
            // reconstruct the skipped window's per-cycle counters.
            Cycle horizon = kNoEventCycle;
            for (u32 i = 0; i < num_sms; ++i)
                horizon = std::min(horizon, next_wake[i]);
            if (horizon > cycle) {
                const Cycle target = std::min(horizon, cfg_.maxCycles);
                const u64 k = target - cycle;
                for (auto &sm : sms_)
                    sm->skipCycles(k);
                loopStats_.skippedCycles += k;
                cycle = target;
                if (cycle >= cfg_.maxCycles) {
                    // A horizon of kNoEventCycle while CTAs are
                    // resident is a deadlock: reach the watchdog the
                    // same way the naive loop would.
                    panic("watchdog: kernel exceeded " +
                          std::to_string(cfg_.maxCycles) + " cycles");
                }
            }
            for (u32 i = 0; i < num_sms; ++i) {
                stepped[i] = next_wake[i] <= cycle;
                launched[i] = 0;
                if (!stepped[i])
                    ++loopStats_.smStepsElided;
            }
        }

        if (pool) {
            pool->parallelFor(num_sms, [this, cycle, &stepped](u32 i) {
                if (stepped[i])
                    sms_[i]->step(cycle);
                else
                    sms_[i]->skipCycles(1);
            });
        } else {
            for (u32 i = 0; i < num_sms; ++i) {
                if (stepped[i])
                    sms_[i]->step(cycle);
                else
                    sms_[i]->skipCycles(1);
            }
        }
        ++loopStats_.steppedCycles;

        // End-of-cycle barrier work, on the coordinator thread:
        // commit atomics in SM-id order (the order the sequential
        // loop would produce), then dispatch CTAs.
        for (auto &sm : sms_)
            sm->commitAtomics(cycle);

        if (next_cta < launch_.gridCtas)
            dispatch();

        if (event_driven) {
            // Stepped and freshly launched-into SMs have new state;
            // everyone else's wakeup estimate is still valid.
            for (u32 i = 0; i < num_sms; ++i)
                if (stepped[i] || launched[i])
                    next_wake[i] = sms_[i]->nextEventCycle(cycle);
        }

        ++cycle;
        if (cycle >= cfg_.maxCycles) {
            panic("watchdog: kernel exceeded " +
                  std::to_string(cfg_.maxCycles) + " cycles");
        }
    }

    completed = 0;
    for (const auto &sm : sms_)
        completed += sm->completedCtas();
    panicIf(completed != launch_.gridCtas,
            "not all CTAs completed at end of simulation");

    panicIf(gmem_.overlapViolations() > 0,
            gmem_.firstOverlap() + " (" +
                std::to_string(gmem_.overlapViolations()) +
                " conflicting accesses total)");

    // Per-SM loop profiles accumulate without sharing (one thread
    // steps an SM); summing here happens after the workers joined.
    if (hooks_.loopProfile != nullptr)
        for (const auto &sm : sms_)
            *hooks_.loopProfile += sm->loopProfile();

    return aggregateResults(sms_, drams_, cycle, prog_.numRegs);
}

} // namespace rfv
