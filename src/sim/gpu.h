/**
 * @file
 * Multi-SM GPU driver: CTA dispatch, the (optionally parallel) cycle
 * loop, and result aggregation.
 */
#ifndef RFV_SIM_GPU_H
#define RFV_SIM_GPU_H

#include <memory>

#include "common/thread_pool.h"
#include "sim/sm.h"

namespace rfv {

/**
 * Aggregated outcome of one kernel run.
 *
 * Counter-aggregation rules (see aggregateResults): most fields are
 * *additive* — per-SM event counts that sum to a GPU-wide total.
 * Fields documented as *peak* are per-SM high-water marks and are
 * aggregated with max() across SMs: summing a high-water mark over
 * SMs would overstate GPU pressure by up to the SM count.  The peak
 * fields are peakResidentWarps and PhysRegFileStats::allocWatermark.
 */
struct SimResult {
    Cycle cycles = 0;
    u64 issuedInstrs = 0;
    u64 threadInstrs = 0;
    u64 metaEncounters = 0;
    u64 metaDecoded = 0;
    u64 flagCacheHits = 0;
    u64 flagCacheMisses = 0;
    u64 scoreboardStalls = 0;
    u64 allocStallEvents = 0;
    u64 throttleActiveCycles = 0;
    u64 bankConflictCycles = 0;
    u64 spillEvents = 0;
    u64 spilledRegs = 0;
    u64 refilledRegs = 0;
    u64 wakeStallEvents = 0;
    u64 icacheHits = 0;
    u64 icacheMisses = 0;
    u64 dcacheHits = 0;
    u64 dcacheMisses = 0;
    /** Peak: max over SMs of each SM's resident-warp high-water mark. */
    u32 peakResidentWarps = 0;
    u32 completedCtas = 0;

    PhysRegFileStats rf;     //!< summed over SMs (allocWatermark: max)
    RenameStats rename;      //!< summed over SMs
    DramStats dram;          //!< summed over per-SM channels

    /** Kernel footprint, for allocation-reduction metrics. */
    u32 regsPerWarp = 0;

    /** Field-wise equality (sequential-vs-parallel determinism). */
    bool operator==(const SimResult &) const = default;

    /**
     * Dynamic code increase from metadata in percent:
     * decoded metadata / issued regular instructions.
     */
    double
    dynamicCodeIncreasePct() const
    {
        return issuedInstrs
                   ? 100.0 * static_cast<double>(metaDecoded) /
                         static_cast<double>(issuedInstrs)
                   : 0.0;
    }

    /**
     * Register allocation reduction vs. the compiler reservation at
     * peak residency (paper Fig. 10): 1 - watermark/reserved.  Both
     * sides are per-SM peaks (max over SMs), so this is the reduction
     * on the most-occupied SM — for the homogeneous SMs modeled here
     * that matches the paper's per-core figure.
     */
    double
    allocationReductionPct() const
    {
        const double reserved =
            static_cast<double>(peakResidentWarps) * regsPerWarp;
        if (reserved <= 0)
            return 0.0;
        const double pct =
            100.0 * (1.0 - static_cast<double>(rf.allocWatermark) /
                               reserved);
        return pct > 0 ? pct : 0.0;
    }
};

/**
 * Cycle-loop accounting for the event-driven fast-forward.  Kept out
 * of SimResult on purpose: SimResult::operator== is the
 * naive-vs-event equivalence oracle and must compare architectural
 * results only, while these counters describe how much work the loop
 * itself avoided.
 */
struct LoopStats {
    /** Loop iterations that actually stepped at least one SM. */
    u64 steppedCycles = 0;
    /** Cycles fast-forwarded fleet-wide (no SM could progress). */
    u64 skippedCycles = 0;
    /** Per-SM step() calls replaced by skipCycles(1) on quiet SMs. */
    u64 smStepsElided = 0;

    bool operator==(const LoopStats &) const = default;
};

/**
 * One GPU instance bound to a compiled kernel and its memory.
 *
 * The cycle loop steps every SM once per cycle.  With
 * GpuConfig::numWorkerThreads > 0 the steps run on a ThreadPool with
 * a barrier per cycle; DRAM is sharded one channel per SM, atomics
 * commit at the barrier in SM-id order, and CTA dispatch stays on the
 * coordinator thread, so parallel runs produce a SimResult
 * bit-identical to sequential runs (enforced by
 * tests/test_parallel_equivalence.cc).
 *
 * With GpuConfig::eventDriven (the default) the loop additionally
 * skips cycles no SM can use: each SM reports the earliest cycle its
 * state can change (Sm::nextEventCycle), quiet SMs elide their step,
 * and when every SM is quiet the clock jumps straight to the
 * fleet-wide minimum with per-cycle counters reconstructed by
 * Sm::skipCycles.  Results stay bit-identical to the naive loop
 * (enforced by tests/test_event_equivalence.cc); per-cycle TraceHooks
 * automatically fall back to the naive loop.
 */
class Gpu {
  public:
    /**
     * @p sharedDecode lets batch drivers reuse one immutable
     * DecodeCache across many Gpu instances (it must have been built
     * for the same program under a decode-equivalent GpuConfig); null
     * builds a private one, as one-shot runs always did.
     */
    Gpu(const GpuConfig &cfg, const Program &prog,
        const LaunchParams &launch, GlobalMemory &gmem,
        TraceHooks hooks = {}, const DecodeCache *sharedDecode = nullptr);

    /** Run the kernel to completion; throws on watchdog expiry. */
    SimResult run();

    /** SMs (read-only access for tests). */
    const Sm &sm(u32 i) const { return *sms_[i]; }

    /** Cycle-loop accounting of the last run(). */
    const LoopStats &loopStats() const { return loopStats_; }

  private:
    GpuConfig cfg_;
    const Program &prog_;
    LaunchParams launch_;
    GlobalMemory &gmem_;
    TraceHooks hooks_;
    std::unique_ptr<DecodeCache> ownedDecode_; //!< built when none shared
    const DecodeCache &decode_; //!< shared read-only by every SM
    std::vector<DramModel> drams_; //!< one channel per SM (sharded)
    std::vector<std::unique_ptr<Sm>> sms_;
    LoopStats loopStats_;
};

/**
 * Aggregate SM/DRAM statistics into a SimResult (shared by Gpu::run
 * and tests).  Additive counters are summed over SMs and channels;
 * peak counters (peakResidentWarps, rf.allocWatermark) take the max
 * over SMs — see the SimResult field documentation.
 */
SimResult aggregateResults(const std::vector<std::unique_ptr<Sm>> &sms,
                           const std::vector<DramModel> &drams,
                           Cycle cycles, u32 regsPerWarp);

} // namespace rfv

#endif // RFV_SIM_GPU_H
