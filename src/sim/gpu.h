/**
 * @file
 * Multi-SM GPU driver: CTA dispatch, the cycle loop, and result
 * aggregation.
 */
#ifndef RFV_SIM_GPU_H
#define RFV_SIM_GPU_H

#include <memory>

#include "sim/sm.h"

namespace rfv {

/** Aggregated outcome of one kernel run. */
struct SimResult {
    Cycle cycles = 0;
    u64 issuedInstrs = 0;
    u64 threadInstrs = 0;
    u64 metaEncounters = 0;
    u64 metaDecoded = 0;
    u64 flagCacheHits = 0;
    u64 flagCacheMisses = 0;
    u64 scoreboardStalls = 0;
    u64 allocStallEvents = 0;
    u64 throttleActiveCycles = 0;
    u64 bankConflictCycles = 0;
    u64 spillEvents = 0;
    u64 spilledRegs = 0;
    u64 refilledRegs = 0;
    u64 wakeStallEvents = 0;
    u64 icacheHits = 0;
    u64 icacheMisses = 0;
    u64 dcacheHits = 0;
    u64 dcacheMisses = 0;
    u32 peakResidentWarps = 0;
    u32 completedCtas = 0;

    PhysRegFileStats rf;     //!< summed over SMs
    RenameStats rename;      //!< summed over SMs
    DramStats dram;

    /** Kernel footprint, for allocation-reduction metrics. */
    u32 regsPerWarp = 0;

    /**
     * Dynamic code increase from metadata in percent:
     * decoded metadata / issued regular instructions.
     */
    double
    dynamicCodeIncreasePct() const
    {
        return issuedInstrs
                   ? 100.0 * static_cast<double>(metaDecoded) /
                         static_cast<double>(issuedInstrs)
                   : 0.0;
    }

    /**
     * Register allocation reduction vs. the compiler reservation at
     * peak residency (paper Fig. 10): 1 - watermark/reserved.
     */
    double
    allocationReductionPct() const
    {
        const double reserved =
            static_cast<double>(peakResidentWarps) * regsPerWarp;
        if (reserved <= 0)
            return 0.0;
        const double pct =
            100.0 * (1.0 - static_cast<double>(rf.allocWatermark) /
                               reserved);
        return pct > 0 ? pct : 0.0;
    }
};

/** One GPU instance bound to a compiled kernel and its memory. */
class Gpu {
  public:
    Gpu(const GpuConfig &cfg, const Program &prog,
        const LaunchParams &launch, GlobalMemory &gmem,
        TraceHooks hooks = {});

    /** Run the kernel to completion; throws on watchdog expiry. */
    SimResult run();

    /** SMs (read-only access for tests). */
    const Sm &sm(u32 i) const { return *sms_[i]; }

  private:
    GpuConfig cfg_;
    const Program &prog_;
    LaunchParams launch_;
    GlobalMemory &gmem_;
    TraceHooks hooks_;
    DramModel dram_;
    std::vector<std::unique_ptr<Sm>> sms_;
};

/**
 * Convenience wrapper: aggregate SM/DRAM statistics into a SimResult
 * (shared by Gpu::run and tests).
 */
SimResult aggregateResults(const std::vector<std::unique_ptr<Sm>> &sms,
                           const DramModel &dram, Cycle cycles,
                           u32 regsPerWarp);

} // namespace rfv

#endif // RFV_SIM_GPU_H
