#include "sim/icache.h"

#include "common/error.h"

namespace rfv {

ICache::ICache(u32 total_instrs, u32 line_instrs)
    : numLines_(line_instrs ? total_instrs / line_instrs : 0),
      lineInstrs_(line_instrs ? line_instrs : 1)
{
    reset();
}

void
ICache::reset()
{
    tags_.assign(numLines_, kInvalidPc);
}

bool
ICache::access(u32 pc)
{
    if (numLines_ == 0) {
        ++stats_.hits; // disabled: ideal instruction supply
        return true;
    }
    const u32 line = pc / lineInstrs_;
    const u32 idx = line % numLines_;
    if (tags_[idx] == line) {
        ++stats_.hits;
        return true;
    }
    tags_[idx] = line;
    ++stats_.misses;
    return false;
}

} // namespace rfv
