#include "sim/icache.h"

#include "common/error.h"

namespace rfv {

ICache::ICache(u32 total_instrs, u32 line_instrs)
    : numLines_(line_instrs ? total_instrs / line_instrs : 0),
      lineInstrs_(line_instrs ? line_instrs : 1)
{
    reset();
}

void
ICache::reset()
{
    tags_.assign(numLines_, kInvalidPc);
}

} // namespace rfv
