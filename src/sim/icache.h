/**
 * @file
 * Per-SM instruction cache model.
 *
 * A direct-mapped line cache over the instruction stream.  Metadata
 * instructions occupy lines like regular instructions, so the static
 * code growth from pir/pbr insertion (paper Fig. 13) costs real fetch
 * misses when the kernel outgrows the cache.  Misses block the fetching
 * warp for a fixed refill latency.
 */
#ifndef RFV_SIM_ICACHE_H
#define RFV_SIM_ICACHE_H

#include <vector>

#include "common/types.h"

namespace rfv {

/** Hit/miss counters. */
struct ICacheStats {
    u64 hits = 0;
    u64 misses = 0;
};

/** Direct-mapped instruction cache indexed by instruction pc. */
class ICache {
  public:
    /**
     * @param totalInstrs  capacity in instructions (0 disables: every
     *                     access hits)
     * @param lineInstrs   instructions per line (64-bit words; a 64 B
     *                     line holds 8)
     */
    ICache(u32 totalInstrs, u32 lineInstrs);

    /**
     * Probe for the line containing @p pc; fills the line on a miss.
     * @return true on hit.
     */
    bool
    access(u32 pc)
    {
        if (numLines_ == 0) {
            ++stats_.hits; // disabled: ideal instruction supply
            return true;
        }
        const u32 line = pc / lineInstrs_;
        const u32 idx = line % numLines_;
        if (tags_[idx] == line) {
            ++stats_.hits;
            return true;
        }
        tags_[idx] = line;
        ++stats_.misses;
        return false;
    }

    /** Drop all lines (kernel switch). */
    void reset();

    const ICacheStats &stats() const { return stats_; }

  private:
    u32 numLines_;
    u32 lineInstrs_;
    std::vector<u32> tags_; //!< resident line address, kInvalidPc empty
    ICacheStats stats_;
};

} // namespace rfv

#endif // RFV_SIM_ICACHE_H
