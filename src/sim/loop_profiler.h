/**
 * @file
 * Per-phase wall-clock breakdown of the simulation loop.
 *
 * When a LoopProfile is installed via TraceHooks::loopProfile, every
 * Sm::step() attributes its wall-clock time to four phases —
 * fetch (icache + metadata decode), schedule (queue maintenance,
 * scoreboard/alloc checks, throttle), execute (functional SIMT lane
 * execution + timing), commit (post-issue normalization, sampling,
 * atomic commit) — so a speedup claim about the hot loop can say
 * *which* phase got faster instead of quoting one aggregate number.
 * Profiles are per-Sm (no sharing, no locks; one thread steps an SM)
 * and summed by Gpu::run() after the worker threads have joined.
 */
#ifndef RFV_SIM_LOOP_PROFILER_H
#define RFV_SIM_LOOP_PROFILER_H

#include <chrono>
#include <cstdio>
#include <string>

#include "common/types.h"

namespace rfv {

/** Accumulated per-phase wall-clock cost of the simulation loop. */
struct LoopProfile {
    u64 steps = 0;      //!< Sm::step() calls attributed
    u64 fetchNs = 0;    //!< icache access + pir/pbr metadata decode
    u64 scheduleNs = 0; //!< queues, masks, scoreboard/alloc/throttle
    u64 executeNs = 0;  //!< functional lane execution + timing model
    u64 commitNs = 0;   //!< normalization, sampling, atomic commit

    u64
    totalNs() const
    {
        return fetchNs + scheduleNs + executeNs + commitNs;
    }

    LoopProfile &
    operator+=(const LoopProfile &o)
    {
        steps += o.steps;
        fetchNs += o.fetchNs;
        scheduleNs += o.scheduleNs;
        executeNs += o.executeNs;
        commitNs += o.commitNs;
        return *this;
    }
};

/** Monotonic wall-clock in nanoseconds. */
inline u64
profileNowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Accumulates the enclosing scope's duration into @p acc; pass
 * nullptr to compile down to nothing when profiling is off.
 */
class ScopedNs {
  public:
    explicit ScopedNs(u64 *acc)
        : acc_(acc), t0_(acc ? profileNowNs() : 0)
    {
    }
    ~ScopedNs()
    {
        if (acc_ != nullptr)
            *acc_ += profileNowNs() - t0_;
    }
    ScopedNs(const ScopedNs &) = delete;
    ScopedNs &operator=(const ScopedNs &) = delete;

  private:
    u64 *acc_;
    u64 t0_;
};

/** Render the breakdown as an aligned table (ns/step and % of step). */
inline std::string
formatLoopProfile(const LoopProfile &p)
{
    const u64 total = p.totalNs();
    if (p.steps == 0 || total == 0)
        return "  (no stepped cycles profiled)\n";
    const auto row = [&](const char *name, u64 ns) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %-9s %10.1f ns/step  %5.1f%%\n",
                      name, static_cast<double>(ns) /
                                static_cast<double>(p.steps),
                      100.0 * static_cast<double>(ns) /
                          static_cast<double>(total));
        return std::string(buf);
    };
    return row("fetch", p.fetchNs) + row("schedule", p.scheduleNs) +
           row("execute", p.executeNs) + row("commit", p.commitNs) +
           row("total", total);
}

} // namespace rfv

#endif // RFV_SIM_LOOP_PROFILER_H
