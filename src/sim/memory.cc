#include "sim/memory.h"

#include <algorithm>

namespace rfv {

namespace {

constexpr u64 kNeverWritten = 0;

u64
packWriter(u32 sm_id, Cycle now)
{
    return ((now + 1) << 16) | sm_id;
}

u32
writerSm(u64 packed)
{
    return static_cast<u32>(packed & 0xffffu);
}

Cycle
writerCycle(u64 packed)
{
    return (packed >> 16) - 1;
}

} // namespace

GlobalMemory::GlobalMemory(u32 bytes)
{
    fatalIf(bytes % 4 != 0, "global memory size must be word aligned");
    words_.assign(bytes / 4, 0);
}

void
GlobalMemory::enableOverlapCheck()
{
    // make_unique value-initializes: every entry starts kNeverWritten.
    lastWrite_ = std::make_unique<std::atomic<u64>[]>(words_.size());
    lastRead_ = std::make_unique<std::atomic<u64>[]>(words_.size());
}

void
GlobalMemory::recordViolation(u32 word, u32 sm_id, u32 other_sm,
                              Cycle now) const
{
    // relaxed: monotonic statistic; the descriptive string below is
    // published by the acq_rel CAS, not by this counter.
    violations_.fetch_add(1, std::memory_order_relaxed);
    bool expected = false;
    if (firstRecorded_.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        const_cast<GlobalMemory *>(this)->first_ =
            "cross-SM overlap: word " + std::to_string(word) +
            " written by SM " + std::to_string(other_sm) +
            " and accessed by SM " + std::to_string(sm_id) +
            " in cycle " + std::to_string(now) +
            " (non-atomic CTA outputs must be disjoint)";
    }
}

void
GlobalMemory::checkRead(u32 word, u32 sm_id, Cycle now) const
{
    // relaxed: the checker only compares (sm, cycle) tags; atomicity
    // keeps the tag words tear-free, and cross-thread visibility is
    // provided by the simulator's own per-cycle barriers — the check
    // needs no ordering of its own.
    lastRead_[word].store(packWriter(sm_id, now),
                          std::memory_order_relaxed);
    // relaxed: see above.
    const u64 prev = lastWrite_[word].load(std::memory_order_relaxed);
    if (prev != kNeverWritten && writerSm(prev) != sm_id &&
        writerCycle(prev) == now) {
        recordViolation(word, sm_id, writerSm(prev), now);
    }
}

void
GlobalMemory::checkWrite(u32 word, u32 sm_id, Cycle now)
{
    // relaxed: tag bookkeeping only; see checkRead for the argument.
    const u64 prev = lastWrite_[word].exchange(
        packWriter(sm_id, now), std::memory_order_relaxed);
    if (prev != kNeverWritten && writerSm(prev) != sm_id &&
        writerCycle(prev) == now) {
        recordViolation(word, sm_id, writerSm(prev), now);
    }
    // relaxed: tag bookkeeping only; see checkRead for the argument.
    const u64 read = lastRead_[word].load(std::memory_order_relaxed);
    if (read != kNeverWritten && writerSm(read) != sm_id &&
        writerCycle(read) == now) {
        recordViolation(word, sm_id, writerSm(read), now);
    }
}

std::string
GlobalMemory::firstOverlap() const
{
    if (!firstRecorded_.load(std::memory_order_acquire))
        return "";
    return first_;
}

u32
coalescedTransactions(const std::vector<u32> &byte_addrs)
{
    std::vector<u32> scratch;
    return coalescedTransactions(byte_addrs, scratch);
}

u32
coalescedTransactions(const std::vector<u32> &byte_addrs,
                      std::vector<u32> &scratch)
{
    if (byte_addrs.empty())
        return 0;
    scratch.clear();
    scratch.reserve(byte_addrs.size());
    for (u32 a : byte_addrs)
        scratch.push_back(a / 128);
    std::sort(scratch.begin(), scratch.end());
    scratch.erase(std::unique(scratch.begin(), scratch.end()),
                  scratch.end());
    return static_cast<u32>(scratch.size());
}

} // namespace rfv
