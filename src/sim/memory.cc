#include "sim/memory.h"

#include <algorithm>

namespace rfv {

GlobalMemory::GlobalMemory(u32 bytes)
{
    fatalIf(bytes % 4 != 0, "global memory size must be word aligned");
    words_.assign(bytes / 4, 0);
}

u32
GlobalMemory::load(u32 byte_addr) const
{
    panicIf(byte_addr % 4 != 0, "unaligned global load");
    const u32 w = byte_addr / 4;
    panicIf(w >= words_.size(), "global load out of bounds at byte " +
                                    std::to_string(byte_addr));
    return words_[w];
}

void
GlobalMemory::store(u32 byte_addr, u32 value)
{
    panicIf(byte_addr % 4 != 0, "unaligned global store");
    const u32 w = byte_addr / 4;
    panicIf(w >= words_.size(), "global store out of bounds at byte " +
                                    std::to_string(byte_addr));
    words_[w] = value;
}

u32
coalescedTransactions(const std::vector<u32> &byte_addrs)
{
    if (byte_addrs.empty())
        return 0;
    std::vector<u32> segments;
    segments.reserve(byte_addrs.size());
    for (u32 a : byte_addrs)
        segments.push_back(a / 128);
    std::sort(segments.begin(), segments.end());
    segments.erase(std::unique(segments.begin(), segments.end()),
                   segments.end());
    return static_cast<u32>(segments.size());
}

} // namespace rfv
