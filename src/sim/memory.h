/**
 * @file
 * Functional global memory and a bandwidth/latency DRAM timing model.
 */
#ifndef RFV_SIM_MEMORY_H
#define RFV_SIM_MEMORY_H

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace rfv {

/**
 * Flat, word-granular global memory shared by the whole GPU.
 * Addresses are byte addresses and must be 4-byte aligned.
 *
 * Cross-SM safety contract (see docs/ARCHITECTURE.md §3.4): CTAs may
 * freely read shared input data, but the words a CTA writes
 * non-atomically must not be accessed by CTAs on *other* SMs in the
 * same cycle — workloads keep CTA outputs disjoint, and cross-CTA
 * communication goes through atomics (which the GPU commits at the
 * end-of-cycle barrier in SM-id order).  Under that contract the
 * word array needs no locking even with SMs stepping on worker
 * threads, and parallel runs are bit-identical to sequential ones.
 * enableOverlapCheck() arms a debug checker that detects violations.
 */
class GlobalMemory {
  public:
    explicit GlobalMemory(u32 bytes);

    u32 sizeBytes() const { return static_cast<u32>(words_.size()) * 4; }

    /** Unchecked access (host setup/verify, atomic commit phase). */
    u32 load(u32 byteAddr) const
    {
        return words_[wordIndex(byteAddr, "load")];
    }
    void store(u32 byteAddr, u32 value)
    {
        words_[wordIndex(byteAddr, "store")] = value;
    }

    /**
     * SM-side access: identical to load/store, but when the overlap
     * checker is armed it records the access and flags same-cycle
     * conflicts with writes from other SMs.
     */
    u32 load(u32 byteAddr, u32 smId, Cycle now) const
    {
        const u32 w = wordIndex(byteAddr, "load");
        if (lastWrite_) [[unlikely]]
            checkRead(w, smId, now);
        return words_[w];
    }
    void store(u32 byteAddr, u32 value, u32 smId, Cycle now)
    {
        const u32 w = wordIndex(byteAddr, "store");
        if (lastWrite_) [[unlikely]]
            checkWrite(w, smId, now);
        words_[w] = value;
    }

    /** Convenience word accessors for workload setup/verification. */
    u32 word(u32 index) const { return words_.at(index); }
    void setWord(u32 index, u32 value) { words_.at(index) = value; }

    /** Arm the debug cross-SM overlap checker (off by default). */
    void enableOverlapCheck();
    bool overlapCheckEnabled() const { return lastWrite_ != nullptr; }

    /** Same-cycle cross-SM conflicts observed so far. */
    u64 overlapViolations() const
    {
        // relaxed: monotonic statistic, read for reporting after the
        // run's worker threads have joined.
        return violations_.load(std::memory_order_relaxed);
    }

    /** Description of the first conflict ("" if none). */
    std::string firstOverlap() const;

  private:
    u32
    wordIndex(u32 byteAddr, const char *what) const
    {
        panicIf(byteAddr % 4 != 0,
                std::string("unaligned global ") + what);
        const u32 w = byteAddr / 4;
        panicIf(w >= words_.size(), std::string("global ") + what +
                                        " out of bounds at byte " +
                                        std::to_string(byteAddr));
        return w;
    }
    void checkRead(u32 word, u32 smId, Cycle now) const;
    void checkWrite(u32 word, u32 smId, Cycle now);
    void recordViolation(u32 word, u32 smId, u32 otherSm,
                         Cycle now) const;

    std::vector<u32> words_;

    // Overlap checker: per word, the last non-atomic writer (and the
    // last reader) packed as ((cycle + 1) << 16) | smId; 0 = never
    // accessed by an SM.  Entries are relaxed atomics purely so the
    // checker itself stays race-free when the access pattern under
    // test is not.  Read tracking keeps one reader per word (enough
    // to catch the common one-reader/one-writer conflict; a
    // best-effort debug aid, not a proof of absence).
    std::unique_ptr<std::atomic<u64>[]> lastWrite_;
    std::unique_ptr<std::atomic<u64>[]> lastRead_;
    mutable std::atomic<u64> violations_{0};
    mutable std::atomic<bool> firstRecorded_{false};
    std::string first_;
};

/** DRAM statistics. */
struct DramStats {
    u64 requests = 0;     //!< warp-level memory operations
    u64 transactions = 0; //!< 128-byte segments transferred
    u64 queueCycles = 0;  //!< total cycles requests waited for service

    bool operator==(const DramStats &) const = default;

    /** Accumulate another channel's counters (all additive). */
    DramStats &
    operator+=(const DramStats &o)
    {
        requests += o.requests;
        transactions += o.transactions;
        queueCycles += o.queueCycles;
        return *this;
    }
};

/**
 * One DRAM channel: a single service pipe with fixed per-128B
 * transaction occupancy and a base access latency.  Contention
 * appears as queueing delay — which is what lets CTA throttling
 * *improve* memory-bound kernels (paper's MUM observation, Fig. 11a).
 *
 * The Gpu shards DRAM one channel per SM so SMs never share mutable
 * timing state.  Each channel's service interval is scaled by the SM
 * count, so aggregate bandwidth is fixed and every SM owns a fair
 * share of it.  Channel stats are summed into SimResult::dram by
 * aggregateResults().
 */
class DramModel {
  public:
    DramModel(u32 baseLatency, u32 cyclesPerTransaction)
        : baseLatency_(baseLatency),
          cyclesPerTransaction_(cyclesPerTransaction)
    {
    }

    /**
     * Issue a request of @p transactions segments at @p now.
     * @return completion cycle.
     */
    Cycle
    access(Cycle now, u32 transactions)
    {
        const Cycle start = std::max(now, nextFree_);
        nextFree_ = start + static_cast<Cycle>(transactions) *
                                cyclesPerTransaction_;
        ++stats_.requests;
        stats_.transactions += transactions;
        stats_.queueCycles += start - now;
        return nextFree_ + baseLatency_;
    }

    const DramStats &stats() const { return stats_; }

  private:
    u32 baseLatency_;
    u32 cyclesPerTransaction_;
    Cycle nextFree_ = 0;
    DramStats stats_;
};

/** Count distinct 128-byte segments touched by a set of addresses. */
u32 coalescedTransactions(const std::vector<u32> &byteAddrs);

/**
 * Allocation-free variant for per-cycle hot paths: dedupes segment ids
 * in @p scratch (clobbered; capacity reused across calls so the cost
 * is one reserve per Sm, not one allocation per memory instruction).
 */
u32 coalescedTransactions(const std::vector<u32> &byteAddrs,
                          std::vector<u32> &scratch);

} // namespace rfv

#endif // RFV_SIM_MEMORY_H
