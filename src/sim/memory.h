/**
 * @file
 * Functional global memory and a bandwidth/latency DRAM timing model.
 */
#ifndef RFV_SIM_MEMORY_H
#define RFV_SIM_MEMORY_H

#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace rfv {

/**
 * Flat, word-granular global memory shared by the whole GPU.
 * Addresses are byte addresses and must be 4-byte aligned.
 */
class GlobalMemory {
  public:
    explicit GlobalMemory(u32 bytes);

    u32 sizeBytes() const { return static_cast<u32>(words_.size()) * 4; }

    u32 load(u32 byteAddr) const;
    void store(u32 byteAddr, u32 value);

    /** Convenience word accessors for workload setup/verification. */
    u32 word(u32 index) const { return words_.at(index); }
    void setWord(u32 index, u32 value) { words_.at(index) = value; }

  private:
    std::vector<u32> words_;
};

/** DRAM statistics. */
struct DramStats {
    u64 requests = 0;     //!< warp-level memory operations
    u64 transactions = 0; //!< 128-byte segments transferred
    u64 queueCycles = 0;  //!< total cycles requests waited for service
};

/**
 * GPU-wide DRAM channel: a single service pipe with fixed per-128B
 * transaction occupancy and a base access latency.  Contention appears
 * as queueing delay — which is what lets CTA throttling *improve*
 * memory-bound kernels (paper's MUM observation on Fig. 11a).
 */
class DramModel {
  public:
    DramModel(u32 baseLatency, u32 cyclesPerTransaction)
        : baseLatency_(baseLatency),
          cyclesPerTransaction_(cyclesPerTransaction)
    {
    }

    /**
     * Issue a request of @p transactions segments at @p now.
     * @return completion cycle.
     */
    Cycle
    access(Cycle now, u32 transactions)
    {
        const Cycle start = std::max(now, nextFree_);
        nextFree_ = start + static_cast<Cycle>(transactions) *
                                cyclesPerTransaction_;
        ++stats_.requests;
        stats_.transactions += transactions;
        stats_.queueCycles += start - now;
        return nextFree_ + baseLatency_;
    }

    const DramStats &stats() const { return stats_; }

  private:
    u32 baseLatency_;
    u32 cyclesPerTransaction_;
    Cycle nextFree_ = 0;
    DramStats stats_;
};

/** Count distinct 128-byte segments touched by a set of addresses. */
u32 coalescedTransactions(const std::vector<u32> &byteAddrs);

} // namespace rfv

#endif // RFV_SIM_MEMORY_H
