/**
 * @file
 * Simulator configuration, launch geometry, and trace hooks.
 */
#ifndef RFV_SIM_SIM_CONFIG_H
#define RFV_SIM_SIM_CONFIG_H

#include <functional>

#include "regfile/config.h"

namespace rfv {

/** Warp scheduler policy. */
enum class SchedulerPolicy : u8 {
    kTwoLevel,   //!< paper baseline: small ready queue + pending queue
    kRoundRobin, //!< loose round-robin over all resident warps
};

/** GPU-wide microarchitectural parameters (Fermi-like defaults). */
struct GpuConfig {
    u32 numSms = 4;          //!< SM count (paper: 16; scaled runs use 4)
    u32 maxCtasPerSm = 8;    //!< concurrent CTA slot limit
    u32 maxWarpsPerSm = 48;  //!< warp context limit
    u32 issuePerCycle = 2;   //!< dual schedulers, one instr each
    u32 readyQueueSize = 6;  //!< two-level scheduler active set
    SchedulerPolicy scheduler = SchedulerPolicy::kTwoLevel;

    // Instruction cache (per SM).  Metadata instructions occupy lines,
    // so pir/pbr code growth costs real fetch misses.
    u32 icacheInstrs = 1024;    //!< capacity (8 KB of 64-bit words)
    u32 icacheLineInstrs = 8;   //!< 64 B lines
    u32 icacheMissLatency = 80; //!< refill stall in cycles

    // Optional L1 data cache (timing-only; 0 lines = disabled, the
    // paper-faithful configuration where spills pay DRAM latency).
    u32 dcacheLines = 0;
    u32 dcacheLineBytes = 128;
    u32 dcacheHitLatency = 30;

    // Execution latencies (cycles).
    u32 aluLatency = 4;
    u32 mulLatency = 6;
    u32 fpuLatency = 6;
    u32 sfuLatency = 16;
    u32 sharedLatency = 24;
    u32 globalLatency = 250; //!< DRAM base latency

    // Memory system.
    u32 mshrsPerSm = 48;             //!< in-flight loads per SM
    u32 dramCyclesPerTransaction = 2; //!< GPU-wide service interval
    double clockGhz = 0.7;           //!< Fermi-like core clock

    /** Extra dependent-instruction latency for the renaming lookup. */
    u32 renamingLatency = 1;

    /** One-cycle fetch bubble when a pir misses the flag cache. */
    bool flagMissBubble = true;

    /** Cycles a freshly refilled warp is protected from re-spilling. */
    u32 spillCooldown = 200;

    /** Watchdog: abort if a kernel exceeds this many cycles. */
    Cycle maxCycles = 50'000'000;

    /**
     * Event-driven cycle loop (default): each SM reports the earliest
     * cycle at which its state can change, quiescent SMs elide their
     * per-cycle step, and when no SM can make progress the clock
     * fast-forwards to the fleet-wide minimum with per-cycle stats
     * (idle/throttle/sampling counters, LRR rotation) reconstructed
     * arithmetically.  Results are bit-identical to the naive
     * step-every-cycle loop, which is kept as the equivalence oracle
     * (tests/test_event_equivalence.cc) and used automatically when
     * per-cycle TraceHooks are installed.
     */
    bool eventDriven = true;

    /**
     * Worker threads stepping SMs concurrently inside Gpu::run()
     * (0 = sequential, the default).  Parallel runs are bit-identical
     * to sequential runs: DRAM channels are per-SM, global-memory
     * atomics commit at the end-of-cycle barrier in SM-id order, and
     * CTA dispatch stays on the coordinator thread between barriers.
     * TraceHooks callbacks fire from worker threads when this is
     * nonzero, so hooks must be thread-safe (or run sequentially).
     */
    u32 numWorkerThreads = 0;

    /**
     * Debug mode: detect same-cycle conflicting global-memory
     * accesses from different SMs (the one access pattern that would
     * break sequential/parallel equivalence).  Workloads are expected
     * to keep non-atomic CTA outputs disjoint; violations panic at
     * the end of the run.
     */
    bool checkSmOverlap = false;

    RegFileConfig regFile;

    void
    validate() const
    {
        fatalIf(numSms == 0, "need at least one SM");
        fatalIf(issuePerCycle == 0, "need issue bandwidth");
        fatalIf(readyQueueSize == 0, "ready queue cannot be empty");
        fatalIf(maxWarpsPerSm == 0 || maxCtasPerSm == 0,
                "need warp and CTA slots");
        regFile.validate();
    }
};

/** Kernel launch geometry. */
struct LaunchParams {
    u32 gridCtas = 1;       //!< CTAs in the grid
    u32 threadsPerCta = 32; //!< threads per CTA (any positive count)
    u32 concCtasPerSm = 8;  //!< Table-1 "Conc. CTAs/Core" occupancy cap

    u32
    warpsPerCta() const
    {
        return (threadsPerCta + kWarpSize - 1) / kWarpSize;
    }

    bool operator==(const LaunchParams &) const = default;
};

/** Register definition/release event kinds (Fig. 2 traces). */
enum class RegEvent : u8 { kDef, kRelease };

struct LoopProfile;

/** Optional instrumentation hooks; leave empty for fast runs. */
struct TraceHooks {
    /**
     * Periodic live-register sample:
     * (cycle, mappedRegs, allocatedBaselineEquivalent).
     */
    std::function<void(Cycle, u32, u32)> liveSample;
    /** Sampling period in cycles (0 disables). */
    Cycle samplePeriod = 0;

    /**
     * Per-register event: (cycle, smId, warpSlot, archReg, event).
     * Fired on every definition (first write of a value instance) and
     * release.
     */
    std::function<void(Cycle, u32, u32, u32, RegEvent)> regEvent;

    /**
     * When non-null, Sm::step() attributes its wall-clock time to
     * per-phase buckets (fetch/schedule/execute/commit) and Gpu::run()
     * sums every SM's buckets into this profile when the run ends.
     * Unlike the per-cycle hooks above this does NOT force the naive
     * loop — the event-driven loop is profiled as it actually runs
     * (elided cycles cost no time and appear in no bucket).
     */
    LoopProfile *loopProfile = nullptr;
};

} // namespace rfv

#endif // RFV_SIM_SIM_CONFIG_H
