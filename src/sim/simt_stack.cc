#include "sim/simt_stack.h"

#include "common/error.h"

namespace rfv {

void
SimtStack::reset(u32 initial_mask)
{
    entries_.clear();
    if (initial_mask)
        entries_.push_back({0, kInvalidPc, initial_mask});
}

void
SimtStack::branch(u32 taken_pc, u32 fall_pc, u32 taken_mask, u32 rpc)
{
    panicIf(entries_.empty(), "branch of a finished warp");
    SimtEntry &top = entries_.back();
    const u32 active = top.mask;
    panicIf((taken_mask & ~active) != 0,
            "taken mask exceeds the active mask");
    const u32 fall_mask = active & ~taken_mask;

    if (fall_mask == 0) {
        advance(taken_pc);
        return;
    }
    if (taken_mask == 0) {
        advance(fall_pc);
        return;
    }

    // Divergence: current frame becomes the reconvergence continuation.
    top.pc = rpc;
    // If the compiler could not find a reconvergence point (both sides
    // run to exit), there is no continuation frame to keep.
    if (rpc == kInvalidPc)
        entries_.pop_back();
    entries_.push_back({fall_pc, rpc, fall_mask});
    entries_.push_back({taken_pc, rpc, taken_mask});
    // A side whose entry pc is already the reconvergence point (e.g. a
    // branch straight to the join block) merges immediately; executing
    // it with a partial mask would run the join — and its pbr releases
    // — before the other side.
    mergeAtReconvergence();
}

void
SimtStack::exitLanes(u32 mask)
{
    for (auto &entry : entries_)
        entry.mask &= ~mask;
    // Drop empty frames wherever they are; order among survivors is
    // preserved.
    std::vector<SimtEntry> kept;
    kept.reserve(entries_.size());
    for (const auto &entry : entries_)
        if (entry.mask)
            kept.push_back(entry);
    entries_ = std::move(kept);
    mergeAtReconvergence();
}

} // namespace rfv
