/**
 * @file
 * Per-warp SIMT reconvergence stack (PDOM scheme).
 *
 * Entries carry (pc, reconvergence pc, active mask).  On a divergent
 * branch the current entry is re-pointed at the reconvergence pc and
 * one entry per side is pushed; an entry whose pc reaches its rpc is
 * popped, merging lanes back.
 */
#ifndef RFV_SIM_SIMT_STACK_H
#define RFV_SIM_SIMT_STACK_H

#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace rfv {

/** One reconvergence stack frame. */
struct SimtEntry {
    u32 pc = 0;
    u32 rpc = kInvalidPc;
    u32 mask = 0;
};

/** The reconvergence stack of one warp. */
class SimtStack {
  public:
    /** Reset for a fresh warp with @p initialMask active lanes. */
    void reset(u32 initialMask);

    /** True once every lane has exited. */
    bool done() const { return entries_.empty(); }

    /** Current fetch pc. */
    u32
    pc() const
    {
        panicIf(entries_.empty(), "pc of a finished warp");
        return entries_.back().pc;
    }

    /** Current active mask. */
    u32
    activeMask() const
    {
        panicIf(entries_.empty(), "mask of a finished warp");
        return entries_.back().mask;
    }

    /** Sequentially advance to @p nextPc (merges at reconvergence). */
    void
    advance(u32 nextPc)
    {
        panicIf(entries_.empty(), "advance of a finished warp");
        entries_.back().pc = nextPc;
        mergeAtReconvergence();
    }

    /**
     * Take a (possibly divergent) branch.  @p takenMask must be a
     * subset of the active mask; @p rpc is the compiler-provided
     * reconvergence pc (kInvalidPc when the paths never reconverge
     * before exit, in which case lanes simply run to exit).
     */
    void branch(u32 takenPc, u32 fallPc, u32 takenMask, u32 rpc);

    /** Retire @p mask lanes (exit); drops empty frames. */
    void exitLanes(u32 mask);

    /** Current stack depth (tests/debug). */
    u32 depth() const { return static_cast<u32>(entries_.size()); }

  private:
    void
    mergeAtReconvergence()
    {
        while (!entries_.empty()) {
            const SimtEntry &top = entries_.back();
            if (top.pc != top.rpc || top.rpc == kInvalidPc)
                break;
            entries_.pop_back();
        }
    }

    std::vector<SimtEntry> entries_;
};

} // namespace rfv

#endif // RFV_SIM_SIMT_STACK_H
