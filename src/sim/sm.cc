#include "sim/sm.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <bit>

#include "common/bit_utils.h"
#include "compiler/liveness.h"
#include "isa/metadata.h"

namespace rfv {

namespace {

/** Interpret a 32-bit word as float. */
float
asFloat(u32 bits)
{
    return std::bit_cast<float>(bits);
}

u32
asBits(float f)
{
    return std::bit_cast<u32>(f);
}

/** Warp slots an SM provisions for this kernel. */
u32
computeMaxWarpSlots(const GpuConfig &cfg, const LaunchParams &launch)
{
    const u32 wpc = launch.warpsPerCta();
    if (wpc == 0 || wpc > cfg.maxWarpsPerSm)
        return 1;
    const u32 conc = std::min({launch.concCtasPerSm, cfg.maxCtasPerSm,
                               cfg.maxWarpsPerSm / wpc});
    return std::max(1u, conc * wpc);
}

/** RFV_TRACE_RELEASE=1 prints warp-0 register releases to stderr. */
bool
traceReleases()
{
    // Read-only probe of an env var nothing in the process mutates,
    // latched once under the magic-static lock.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    static const bool enabled = std::getenv("RFV_TRACE_RELEASE");
    return enabled;
}

bool
compare(CmpOp op, u32 a, u32 b)
{
    const i32 sa = static_cast<i32>(a);
    const i32 sb = static_cast<i32>(b);
    switch (op) {
      case CmpOp::kEq: return a == b;
      case CmpOp::kNe: return a != b;
      case CmpOp::kLt: return sa < sb;
      case CmpOp::kLe: return sa <= sb;
      case CmpOp::kGt: return sa > sb;
      case CmpOp::kGe: return sa >= sb;
    }
    panic("bad cmp");
}

} // namespace

Sm::Sm(u32 sm_id, const GpuConfig &cfg, const Program &prog,
       const DecodeCache &decode, const LaunchParams &launch,
       GlobalMemory &gmem, DramModel &dram, const TraceHooks &hooks)
    : smId_(sm_id), cfg_(cfg), prog_(prog), decode_(decode),
      launch_(launch), gmem_(gmem), dram_(dram), hooks_(hooks),
      warpsPerCta_(launch.warpsPerCta()), maxConcCtas_(0),
      mgr_(cfg.regFile, computeMaxWarpSlots(cfg, launch)),
      flagCache_(cfg.regFile.flagCacheEntries),
      icache_(cfg.icacheInstrs, cfg.icacheLineInstrs),
      dcache_(cfg.dcacheLines, cfg.dcacheLineBytes),
      effectiveReadyQueue_(cfg.scheduler == SchedulerPolicy::kTwoLevel
                               ? cfg.readyQueueSize
                               : cfg.maxWarpsPerSm),
      twoLevel_(cfg.scheduler == SchedulerPolicy::kTwoLevel)
{
    fatalIf(warpsPerCta_ == 0, "CTA needs at least one warp");
    fatalIf(warpsPerCta_ > cfg_.maxWarpsPerSm,
            "CTA has more warps than an SM can hold");
    maxConcCtas_ = std::min({launch.concCtasPerSm, cfg_.maxCtasPerSm,
                             cfg_.maxWarpsPerSm / warpsPerCta_});
    fatalIf(maxConcCtas_ == 0, "SM cannot hold even one CTA");

    const u32 warp_slots = maxConcCtas_ * warpsPerCta_;
    warps_.assign(warp_slots, Warp{});
    ctaSlots_.assign(maxConcCtas_, CtaSlot{});
    sharedMem_.assign(maxConcCtas_,
                      std::vector<u32>(ceilDiv(prog.sharedMemBytes, 4), 0));
    localMem_.assign(warp_slots,
                     std::vector<WarpValue>(prog.localMemSlots));

    bankPortUse_.assign(cfg.regFile.numBanks, 0);
    mgr_.configureKernel(prog.numRegs, prog.numExemptRegs);

    // Pre-size the hot-path containers so steady-state simulation never
    // allocates.
    readyQueue_.reserve(effectiveReadyQueue_ + 1);
    completions_.reserve(2 * warp_slots + 8);
    sleepHeap_.reserve(warp_slots);
    throttleParked_.reserve(warp_slots);
    issueOrder_.reserve(effectiveReadyQueue_ + 1);
    addrScratch_.reserve(kWarpSize);
    segScratch_.reserve(kWarpSize);
}

u32
Sm::residentWarps() const
{
    u32 n = 0;
    for (const auto &cta : ctaSlots_)
        if (cta.active)
            n += cta.numWarps;
    return n;
}

bool
Sm::tryLaunchCta(u32 global_cta_id, Cycle now)
{
    i32 slot = -1;
    for (u32 s = 0; s < maxConcCtas_; ++s) {
        if (!ctaSlots_[s].active) {
            slot = static_cast<i32>(s);
            break;
        }
    }
    if (slot < 0)
        return false;
    const u32 s = static_cast<u32>(slot);
    const u32 first = firstWarpSlot(s);

    if (!mgr_.launchCta(s, first, warpsPerCta_))
        return false; // register file cannot hold this CTA yet

    ctaSlots_[s].active = true;
    ctaSlots_[s].globalId = global_cta_id;
    ctaSlots_[s].numWarps = warpsPerCta_;
    ctaSlots_[s].warpsFinished = 0;
    ctaSlots_[s].barrierArrived = 0;
    std::fill(sharedMem_[s].begin(), sharedMem_[s].end(), 0);

    for (u32 i = 0; i < warpsPerCta_; ++i) {
        Warp &w = warps_[first + i];
        w = Warp{};
        w.valid = true;
        w.ctaSlot = s;
        w.warpInCta = i;
        w.globalCtaId = global_cta_id;
        const u32 threads_before = i * kWarpSize;
        const u32 lanes = std::min(
            kWarpSize, launch_.threadsPerCta - threads_before);
        w.stack.reset(static_cast<u32>(lowMask(lanes)));
        w.blockedUntil = now;
        for (auto &mem : localMem_[first + i])
            mem.fill(0);
        pendWarp(first + i);
    }
    ++residentCtas_;
    stats_.peakResidentWarps =
        std::max(stats_.peakResidentWarps, residentWarps());
    refillReadyQueue();
    return true;
}

void
Sm::pendWarp(u32 warp_idx)
{
    warps_[warp_idx].loc = WarpLoc::kPending;
    pendingQueue_.push_back(warp_idx);
}

void
Sm::removeFromReady(u32 warp_idx)
{
    auto it = std::find(readyQueue_.begin(), readyQueue_.end(), warp_idx);
    panicIf(it == readyQueue_.end(), "ready-queue membership desync");
    readyQueue_.erase(it);
}

void
Sm::sleepWarp(u32 warp_idx)
{
    Warp &w = warps_[warp_idx];
    w.loc = WarpLoc::kSleeping;
    sleepHeap_.push_back({w.blockedUntil, warp_idx});
    std::push_heap(sleepHeap_.begin(), sleepHeap_.end(),
                   std::greater<SleepEntry>{});
}

void
Sm::refillReadyQueue()
{
    while (readyQueue_.size() < effectiveReadyQueue_ &&
           !pendingQueue_.empty()) {
        const u32 wi = pendingQueue_.front();
        pendingQueue_.pop_front();
        Warp &w = warps_[wi];
        if (w.loc != WarpLoc::kPending)
            continue; // stale queue entry
        if (!w.valid || w.finished) {
            w.loc = WarpLoc::kNone;
            continue;
        }
        w.loc = WarpLoc::kReady;
        readyQueue_.push_back(wi);
    }
}

void
Sm::demoteWarp(u32 warp_idx)
{
    Warp &w = warps_[warp_idx];
    if (w.loc == WarpLoc::kReady)
        removeFromReady(warp_idx);
    if (!w.valid || w.finished) {
        w.loc = WarpLoc::kNone;
        return;
    }
    pendWarp(warp_idx);
}

/**
 * Restore the invariant that every ready warp is runnable soon: warps
 * blocked kSleepThresholdCycles or more into the future move to the
 * sleep heap and freed slots refill from the pending queue, repeating
 * until stable.  Afterwards a cycle with no due completion, no due
 * sleeper and no ready warp past its blockedUntil is a provable no-op,
 * which is what makes nextEventCycle()'s window sound.
 */
void
Sm::normalizeReadyQueue(Cycle now)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (u32 i = 0; i < readyQueue_.size();) {
            const u32 wi = readyQueue_[i];
            Warp &w = warps_[wi];
            if (!w.valid || w.finished) {
                readyQueue_.erase(readyQueue_.begin() + i);
                w.loc = WarpLoc::kNone;
                changed = true;
                continue;
            }
            if (w.blockedUntil > now &&
                w.blockedUntil - now >= kSleepThresholdCycles) {
                readyQueue_.erase(readyQueue_.begin() + i);
                sleepWarp(wi);
                changed = true;
                continue;
            }
            ++i;
        }
        const u32 before = static_cast<u32>(readyQueue_.size());
        refillReadyQueue();
        if (readyQueue_.size() != before)
            changed = true;
    }
}

void
Sm::wakeSleepers(Cycle now)
{
    while (!sleepHeap_.empty() && sleepHeap_.front().wake <= now) {
        std::pop_heap(sleepHeap_.begin(), sleepHeap_.end(),
                      std::greater<SleepEntry>{});
        const SleepEntry e = sleepHeap_.back();
        sleepHeap_.pop_back();
        Warp &w = warps_[e.warp];
        if (w.loc != WarpLoc::kSleeping)
            continue; // stale entry
        if (!w.valid || w.finished) {
            w.loc = WarpLoc::kNone;
            continue;
        }
        if (w.blockedUntil > now) {
            // The stall was extended while asleep (spill victim): keep
            // sleeping until the new wakeup cycle.
            sleepHeap_.push_back({w.blockedUntil, e.warp});
            std::push_heap(sleepHeap_.begin(), sleepHeap_.end(),
                          std::greater<SleepEntry>{});
            continue;
        }
        pendWarp(e.warp);
    }
}

void
Sm::pushCompletion(const Completion &c)
{
    completions_.push_back(c);
    std::push_heap(completions_.begin(), completions_.end(),
                   std::greater<Completion>{});
}

void
Sm::drainCompletions(Cycle now)
{
    while (!completions_.empty() && completions_.front().time <= now) {
        std::pop_heap(completions_.begin(), completions_.end(),
                      std::greater<Completion>{});
        const Completion c = completions_.back();
        completions_.pop_back();
        Warp &w = warps_[c.warp];
        w.pendingRegs &= ~c.regMask;
        w.pendingPreds &= ~c.predMask;
        if (c.isLoad) {
            panicIf(w.pendingLoads == 0, "load completion underflow");
            --w.pendingLoads;
            panicIf(inFlightLoads_ == 0, "MSHR underflow");
            --inFlightLoads_;
        }
    }
}

Cycle
Sm::scoreboardWake(u32 warp_idx, u64 need_regs, u32 need_preds,
                   Cycle now) const
{
    // Every pending scoreboard bit has exactly one in-flight completion
    // (a second write to a pending register is itself a hazard), so the
    // last matching completion is the exact cycle the hazard clears.
    Cycle wake = 0;
    bool found = false;
    for (const Completion &c : completions_) {
        if (c.warp != warp_idx)
            continue;
        if ((c.regMask & need_regs) || (c.predMask & need_preds)) {
            wake = std::max(wake, c.time);
            found = true;
        }
    }
    panicIf(!found, "scoreboard hazard with no pending completion");
    return std::max(wake, now + 1);
}

Cycle
Sm::mshrWake(Cycle now) const
{
    // MSHRs free only when a load completes; the earliest in-flight
    // load completion is the first cycle an entry can possibly free.
    Cycle wake = kNoEventCycle;
    for (const Completion &c : completions_)
        if (c.isLoad)
            wake = std::min(wake, c.time);
    panicIf(wake == kNoEventCycle, "MSHRs full with no load in flight");
    return std::max(wake, now + 1);
}

void
Sm::unparkThrottled()
{
    for (u32 wi : throttleParked_) {
        Warp &w = warps_[wi];
        if (w.loc != WarpLoc::kParked)
            continue;
        if (!w.valid || w.finished) {
            w.loc = WarpLoc::kNone;
            continue;
        }
        pendWarp(wi);
    }
    throttleParked_.clear();
}

void
Sm::evaluateThrottle()
{
    const bool was_active = throttleActive_;
    const u32 was_cta = throttleCta_;
    throttleActive_ = false;
    if (cfg_.regFile.mode == RegFileMode::kVirtualized) {
        const u32 free = mgr_.freeRegs();
        u32 min_balance = ~0u;
        u32 argmin = 0;
        bool any = false;
        const u32 cta_max = warpsPerCta_ * prog_.numRegs;
        for (u32 s = 0; s < maxConcCtas_; ++s) {
            if (!ctaSlots_[s].active)
                continue;
            const u32 held = mgr_.ctaAllocated(s);
            const u32 balance = cta_max > held ? cta_max - held : 0;
            if (!any || balance < min_balance) {
                min_balance = balance;
                argmin = s;
            }
            any = true;
        }
        if (any && free <= min_balance) {
            throttleActive_ = true;
            throttleCta_ = argmin;
        }
    }
    // Warps parked by the throttle wait on its *signature*: release
    // them whenever the throttle turns off or picks a different CTA.
    const bool changed = throttleActive_ != was_active ||
                         (throttleActive_ && throttleCta_ != was_cta);
    if (changed && !throttleParked_.empty())
        unparkThrottled();
}

std::pair<Cycle, bool>
Sm::dramLoadTiming(const std::vector<u32> &byte_addrs, Cycle now)
{
    // Count distinct line-sized segments on the reusable scratch
    // buffer; probe the L1 for each.  Only the *count* of misses
    // matters for timing, so no miss list is materialized.
    if (dcache_.enabled()) {
        segScratch_.clear();
        segScratch_.reserve(byte_addrs.size());
        for (u32 a : byte_addrs)
            segScratch_.push_back(a / cfg_.dcacheLineBytes);
        std::sort(segScratch_.begin(), segScratch_.end());
        segScratch_.erase(
            std::unique(segScratch_.begin(), segScratch_.end()),
            segScratch_.end());
        u32 missing = 0;
        for (u32 seg : segScratch_) {
            if (dcache_.access(seg * cfg_.dcacheLineBytes))
                ++stats_.dcacheHits;
            else {
                ++stats_.dcacheMisses;
                ++missing;
            }
        }
        if (missing == 0)
            return {now + cfg_.dcacheHitLatency, false};
        return {dram_.access(now, missing), true};
    }
    const u32 txns = coalescedTransactions(byte_addrs, segScratch_);
    return {dram_.access(now, txns), true};
}

WarpValue
Sm::readOperand(u32 warp_idx, const Operand &op)
{
    WarpValue out{};
    if (op.isImm()) {
        out.fill(op.value);
    } else if (op.isReg()) {
        // Reads only happen on the issue path with a non-empty exec
        // mask, so a lint trap here is a real architectural read of a
        // released or never-written register, not a predicated-off one.
        mgr_.lintCheckRead(warp_idx, op.value);
        out = mgr_.values(warp_idx, op.value);
    }
    return out;
}

void
Sm::writeDest(u32 warp_idx, u32 reg, const WarpValue &value, u32 exec_mask,
              Cycle now)
{
    const bool was_def =
        hooks_.regEvent && exec_mask != 0;
    WarpValue &dst = mgr_.values(warp_idx, reg);
    for (u32 l = 0; l < kWarpSize; ++l)
        if ((exec_mask >> l) & 1)
            dst[l] = value[l];
    mgr_.countOperandWrite(warp_idx, reg);
    if (was_def)
        hooks_.regEvent(now, smId_, warp_idx, reg, RegEvent::kDef);
}

bool
Sm::processMetadata(Warp &w, u32 warp_idx, Cycle now)
{
    while (!w.stack.done()) {
        const u32 pc = w.stack.pc();
        panicIf(pc >= prog_.code.size(), "pc ran past end of kernel");
        const Instr &ins = prog_.code[pc];
        const StaticDecode &dec = decode_.at(pc);
        if (!dec.meta)
            return true;
        ++stats_.metaEncounters;
        if (ins.op == Opcode::kPbr) {
            ++stats_.metaDecoded; // pbr is always fetched and decoded
#ifndef NDEBUG
            {
                const auto ref = decodePbr(ins.metaPayload);
                assert(ref.size() == dec.pbrCount);
                for (u32 i = 0; i < dec.pbrCount; ++i)
                    assert(ref[i] == dec.pbrRegs[i]);
            }
#endif
            for (u32 i = 0; i < dec.pbrCount; ++i) {
                const u32 r = dec.pbrRegs[i];
                if (traceReleases() && warp_idx == 0)
                    std::fprintf(stderr, "pbr release r%u at pc %u\n",
                                 r, pc);
                if (hooks_.regEvent &&
                    mgr_.state(warp_idx, r) == RegState::kMapped) {
                    hooks_.regEvent(now, smId_, warp_idx, r,
                                    RegEvent::kRelease);
                }
                mgr_.releaseReg(warp_idx, w.ctaSlot, r);
            }
            w.stack.advance(pc + 1);
        } else { // kPir
            const bool hit = flagCache_.access(pc);
            w.stack.advance(pc + 1);
            if (!hit) {
                ++stats_.metaDecoded;
                if (cfg_.flagMissBubble) {
                    w.blockedUntil = now + 1;
                    return false;
                }
            }
        }
    }
    return true;
}

Sm::IssueOutcome
Sm::attemptIssue(u32 warp_idx, Cycle now)
{
    Warp &w = warps_[warp_idx];
    // Terminal / parked states are handled by the issue loop's
    // post-attempt rule, which inspects the warp flags directly.
    if (!w.valid || w.finished)
        return IssueOutcome::kSkipped;
    if (w.atBarrier)
        return IssueOutcome::kSkipped;
    if (w.blockedUntil > now)
        return IssueOutcome::kSkipped;

    if (mgr_.hasSpilledRegs(warp_idx)) {
        // Long-duration condition: rotate out of the ready set so
        // other warps (notably the throttle-chosen CTA's) can issue.
        tryRefill(w, warp_idx, now);
        return IssueOutcome::kDemoted;
    }

    // Instruction fetch: a miss blocks the warp for the refill.  A
    // paid miss delivers its instruction even if the line has been
    // evicted since (no fetch-retry livelock under thrashing).
    if (!w.stack.done()) {
        const u32 fetch_pc = w.stack.pc();
        if (w.paidFetchPc == fetch_pc) {
            w.paidFetchPc = kInvalidPc;
        } else if (icache_.access(fetch_pc)) {
            ++stats_.icacheHits;
        } else {
            ++stats_.icacheMisses;
            w.paidFetchPc = fetch_pc;
            w.blockedUntil = now + cfg_.icacheMissLatency;
            return IssueOutcome::kSkipped;
        }
    }

    if (!processMetadata(w, warp_idx, now))
        return IssueOutcome::kSkipped;
    if (w.stack.done()) {
        finishWarp(warp_idx, now);
        return IssueOutcome::kDemoted;
    }

    const u32 pc = w.stack.pc();
    const Instr &ins = prog_.code[pc];
    const StaticDecode &dec = decode_.at(pc);
    currentPc_ = pc; // diagnostic context for panics

#ifndef NDEBUG
    // Predecode table vs. on-demand decode (release builds rely on the
    // one-time cross-check at DecodeCache construction).
    assert(dec.needRegs == (useMask(ins) | defMask(ins)));
    assert(dec.defRegs == defMask(ins));
    assert(dec.cls == opInfo(ins.op).cls);
#endif

    if (throttleActive_ && w.ctaSlot != throttleCta_) {
        // Throttled warps must not occupy ready-queue slots, or the
        // chosen CTA's warps could starve in the pending queue.  Park
        // them until the throttle signature changes; counted once per
        // park episode.
        ++stats_.throttleSkips;
        return IssueOutcome::kParked;
    }

    // Scoreboard: block until the exact cycle the last hazard-matching
    // in-flight completion retires (counted once per stall episode).
    if ((w.pendingRegs & dec.needRegs) ||
        (w.pendingPreds & dec.needPreds)) {
        ++stats_.scoreboardStalls;
        w.blockedUntil =
            scoreboardWake(warp_idx, dec.needRegs, dec.needPreds, now);
        if (w.pendingLoads > 0)
            return IssueOutcome::kDemoted; // long-latency stall
        return IssueOutcome::kSkipped;
    }

    // MSHR availability for long-latency loads: an entry cannot free
    // before the earliest in-flight load completes.
    if (dec.dramLoad && inFlightLoads_ >= cfg_.mshrsPerSm) {
        w.blockedUntil = mshrWake(now);
        return IssueOutcome::kSkipped;
    }

    // Destination register allocation (renaming).
    if (ins.dst != kNoReg) {
        const auto res =
            mgr_.ensureMappedForWrite(warp_idx, w.ctaSlot,
                                      static_cast<u32>(ins.dst));
        if (!res.ok) {
            ++stats_.allocStallEvents;
            attemptSpill(warp_idx,
                         static_cast<u32>(ins.dst) % cfg_.regFile.numBanks,
                         now);
            // Transient bank shortages resolve within a few cycles as
            // other warps release registers, so retry from the ready
            // queue first; only a persistent stall rotates the warp
            // out (required for forward progress under throttling).
            if (++w.allocStallStreak < 32)
                return IssueOutcome::kSkipped;
            w.allocStallStreak = 0;
            return IssueOutcome::kDemoted;
        }
        w.allocStallStreak = 0;
        if (res.wakeCycles > 0) {
            ++stats_.wakeStallEvents;
            w.blockedUntil = now + res.wakeCycles;
            return IssueOutcome::kSkipped;
        }
    }

    // Guard mask.
    try {
    const u32 active = w.stack.activeMask();
    u32 exec_mask = active;
    if (ins.guardPred != kNoPred) {
        const u32 pm = w.predBits[ins.guardPred];
        exec_mask &= ins.guardNeg ? ~pm : pm;
    }

    // Operand collection: each bank serves one warp-wide operand per
    // cycle, shared by every instruction issued this cycle.  Extra
    // readers of a bank delay this warp's next issue.
    {
        u32 conflicts = 0;
        for (u32 k = 0; k < dec.numSrcRegs; ++k) {
            const Operand &src = ins.src[dec.srcRegIdx[k]];
            // Lint before the bank lookup: physOf panics on unmapped
            // registers, and the lint's released/never-written message
            // is the precise diagnosis of why the mapping is absent.
            if (exec_mask != 0)
                mgr_.lintCheckRead(warp_idx, src.value);
            mgr_.countOperandRead(warp_idx, src.value);
            const u32 bank = mgr_.physBankOf(warp_idx, src.value);
            conflicts += bankPortUse_[bank];
            ++bankPortUse_[bank];
        }
        if (conflicts) {
            stats_.bankConflictCycles += conflicts;
            w.blockedUntil = std::max<Cycle>(w.blockedUntil,
                                             now + conflicts);
        }
    }

    execute(w, warp_idx, ins, dec, exec_mask, now);

    ++stats_.issuedInstrs;
    stats_.threadInstrs += popcount64(exec_mask);

    // pir releases: operands die after this read.
    for (u32 k = 0; k < 3; ++k) {
        if (!((ins.pirMask >> k) & 1))
            continue;
        const u32 r = ins.src[k].value;
        if (traceReleases() && warp_idx == 0)
            std::fprintf(stderr, "pir release r%u at pc %u\n", r, pc);
        if (hooks_.regEvent &&
            mgr_.state(warp_idx, r) == RegState::kMapped) {
            hooks_.regEvent(now, smId_, warp_idx, r, RegEvent::kRelease);
        }
        mgr_.releaseReg(warp_idx, w.ctaSlot, r);
    }
    } catch (const InternalError &e) {
        panic(std::string(e.what()) + " [pc " + std::to_string(pc) +
              ": " + formatInstr(ins) + "]");
    }
    return IssueOutcome::kIssued;
}

void
Sm::execute(Warp &w, u32 warp_idx, const Instr &ins,
            const StaticDecode &dec, u32 exec_mask, Cycle now)
{
    const u32 pc = w.stack.pc();
    bool advanced = false;

    u64 wb_regs = 0;
    u32 wb_preds = 0;
    bool is_dram_load = false;
    Cycle completion = now + dec.warpLatency;

    auto lanes = [exec_mask](auto &&fn) {
        for (u32 l = 0; l < kWarpSize; ++l)
            if ((exec_mask >> l) & 1)
                fn(l);
    };

    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kMov:
      case Opcode::kIAdd:
      case Opcode::kISub:
      case Opcode::kIMul:
      case Opcode::kIMad:
      case Opcode::kIMin:
      case Opcode::kIMax:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kFAdd:
      case Opcode::kFMul:
      case Opcode::kFFma:
      case Opcode::kFRcp: {
        if (exec_mask) {
            const WarpValue a = readOperand(warp_idx, ins.src[0]);
            const WarpValue b = readOperand(warp_idx, ins.src[1]);
            const WarpValue c = readOperand(warp_idx, ins.src[2]);
            WarpValue out{};
            lanes([&](u32 l) {
                switch (ins.op) {
                  case Opcode::kMov: out[l] = a[l]; break;
                  case Opcode::kIAdd: out[l] = a[l] + b[l]; break;
                  case Opcode::kISub: out[l] = a[l] - b[l]; break;
                  case Opcode::kIMul: out[l] = a[l] * b[l]; break;
                  case Opcode::kIMad:
                    out[l] = a[l] * b[l] + c[l];
                    break;
                  case Opcode::kIMin:
                    out[l] = static_cast<u32>(
                        std::min(static_cast<i32>(a[l]),
                                 static_cast<i32>(b[l])));
                    break;
                  case Opcode::kIMax:
                    out[l] = static_cast<u32>(
                        std::max(static_cast<i32>(a[l]),
                                 static_cast<i32>(b[l])));
                    break;
                  case Opcode::kShl: out[l] = a[l] << (b[l] & 31); break;
                  case Opcode::kShr: out[l] = a[l] >> (b[l] & 31); break;
                  case Opcode::kAnd: out[l] = a[l] & b[l]; break;
                  case Opcode::kOr: out[l] = a[l] | b[l]; break;
                  case Opcode::kXor: out[l] = a[l] ^ b[l]; break;
                  case Opcode::kFAdd:
                    out[l] = asBits(asFloat(a[l]) + asFloat(b[l]));
                    break;
                  case Opcode::kFMul:
                    out[l] = asBits(asFloat(a[l]) * asFloat(b[l]));
                    break;
                  case Opcode::kFFma:
                    out[l] = asBits(asFloat(a[l]) * asFloat(b[l]) +
                                    asFloat(c[l]));
                    break;
                  case Opcode::kFRcp:
                    out[l] = asBits(1.0f / asFloat(a[l]));
                    break;
                  default: panic("unreachable alu op");
                }
            });
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
        }
        break;
      }
      case Opcode::kSetP: {
        if (exec_mask) {
            const WarpValue a = readOperand(warp_idx, ins.src[0]);
            const WarpValue b = readOperand(warp_idx, ins.src[1]);
            u32 bits = w.predBits[ins.dstPred];
            lanes([&](u32 l) {
                const bool v = compare(ins.cmp, a[l], b[l]);
                bits = v ? (bits | (1u << l)) : (bits & ~(1u << l));
            });
            w.predBits[ins.dstPred] = bits;
            wb_preds = 1u << ins.dstPred;
        }
        break;
      }
      case Opcode::kPSel: {
        if (exec_mask) {
            const WarpValue a = readOperand(warp_idx, ins.src[0]);
            const WarpValue b = readOperand(warp_idx, ins.src[1]);
            const u32 sel = w.predBits[ins.dstPred];
            WarpValue out{};
            lanes([&](u32 l) {
                out[l] = ((sel >> l) & 1) ? a[l] : b[l];
            });
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
        }
        break;
      }
      case Opcode::kS2R: {
        if (exec_mask) {
            WarpValue out{};
            lanes([&](u32 l) {
                switch (ins.sreg) {
                  case SpecialReg::kTid:
                    out[l] = w.warpInCta * kWarpSize + l;
                    break;
                  case SpecialReg::kCtaId: out[l] = w.globalCtaId; break;
                  case SpecialReg::kNTid:
                    out[l] = launch_.threadsPerCta;
                    break;
                  case SpecialReg::kNCtaId:
                    out[l] = launch_.gridCtas;
                    break;
                  case SpecialReg::kLaneId: out[l] = l; break;
                  case SpecialReg::kWarpId: out[l] = w.warpInCta; break;
                }
            });
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
        }
        break;
      }
      case Opcode::kLdGlobal:
      case Opcode::kLdShared: {
        if (exec_mask) {
            const WarpValue addr = readOperand(warp_idx, ins.src[0]);
            const u32 off = ins.src[1].value;
            WarpValue out{};
            addrScratch_.clear();
            lanes([&](u32 l) {
                const u32 a = addr[l] + off;
                if (ins.op == Opcode::kLdGlobal) {
                    out[l] = gmem_.load(a, smId_, now);
                    addrScratch_.push_back(a);
                } else {
                    const u32 word = a / 4;
                    auto &shm = sharedMem_[w.ctaSlot];
                    panicIf(a % 4 != 0, "unaligned shared load");
                    panicIf(word >= shm.size(),
                            "shared load out of bounds");
                    out[l] = shm[word];
                }
            });
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
            if (ins.op == Opcode::kLdGlobal) {
                const auto timing = dramLoadTiming(addrScratch_, now);
                completion = timing.first;
                is_dram_load = timing.second;
            }
        }
        break;
      }
      case Opcode::kLdLocal: {
        if (exec_mask) {
            const WarpValue &mem = localMem_[warp_idx][ins.localSlot];
            WarpValue out{};
            lanes([&](u32 l) { out[l] = mem[l]; });
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
            // One coalesced warp-wide transaction per local slot; the
            // synthetic address keys the slot into the data cache
            // (bit 31 separates the local space from global).
            const u32 synth =
                0x80000000u |
                static_cast<u32>((warp_idx * localMem_[warp_idx].size() +
                                  ins.localSlot) *
                                 128u);
            addrScratch_.assign(1, synth);
            const auto timing = dramLoadTiming(addrScratch_, now);
            completion = timing.first;
            is_dram_load = timing.second;
        }
        break;
      }
      case Opcode::kAtomAdd: {
        if (exec_mask) {
            const WarpValue addr = readOperand(warp_idx, ins.src[0]);
            const u32 off = ins.src[1].value;
            const WarpValue val = readOperand(warp_idx, ins.src[2]);
            addrScratch_.clear();
            lanes([&](u32 l) { addrScratch_.push_back(addr[l] + off); });
            // The memory side effect is deferred to commitAtomics():
            // the Gpu commits all SMs' atomics at the end-of-cycle
            // barrier in SM-id order, so cross-SM interleaving is
            // identical whether SMs step sequentially or on worker
            // threads.  Lanes commit in lane order (deterministic
            // intra-warp atomicity); cross-warp order follows issue
            // order.  Timing is charged here: addresses are known and
            // the DRAM channel is per-SM.
            pendingAtomics_.push_back({warp_idx,
                                       static_cast<u32>(ins.dst),
                                       exec_mask, off, addr, val});
            wb_regs = dec.defRegs;
            // Read-modify-write: roughly twice the transactions.
            const u32 txns =
                2 * coalescedTransactions(addrScratch_, segScratch_);
            completion = dram_.access(now, txns);
            is_dram_load = true;
        }
        break;
      }
      case Opcode::kStGlobal:
      case Opcode::kStShared: {
        if (exec_mask) {
            const WarpValue addr = readOperand(warp_idx, ins.src[0]);
            const u32 off = ins.src[1].value;
            const WarpValue val = readOperand(warp_idx, ins.src[2]);
            addrScratch_.clear();
            lanes([&](u32 l) {
                const u32 a = addr[l] + off;
                if (ins.op == Opcode::kStGlobal) {
                    gmem_.store(a, val[l], smId_, now);
                    addrScratch_.push_back(a);
                } else {
                    const u32 word = a / 4;
                    auto &shm = sharedMem_[w.ctaSlot];
                    panicIf(a % 4 != 0, "unaligned shared store");
                    panicIf(word >= shm.size(),
                            "shared store out of bounds");
                    shm[word] = val[l];
                }
            });
            if (ins.op == Opcode::kStGlobal) {
                // Fire-and-forget: charge bandwidth, no warp stall.
                dram_.access(now, coalescedTransactions(addrScratch_,
                                                        segScratch_));
            }
        }
        break;
      }
      case Opcode::kStLocal: {
        if (exec_mask) {
            const WarpValue val = readOperand(warp_idx, ins.src[0]);
            WarpValue &mem = localMem_[warp_idx][ins.localSlot];
            lanes([&](u32 l) { mem[l] = val[l]; });
            // Local memory is cached write-back/write-allocate on
            // Fermi: with the L1 enabled a store hit costs no DRAM
            // bandwidth (dirty evictions are not modeled).
            const u32 synth =
                0x80000000u |
                static_cast<u32>((warp_idx * localMem_[warp_idx].size() +
                                  ins.localSlot) *
                                 128u);
            if (dcache_.enabled()) {
                if (dcache_.access(synth))
                    ++stats_.dcacheHits;
                else {
                    ++stats_.dcacheMisses;
                    dram_.access(now, 1);
                }
            } else {
                dram_.access(now, 1);
            }
        }
        break;
      }
      case Opcode::kBra: {
        const u32 taken = exec_mask;
        w.stack.branch(ins.target, pc + 1, taken, ins.reconvPc);
        advanced = true;
        break;
      }
      case Opcode::kExit: {
        w.stack.exitLanes(exec_mask);
        advanced = true;
        if (w.stack.done()) {
            finishWarp(warp_idx, now);
        } else if (w.stack.pc() == pc) {
            w.stack.advance(pc + 1);
        }
        break;
      }
      case Opcode::kBar: {
        w.atBarrier = true;
        CtaSlot &cta = ctaSlots_[w.ctaSlot];
        ++cta.barrierArrived;
        w.stack.advance(pc + 1);
        advanced = true;
        const u32 live = cta.numWarps - cta.warpsFinished;
        if (cta.barrierArrived >= live)
            releaseBarrier(w.ctaSlot);
        break;
      }
      case Opcode::kPir:
      case Opcode::kPbr:
        panic("metadata reached execute()");
    }

    if (!advanced && !w.finished)
        w.stack.advance(pc + 1);

    if (wb_regs || wb_preds || is_dram_load) {
        w.pendingRegs |= wb_regs;
        w.pendingPreds |= wb_preds;
        pushCompletion({completion, warp_idx, wb_regs, wb_preds,
                        is_dram_load});
        if (is_dram_load) {
            ++w.pendingLoads;
            ++inFlightLoads_;
            if (twoLevel_)
                demoteWarp(warp_idx); // two-level long-latency demotion
        }
    }
}

void
Sm::releaseBarrier(u32 cta_slot)
{
    CtaSlot &cta = ctaSlots_[cta_slot];
    const u32 first = firstWarpSlot(cta_slot);
    for (u32 i = 0; i < cta.numWarps; ++i) {
        Warp &w = warps_[first + i];
        w.atBarrier = false;
        // Warps parked on the barrier rejoin the scheduler in slot
        // order (the last arriver is still mid-issue in the ready set).
        if (w.loc == WarpLoc::kBarrier)
            pendWarp(first + i);
    }
    cta.barrierArrived = 0;
}

void
Sm::finishWarp(u32 warp_idx, Cycle now)
{
    Warp &w = warps_[warp_idx];
    if (w.finished)
        return;
    w.finished = true;
    CtaSlot &cta = ctaSlots_[w.ctaSlot];
    ++cta.warpsFinished;

    // A finished warp no longer participates in barriers.
    const u32 live = cta.numWarps - cta.warpsFinished;
    if (live > 0 && cta.barrierArrived >= live)
        releaseBarrier(w.ctaSlot);

    if (cta.warpsFinished == cta.numWarps) {
        const u32 first = firstWarpSlot(w.ctaSlot);
        mgr_.completeCta(w.ctaSlot, first, cta.numWarps);
        for (u32 i = 0; i < cta.numWarps; ++i)
            warps_[first + i].valid = false;
        cta.active = false;
        panicIf(residentCtas_ == 0, "resident CTA underflow");
        --residentCtas_;
        ++completedCtas_;
    }
    (void)now;
}

void
Sm::tryRefill(Warp &w, u32 warp_idx, Cycle now)
{
    if (throttleActive_ && w.ctaSlot != throttleCta_)
        return; // refilling would steal registers from the chosen CTA
    const auto regs = mgr_.spilledRegs(warp_idx);
    panicIf(regs.empty(), "tryRefill without spilled registers");
    const auto res = mgr_.refillReg(warp_idx, w.ctaSlot, regs.front());
    if (!res.ok) {
        // The needed bank is exhausted (other banks may have space in
        // bank-restricted mode — e.g. it is held by warps parked at a
        // barrier): free it the same way an allocation stall would.
        attemptSpill(warp_idx, regs.front() % cfg_.regFile.numBanks,
                     now);
        return;
    }
    ++stats_.refilledRegs;
    const Cycle done = dram_.access(now, 1);
    w.blockedUntil = std::max(w.blockedUntil, done + res.wakeCycles);
}

i32
Sm::spillPriorityWarp() const
{
    // The lowest-indexed runnable warp that still has spilled registers
    // holds spill priority: only it may victimize other warps.  Without
    // this, warps with spilled registers steal each other's registers
    // back and forth and nobody completes a refill (livelock).
    for (u32 wi = 0; wi < warps_.size(); ++wi) {
        const Warp &w = warps_[wi];
        if (!w.valid || w.finished || w.atBarrier)
            continue;
        if (throttleActive_ && w.ctaSlot != throttleCta_)
            continue; // gated by the throttle: cannot refill anyway
        if (mgr_.hasSpilledRegs(wi))
            return static_cast<i32>(wi);
    }
    return -1;
}

void
Sm::attemptSpill(u32 stalled_warp, u32 need_bank, Cycle now)
{
    const i32 prio = spillPriorityWarp();
    if (prio >= 0 && static_cast<u32>(prio) != stalled_warp)
        return; // wait until the priority warp has recovered
    i32 best = -1;
    i64 best_score = -1;
    std::vector<u32> best_cands;
    for (u32 wi = 0; wi < warps_.size(); ++wi) {
        if (wi == stalled_warp)
            continue;
        const Warp &v = warps_[wi];
        if (!v.valid || v.finished)
            continue;
        if (v.pendingRegs || v.pendingPreds || v.pendingLoads)
            continue; // in-flight writes pin the physical registers
        if (now < v.spillProtectedUntil)
            continue;
        auto cands = mgr_.spillCandidates(wi);
        if (cands.empty())
            continue;
        bool has_need = false;
        for (u32 r : cands)
            has_need |= (r % cfg_.regFile.numBanks) == need_bank;
        i64 score = static_cast<i64>(cands.size());
        if (v.ctaSlot != throttleCta_ || !throttleActive_)
            score += 1000;
        if (has_need)
            score += 500;
        // Prefer warps parked outside the active ready set.
        if (v.loc != WarpLoc::kReady)
            score += 200;
        if (score > best_score) {
            best_score = score;
            best = static_cast<i32>(wi);
            best_cands = std::move(cands);
        }
    }
    if (best < 0)
        return;
    Warp &victim = warps_[static_cast<u32>(best)];
    for (u32 r : best_cands)
        mgr_.spillReg(static_cast<u32>(best), victim.ctaSlot, r);
    const Cycle done =
        dram_.access(now, static_cast<u32>(best_cands.size()));
    victim.blockedUntil = std::max(victim.blockedUntil, done);
    victim.spillProtectedUntil = done + cfg_.spillCooldown;
    ++stats_.spillEvents;
    stats_.spilledRegs += best_cands.size();
}

std::string
Sm::debugState(Cycle now) const
{
    std::string out = "SM" + std::to_string(smId_) +
                      " free=" + std::to_string(mgr_.freeRegs()) +
                      " throttle=" +
                      (throttleActive_ ? std::to_string(throttleCta_)
                                       : std::string("off")) +
                      " inflight=" + std::to_string(inFlightLoads_) + " ready=[";
    for (u32 wi : readyQueue_)
        out += std::to_string(wi) + " ";
    out += "] pending=[";
    for (u32 wi : pendingQueue_)
        out += std::to_string(wi) + " ";
    out += "] sleeping=" + std::to_string(sleepHeap_.size()) +
           " parked=" + std::to_string(throttleParked_.size()) + "\n";
    for (u32 wi = 0; wi < warps_.size(); ++wi) {
        const Warp &w = warps_[wi];
        if (!w.valid)
            continue;
        out += "  w" + std::to_string(wi) + " cta" +
               std::to_string(w.ctaSlot) +
               (w.finished ? " done" : " pc=" + std::to_string(
                                           w.stack.done()
                                               ? kInvalidPc
                                               : w.stack.pc())) +
               (w.atBarrier ? " BAR" : "") +
               " pendR=" + std::to_string(w.pendingRegs) +
               " pendL=" + std::to_string(w.pendingLoads) +
               " blocked=" +
               std::to_string(w.blockedUntil > now
                                  ? w.blockedUntil - now
                                  : 0) +
               " spilled=" +
               std::to_string(mgr_.spilledRegs(wi).size()) + "\n";
    }
    return out;
}

void
Sm::step(Cycle now)
{
    drainCompletions(now);
    wakeSleepers(now);
    std::fill(bankPortUse_.begin(), bankPortUse_.end(), 0);
    evaluateThrottle();
    if (throttleActive_)
        ++stats_.throttleActiveCycles;
    refillReadyQueue();

    u32 issued = 0;
    if (!readyQueue_.empty()) {
        // Snapshot in LRR order; the queue may mutate during issue.
        issueOrder_.clear();
        const u32 n = static_cast<u32>(readyQueue_.size());
        for (u32 i = 0; i < n; ++i)
            issueOrder_.push_back(readyQueue_[(lrrCursor_ + i) % n]);
        for (u32 wi : issueOrder_) {
            if (issued >= cfg_.issuePerCycle)
                break;
            // The warp may have been demoted by a previous issue.
            if (warps_[wi].loc != WarpLoc::kReady)
                continue;
            const IssueOutcome outcome = attemptIssue(wi, now);
            if (outcome == IssueOutcome::kIssued)
                ++issued;
            // Post-attempt rule: route the warp to the container its
            // state demands.  Issue side effects (barrier, finish,
            // demotion inside execute) may already have moved it.
            Warp &w = warps_[wi];
            if (w.loc != WarpLoc::kReady)
                continue;
            if (!w.valid || w.finished) {
                removeFromReady(wi);
                w.loc = WarpLoc::kNone;
                continue;
            }
            if (w.atBarrier) {
                removeFromReady(wi);
                w.loc = WarpLoc::kBarrier;
                continue;
            }
            if (outcome == IssueOutcome::kParked) {
                removeFromReady(wi);
                w.loc = WarpLoc::kParked;
                throttleParked_.push_back(wi);
                continue;
            }
            if (outcome == IssueOutcome::kDemoted)
                demoteWarp(wi);
        }
        if (!readyQueue_.empty())
            lrrCursor_ = static_cast<u32>((lrrCursor_ + 1) %
                                          readyQueue_.size());
    }

    // Re-evaluate the throttle with this cycle's allocations/releases
    // applied so skipCycles() reconstructs throttleActiveCycles from
    // current state, then restore the every-ready-warp-is-near
    // invariant that makes the quiescent window provable.
    evaluateThrottle();
    normalizeReadyQueue(now);

    if (issued == 0 && busy())
        ++stats_.idleCycles;

    mgr_.sampleCycle();
    if (hooks_.liveSample && hooks_.samplePeriod > 0 && smId_ == 0 &&
        now % hooks_.samplePeriod == 0) {
        hooks_.liveSample(now, mgr_.mappedCount(),
                          residentWarps() * prog_.numRegs);
    }
}

Cycle
Sm::nextEventCycle(Cycle now) const
{
    Cycle next = kNoEventCycle;
    for (u32 wi : readyQueue_) {
        const Cycle at = std::max(warps_[wi].blockedUntil, now + 1);
        next = std::min(next, at);
    }
    if (!sleepHeap_.empty())
        next = std::min(next,
                        std::max(sleepHeap_.front().wake, now + 1));
    // Defensive: a refillable pending warp or an uncommitted atomic
    // means next cycle is not provably a no-op.
    if ((!pendingQueue_.empty() &&
         readyQueue_.size() < effectiveReadyQueue_) ||
        !pendingAtomics_.empty()) {
        next = std::min(next, now + 1);
    }
    return next;
}

void
Sm::skipCycles(u64 k)
{
    // Reconstruct exactly what k no-op step() calls would have
    // recorded.  Each no-op step: counts a throttle-active cycle from
    // the (frozen) throttle state, rotates the LRR cursor once,
    // counts an idle cycle when CTAs are resident, and integrates one
    // power-sampling cycle.  All other per-step work is state-free
    // over a quiescent window (see nextEventCycle()).
    if (throttleActive_)
        stats_.throttleActiveCycles += k;
    if (!readyQueue_.empty()) {
        lrrCursor_ = static_cast<u32>(
            (static_cast<u64>(lrrCursor_) + k) % readyQueue_.size());
    }
    if (busy())
        stats_.idleCycles += k;
    mgr_.sampleCycles(k);
}

void
Sm::commitAtomics(Cycle now)
{
    for (const PendingAtomic &pa : pendingAtomics_) {
        WarpValue out{};
        for (u32 l = 0; l < kWarpSize; ++l) {
            if (!((pa.execMask >> l) & 1))
                continue;
            const u32 a = pa.addr[l] + pa.offset;
            const u32 old = gmem_.load(a);
            gmem_.store(a, old + pa.val[l]);
            out[l] = old;
        }
        writeDest(pa.warpIdx, pa.dst, out, pa.execMask, now);
    }
    pendingAtomics_.clear();
}

} // namespace rfv
