#include "sim/sm.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <bit>

#include "common/bit_utils.h"
#include "compiler/liveness.h"
#include "isa/metadata.h"

namespace rfv {

namespace {

/** Interpret a 32-bit word as float. */
float
asFloat(u32 bits)
{
    return std::bit_cast<float>(bits);
}

u32
asBits(float f)
{
    return std::bit_cast<u32>(f);
}

/** Warp slots an SM provisions for this kernel. */
u32
computeMaxWarpSlots(const GpuConfig &cfg, const LaunchParams &launch)
{
    const u32 wpc = launch.warpsPerCta();
    if (wpc == 0 || wpc > cfg.maxWarpsPerSm)
        return 1;
    const u32 conc = std::min({launch.concCtasPerSm, cfg.maxCtasPerSm,
                               cfg.maxWarpsPerSm / wpc});
    return std::max(1u, conc * wpc);
}

/** RFV_TRACE_RELEASE=1 prints warp-0 register releases to stderr. */
bool
traceReleases()
{
    // Read-only probe of an env var nothing in the process mutates,
    // latched once under the magic-static lock.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    static const bool enabled = std::getenv("RFV_TRACE_RELEASE");
    return enabled;
}

/** All-ones lane mask when bit @p l of @p mask is set, else zero. */
u32
laneKeep(u32 mask, u32 l)
{
    return static_cast<u32>(-static_cast<i32>((mask >> l) & 1));
}

/**
 * Full-width lane compare: one loop per comparison op (the dispatch
 * hoisted out of the lane loop) producing a 32-bit result mask.
 *
 * Two phases: a branch-free per-lane compare into a 0/1 array, then a
 * scalar movemask-style pack.  The single-loop form `m |= cmp << l` is
 * a variable-shift OR-reduction no auto-vectorizer accepts; split this
 * way the six compare loops compile to SIMD compares (they count
 * toward the tools/check_vectorization.sh gate) and only the cheap
 * pack stays scalar.
 */
u32
cmpMask(CmpOp op, const WarpValue &a, const WarpValue &b)
{
    u32 lanes[kWarpSize];
    switch (op) {
      case CmpOp::kEq:
        for (u32 l = 0; l < kWarpSize; ++l)
            lanes[l] = a[l] == b[l];
        break;
      case CmpOp::kNe:
        for (u32 l = 0; l < kWarpSize; ++l)
            lanes[l] = a[l] != b[l];
        break;
      case CmpOp::kLt:
        for (u32 l = 0; l < kWarpSize; ++l)
            lanes[l] = static_cast<i32>(a[l]) < static_cast<i32>(b[l]);
        break;
      case CmpOp::kLe:
        for (u32 l = 0; l < kWarpSize; ++l)
            lanes[l] = static_cast<i32>(a[l]) <= static_cast<i32>(b[l]);
        break;
      case CmpOp::kGt:
        for (u32 l = 0; l < kWarpSize; ++l)
            lanes[l] = static_cast<i32>(a[l]) > static_cast<i32>(b[l]);
        break;
      case CmpOp::kGe:
        for (u32 l = 0; l < kWarpSize; ++l)
            lanes[l] = static_cast<i32>(a[l]) >= static_cast<i32>(b[l]);
        break;
    }
    u32 m = 0;
    for (u32 l = 0; l < kWarpSize; ++l)
        m |= lanes[l] << l;
    return m;
}

} // namespace

Sm::Sm(u32 sm_id, const GpuConfig &cfg, const Program &prog,
       const DecodeCache &decode, const LaunchParams &launch,
       GlobalMemory &gmem, DramModel &dram, const TraceHooks &hooks)
    : smId_(sm_id), cfg_(cfg), prog_(prog), decode_(decode),
      launch_(launch), gmem_(gmem), dram_(dram), hooks_(hooks),
      warpsPerCta_(launch.warpsPerCta()), maxConcCtas_(0),
      mgr_(cfg.regFile, computeMaxWarpSlots(cfg, launch)),
      flagCache_(cfg.regFile.flagCacheEntries),
      icache_(cfg.icacheInstrs, cfg.icacheLineInstrs),
      dcache_(cfg.dcacheLines, cfg.dcacheLineBytes),
      effectiveReadyQueue_(cfg.scheduler == SchedulerPolicy::kTwoLevel
                               ? cfg.readyQueueSize
                               : cfg.maxWarpsPerSm),
      twoLevel_(cfg.scheduler == SchedulerPolicy::kTwoLevel)
{
    fatalIf(warpsPerCta_ == 0, "CTA needs at least one warp");
    fatalIf(warpsPerCta_ > cfg_.maxWarpsPerSm,
            "CTA has more warps than an SM can hold");
    maxConcCtas_ = std::min({launch.concCtasPerSm, cfg_.maxCtasPerSm,
                             cfg_.maxWarpsPerSm / warpsPerCta_});
    fatalIf(maxConcCtas_ == 0, "SM cannot hold even one CTA");

    const u32 warp_slots = maxConcCtas_ * warpsPerCta_;
    wt_.reset(warp_slots);
    ctaSlots_.assign(maxConcCtas_, CtaSlot{});
    sharedMem_.assign(maxConcCtas_,
                      std::vector<u32>(ceilDiv(prog.sharedMemBytes, 4), 0));
    localMem_.assign(warp_slots,
                     std::vector<WarpValue>(prog.localMemSlots));

    bankPortUse_.assign(cfg.regFile.numBanks, 0);
    mgr_.configureKernel(prog.numRegs, prog.numExemptRegs);
    profiling_ = hooks_.loopProfile != nullptr;

    // Pre-size the hot-path containers so steady-state simulation never
    // allocates.
    readyQueue_.reserve(effectiveReadyQueue_ + 1);
    completions_.reserve(2 * warp_slots + 8);
    sleepHeap_.reserve(warp_slots);
    throttleParked_.reserve(warp_slots);
    issueOrder_.reserve(effectiveReadyQueue_ + 1);
    addrScratch_.reserve(kWarpSize);
    segScratch_.reserve(kWarpSize);
}

u32
Sm::residentWarps() const
{
    u32 n = 0;
    for (const auto &cta : ctaSlots_)
        if (cta.active)
            n += cta.numWarps;
    return n;
}

bool
Sm::tryLaunchCta(u32 global_cta_id, Cycle now)
{
    // The dispatcher retries a blocked CTA every cycle.  Feasibility
    // is a pure function of the CTA slots and the manager's
    // allocation state, both covered by the allocation epoch (CTA
    // completion frees a slot through completeCta, which bumps it) —
    // so a retry before anything changed is the same failure.
    if (mgr_.allocEpoch() == launchFailEpoch_)
        return false;
    i32 slot = -1;
    for (u32 s = 0; s < maxConcCtas_; ++s) {
        if (!ctaSlots_[s].active) {
            slot = static_cast<i32>(s);
            break;
        }
    }
    if (slot < 0) {
        launchFailEpoch_ = mgr_.allocEpoch();
        return false;
    }
    const u32 s = static_cast<u32>(slot);
    const u32 first = firstWarpSlot(s);

    if (!mgr_.launchCta(s, first, warpsPerCta_)) {
        // The failed call itself advanced the epoch; record the
        // post-rollback value so only a real change retries.
        launchFailEpoch_ = mgr_.allocEpoch();
        return false; // register file cannot hold this CTA yet
    }

    ctaSlots_[s].active = true;
    ctaSlots_[s].globalId = global_cta_id;
    ctaSlots_[s].numWarps = warpsPerCta_;
    ctaSlots_[s].warpsFinished = 0;
    ctaSlots_[s].barrierArrived = 0;
    std::fill(sharedMem_[s].begin(), sharedMem_[s].end(), 0);

    for (u32 i = 0; i < warpsPerCta_; ++i) {
        const u32 wi = first + i;
        wt_.launchWarp(wi, s, i, global_cta_id);
        const u32 threads_before = i * kWarpSize;
        const u32 lanes = std::min(
            kWarpSize, launch_.threadsPerCta - threads_before);
        wt_.stack(wi).reset(static_cast<u32>(lowMask(lanes)));
        wt_.blockedUntil[wi] = now;
        for (auto &mem : localMem_[wi])
            mem.fill(0);
        pendWarp(wi);
    }
    ++residentCtas_;
    stats_.peakResidentWarps =
        std::max(stats_.peakResidentWarps, residentWarps());
    refillReadyQueue();
    return true;
}

void
Sm::pendWarp(u32 warp_idx)
{
    wt_.loc(warp_idx, WarpLoc::kPending);
    pendingQueue_.push_back(warp_idx);
}

void
Sm::removeFromReady(u32 warp_idx)
{
    auto it = std::find(readyQueue_.begin(), readyQueue_.end(), warp_idx);
    panicIf(it == readyQueue_.end(), "ready-queue membership desync");
    readyQueue_.erase(it);
}

void
Sm::sleepWarp(u32 warp_idx)
{
    wt_.loc(warp_idx, WarpLoc::kSleeping);
    sleepHeap_.push_back({wt_.blockedUntil[warp_idx], warp_idx});
    std::push_heap(sleepHeap_.begin(), sleepHeap_.end(),
                   std::greater<SleepEntry>{});
}

void
Sm::refillReadyQueueWork()
{
    while (readyQueue_.size() < effectiveReadyQueue_ &&
           !pendingQueue_.empty()) {
        const u32 wi = pendingQueue_.front();
        pendingQueue_.pop_front();
        if (wt_.loc(wi) != WarpLoc::kPending)
            continue; // stale queue entry
        if (!wt_.valid(wi) || wt_.finished(wi)) {
            wt_.loc(wi, WarpLoc::kNone);
            continue;
        }
        wt_.loc(wi, WarpLoc::kReady);
        readyQueue_.push_back(wi);
    }
}

void
Sm::demoteWarp(u32 warp_idx)
{
    if (wt_.loc(warp_idx) == WarpLoc::kReady)
        removeFromReady(warp_idx);
    if (!wt_.valid(warp_idx) || wt_.finished(warp_idx)) {
        wt_.loc(warp_idx, WarpLoc::kNone);
        return;
    }
    pendWarp(warp_idx);
}

/**
 * Restore the invariant that every ready warp is runnable soon: warps
 * blocked kSleepThresholdCycles or more into the future move to the
 * sleep heap and freed slots refill from the pending queue, repeating
 * until stable.  Afterwards a cycle with no due completion, no due
 * sleeper and no ready warp past its blockedUntil is a provable no-op,
 * which is what makes nextEventCycle()'s window sound.
 */
void
Sm::normalizeReadyQueue(Cycle now)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (u32 i = 0; i < readyQueue_.size();) {
            const u32 wi = readyQueue_[i];
            if (!wt_.valid(wi) || wt_.finished(wi)) {
                readyQueue_.erase(readyQueue_.begin() + i);
                wt_.loc(wi, WarpLoc::kNone);
                changed = true;
                continue;
            }
            if (wt_.blockedUntil[wi] > now &&
                wt_.blockedUntil[wi] - now >= kSleepThresholdCycles) {
                readyQueue_.erase(readyQueue_.begin() + i);
                sleepWarp(wi);
                changed = true;
                continue;
            }
            ++i;
        }
        const u32 before = static_cast<u32>(readyQueue_.size());
        refillReadyQueue();
        if (readyQueue_.size() != before)
            changed = true;
    }
}

void
Sm::wakeSleepersWork(Cycle now)
{
    while (!sleepHeap_.empty() && sleepHeap_.front().wake <= now) {
        std::pop_heap(sleepHeap_.begin(), sleepHeap_.end(),
                      std::greater<SleepEntry>{});
        const SleepEntry e = sleepHeap_.back();
        sleepHeap_.pop_back();
        if (wt_.loc(e.warp) != WarpLoc::kSleeping)
            continue; // stale entry
        if (!wt_.valid(e.warp) || wt_.finished(e.warp)) {
            wt_.loc(e.warp, WarpLoc::kNone);
            continue;
        }
        if (wt_.blockedUntil[e.warp] > now) {
            // The stall was extended while asleep (spill victim): keep
            // sleeping until the new wakeup cycle.
            sleepHeap_.push_back({wt_.blockedUntil[e.warp], e.warp});
            std::push_heap(sleepHeap_.begin(), sleepHeap_.end(),
                          std::greater<SleepEntry>{});
            continue;
        }
        pendWarp(e.warp);
    }
}

void
Sm::pushCompletion(const Completion &c)
{
    // Index the retire time per destination so scoreboardWake can
    // answer from the need bits alone.  A second write to a pending
    // register is itself a hazard, so each pending bit has exactly one
    // in-flight completion and this write is the authoritative one.
    Cycle *reg_ready = wt_.regReadyAt(c.warp());
    for (u64 m = c.regMask; m != 0; m &= m - 1)
        reg_ready[findFirstSet(m)] = c.time;
    Cycle *pred_ready = wt_.predReadyAt(c.warp());
    for (u32 m = c.predMask; m != 0; m &= m - 1)
        pred_ready[findFirstSet(m)] = c.time;
    // Short non-load completions go to the timing wheel (O(1) push
    // and drain); loads and far completions to the min-heap.  Pushes
    // only happen while stepping cycle >= wheelPos_, so c.time >
    // wheelPos_ keeps the wheel invariant (see the member comment).
    if (!c.isLoad() && c.time > wheelPos_ &&
        c.time - wheelPos_ < kWheelSlots) {
        const u32 s = static_cast<u32>(c.time % kWheelSlots);
        wheel_[s].push_back(c);
        wheelOccupied_ |= 1ull << s;
        return;
    }
    completions_.push_back(c);
    std::push_heap(completions_.begin(), completions_.end(),
                   std::greater<Completion>{});
    if (c.isLoad()) {
        loadHeap_.push_back(c.time);
        std::push_heap(loadHeap_.begin(), loadHeap_.end(),
                       std::greater<Cycle>{});
    }
}

void
Sm::drainCompletionsWork(Cycle now)
{
    if (wheelOccupied_ != 0) {
        // Due slots are the window (wheelPos_, now] rotated onto the
        // 64 residues; beyond a full revolution everything is due.
        const Cycle elapsed = now - wheelPos_;
        u64 due = wheelOccupied_;
        if (elapsed < kWheelSlots) {
            const u32 s0 = static_cast<u32>((wheelPos_ + 1) % kWheelSlots);
            const u64 window = lowMask(static_cast<u32>(elapsed));
            due &= (window << s0) |
                   (s0 == 0 ? 0 : window >> (kWheelSlots - s0));
        }
        for (u64 m = due; m != 0; m &= m - 1) {
            const u32 s = findFirstSet(m);
            for (const Completion &c : wheel_[s]) {
                // Scoreboard wake; the wheel never holds loads, so no
                // load bookkeeping here.  Slots drain in residue (not
                // time) order, but these mask clears commute.
                wt_.pendingRegs[c.warp()] &= ~c.regMask;
                wt_.pendingPreds[c.warp()] &= ~c.predMask;
            }
            wheel_[s].clear();
        }
        wheelOccupied_ &= ~due;
    }
    wheelPos_ = now;
    while (!completions_.empty() && completions_.front().time <= now) {
        std::pop_heap(completions_.begin(), completions_.end(),
                      std::greater<Completion>{});
        const Completion c = completions_.back();
        completions_.pop_back();
        // Scoreboard wake as mask operations on the packed arrays.
        wt_.pendingRegs[c.warp()] &= ~c.regMask;
        wt_.pendingPreds[c.warp()] &= ~c.predMask;
        if (c.isLoad()) {
            panicIf(wt_.pendingLoads[c.warp()] == 0,
                    "load completion underflow");
            --wt_.pendingLoads[c.warp()];
            panicIf(inFlightLoads_ == 0, "MSHR underflow");
            --inFlightLoads_;
            // Loads drain in time order, so the load-time heap's front
            // is this completion's time.
            panicIf(loadHeap_.empty() || loadHeap_.front() != c.time,
                    "load-time heap desynchronized from completions");
            std::pop_heap(loadHeap_.begin(), loadHeap_.end(),
                          std::greater<Cycle>{});
            loadHeap_.pop_back();
        }
    }
}

Cycle
Sm::scoreboardWake(u32 warp_idx, u64 need_regs, u32 need_preds,
                   Cycle now) const
{
    // Every pending scoreboard bit has exactly one in-flight completion
    // (a second write to a pending register is itself a hazard), whose
    // retire time the warp table indexed at issue — so the exact wakeup
    // is the max ready time over the blocked need bits, no scan of the
    // completion heap required.
    const u64 regs = need_regs & wt_.pendingRegs[warp_idx];
    const u32 preds = need_preds & wt_.pendingPreds[warp_idx];
    panicIf(regs == 0 && preds == 0,
            "scoreboard hazard with no pending completion");
    Cycle wake = 0;
    const Cycle *reg_ready = wt_.regReadyAt(warp_idx);
    for (u64 m = regs; m != 0; m &= m - 1)
        wake = std::max(wake, reg_ready[findFirstSet(m)]);
    const Cycle *pred_ready = wt_.predReadyAt(warp_idx);
    for (u32 m = preds; m != 0; m &= m - 1)
        wake = std::max(wake, pred_ready[findFirstSet(m)]);
    return std::max(wake, now + 1);
}

Cycle
Sm::mshrWake(Cycle now) const
{
    // MSHRs free only when a load completes; the earliest in-flight
    // load completion (the load-time heap's front) is the first cycle
    // an entry can possibly free.
    panicIf(loadHeap_.empty(), "MSHRs full with no load in flight");
    return std::max(loadHeap_.front(), now + 1);
}

void
Sm::unparkThrottled()
{
    for (u32 wi : throttleParked_) {
        if (wt_.loc(wi) != WarpLoc::kParked)
            continue;
        if (!wt_.valid(wi) || wt_.finished(wi)) {
            wt_.loc(wi, WarpLoc::kNone);
            continue;
        }
        pendWarp(wi);
    }
    throttleParked_.clear();
}

void
Sm::evaluateThrottleWork()
{
    throttleEpoch_ = mgr_.allocEpoch();

    const bool was_active = throttleActive_;
    const u32 was_cta = throttleCta_;
    throttleActive_ = false;
    if (cfg_.regFile.mode == RegFileMode::kVirtualized) {
        const u32 free = mgr_.freeRegs();
        u32 min_balance = ~0u;
        u32 argmin = 0;
        bool any = false;
        const u32 cta_max = warpsPerCta_ * prog_.numRegs;
        for (u32 s = 0; s < maxConcCtas_; ++s) {
            if (!ctaSlots_[s].active)
                continue;
            const u32 held = mgr_.ctaAllocated(s);
            const u32 balance = cta_max > held ? cta_max - held : 0;
            if (!any || balance < min_balance) {
                min_balance = balance;
                argmin = s;
            }
            any = true;
        }
        if (any && free <= min_balance) {
            throttleActive_ = true;
            throttleCta_ = argmin;
        }
    }
    // Warps parked by the throttle wait on its *signature*: release
    // them whenever the throttle turns off or picks a different CTA.
    const bool changed = throttleActive_ != was_active ||
                         (throttleActive_ && throttleCta_ != was_cta);
    if (changed && !throttleParked_.empty())
        unparkThrottled();
}

std::pair<Cycle, bool>
Sm::dramLoadTiming(const std::vector<u32> &byte_addrs, Cycle now)
{
    // Count distinct line-sized segments on the reusable scratch
    // buffer; probe the L1 for each.  Only the *count* of misses
    // matters for timing, so no miss list is materialized.  Segment
    // iteration stays sorted (hit/miss sequence is part of the
    // bit-identity contract).
    if (dcache_.enabled()) {
        const u32 n = static_cast<u32>(byte_addrs.size());
        segScratch_.resize(n);
        const u32 line = cfg_.dcacheLineBytes;
        for (u32 i = 0; i < n; ++i)
            segScratch_[i] = byte_addrs[i] / line;
        std::sort(segScratch_.begin(), segScratch_.end());
        segScratch_.erase(
            std::unique(segScratch_.begin(), segScratch_.end()),
            segScratch_.end());
        u32 missing = 0;
        for (u32 seg : segScratch_) {
            if (dcache_.access(seg * cfg_.dcacheLineBytes))
                ++stats_.dcacheHits;
            else {
                ++stats_.dcacheMisses;
                ++missing;
            }
        }
        if (missing == 0)
            return {now + cfg_.dcacheHitLatency, false};
        return {dram_.access(now, missing), true};
    }
    const u32 txns = coalescedTransactions(byte_addrs, segScratch_);
    return {dram_.access(now, txns), true};
}

const WarpValue &
Sm::readOperand(u32 warp_idx, const Operand &op, WarpValue &scratch)
{
    if (op.isReg()) {
        // Reads only happen on the issue path with a non-empty exec
        // mask, so a lint trap here is a real architectural read of a
        // released or never-written register, not a predicated-off one.
        //
        // Returning the register file's own lane array (instead of
        // copying 128 bytes per operand) is safe because every
        // consumer finishes reading its operands before the first
        // register write of the instruction: ALU/select ops compute
        // into a local array and only then writeDest(), and
        // memory/atomic ops only touch memory (or copy the values out)
        // while the references are live.
        mgr_.lintCheckRead(warp_idx, op.value);
        return mgr_.values(warp_idx, op.value);
    }
    if (op.isImm())
        scratch.fill(op.value);
    // A kNone operand's lanes are never read: every opcode's lane
    // loop touches exactly the operands its arity defines, so the
    // scratch is returned unfilled instead of zero-splatted.
    return scratch;
}

void
Sm::writeDest(u32 warp_idx, u32 reg, const WarpValue &value, u32 exec_mask,
              Cycle now)
{
    const bool was_def =
        hooks_.regEvent && exec_mask != 0;
    WarpValue &dst = mgr_.values(warp_idx, reg);
    if (exec_mask == ~0u) {
        // All lanes active (the common case for straight-line code):
        // a whole-line copy instead of the per-lane select below,
        // which the per-lane variable shifts keep from vectorizing.
        dst = value;
    } else {
        // Branch-free masked merge (a 32-wide select): active lanes
        // take the new value, inactive lanes keep their old bits.
        for (u32 l = 0; l < kWarpSize; ++l) {
            const u32 keep = laneKeep(exec_mask, l);
            dst[l] = (value[l] & keep) | (dst[l] & ~keep);
        }
    }
    mgr_.countOperandWrite(warp_idx, reg);
    if (was_def)
        hooks_.regEvent(now, smId_, warp_idx, reg, RegEvent::kDef);
}

bool
Sm::processMetadata(u32 warp_idx, Cycle now)
{
    SimtStack &stack = wt_.stack(warp_idx);
    while (!stack.done()) {
        const u32 pc = stack.pc();
        panicIf(pc >= prog_.code.size(), "pc ran past end of kernel");
        const Instr &ins = prog_.code[pc];
        const StaticDecode &dec = decode_.at(pc);
        if (!dec.meta)
            return true;
        ++stats_.metaEncounters;
        if (ins.op == Opcode::kPbr) {
            ++stats_.metaDecoded; // pbr is always fetched and decoded
#ifndef NDEBUG
            {
                const auto ref = decodePbr(ins.metaPayload);
                assert(ref.size() == dec.pbrCount);
                for (u32 i = 0; i < dec.pbrCount; ++i)
                    assert(ref[i] == dec.pbrRegs[i]);
            }
#endif
            for (u32 i = 0; i < dec.pbrCount; ++i) {
                const u32 r = dec.pbrRegs[i];
                if (traceReleases() && warp_idx == 0)
                    std::fprintf(stderr, "pbr release r%u at pc %u\n",
                                 r, pc);
                if (hooks_.regEvent &&
                    mgr_.state(warp_idx, r) == RegState::kMapped) {
                    hooks_.regEvent(now, smId_, warp_idx, r,
                                    RegEvent::kRelease);
                }
                mgr_.releaseReg(warp_idx, wt_.ctaSlot[warp_idx], r);
            }
            stack.advance(pc + 1);
        } else { // kPir
            const bool hit = flagCache_.access(pc);
            stack.advance(pc + 1);
            if (!hit) {
                ++stats_.metaDecoded;
                if (cfg_.flagMissBubble) {
                    wt_.blockedUntil[warp_idx] = now + 1;
                    return false;
                }
            }
        }
    }
    return true;
}

Sm::IssueOutcome
Sm::attemptIssue(u32 warp_idx, Cycle now)
{
    // Terminal / parked states are handled by the issue loop's
    // post-attempt rule, which inspects the warp flags directly.
    // Must stay a per-warp re-check even though the issue loop
    // pre-filters on the snapshot mask: an earlier issue this cycle
    // can block this warp (spill victim) after the snapshot.
    if (!wt_.issuable(warp_idx, now))
        return IssueOutcome::kSkipped;

    if (mgr_.hasSpilledRegs(warp_idx)) {
        // Long-duration condition: rotate out of the ready set so
        // other warps (notably the throttle-chosen CTA's) can issue.
        tryRefill(warp_idx, now);
        return IssueOutcome::kDemoted;
    }

    {
        ScopedNs fetch_t(profiling_ ? &prof_.fetchNs : nullptr);
        SimtStack &stack = wt_.stack(warp_idx);
        // Instruction fetch: a miss blocks the warp for the refill.  A
        // paid miss delivers its instruction even if the line has been
        // evicted since (no fetch-retry livelock under thrashing).
        if (!stack.done()) {
            const u32 fetch_pc = stack.pc();
            if (wt_.paidFetchPc[warp_idx] == fetch_pc) {
                wt_.paidFetchPc[warp_idx] = kInvalidPc;
            } else if (icache_.access(fetch_pc)) {
                ++stats_.icacheHits;
            } else {
                ++stats_.icacheMisses;
                wt_.paidFetchPc[warp_idx] = fetch_pc;
                wt_.blockedUntil[warp_idx] = now + cfg_.icacheMissLatency;
                return IssueOutcome::kSkipped;
            }
        }

        if (!processMetadata(warp_idx, now))
            return IssueOutcome::kSkipped;
    }
    if (wt_.stack(warp_idx).done()) {
        finishWarp(warp_idx, now);
        return IssueOutcome::kDemoted;
    }

    const u32 pc = wt_.stack(warp_idx).pc();
    const Instr &ins = prog_.code[pc];
    const StaticDecode &dec = decode_.at(pc);
    currentPc_ = pc; // diagnostic context for panics

#ifndef NDEBUG
    // Predecode table vs. on-demand decode (release builds rely on the
    // one-time cross-check at DecodeCache construction).
    assert(dec.needRegs == (useMask(ins) | defMask(ins)));
    assert(dec.defRegs == defMask(ins));
    assert(dec.cls == opInfo(ins.op).cls);
#endif

    if (throttleActive_ && wt_.ctaSlot[warp_idx] != throttleCta_) {
        // Throttled warps must not occupy ready-queue slots, or the
        // chosen CTA's warps could starve in the pending queue.  Park
        // them until the throttle signature changes; counted once per
        // park episode.
        ++stats_.throttleSkips;
        return IssueOutcome::kParked;
    }

    // Scoreboard: block until the exact cycle the last hazard-matching
    // in-flight completion retires (counted once per stall episode).
    if ((wt_.pendingRegs[warp_idx] & dec.needRegs) ||
        (wt_.pendingPreds[warp_idx] & dec.needPreds)) {
        ++stats_.scoreboardStalls;
        wt_.blockedUntil[warp_idx] =
            scoreboardWake(warp_idx, dec.needRegs, dec.needPreds, now);
        if (wt_.pendingLoads[warp_idx] > 0)
            return IssueOutcome::kDemoted; // long-latency stall
        return IssueOutcome::kSkipped;
    }

    // A warp cannot retire with loads in flight: finishWarp would
    // recycle the slot (and eventually the CTA) while the completion
    // heap still references it, corrupting the next occupant's
    // scoreboard.  The hazard is real for *dead* loads — a result no
    // later instruction reads, so the scoreboard check above never
    // blocks on it (found by differential fuzzing; see src/gen).
    if (ins.op == Opcode::kExit && wt_.pendingLoads[warp_idx] > 0) {
        ++stats_.scoreboardStalls;
        wt_.blockedUntil[warp_idx] =
            scoreboardWake(warp_idx, wt_.pendingRegs[warp_idx],
                           wt_.pendingPreds[warp_idx], now);
        return IssueOutcome::kDemoted; // long-latency drain stall
    }

    // MSHR availability for long-latency loads: an entry cannot free
    // before the earliest in-flight load completes.
    if (dec.dramLoad && inFlightLoads_ >= cfg_.mshrsPerSm) {
        wt_.blockedUntil[warp_idx] = mshrWake(now);
        return IssueOutcome::kSkipped;
    }

    // Destination register allocation (renaming).
    if (ins.dst != kNoReg) {
        const auto res =
            mgr_.ensureMappedForWrite(warp_idx, wt_.ctaSlot[warp_idx],
                                      static_cast<u32>(ins.dst));
        if (!res.ok) {
            ++stats_.allocStallEvents;
            attemptSpill(warp_idx,
                         static_cast<u32>(ins.dst) % cfg_.regFile.numBanks,
                         now);
            // Transient bank shortages resolve within a few cycles as
            // other warps release registers, so retry from the ready
            // queue first; only a persistent stall rotates the warp
            // out (required for forward progress under throttling).
            if (++wt_.allocStallStreak[warp_idx] < 32)
                return IssueOutcome::kSkipped;
            wt_.allocStallStreak[warp_idx] = 0;
            return IssueOutcome::kDemoted;
        }
        wt_.allocStallStreak[warp_idx] = 0;
        if (res.wakeCycles > 0) {
            ++stats_.wakeStallEvents;
            wt_.blockedUntil[warp_idx] = now + res.wakeCycles;
            return IssueOutcome::kSkipped;
        }
    }

    // Guard mask.
    try {
    const u32 active = wt_.stack(warp_idx).activeMask();
    u32 exec_mask = active;
    if (ins.guardPred != kNoPred) {
        const u32 pm = wt_.pred(warp_idx, ins.guardPred);
        exec_mask &= ins.guardNeg ? ~pm : pm;
    }

    // Operand collection: each bank serves one warp-wide operand per
    // cycle, shared by every instruction issued this cycle.  Extra
    // readers of a bank delay this warp's next issue.
    {
        u32 conflicts = 0;
        for (u32 k = 0; k < dec.numSrcRegs; ++k) {
            const Operand &src = ins.src[dec.srcRegIdx[k]];
            // Lint before the bank lookup: physOf panics on unmapped
            // registers, and the lint's released/never-written message
            // is the precise diagnosis of why the mapping is absent.
            if (exec_mask != 0)
                mgr_.lintCheckRead(warp_idx, src.value);
            const u32 bank = mgr_.readOperandBank(warp_idx, src.value);
            conflicts += bankPortUse_[bank];
            ++bankPortUse_[bank];
        }
        if (conflicts) {
            stats_.bankConflictCycles += conflicts;
            wt_.blockedUntil[warp_idx] = std::max<Cycle>(
                wt_.blockedUntil[warp_idx], now + conflicts);
        }
    }

    {
        ScopedNs exec_t(profiling_ ? &prof_.executeNs : nullptr);
        execute(warp_idx, ins, dec, exec_mask, now);
    }

    ++stats_.issuedInstrs;
    stats_.threadInstrs += popcount64(exec_mask);

    // pir releases: operands die after this read.
    for (u32 k = 0; k < 3; ++k) {
        if (!((ins.pirMask >> k) & 1))
            continue;
        const u32 r = ins.src[k].value;
        if (traceReleases() && warp_idx == 0)
            std::fprintf(stderr, "pir release r%u at pc %u\n", r, pc);
        if (hooks_.regEvent &&
            mgr_.state(warp_idx, r) == RegState::kMapped) {
            hooks_.regEvent(now, smId_, warp_idx, r, RegEvent::kRelease);
        }
        mgr_.releaseReg(warp_idx, wt_.ctaSlot[warp_idx], r);
    }
    } catch (const InternalError &e) {
        panic(std::string(e.what()) + " [pc " + std::to_string(pc) +
              ": " + formatInstr(ins) + "]");
    }
    return IssueOutcome::kIssued;
}

void
Sm::execute(u32 warp_idx, const Instr &ins, const StaticDecode &dec,
            u32 exec_mask, Cycle now)
{
    SimtStack &stack = wt_.stack(warp_idx);
    const u32 pc = stack.pc();
    bool advanced = false;

    u64 wb_regs = 0;
    u32 wb_preds = 0;
    bool is_dram_load = false;
    Cycle completion = now + dec.warpLatency;

    // Immediate-splat scratch for readOperand (left uninitialized;
    // readOperand fills it before returning it).
    WarpValue imm0, imm1, imm2;

    // Masked per-lane visitor for operations with lane side effects
    // (memory accesses, address lists): those must touch active lanes
    // only.  Pure ALU ops below instead compute all 32 lanes
    // full-width and let writeDest() mask — bit-identical, since only
    // active lanes are ever written back.
    auto lanes = [exec_mask](auto &&fn) {
        for (u32 l = 0; l < kWarpSize; ++l)
            if ((exec_mask >> l) & 1)
                fn(l);
    };

    switch (ins.op) {
      case Opcode::kNop:
        break;
      case Opcode::kMov:
      case Opcode::kIAdd:
      case Opcode::kISub:
      case Opcode::kIMul:
      case Opcode::kIMad:
      case Opcode::kIMin:
      case Opcode::kIMax:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kFAdd:
      case Opcode::kFMul:
      case Opcode::kFFma:
      case Opcode::kFRcp: {
        if (exec_mask) {
            const WarpValue &a = readOperand(warp_idx, ins.src[0], imm0);
            const WarpValue &b = readOperand(warp_idx, ins.src[1], imm1);
            const WarpValue &c = readOperand(warp_idx, ins.src[2], imm2);
            // Uninitialized on purpose: every opcode loop below writes
            // all 32 lanes before writeDest() reads any of them.
            WarpValue out;
            // The opcode dispatch is hoisted out of the lane loop: one
            // tight 32-wide loop per opcode over contiguous operand
            // arrays, auto-vectorized (tools/check_vectorization.sh
            // gates this in CI).  Inactive lanes compute garbage that
            // writeDest() discards.
            switch (ins.op) {
              case Opcode::kMov:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l];
                break;
              case Opcode::kIAdd:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] + b[l];
                break;
              case Opcode::kISub:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] - b[l];
                break;
              case Opcode::kIMul:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] * b[l];
                break;
              case Opcode::kIMad:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] * b[l] + c[l];
                break;
              case Opcode::kIMin:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = static_cast<u32>(
                        std::min(static_cast<i32>(a[l]),
                                 static_cast<i32>(b[l])));
                break;
              case Opcode::kIMax:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = static_cast<u32>(
                        std::max(static_cast<i32>(a[l]),
                                 static_cast<i32>(b[l])));
                break;
              case Opcode::kShl:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] << (b[l] & 31);
                break;
              case Opcode::kShr:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] >> (b[l] & 31);
                break;
              case Opcode::kAnd:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] & b[l];
                break;
              case Opcode::kOr:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] | b[l];
                break;
              case Opcode::kXor:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = a[l] ^ b[l];
                break;
              case Opcode::kFAdd:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = asBits(asFloat(a[l]) + asFloat(b[l]));
                break;
              case Opcode::kFMul:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = asBits(asFloat(a[l]) * asFloat(b[l]));
                break;
              case Opcode::kFFma:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = asBits(asFloat(a[l]) * asFloat(b[l]) +
                                    asFloat(c[l]));
                break;
              case Opcode::kFRcp:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = asBits(1.0f / asFloat(a[l]));
                break;
              default: panic("unreachable alu op");
            }
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
        }
        break;
      }
      case Opcode::kSetP: {
        if (exec_mask) {
            const WarpValue &a = readOperand(warp_idx, ins.src[0], imm0);
            const WarpValue &b = readOperand(warp_idx, ins.src[1], imm1);
            // Full-width compare, then one branch-free bit merge:
            // active lanes take the compare result, inactive lanes
            // keep their old predicate bit.
            const u32 cmp = cmpMask(ins.cmp, a, b);
            u32 &bits = wt_.pred(warp_idx, ins.dstPred);
            bits = (bits & ~exec_mask) | (cmp & exec_mask);
            wb_preds = 1u << ins.dstPred;
        }
        break;
      }
      case Opcode::kPSel: {
        if (exec_mask) {
            const WarpValue &a = readOperand(warp_idx, ins.src[0], imm0);
            const WarpValue &b = readOperand(warp_idx, ins.src[1], imm1);
            const u32 sel = wt_.pred(warp_idx, ins.dstPred);
            WarpValue out{};
            for (u32 l = 0; l < kWarpSize; ++l) {
                const u32 keep = laneKeep(sel, l);
                out[l] = (a[l] & keep) | (b[l] & ~keep);
            }
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
        }
        break;
      }
      case Opcode::kS2R: {
        if (exec_mask) {
            WarpValue out{};
            const u32 warp_in_cta = wt_.warpInCta[warp_idx];
            switch (ins.sreg) {
              case SpecialReg::kTid:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = warp_in_cta * kWarpSize + l;
                break;
              case SpecialReg::kCtaId:
                out.fill(wt_.globalCtaId[warp_idx]);
                break;
              case SpecialReg::kNTid:
                out.fill(launch_.threadsPerCta);
                break;
              case SpecialReg::kNCtaId:
                out.fill(launch_.gridCtas);
                break;
              case SpecialReg::kLaneId:
                for (u32 l = 0; l < kWarpSize; ++l)
                    out[l] = l;
                break;
              case SpecialReg::kWarpId:
                out.fill(warp_in_cta);
                break;
            }
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
        }
        break;
      }
      case Opcode::kLdGlobal:
      case Opcode::kLdShared: {
        if (exec_mask) {
            const WarpValue &addr = readOperand(warp_idx, ins.src[0], imm0);
            const u32 off = ins.src[1].value;
            WarpValue out{};
            addrScratch_.clear();
            lanes([&](u32 l) {
                const u32 a = addr[l] + off;
                if (ins.op == Opcode::kLdGlobal) {
                    out[l] = gmem_.load(a, smId_, now);
                    addrScratch_.push_back(a);
                } else {
                    const u32 word = a / 4;
                    auto &shm = sharedMem_[wt_.ctaSlot[warp_idx]];
                    panicIf(a % 4 != 0, "unaligned shared load");
                    panicIf(word >= shm.size(),
                            "shared load out of bounds");
                    out[l] = shm[word];
                }
            });
            writeDest(warp_idx, static_cast<u32>(ins.dst), out, exec_mask,
                      now);
            wb_regs = dec.defRegs;
            if (ins.op == Opcode::kLdGlobal) {
                const auto timing = dramLoadTiming(addrScratch_, now);
                completion = timing.first;
                is_dram_load = timing.second;
            }
        }
        break;
      }
      case Opcode::kLdLocal: {
        if (exec_mask) {
            const WarpValue &mem = localMem_[warp_idx][ins.localSlot];
            writeDest(warp_idx, static_cast<u32>(ins.dst), mem, exec_mask,
                      now);
            wb_regs = dec.defRegs;
            // One coalesced warp-wide transaction per local slot; the
            // synthetic address keys the slot into the data cache
            // (bit 31 separates the local space from global).
            const u32 synth =
                0x80000000u |
                static_cast<u32>((warp_idx * localMem_[warp_idx].size() +
                                  ins.localSlot) *
                                 128u);
            addrScratch_.assign(1, synth);
            const auto timing = dramLoadTiming(addrScratch_, now);
            completion = timing.first;
            is_dram_load = timing.second;
        }
        break;
      }
      case Opcode::kAtomAdd: {
        if (exec_mask) {
            const WarpValue &addr = readOperand(warp_idx, ins.src[0], imm0);
            const u32 off = ins.src[1].value;
            const WarpValue &val = readOperand(warp_idx, ins.src[2], imm2);
            addrScratch_.clear();
            lanes([&](u32 l) { addrScratch_.push_back(addr[l] + off); });
            // The memory side effect is deferred to commitAtomics():
            // the Gpu commits all SMs' atomics at the end-of-cycle
            // barrier in SM-id order, so cross-SM interleaving is
            // identical whether SMs step sequentially or on worker
            // threads.  Lanes commit in lane order (deterministic
            // intra-warp atomicity); cross-warp order follows issue
            // order.  Timing is charged here: addresses are known and
            // the DRAM channel is per-SM.
            pendingAtomics_.push_back({warp_idx,
                                       static_cast<u32>(ins.dst),
                                       exec_mask, off, addr, val});
            wb_regs = dec.defRegs;
            // Read-modify-write: roughly twice the transactions.
            const u32 txns =
                2 * coalescedTransactions(addrScratch_, segScratch_);
            completion = dram_.access(now, txns);
            is_dram_load = true;
        }
        break;
      }
      case Opcode::kStGlobal:
      case Opcode::kStShared: {
        if (exec_mask) {
            const WarpValue &addr = readOperand(warp_idx, ins.src[0], imm0);
            const u32 off = ins.src[1].value;
            const WarpValue &val = readOperand(warp_idx, ins.src[2], imm2);
            addrScratch_.clear();
            lanes([&](u32 l) {
                const u32 a = addr[l] + off;
                if (ins.op == Opcode::kStGlobal) {
                    gmem_.store(a, val[l], smId_, now);
                    addrScratch_.push_back(a);
                } else {
                    const u32 word = a / 4;
                    auto &shm = sharedMem_[wt_.ctaSlot[warp_idx]];
                    panicIf(a % 4 != 0, "unaligned shared store");
                    panicIf(word >= shm.size(),
                            "shared store out of bounds");
                    shm[word] = val[l];
                }
            });
            if (ins.op == Opcode::kStGlobal) {
                // Fire-and-forget: charge bandwidth, no warp stall.
                dram_.access(now, coalescedTransactions(addrScratch_,
                                                        segScratch_));
            }
        }
        break;
      }
      case Opcode::kStLocal: {
        if (exec_mask) {
            const WarpValue &val = readOperand(warp_idx, ins.src[0], imm0);
            WarpValue &mem = localMem_[warp_idx][ins.localSlot];
            // Branch-free masked merge into the local-memory slot.
            for (u32 l = 0; l < kWarpSize; ++l) {
                const u32 keep = laneKeep(exec_mask, l);
                mem[l] = (val[l] & keep) | (mem[l] & ~keep);
            }
            // Local memory is cached write-back/write-allocate on
            // Fermi: with the L1 enabled a store hit costs no DRAM
            // bandwidth (dirty evictions are not modeled).
            const u32 synth =
                0x80000000u |
                static_cast<u32>((warp_idx * localMem_[warp_idx].size() +
                                  ins.localSlot) *
                                 128u);
            if (dcache_.enabled()) {
                if (dcache_.access(synth))
                    ++stats_.dcacheHits;
                else {
                    ++stats_.dcacheMisses;
                    dram_.access(now, 1);
                }
            } else {
                dram_.access(now, 1);
            }
        }
        break;
      }
      case Opcode::kBra: {
        const u32 taken = exec_mask;
        stack.branch(ins.target, pc + 1, taken, ins.reconvPc);
        advanced = true;
        break;
      }
      case Opcode::kExit: {
        stack.exitLanes(exec_mask);
        advanced = true;
        if (stack.done()) {
            finishWarp(warp_idx, now);
        } else if (stack.pc() == pc) {
            stack.advance(pc + 1);
        }
        break;
      }
      case Opcode::kBar: {
        wt_.setAtBarrier(warp_idx, true);
        CtaSlot &cta = ctaSlots_[wt_.ctaSlot[warp_idx]];
        ++cta.barrierArrived;
        stack.advance(pc + 1);
        advanced = true;
        const u32 live = cta.numWarps - cta.warpsFinished;
        if (cta.barrierArrived >= live)
            releaseBarrier(wt_.ctaSlot[warp_idx]);
        break;
      }
      case Opcode::kPir:
      case Opcode::kPbr:
        panic("metadata reached execute()");
    }

    if (!advanced && !wt_.finished(warp_idx))
        stack.advance(pc + 1);

    if (wb_regs || wb_preds || is_dram_load) {
        wt_.pendingRegs[warp_idx] |= wb_regs;
        wt_.pendingPreds[warp_idx] |= wb_preds;
        pushCompletion({completion, warp_idx, wb_regs, wb_preds,
                        is_dram_load});
        if (is_dram_load) {
            ++wt_.pendingLoads[warp_idx];
            ++inFlightLoads_;
            if (twoLevel_)
                demoteWarp(warp_idx); // two-level long-latency demotion
        }
    }
}

void
Sm::releaseBarrier(u32 cta_slot)
{
    CtaSlot &cta = ctaSlots_[cta_slot];
    const u32 first = firstWarpSlot(cta_slot);
    // The whole CTA's atBarrier bits clear in one mask operation;
    // warps parked on the barrier rejoin the scheduler in slot order
    // (the last arriver is still mid-issue in the ready set).
    wt_.clearBarrierRange(first, cta.numWarps);
    for (u32 i = 0; i < cta.numWarps; ++i) {
        if (wt_.loc(first + i) == WarpLoc::kBarrier)
            pendWarp(first + i);
    }
    cta.barrierArrived = 0;
}

void
Sm::finishWarp(u32 warp_idx, Cycle now)
{
    if (wt_.finished(warp_idx))
        return;
    wt_.setFinished(warp_idx, true);
    const u32 cta_slot = wt_.ctaSlot[warp_idx];
    // Hand the warp's remaining register footprint back now, not at
    // CTA completion: under GPU-shrink, exempt registers (which have
    // no release points) of early-exited warps otherwise pin exactly
    // the banks the surviving warps must refill from, and the spill
    // engine cannot victimize finished warps — a circular wait the
    // differential fuzzer caught as a watchdog deadlock.  Safe at this
    // point: values are written functionally at issue, so in-flight
    // completions only clear scoreboard bits.
    mgr_.completeWarp(warp_idx, cta_slot);
    CtaSlot &cta = ctaSlots_[cta_slot];
    ++cta.warpsFinished;

    // A finished warp no longer participates in barriers.
    const u32 live = cta.numWarps - cta.warpsFinished;
    if (live > 0 && cta.barrierArrived >= live)
        releaseBarrier(cta_slot);

    if (cta.warpsFinished == cta.numWarps) {
        const u32 first = firstWarpSlot(cta_slot);
        mgr_.completeCta(cta_slot, first, cta.numWarps);
        for (u32 i = 0; i < cta.numWarps; ++i)
            wt_.setValid(first + i, false);
        cta.active = false;
        panicIf(residentCtas_ == 0, "resident CTA underflow");
        --residentCtas_;
        ++completedCtas_;
    }
    (void)now;
}

void
Sm::tryRefill(u32 warp_idx, Cycle now)
{
    if (throttleActive_ && wt_.ctaSlot[warp_idx] != throttleCta_)
        return; // refilling would steal registers from the chosen CTA
    const u32 reg = mgr_.firstSpilledReg(warp_idx);
    const auto res =
        mgr_.refillReg(warp_idx, wt_.ctaSlot[warp_idx], reg);
    if (!res.ok) {
        // The needed bank is exhausted (other banks may have space in
        // bank-restricted mode — e.g. it is held by warps parked at a
        // barrier): free it the same way an allocation stall would.
        attemptSpill(warp_idx, reg % cfg_.regFile.numBanks, now);
        return;
    }
    ++stats_.refilledRegs;
    const Cycle done = dram_.access(now, 1);
    wt_.blockedUntil[warp_idx] =
        std::max(wt_.blockedUntil[warp_idx], done + res.wakeCycles);
}

i32
Sm::spillPriorityWarp() const
{
    // The lowest-indexed runnable warp that still has spilled registers
    // holds spill priority: only it may victimize other warps.  Without
    // this, warps with spilled registers steal each other's registers
    // back and forth and nobody completes a refill (livelock).
    // Candidate warps come from one mask sweep (valid, unfinished, not
    // at a barrier), visited in ascending slot order.
    const u64 *valid = wt_.validWords();
    const u64 *finished = wt_.finishedWords();
    const u64 *bar = wt_.atBarrierWords();
    for (u32 w = 0; w < wt_.maskWords(); ++w) {
        u64 live = valid[w] & ~finished[w] & ~bar[w];
        while (live) {
            const u32 wi = w * 64 + findFirstSet(live);
            live &= live - 1;
            if (throttleActive_ && wt_.ctaSlot[wi] != throttleCta_)
                continue; // gated by the throttle: cannot refill anyway
            if (mgr_.hasSpilledRegs(wi))
                return static_cast<i32>(wi);
        }
    }
    return -1;
}

void
Sm::attemptSpill(u32 stalled_warp, u32 need_bank, Cycle now)
{
    const i32 prio = spillPriorityWarp();
    if (prio >= 0 && static_cast<u32>(prio) != stalled_warp)
        return; // wait until the priority warp has recovered
    i32 best = -1;
    i64 best_score = -1;
    // Victim candidates from one mask sweep over the live warps.  The
    // scoring pass only needs each warp's candidate count and whether
    // one lives in the needed bank — a counting scan, so the per-warp
    // list is materialized exactly once, for the winner.
    const u64 *valid = wt_.validWords();
    const u64 *finished = wt_.finishedWords();
    for (u32 w = 0; w < wt_.maskWords(); ++w) {
        u64 live = valid[w] & ~finished[w];
        while (live) {
            const u32 wi = w * 64 + findFirstSet(live);
            live &= live - 1;
            if (wi == stalled_warp)
                continue;
            if (wt_.pendingRegs[wi] || wt_.pendingPreds[wi] ||
                wt_.pendingLoads[wi])
                continue; // in-flight writes pin the physical registers
            if (now < wt_.spillProtectedUntil[wi])
                continue;
            bool has_need = false;
            const u32 count =
                mgr_.countSpillCandidates(wi, need_bank, has_need);
            if (count == 0)
                continue;
            i64 score = static_cast<i64>(count);
            if (wt_.ctaSlot[wi] != throttleCta_ || !throttleActive_)
                score += 1000;
            if (has_need)
                score += 500;
            // Prefer warps parked outside the active ready set.
            if (wt_.loc(wi) != WarpLoc::kReady)
                score += 200;
            if (score > best_score) {
                best_score = score;
                best = static_cast<i32>(wi);
            }
        }
    }
    if (best < 0)
        return;
    const u32 victim = static_cast<u32>(best);
    const auto best_cands = mgr_.spillCandidates(victim);
    for (u32 r : best_cands)
        mgr_.spillReg(victim, wt_.ctaSlot[victim], r);
    const Cycle done =
        dram_.access(now, static_cast<u32>(best_cands.size()));
    wt_.blockedUntil[victim] = std::max(wt_.blockedUntil[victim], done);
    wt_.spillProtectedUntil[victim] = done + cfg_.spillCooldown;
    ++stats_.spillEvents;
    stats_.spilledRegs += best_cands.size();
}

std::string
Sm::debugState(Cycle now) const
{
    std::string out = "SM" + std::to_string(smId_) +
                      " free=" + std::to_string(mgr_.freeRegs()) +
                      " throttle=" +
                      (throttleActive_ ? std::to_string(throttleCta_)
                                       : std::string("off")) +
                      " inflight=" + std::to_string(inFlightLoads_) + " ready=[";
    for (u32 wi : readyQueue_)
        out += std::to_string(wi) + " ";
    out += "] pending=[";
    for (std::size_t i = 0; i < pendingQueue_.size(); ++i)
        out += std::to_string(pendingQueue_[i]) + " ";
    out += "] sleeping=" + std::to_string(sleepHeap_.size()) +
           " parked=" + std::to_string(throttleParked_.size()) + "\n";
    for (u32 wi = 0; wi < wt_.size(); ++wi) {
        if (!wt_.valid(wi))
            continue;
        out += "  w" + std::to_string(wi) + " cta" +
               std::to_string(wt_.ctaSlot[wi]) +
               (wt_.finished(wi)
                    ? " done"
                    : " pc=" + std::to_string(wt_.stack(wi).done()
                                                  ? kInvalidPc
                                                  : wt_.stack(wi).pc())) +
               (wt_.atBarrier(wi) ? " BAR" : "") +
               " pendR=" + std::to_string(wt_.pendingRegs[wi]) +
               " pendL=" + std::to_string(wt_.pendingLoads[wi]) +
               " blocked=" +
               std::to_string(wt_.blockedUntil[wi] > now
                                  ? wt_.blockedUntil[wi] - now
                                  : 0) +
               " spilled=" +
               std::to_string(mgr_.spilledRegs(wi).size()) + "\n";
    }
    return out;
}

void
Sm::step(Cycle now)
{
    const bool prof = profiling_;
    u64 t0 = 0;
    u64 t1 = 0;
    u64 fetch0 = 0;
    u64 exec0 = 0;
    if (prof)
        t0 = profileNowNs();

    drainCompletions(now);
    wakeSleepers(now);
    std::fill(bankPortUse_.begin(), bankPortUse_.end(), 0);
    evaluateThrottle();
    if (throttleActive_)
        ++stats_.throttleActiveCycles;
    refillReadyQueue();

    if (prof) {
        t1 = profileNowNs();
        prof_.scheduleNs += t1 - t0;
        fetch0 = prof_.fetchNs;
        exec0 = prof_.executeNs;
    }

    u32 issued = 0;
    if (!readyQueue_.empty()) {
        // The LRR snapshot keeps only warps issuable at the start of
        // the cycle, tested per ready warp on the packed arrays
        // (WarpTable::issuable — the whole-table issuableMask() sweep
        // answers the same query for full-table scans like the spill
        // engine, but the active set here is at most the ready-queue
        // cap, so per-warp probes touch less memory).  The filter is
        // exact: blockedUntil never decreases within a cycle,
        // valid/finished only flip toward non-issuable, and no ready
        // warp is atBarrier at step entry — so a warp not issuable in
        // the snapshot stays non-issuable all cycle and its
        // attemptIssue would have been a side-effect-free skip.
        // (attemptIssue still re-checks per-warp state: a warp
        // issuable at the snapshot can be blocked mid-cycle, e.g. as
        // a spill victim.)
        issueOrder_.clear();
        const u32 n = static_cast<u32>(readyQueue_.size());
        u32 j = lrrCursor_ < n ? lrrCursor_ : lrrCursor_ % n;
        for (u32 i = 0; i < n; ++i) {
            const u32 wi = readyQueue_[j];
            if (++j == n)
                j = 0;
            if (wt_.issuable(wi, now))
                issueOrder_.push_back(wi);
        }
        for (u32 wi : issueOrder_) {
            if (issued >= cfg_.issuePerCycle)
                break;
            // The warp may have been demoted by a previous issue.
            if (wt_.loc(wi) != WarpLoc::kReady)
                continue;
            const IssueOutcome outcome = attemptIssue(wi, now);
            if (outcome == IssueOutcome::kIssued)
                ++issued;
            // Post-attempt rule: route the warp to the container its
            // state demands.  Issue side effects (barrier, finish,
            // demotion inside execute) may already have moved it.
            if (wt_.loc(wi) != WarpLoc::kReady)
                continue;
            if (!wt_.valid(wi) || wt_.finished(wi)) {
                removeFromReady(wi);
                wt_.loc(wi, WarpLoc::kNone);
                continue;
            }
            if (wt_.atBarrier(wi)) {
                removeFromReady(wi);
                wt_.loc(wi, WarpLoc::kBarrier);
                continue;
            }
            if (outcome == IssueOutcome::kParked) {
                removeFromReady(wi);
                wt_.loc(wi, WarpLoc::kParked);
                throttleParked_.push_back(wi);
                continue;
            }
            if (outcome == IssueOutcome::kDemoted)
                demoteWarp(wi);
        }
        if (!readyQueue_.empty())
            lrrCursor_ = static_cast<u32>((lrrCursor_ + 1) %
                                          readyQueue_.size());
    }

    if (prof) {
        // The issue loop's time minus what attemptIssue booked to the
        // fetch/execute buckets is scheduling overhead.
        const u64 t2 = profileNowNs();
        prof_.scheduleNs += (t2 - t1) - (prof_.fetchNs - fetch0) -
                            (prof_.executeNs - exec0);
        t1 = t2;
    }

    // Re-evaluate the throttle with this cycle's allocations/releases
    // applied so skipCycles() reconstructs throttleActiveCycles from
    // current state, then restore the every-ready-warp-is-near
    // invariant that makes the quiescent window provable.
    evaluateThrottle();
    normalizeReadyQueue(now);

    if (issued == 0 && busy())
        ++stats_.idleCycles;

    mgr_.sampleCycle();
    if (hooks_.liveSample && hooks_.samplePeriod > 0 && smId_ == 0 &&
        now % hooks_.samplePeriod == 0) {
        hooks_.liveSample(now, mgr_.mappedCount(),
                          residentWarps() * prog_.numRegs);
    }

    if (prof) {
        prof_.commitNs += profileNowNs() - t1;
        ++prof_.steps;
    }
}

Cycle
Sm::nextEventCycle(Cycle now) const
{
    Cycle next = kNoEventCycle;
    for (u32 wi : readyQueue_) {
        const Cycle at = std::max(wt_.blockedUntil[wi], now + 1);
        next = std::min(next, at);
    }
    if (!sleepHeap_.empty())
        next = std::min(next,
                        std::max(sleepHeap_.front().wake, now + 1));
    // Defensive: a refillable pending warp or an uncommitted atomic
    // means next cycle is not provably a no-op.
    if ((!pendingQueue_.empty() &&
         readyQueue_.size() < effectiveReadyQueue_) ||
        !pendingAtomics_.empty()) {
        next = std::min(next, now + 1);
    }
    return next;
}

void
Sm::skipCycles(u64 k)
{
    // Reconstruct exactly what k no-op step() calls would have
    // recorded.  Each no-op step: counts a throttle-active cycle from
    // the (frozen) throttle state, rotates the LRR cursor once,
    // counts an idle cycle when CTAs are resident, and integrates one
    // power-sampling cycle.  All other per-step work is state-free
    // over a quiescent window (see nextEventCycle()).
    if (throttleActive_)
        stats_.throttleActiveCycles += k;
    if (!readyQueue_.empty()) {
        lrrCursor_ = static_cast<u32>(
            (static_cast<u64>(lrrCursor_) + k) % readyQueue_.size());
    }
    if (busy())
        stats_.idleCycles += k;
    mgr_.sampleCycles(k);
}

void
Sm::commitAtomics(Cycle now)
{
    ScopedNs commit_t(profiling_ && !pendingAtomics_.empty()
                          ? &prof_.commitNs
                          : nullptr);
    for (const PendingAtomic &pa : pendingAtomics_) {
        WarpValue out{};
        for (u32 l = 0; l < kWarpSize; ++l) {
            if (!((pa.execMask >> l) & 1))
                continue;
            const u32 a = pa.addr[l] + pa.offset;
            const u32 old = gmem_.load(a);
            gmem_.store(a, old + pa.val[l]);
            out[l] = old;
        }
        writeDest(pa.warpIdx, pa.dst, out, pa.execMask, now);
    }
    pendingAtomics_.clear();
}

} // namespace rfv
