/**
 * @file
 * One streaming multiprocessor: warp contexts, two-level scheduler,
 * scoreboard, functional SIMT execution, register management, CTA
 * throttling (GPU-shrink) and the scheduler-issued spill engine.
 */
#ifndef RFV_SIM_SM_H
#define RFV_SIM_SM_H

#include <deque>

#include "isa/program.h"
#include "regfile/register_manager.h"
#include "regfile/release_flag_cache.h"
#include "sim/dcache.h"
#include "sim/decode_cache.h"
#include "sim/icache.h"
#include "sim/memory.h"
#include "sim/sim_config.h"
#include "sim/warp.h"

namespace rfv {

/** "No event pending": the SM cannot change state on its own. */
inline constexpr Cycle kNoEventCycle = ~0ull;

/** Per-SM counters. */
struct SmStats {
    u64 issuedInstrs = 0;  //!< regular warp instructions issued
    u64 threadInstrs = 0;  //!< lane-level instruction count
    u64 metaEncounters = 0; //!< pir/pbr reached by any warp
    u64 metaDecoded = 0;    //!< pir flag-cache misses + all pbr
    u64 scoreboardStalls = 0;
    u64 allocStallEvents = 0;
    u64 throttleSkips = 0;
    u64 throttleActiveCycles = 0;
    u64 bankConflictCycles = 0;
    u64 spillEvents = 0;   //!< warp spills performed
    u64 spilledRegs = 0;
    u64 refilledRegs = 0;
    u64 idleCycles = 0;    //!< cycles with zero issues
    u64 wakeStallEvents = 0;
    u64 icacheHits = 0;
    u64 icacheMisses = 0;
    u64 dcacheHits = 0;
    u64 dcacheMisses = 0;
    u32 peakResidentWarps = 0;
};

/** One SM. */
class Sm {
  public:
    Sm(u32 smId, const GpuConfig &cfg, const Program &prog,
       const DecodeCache &decode, const LaunchParams &launch,
       GlobalMemory &gmem, DramModel &dram, const TraceHooks &hooks);

    /** Concurrent CTAs this SM can hold for this kernel. */
    u32 maxConcCtas() const { return maxConcCtas_; }

    /** Try to make CTA @p globalCtaId resident; false if no room. */
    bool tryLaunchCta(u32 globalCtaId, Cycle now);

    /** True while any CTA is resident. */
    bool busy() const { return residentCtas_ > 0; }

    u32 residentCtas() const { return residentCtas_; }
    u32 completedCtas() const { return completedCtas_; }

    /** Advance one cycle. */
    void step(Cycle now);

    /**
     * Earliest cycle strictly after @p now at which this SM's state
     * can change on its own, or kNoEventCycle if it cannot (idle, or
     * every warp is parked on an external condition).  Valid only
     * right after step()/commitAtomics() for cycle @p now (or after a
     * CTA launch at @p now): the minimum over every ready warp's
     * wakeup cycle and the sleep-heap head.  Cycles before the
     * returned value are provable no-ops — every ready warp is
     * blocked past them, sleepers wake later, pending warps cannot
     * enter the full ready set, throttle/dispatch inputs are frozen,
     * and deferred completions only become visible to attempts at the
     * next executed step (which drains them first).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account @p k elided no-op cycles: reconstructs exactly what k
     * step() calls would have recorded over a window where
     * nextEventCycle() proved no state change — idle/throttle cycle
     * counters, the LRR cursor rotation, and the per-cycle power
     * sampling integrals.  Bit-identical to stepping (enforced by
     * tests/test_event_equivalence.cc).
     */
    void skipCycles(u64 k);

    /**
     * Commit global-memory atomics issued during step(@p now).
     *
     * Atomic read-modify-writes are the one place SMs intentionally
     * touch shared memory words, so their side effects are deferred
     * and committed by the Gpu at the end-of-cycle barrier in SM-id
     * order — the same order the sequential loop produces — keeping
     * parallel runs bit-identical to sequential ones.  The destination
     * register is scoreboarded until the (much later) DRAM completion,
     * so the deferral is architecturally invisible.  Callers stepping
     * an Sm directly must invoke this after each step().
     */
    void commitAtomics(Cycle now);

    const SmStats &stats() const { return stats_; }
    RegisterManager &regs() { return mgr_; }
    const RegisterManager &regs() const { return mgr_; }
    const ReleaseFlagCache &flagCache() const { return flagCache_; }

    /** Resident (valid) warps right now. */
    u32 residentWarps() const;

    /** Human-readable scheduler/warp state (deadlock diagnosis). */
    std::string debugState(Cycle now) const;

  private:
    struct CtaSlot {
        bool active = false;
        u32 globalId = 0;
        u32 numWarps = 0;
        u32 warpsFinished = 0;
        u32 barrierArrived = 0;
    };

    struct Completion {
        Cycle time;
        u32 warp;
        u64 regMask;
        u32 predMask;
        bool isLoad;
        bool
        operator>(const Completion &o) const
        {
            return time > o.time;
        }
    };

    enum class IssueOutcome : u8 { kIssued, kSkipped, kDemoted, kParked };

    /** Sleep-heap entry: (wakeup cycle, warp index) min-heap order. */
    struct SleepEntry {
        Cycle wake;
        u32 warp;
        bool
        operator>(const SleepEntry &o) const
        {
            return wake != o.wake ? wake > o.wake : warp > o.warp;
        }
    };

    /** One atomic op awaiting the end-of-cycle commit. */
    struct PendingAtomic {
        u32 warpIdx;
        u32 dst;
        u32 execMask;
        u32 offset;
        WarpValue addr; //!< per-lane base addresses
        WarpValue val;  //!< per-lane addends
    };

    void drainCompletions(Cycle now);
    void wakeSleepers(Cycle now);
    void evaluateThrottle();
    void unparkThrottled();
    IssueOutcome attemptIssue(u32 warpIdx, Cycle now);
    bool processMetadata(Warp &warp, u32 warpIdx, Cycle now);
    void execute(Warp &warp, u32 warpIdx, const Instr &ins,
                 const StaticDecode &dec, u32 execMask, Cycle now);
    void finishWarp(u32 warpIdx, Cycle now);
    void releaseBarrier(u32 ctaSlot);
    void tryRefill(Warp &warp, u32 warpIdx, Cycle now);
    i32 spillPriorityWarp() const;
    void attemptSpill(u32 stalledWarp, u32 needBank, Cycle now);
    void demoteWarp(u32 warpIdx);
    void pendWarp(u32 warpIdx);
    void sleepWarp(u32 warpIdx);
    void removeFromReady(u32 warpIdx);
    void refillReadyQueue();
    void normalizeReadyQueue(Cycle now);
    void pushCompletion(const Completion &c);
    Cycle scoreboardWake(u32 warpIdx, u64 needRegs, u32 needPreds,
                         Cycle now) const;
    Cycle mshrWake(Cycle now) const;
    std::pair<Cycle, bool> dramLoadTiming(
        const std::vector<u32> &byteAddrs, Cycle now);
    u32 firstWarpSlot(u32 ctaSlot) const { return ctaSlot * warpsPerCta_; }

    // Value plumbing.
    WarpValue readOperand(u32 warpIdx, const Operand &op);
    void writeDest(u32 warpIdx, u32 reg, const WarpValue &value,
                   u32 execMask, Cycle now);

    u32 smId_;
    const GpuConfig &cfg_;
    const Program &prog_;
    const DecodeCache &decode_;
    LaunchParams launch_;
    GlobalMemory &gmem_;
    DramModel &dram_;
    const TraceHooks &hooks_;

    u32 warpsPerCta_;
    u32 maxConcCtas_;
    u32 residentCtas_ = 0;
    u32 completedCtas_ = 0;

    RegisterManager mgr_;
    ReleaseFlagCache flagCache_;
    ICache icache_;
    DCache dcache_;
    u32 effectiveReadyQueue_;
    bool twoLevel_;

    std::vector<Warp> warps_;
    std::vector<CtaSlot> ctaSlots_;
    std::vector<std::vector<u32>> sharedMem_; //!< per CTA slot, words
    std::vector<std::vector<WarpValue>> localMem_; //!< [warpSlot][slot]

    std::vector<u32> readyQueue_;
    std::deque<u32> pendingQueue_;
    u32 lrrCursor_ = 0;

    /**
     * Ready warps blocked at least this far in the future are moved to
     * the sleep heap instead of spinning in the active set.  Short ALU
     * stalls (4-6 cycles) stay ready — preserving the two-level
     * scheduler's character — and are covered by nextEventCycle()'s
     * min-over-ready term, so quiescent windows remain skippable.
     */
    static constexpr Cycle kSleepThresholdCycles = 8;

    /**
     * Completion min-heap (std::push_heap/pop_heap with
     * std::greater): kept as a plain vector so the exact-wakeup
     * queries (scoreboardWake/mshrWake) can scan pending entries.
     */
    std::vector<Completion> completions_;
    u32 inFlightLoads_ = 0;

    /** Min-heap of (wake cycle, warp) for long-blocked warps. */
    std::vector<SleepEntry> sleepHeap_;

    /** Warps parked by the CTA throttle until its signature changes. */
    std::vector<u32> throttleParked_;

    // Reusable per-step scratch (hot path stays allocation-free).
    std::vector<u32> issueOrder_; //!< LRR snapshot of readyQueue_
    std::vector<u32> addrScratch_; //!< per-lane byte addresses
    std::vector<u32> segScratch_;  //!< coalescing segment ids

    std::vector<PendingAtomic> pendingAtomics_;

    u32 currentPc_ = 0; //!< diagnostic: pc of the instruction being issued

    bool throttleActive_ = false;
    u32 throttleCta_ = 0;

    /**
     * Operand-collector port usage in the current cycle: reads issued
     * to each bank by all instructions issued this cycle.  Each bank
     * serves one warp-wide operand per cycle, so the n-th reader of a
     * bank waits n extra cycles (paper Sec. 7.1: renaming preserves the
     * compiler's bank assignment precisely to keep this small).
     */
    std::vector<u32> bankPortUse_;

    SmStats stats_;
};

} // namespace rfv

#endif // RFV_SIM_SM_H
