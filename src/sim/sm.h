/**
 * @file
 * One streaming multiprocessor: SoA warp table, two-level scheduler,
 * scoreboard, functional SIMT execution, register management, CTA
 * throttling (GPU-shrink) and the scheduler-issued spill engine.
 *
 * Warp state lives in a structure-of-arrays WarpTable (see
 * sim/warp_table.h and docs/ARCHITECTURE.md §3.6): the per-cycle
 * sweeps — issuable-mask computation, barrier release, scoreboard
 * clears — operate on packed arrays and bitmasks instead of hopping
 * across per-warp objects.
 */
#ifndef RFV_SIM_SM_H
#define RFV_SIM_SM_H

#include <array>

#include "common/ring_queue.h"
#include "isa/program.h"
#include "regfile/register_manager.h"
#include "regfile/release_flag_cache.h"
#include "sim/dcache.h"
#include "sim/decode_cache.h"
#include "sim/icache.h"
#include "sim/loop_profiler.h"
#include "sim/memory.h"
#include "sim/sim_config.h"
#include "sim/warp_table.h"

namespace rfv {

/** "No event pending": the SM cannot change state on its own. */
inline constexpr Cycle kNoEventCycle = ~0ull;

/** Per-SM counters. */
struct SmStats {
    u64 issuedInstrs = 0;  //!< regular warp instructions issued
    u64 threadInstrs = 0;  //!< lane-level instruction count
    u64 metaEncounters = 0; //!< pir/pbr reached by any warp
    u64 metaDecoded = 0;    //!< pir flag-cache misses + all pbr
    u64 scoreboardStalls = 0;
    u64 allocStallEvents = 0;
    u64 throttleSkips = 0;
    u64 throttleActiveCycles = 0;
    u64 bankConflictCycles = 0;
    u64 spillEvents = 0;   //!< warp spills performed
    u64 spilledRegs = 0;
    u64 refilledRegs = 0;
    u64 idleCycles = 0;    //!< cycles with zero issues
    u64 wakeStallEvents = 0;
    u64 icacheHits = 0;
    u64 icacheMisses = 0;
    u64 dcacheHits = 0;
    u64 dcacheMisses = 0;
    u32 peakResidentWarps = 0;
};

/** One SM. */
class Sm {
  public:
    Sm(u32 smId, const GpuConfig &cfg, const Program &prog,
       const DecodeCache &decode, const LaunchParams &launch,
       GlobalMemory &gmem, DramModel &dram, const TraceHooks &hooks);

    /** Concurrent CTAs this SM can hold for this kernel. */
    u32 maxConcCtas() const { return maxConcCtas_; }

    /** Try to make CTA @p globalCtaId resident; false if no room. */
    bool tryLaunchCta(u32 globalCtaId, Cycle now);

    /** True while any CTA is resident. */
    bool busy() const { return residentCtas_ > 0; }

    u32 residentCtas() const { return residentCtas_; }
    u32 completedCtas() const { return completedCtas_; }

    /** Advance one cycle. */
    void step(Cycle now);

    /**
     * Earliest cycle strictly after @p now at which this SM's state
     * can change on its own, or kNoEventCycle if it cannot (idle, or
     * every warp is parked on an external condition).  Valid only
     * right after step()/commitAtomics() for cycle @p now (or after a
     * CTA launch at @p now): the minimum over every ready warp's
     * wakeup cycle and the sleep-heap head.  Cycles before the
     * returned value are provable no-ops — every ready warp is
     * blocked past them, sleepers wake later, pending warps cannot
     * enter the full ready set, throttle/dispatch inputs are frozen,
     * and deferred completions only become visible to attempts at the
     * next executed step (which drains them first).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account @p k elided no-op cycles: reconstructs exactly what k
     * step() calls would have recorded over a window where
     * nextEventCycle() proved no state change — idle/throttle cycle
     * counters, the LRR cursor rotation, and the per-cycle power
     * sampling integrals.  Bit-identical to stepping (enforced by
     * tests/test_event_equivalence.cc).
     */
    void skipCycles(u64 k);

    /**
     * Commit global-memory atomics issued during step(@p now).
     *
     * Atomic read-modify-writes are the one place SMs intentionally
     * touch shared memory words, so their side effects are deferred
     * and committed by the Gpu at the end-of-cycle barrier in SM-id
     * order — the same order the sequential loop produces — keeping
     * parallel runs bit-identical to sequential ones.  The destination
     * register is scoreboarded until the (much later) DRAM completion,
     * so the deferral is architecturally invisible.  Callers stepping
     * an Sm directly must invoke this after each step().
     */
    void commitAtomics(Cycle now);

    const SmStats &stats() const { return stats_; }
    RegisterManager &regs() { return mgr_; }
    const RegisterManager &regs() const { return mgr_; }
    const ReleaseFlagCache &flagCache() const { return flagCache_; }

    /** Per-phase wall-clock profile (populated when profiling is on). */
    const LoopProfile &loopProfile() const { return prof_; }

    /** Resident (valid) warps right now. */
    u32 residentWarps() const;

    /** Human-readable scheduler/warp state (deadlock diagnosis). */
    std::string debugState(Cycle now) const;

  private:
    struct CtaSlot {
        bool active = false;
        u32 globalId = 0;
        u32 numWarps = 0;
        u32 warpsFinished = 0;
        u32 barrierArrived = 0;
    };

    /**
     * One in-flight writeback, packed to 24 bytes (three 8-byte
     * lines' worth instead of the unpacked 32): the warp index and
     * the load flag share one u32, since warp indices are bounded by
     * the SM's warp-slot count (far below 2^31).  Completions are the
     * densest hot-path traffic — heap sifts, wheel pushes and drains
     * all move them by value — so the 25% size cut is measurable.
     */
    struct Completion {
        Cycle time;
        u64 regMask;
        u32 predMask;
        u32 warpLoad; //!< warp index in bits 0-30, isLoad in bit 31

        static constexpr u32 kLoadBit = 0x80000000u;

        Completion() = default;
        Completion(Cycle t, u32 w, u64 regs, u32 preds, bool is_load)
            : time(t), regMask(regs), predMask(preds),
              warpLoad(w | (is_load ? kLoadBit : 0))
        {
        }

        u32 warp() const { return warpLoad & ~kLoadBit; }
        bool isLoad() const { return (warpLoad & kLoadBit) != 0; }

        bool
        operator>(const Completion &o) const
        {
            return time > o.time;
        }
    };
    static_assert(sizeof(Completion) == 24,
                  "Completion must stay packed to 24 bytes");

    enum class IssueOutcome : u8 { kIssued, kSkipped, kDemoted, kParked };

    /** Sleep-heap entry: (wakeup cycle, warp index) min-heap order. */
    struct SleepEntry {
        Cycle wake;
        u32 warp;
        bool
        operator>(const SleepEntry &o) const
        {
            return wake != o.wake ? wake > o.wake : warp > o.warp;
        }
    };

    /** One atomic op awaiting the end-of-cycle commit. */
    struct PendingAtomic {
        u32 warpIdx;
        u32 dst;
        u32 execMask;
        u32 offset;
        WarpValue addr; //!< per-lane base addresses
        WarpValue val;  //!< per-lane addends
    };

    // The per-cycle phases below split into an inline guard (the
    // common nothing-due case, a compare or two on this SM's own
    // state) and an out-of-line body, so quiet cycles pay no call.
    void
    drainCompletions(Cycle now)
    {
        if (wheelOccupied_ != 0 ||
            (!completions_.empty() && completions_.front().time <= now))
            drainCompletionsWork(now);
    }
    void drainCompletionsWork(Cycle now);
    void
    wakeSleepers(Cycle now)
    {
        if (!sleepHeap_.empty() && sleepHeap_.front().wake <= now)
            wakeSleepersWork(now);
    }
    void wakeSleepersWork(Cycle now);
    void
    evaluateThrottle()
    {
        // Pure function of the manager's allocation state (free pool,
        // resident-CTA set, per-CTA held counts): an unchanged epoch
        // means an identical decision and no signature change.
        if (mgr_.allocEpoch() != throttleEpoch_)
            evaluateThrottleWork();
    }
    void evaluateThrottleWork();
    void unparkThrottled();
    IssueOutcome attemptIssue(u32 warpIdx, Cycle now);
    bool processMetadata(u32 warpIdx, Cycle now);
    void execute(u32 warpIdx, const Instr &ins, const StaticDecode &dec,
                 u32 execMask, Cycle now);
    void finishWarp(u32 warpIdx, Cycle now);
    void releaseBarrier(u32 ctaSlot);
    void tryRefill(u32 warpIdx, Cycle now);
    i32 spillPriorityWarp() const;
    void attemptSpill(u32 stalledWarp, u32 needBank, Cycle now);
    void demoteWarp(u32 warpIdx);
    void pendWarp(u32 warpIdx);
    void sleepWarp(u32 warpIdx);
    void removeFromReady(u32 warpIdx);
    void
    refillReadyQueue()
    {
        if (readyQueue_.size() < effectiveReadyQueue_ &&
            !pendingQueue_.empty())
            refillReadyQueueWork();
    }
    void refillReadyQueueWork();
    void normalizeReadyQueue(Cycle now);
    void pushCompletion(const Completion &c);
    Cycle scoreboardWake(u32 warpIdx, u64 needRegs, u32 needPreds,
                         Cycle now) const;
    Cycle mshrWake(Cycle now) const;
    std::pair<Cycle, bool> dramLoadTiming(
        const std::vector<u32> &byteAddrs, Cycle now);
    u32 firstWarpSlot(u32 ctaSlot) const { return ctaSlot * warpsPerCta_; }

    // Value plumbing.  Returns the register file's lane array directly
    // for register operands (no per-operand copy); immediates are
    // splatted into the caller-provided scratch.
    const WarpValue &readOperand(u32 warpIdx, const Operand &op,
                                 WarpValue &scratch);
    void writeDest(u32 warpIdx, u32 reg, const WarpValue &value,
                   u32 execMask, Cycle now);

    u32 smId_;
    const GpuConfig &cfg_;
    const Program &prog_;
    const DecodeCache &decode_;
    LaunchParams launch_;
    GlobalMemory &gmem_;
    DramModel &dram_;
    const TraceHooks &hooks_;

    u32 warpsPerCta_;
    u32 maxConcCtas_;
    u32 residentCtas_ = 0;
    u32 completedCtas_ = 0;

    RegisterManager mgr_;
    ReleaseFlagCache flagCache_;
    ICache icache_;
    DCache dcache_;
    u32 effectiveReadyQueue_;
    bool twoLevel_;

    /** SoA warp state: hot packed arrays + flag masks + cold stacks. */
    WarpTable wt_;
    std::vector<CtaSlot> ctaSlots_;
    std::vector<std::vector<u32>> sharedMem_; //!< per CTA slot, words
    std::vector<std::vector<WarpValue>> localMem_; //!< [warpSlot][slot]

    std::vector<u32> readyQueue_;
    RingQueue<u32> pendingQueue_;
    u32 lrrCursor_ = 0;

    /**
     * Ready warps blocked at least this far in the future are moved to
     * the sleep heap instead of spinning in the active set.  Short ALU
     * stalls (4-6 cycles) stay ready — preserving the two-level
     * scheduler's character — and are covered by nextEventCycle()'s
     * min-over-ready term, so quiescent windows remain skippable.
     */
    static constexpr Cycle kSleepThresholdCycles = 8;

    /**
     * Completion min-heap (std::push_heap/pop_heap with
     * std::greater).  The exact-wakeup queries no longer scan it:
     * scoreboardWake walks the warp table's per-register ready-time
     * index and mshrWake reads the load-time heap below.  Holds load
     * completions (whose drain order must stay globally time-sorted
     * to mirror the load-time heap) and the rare non-load completion
     * further than the wheel below reaches.
     */
    std::vector<Completion> completions_;
    u32 inFlightLoads_ = 0;

    /**
     * Timing wheel for short-latency non-load completions (the bulk:
     * ALU/store writebacks a few cycles out).  Slot t % kWheelSlots
     * holds the completions retiring at absolute cycle t; pushes and
     * drains are O(1) slot operations instead of heap sifts.  Every
     * resident entry's time lies in (wheelPos_, wheelPos_ + 64), so
     * residues map to absolute cycles uniquely and a drain at cycle
     * `now` empties exactly the slots of cycles in (wheelPos_, now].
     * Order between wheel and heap entries of equal time is
     * irrelevant: non-load completion effects are commutative
     * scoreboard-mask clears.
     */
    static constexpr u32 kWheelSlots = 64;
    std::array<std::vector<Completion>, kWheelSlots> wheel_;
    u64 wheelOccupied_ = 0; //!< bit s set while wheel_[s] is non-empty
    Cycle wheelPos_ = 0;    //!< cycles <= wheelPos_ are fully drained

    /**
     * Min-heap of in-flight DRAM-load completion times, maintained
     * alongside completions_ (pushed per load issue, popped when the
     * load drains — loads drain in time order, so the fronts agree).
     * Makes mshrWake O(1) instead of a scan over every completion on
     * each MSHR-full issue attempt.
     */
    std::vector<Cycle> loadHeap_;

    /** Min-heap of (wake cycle, warp) for long-blocked warps. */
    std::vector<SleepEntry> sleepHeap_;

    /** Warps parked by the CTA throttle until its signature changes. */
    std::vector<u32> throttleParked_;

    // Reusable per-step scratch (hot path stays allocation-free).
    std::vector<u32> issueOrder_; //!< LRR snapshot of readyQueue_
    std::vector<u32> addrScratch_; //!< per-lane byte addresses
    std::vector<u32> segScratch_;  //!< coalescing segment ids

    std::vector<PendingAtomic> pendingAtomics_;

    u32 currentPc_ = 0; //!< diagnostic: pc of the instruction being issued

    bool throttleActive_ = false;
    u32 throttleCta_ = 0;
    /** mgr_ allocation epoch at the last throttle evaluation (the
     *  initial ~0 forces the first call to compute). */
    u64 throttleEpoch_ = ~0ull;
    /** mgr_ allocation epoch at the last failed CTA-launch attempt
     *  (the initial ~0 lets the first attempt through). */
    u64 launchFailEpoch_ = ~0ull;

    /**
     * Operand-collector port usage in the current cycle: reads issued
     * to each bank by all instructions issued this cycle.  Each bank
     * serves one warp-wide operand per cycle, so the n-th reader of a
     * bank waits n extra cycles (paper Sec. 7.1: renaming preserves the
     * compiler's bank assignment precisely to keep this small).
     */
    std::vector<u32> bankPortUse_;

    SmStats stats_;

    /** Per-phase wall-clock buckets; accumulated only when profiling_. */
    LoopProfile prof_;
    bool profiling_ = false;
};

} // namespace rfv

#endif // RFV_SIM_SM_H
