/**
 * @file
 * Warp scheduling enums shared by the SoA warp table and the SM.
 *
 * The per-warp execution state itself lives in WarpTable
 * (sim/warp_table.h) as structure-of-arrays: the old array-of-structs
 * `Warp` object was the SM hot path's main source of pointer-chasing
 * (every issue attempt touched a ~200-byte object with an embedded
 * SimtStack vector), so the fields every cycle reads were split into
 * packed parallel arrays and per-SM bitmasks.
 */
#ifndef RFV_SIM_WARP_H
#define RFV_SIM_WARP_H

#include "common/types.h"

namespace rfv {

/** Why a warp cannot issue right now (for stats/debug). */
enum class WarpStall : u8 {
    kNone,
    kScoreboard,
    kBarrier,
    kMemStructural,
    kRegAlloc,
    kThrottle,
    kSpilled,
    kLatency,
};

/**
 * Which scheduler container currently holds the warp.  Exactly one
 * container may hold a warp at a time; the enum makes membership an
 * O(1) check instead of a queue scan and lets the event-driven loop
 * reason about which warps can generate wakeup events:
 *  - kReady/kPending: the two-level scheduler queues (runnable or
 *    short-blocked warps).
 *  - kSleeping: parked in the wakeup-cycle min-heap until the warp's
 *    blockedUntil cycle (long-latency stall with a known end).
 *  - kBarrier: parked until the CTA barrier releases.
 *  - kParked: parked by the CTA throttle until the throttle signature
 *    (active flag, chosen CTA) changes.
 *  - kNone: invalid or finished.
 */
enum class WarpLoc : u8 {
    kNone,
    kReady,
    kPending,
    kSleeping,
    kBarrier,
    kParked,
};

} // namespace rfv

#endif // RFV_SIM_WARP_H
