/**
 * @file
 * Per-warp execution context.
 */
#ifndef RFV_SIM_WARP_H
#define RFV_SIM_WARP_H

#include <array>

#include "sim/simt_stack.h"

namespace rfv {

/** Why a warp cannot issue right now (for stats/debug). */
enum class WarpStall : u8 {
    kNone,
    kScoreboard,
    kBarrier,
    kMemStructural,
    kRegAlloc,
    kThrottle,
    kSpilled,
    kLatency,
};

/**
 * Which scheduler container currently holds the warp.  Exactly one
 * container may hold a warp at a time; the enum makes membership an
 * O(1) check instead of a queue scan and lets the event-driven loop
 * reason about which warps can generate wakeup events:
 *  - kReady/kPending: the two-level scheduler queues (runnable or
 *    short-blocked warps).
 *  - kSleeping: parked in the wakeup-cycle min-heap until
 *    Warp::blockedUntil (long-latency stall with a known end).
 *  - kBarrier: parked until the CTA barrier releases.
 *  - kParked: parked by the CTA throttle until the throttle signature
 *    (active flag, chosen CTA) changes.
 *  - kNone: invalid or finished.
 */
enum class WarpLoc : u8 {
    kNone,
    kReady,
    kPending,
    kSleeping,
    kBarrier,
    kParked,
};

/** One warp's execution state within an SM. */
struct Warp {
    bool valid = false;     //!< slot holds a live warp
    bool finished = false;  //!< all lanes exited
    bool atBarrier = false; //!< waiting at a CTA barrier

    /** Scheduler container currently holding this warp. */
    WarpLoc loc = WarpLoc::kNone;

    u32 ctaSlot = 0;      //!< CTA slot within the SM
    u32 warpInCta = 0;    //!< warp index within the CTA
    u32 globalCtaId = 0;  //!< CTA id within the grid

    SimtStack stack;

    /** Registers with an outstanding write (scoreboard). */
    u64 pendingRegs = 0;
    /** Predicates with an outstanding write. */
    u32 pendingPreds = 0;
    /** Outstanding long-latency loads. */
    u32 pendingLoads = 0;

    /** Warp cannot issue before this cycle (latency/bubbles). */
    Cycle blockedUntil = 0;

    /** Cycle until which this warp must not be chosen as spill victim. */
    Cycle spillProtectedUntil = 0;

    /** Consecutive cycles spent stalled on register allocation. */
    u32 allocStallStreak = 0;

    /**
     * pc whose instruction-cache miss was already paid: the fetch
     * completes when the stall ends even if the line is evicted
     * meanwhile (prevents fetch-retry livelock under thrashing).
     */
    u32 paidFetchPc = kInvalidPc;

    /** Per-lane predicate register bits: predBits[p] bit l = lane l. */
    std::array<u32, kNumPredRegs> predBits{};

    bool
    issuable(Cycle now) const
    {
        return valid && !finished && !atBarrier && blockedUntil <= now;
    }
};

} // namespace rfv

#endif // RFV_SIM_WARP_H
