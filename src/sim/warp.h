/**
 * @file
 * Per-warp execution context.
 */
#ifndef RFV_SIM_WARP_H
#define RFV_SIM_WARP_H

#include <array>

#include "sim/simt_stack.h"

namespace rfv {

/** Why a warp cannot issue right now (for stats/debug). */
enum class WarpStall : u8 {
    kNone,
    kScoreboard,
    kBarrier,
    kMemStructural,
    kRegAlloc,
    kThrottle,
    kSpilled,
    kLatency,
};

/** One warp's execution state within an SM. */
struct Warp {
    bool valid = false;     //!< slot holds a live warp
    bool finished = false;  //!< all lanes exited
    bool atBarrier = false; //!< waiting at a CTA barrier

    u32 ctaSlot = 0;      //!< CTA slot within the SM
    u32 warpInCta = 0;    //!< warp index within the CTA
    u32 globalCtaId = 0;  //!< CTA id within the grid

    SimtStack stack;

    /** Registers with an outstanding write (scoreboard). */
    u64 pendingRegs = 0;
    /** Predicates with an outstanding write. */
    u32 pendingPreds = 0;
    /** Outstanding long-latency loads. */
    u32 pendingLoads = 0;

    /** Warp cannot issue before this cycle (latency/bubbles). */
    Cycle blockedUntil = 0;

    /** Cycle until which this warp must not be chosen as spill victim. */
    Cycle spillProtectedUntil = 0;

    /** Consecutive cycles spent stalled on register allocation. */
    u32 allocStallStreak = 0;

    /**
     * pc whose instruction-cache miss was already paid: the fetch
     * completes when the stall ends even if the line is evicted
     * meanwhile (prevents fetch-retry livelock under thrashing).
     */
    u32 paidFetchPc = kInvalidPc;

    /** Per-lane predicate register bits: predBits[p] bit l = lane l. */
    std::array<u32, kNumPredRegs> predBits{};

    bool
    issuable(Cycle now) const
    {
        return valid && !finished && !atBarrier && blockedUntil <= now;
    }
};

} // namespace rfv

#endif // RFV_SIM_WARP_H
