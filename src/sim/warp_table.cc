#include "sim/warp_table.h"

namespace rfv {

void
WarpTable::reset(u32 slots)
{
    slots_ = slots;
    words_ = static_cast<u32>(ceilDiv(slots, 64));

    valid_.reset(words_, 0);
    finished_.reset(words_, 0);
    atBarrier_.reset(words_, 0);
    loc_.reset(slots, WarpLoc::kNone);
    predBank_.reset(slots * kPredStrideWords, 0);
    regReadyAt_.reset(slots * 64, 0);
    predReadyAt_.reset(slots * kNumPredRegs, 0);

    blockedUntil.reset(slots, 0);
    pendingRegs.reset(slots, 0);
    pendingPreds.reset(slots, 0);
    pendingLoads.reset(slots, 0);
    spillProtectedUntil.reset(slots, 0);
    allocStallStreak.reset(slots, 0);
    paidFetchPc.reset(slots, kInvalidPc);
    ctaSlot.reset(slots, 0);
    warpInCta.reset(slots, 0);
    globalCtaId.reset(slots, 0);

    stacks_.assign(slots, SimtStack{});
}

} // namespace rfv
