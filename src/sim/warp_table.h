/**
 * @file
 * Structure-of-arrays warp state for one SM.
 *
 * The fields the scheduler touches every cycle live in packed parallel
 * arrays (one cache-line-aligned array per field) and per-SM bitmasks
 * (valid / finished / atBarrier, one bit per warp slot), so the
 * per-cycle sweeps — "which ready warp can issue", "when does the
 * earliest ready warp wake", "release this CTA's barrier" — are
 * branch-free passes over contiguous memory instead of per-warp hops
 * across ~200-byte objects.  Cold state a warp touches only when it
 * actually issues a control-flow instruction (the SIMT reconvergence
 * stack) stays in a side table so it never pollutes the hot lines.
 *
 * Layout contracts (asserted at reset()):
 *  - every hot array starts on a 64-byte cache-line boundary;
 *  - the predicate bank is a contiguous 2-D array with one cache line
 *    per warp (kPredStrideWords words), so no warp's predicates
 *    straddle a line and no two warps share one.
 */
#ifndef RFV_SIM_WARP_TABLE_H
#define RFV_SIM_WARP_TABLE_H

#include <algorithm>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "common/bit_utils.h"
#include "common/error.h"
#include "sim/simt_stack.h"
#include "sim/warp.h"

namespace rfv {

/** Cache-line size the hot arrays are aligned and padded to. */
inline constexpr u32 kCacheLineBytes = 64;
static_assert(kCacheLineBytes == 64, "layout contracts assume 64B lines");

/**
 * Predicate-bank stride in words: one warp's kNumPredRegs predicate
 * registers padded to a full cache line, so bank rows never straddle
 * or share lines (the old per-warp std::array<u32, 8> packed two
 * warps per line inside scattered Warp objects).
 */
inline constexpr u32 kPredStrideWords = kCacheLineBytes / sizeof(u32);
static_assert(kPredStrideWords >= kNumPredRegs,
              "a warp's predicate bank must fit one cache line");
static_assert(kPredStrideWords * sizeof(u32) % kCacheLineBytes == 0,
              "predicate rows must be cache-line multiples");

/**
 * Fixed-size array of trivially-destructible elements in 64-byte
 * aligned storage.  std::vector gives no alignment guarantee beyond
 * alignof(T); the warp table's packed arrays want to start on line
 * boundaries so whole-table sweeps never split a load across lines
 * and adjacent arrays never share a line.
 */
template <typename T>
class AlignedArray {
    static_assert(std::is_trivially_destructible_v<T>,
                  "AlignedArray skips destructors");
    static_assert(alignof(T) <= kCacheLineBytes,
                  "element alignment exceeds the line alignment");

  public:
    AlignedArray() = default;
    AlignedArray(const AlignedArray &) = delete;
    AlignedArray &operator=(const AlignedArray &) = delete;
    ~AlignedArray() { release(); }

    /** Size to @p n elements, all set to @p fill. */
    void
    reset(u32 n, T fill = T{})
    {
        release();
        if (n == 0)
            return;
        data_ = static_cast<T *>(::operator new(
            sizeof(T) * n, std::align_val_t{kCacheLineBytes}));
        size_ = n;
        panicIf(reinterpret_cast<std::uintptr_t>(data_) %
                        kCacheLineBytes !=
                    0,
                "aligned allocation violated the 64-byte contract");
        for (u32 i = 0; i < n; ++i)
            data_[i] = fill;
    }

    T &operator[](u32 i) { return data_[i]; }
    const T &operator[](u32 i) const { return data_[i]; }
    T *data() { return data_; }
    const T *data() const { return data_; }
    u32 size() const { return size_; }

  private:
    void
    release()
    {
        if (data_ != nullptr)
            ::operator delete(data_, std::align_val_t{kCacheLineBytes});
        data_ = nullptr;
        size_ = 0;
    }

    T *data_ = nullptr;
    u32 size_ = 0;
};

/**
 * The SoA warp state of one SM.
 *
 * Flags (valid / finished / atBarrier) are bitmasks — one u64 word per
 * 64 warp slots — so "every live warp of this CTA" and "any issuable
 * warp at all" are a handful of word operations.  Scalar hot fields
 * are public packed arrays indexed by warp slot; the predicate bank is
 * one contiguous line-per-warp 2-D array; SIMT stacks are the cold
 * side table.
 *
 * The table is a data container: scheduler-queue membership semantics
 * (what loc transitions mean) stay in Sm.  Sm mutates flags only
 * through the setters so the masks are always coherent.
 */
class WarpTable {
  public:
    /** (Re)size to @p slots warp slots, everything reset to defaults. */
    void reset(u32 slots);

    u32 size() const { return slots_; }

    /** Mask words covering size() slots (64 slots per word). */
    u32 maskWords() const { return words_; }

    // ---- flag bitmasks -------------------------------------------------

    bool
    valid(u32 wi) const
    {
        return ((valid_[wi >> 6] >> (wi & 63)) & 1) != 0;
    }
    bool
    finished(u32 wi) const
    {
        return ((finished_[wi >> 6] >> (wi & 63)) & 1) != 0;
    }
    bool
    atBarrier(u32 wi) const
    {
        return ((atBarrier_[wi >> 6] >> (wi & 63)) & 1) != 0;
    }

    void
    setValid(u32 wi, bool v)
    {
        setBit(valid_, wi, v);
    }
    void
    setFinished(u32 wi, bool v)
    {
        setBit(finished_, wi, v);
    }
    void
    setAtBarrier(u32 wi, bool v)
    {
        setBit(atBarrier_, wi, v);
    }

    /**
     * Barrier release as a mask operation: clear atBarrier for the
     * contiguous warp-slot range [first, first + n).
     */
    void
    clearBarrierRange(u32 first, u32 n)
    {
        const u32 last = first + n; // exclusive
        for (u32 w = 0; w < words_; ++w) {
            const u32 base = w * 64;
            const u32 lo = first > base ? first - base : 0;
            const u32 hi = last > base ? last - base : 0;
            if (lo >= 64 || hi <= lo)
                continue;
            atBarrier_[w] &= ~(lowMask(std::min(hi, 64u)) & ~lowMask(lo));
        }
    }

    const u64 *validWords() const { return valid_.data(); }
    const u64 *finishedWords() const { return finished_.data(); }
    const u64 *atBarrierWords() const { return atBarrier_.data(); }

    // ---- issuability ---------------------------------------------------

    /**
     * Single-warp issuability test on the packed arrays: live, not at
     * a barrier, and past its stall.  Exactly the old
     * Warp::issuable(now).
     */
    bool
    issuable(u32 wi, Cycle now) const
    {
        const u64 bit = 1ull << (wi & 63);
        const u64 live = valid_[wi >> 6] & ~finished_[wi >> 6] &
                         ~atBarrier_[wi >> 6];
        return (live & bit) != 0 && blockedUntil[wi] <= now;
    }

    /**
     * Whole-table issuable mask by a branch-free sweep: @p out (at
     * least maskWords() words) gets one bit per slot that is valid,
     * unfinished, not at a barrier, and has blockedUntil <= now.  The
     * per-slot compare folds in as an unpredicated bit merge, so the
     * sweep is a straight pass over the packed arrays regardless of
     * how the flags are distributed.
     */
    void
    issuableMask(Cycle now, u64 *out) const
    {
        for (u32 w = 0; w < words_; ++w)
            out[w] = valid_[w] & ~finished_[w] & ~atBarrier_[w];
        for (u32 i = 0; i < slots_; ++i)
            out[i >> 6] &=
                ~(static_cast<u64>(blockedUntil[i] > now) << (i & 63));
    }

    /**
     * Reference issuability: field-by-field re-derivation used as the
     * oracle for issuableMask()/issuable() in tests and debug checks.
     */
    bool
    issuableRef(u32 wi, Cycle now) const
    {
        return valid(wi) && !finished(wi) && !atBarrier(wi) &&
               blockedUntil[wi] <= now;
    }

    // ---- scheduler container membership --------------------------------

    WarpLoc loc(u32 wi) const { return loc_[wi]; }
    void loc(u32 wi, WarpLoc l) { loc_[wi] = l; }

    // ---- packed hot scalar fields (indexed by warp slot) ---------------

    AlignedArray<Cycle> blockedUntil; //!< cannot issue before this cycle
    AlignedArray<u64> pendingRegs;    //!< scoreboard: in-flight reg writes
    AlignedArray<u32> pendingPreds;   //!< scoreboard: in-flight pred writes

    /**
     * Per-register completion-time index: regReadyAt(wi)[r] is the
     * retire cycle of the in-flight write to architectural register
     * @p r of warp @p wi.  Valid only while the matching pendingRegs /
     * pendingPreds bit is set (each pending bit has exactly one
     * in-flight completion, so the entry written at issue is the one);
     * stale entries are never read and need no clearing.  Turns the
     * exact scoreboard-wake query from a scan of the completion heap
     * into a walk of the blocked instruction's need bits.
     */
    Cycle *regReadyAt(u32 wi) { return &regReadyAt_[wi * 64]; }
    const Cycle *regReadyAt(u32 wi) const { return &regReadyAt_[wi * 64]; }
    Cycle *predReadyAt(u32 wi) { return &predReadyAt_[wi * kNumPredRegs]; }
    const Cycle *
    predReadyAt(u32 wi) const
    {
        return &predReadyAt_[wi * kNumPredRegs];
    }
    AlignedArray<u32> pendingLoads;   //!< outstanding long-latency loads
    AlignedArray<Cycle> spillProtectedUntil; //!< spill-victim cooldown
    AlignedArray<u32> allocStallStreak; //!< consecutive alloc-stall cycles
    AlignedArray<u32> paidFetchPc;    //!< icache miss already paid for pc
    AlignedArray<u32> ctaSlot;        //!< CTA slot within the SM
    AlignedArray<u32> warpInCta;      //!< warp index within the CTA
    AlignedArray<u32> globalCtaId;    //!< CTA id within the grid

    // ---- predicate bank ------------------------------------------------

    /** Warp @p wi's predicate row (kNumPredRegs used words). */
    u32 *preds(u32 wi) { return &predBank_[wi * kPredStrideWords]; }
    const u32 *
    preds(u32 wi) const
    {
        return &predBank_[wi * kPredStrideWords];
    }

    u32 &pred(u32 wi, u32 p) { return predBank_[wi * kPredStrideWords + p]; }
    u32
    pred(u32 wi, u32 p) const
    {
        return predBank_[wi * kPredStrideWords + p];
    }

    const u32 *predBankData() const { return predBank_.data(); }

    // ---- cold side table -----------------------------------------------

    SimtStack &stack(u32 wi) { return stacks_[wi]; }
    const SimtStack &stack(u32 wi) const { return stacks_[wi]; }

    // ---- lifecycle -----------------------------------------------------

    /**
     * Reinitialize slot @p wi for a fresh warp of CTA slot @p cta
     * (everything a default-constructed Warp used to hold; the SIMT
     * stack is reset separately by the caller with the launch mask).
     */
    void
    launchWarp(u32 wi, u32 cta, u32 warp_in_cta, u32 global_cta_id)
    {
        setValid(wi, true);
        setFinished(wi, false);
        setAtBarrier(wi, false);
        loc_[wi] = WarpLoc::kNone;
        blockedUntil[wi] = 0;
        pendingRegs[wi] = 0;
        pendingPreds[wi] = 0;
        pendingLoads[wi] = 0;
        spillProtectedUntil[wi] = 0;
        allocStallStreak[wi] = 0;
        paidFetchPc[wi] = kInvalidPc;
        ctaSlot[wi] = cta;
        warpInCta[wi] = warp_in_cta;
        globalCtaId[wi] = global_cta_id;
        u32 *row = preds(wi);
        for (u32 p = 0; p < kNumPredRegs; ++p)
            row[p] = 0;
    }

  private:
    static void
    setBit(AlignedArray<u64> &words, u32 wi, bool v)
    {
        const u64 bit = 1ull << (wi & 63);
        if (v)
            words[wi >> 6] |= bit;
        else
            words[wi >> 6] &= ~bit;
    }

    u32 slots_ = 0;
    u32 words_ = 0;

    AlignedArray<u64> valid_;
    AlignedArray<u64> finished_;
    AlignedArray<u64> atBarrier_;
    AlignedArray<WarpLoc> loc_;
    AlignedArray<u32> predBank_; //!< [slot][kPredStrideWords]
    AlignedArray<Cycle> regReadyAt_;  //!< [slot][64] (u64 mask width)
    AlignedArray<Cycle> predReadyAt_; //!< [slot][kNumPredRegs]

    std::vector<SimtStack> stacks_; //!< cold: touched on issue only
};

} // namespace rfv

#endif // RFV_SIM_WARP_TABLE_H
