/**
 * @file
 * BackProp (Rodinia): layered weighted sums with FP accumulation.
 *
 * Table 1: 4096 CTAs, 256 threads/CTA, 17 regs, 6 conc. CTAs/SM.
 * Each thread computes an output unit: a loop of FFMAs over 8 inputs
 * followed by a rational activation, as in the forward pass.
 */
#include <cmath>

#include "common/error.h"
#include "isa/builder.h"
#include "workloads/workload.h"

namespace rfv {

namespace {

constexpr u32 kFanIn = 8;
constexpr u32 kWeightWords = kFanIn;

float
asF(u32 bits)
{
    float f;
    __builtin_memcpy(&f, &bits, 4);
    return f;
}

u32
asU(float f)
{
    u32 bits;
    __builtin_memcpy(&bits, &f, 4);
    return bits;
}

class BackProp : public Workload {
  public:
    BackProp() : Workload({"BackProp", 4096, 256, 17, 6}) {}

    Program
    buildKernel() const override
    {
        KernelBuilder b("backprop");
        const u32 tid = b.reg(), cta = b.reg(), n = b.reg(),
                  gtid = b.reg(), acc = b.reg(), j = b.reg(),
                  xAddr = b.reg(), wAddr = b.reg(), xv = b.reg(),
                  wv = b.reg(), xv2 = b.reg(), wv2 = b.reg(),
                  xv3 = b.reg(), wv3 = b.reg(), xv4 = b.reg(),
                  wv4 = b.reg(), outAddr = b.reg();
        // Epilogue temporaries reuse loop registers (the compiler
        // would do the same): act lives in xv, t0 in wv.
        const u32 act = xv, t0 = wv;
        b.s2r(tid, SpecialReg::kTid);
        b.s2r(cta, SpecialReg::kCtaId);
        b.s2r(n, SpecialReg::kNTid);
        b.imad(gtid, R(cta), R(n), R(tid));
        b.shl(outAddr, R(gtid), I(2));

        // Fan-in loop unrolled by four: all (x, w) pairs live at once
        // (the paper's Table 1 lists 12 registers as BackProp's
        // spill-free minimum).
        b.mov(acc, I(asU(0.0f)));
        b.mov(j, I(0));
        b.label("fan");
        b.imad(xAddr, R(gtid), I(kFanIn), R(j));
        b.shl(xAddr, R(xAddr), I(2));
        b.ldg(xv, xAddr, kWeightWords * 4);
        b.ldg(xv2, xAddr, kWeightWords * 4 + 4);
        b.ldg(xv3, xAddr, kWeightWords * 4 + 8);
        b.ldg(xv4, xAddr, kWeightWords * 4 + 12);
        b.shl(wAddr, R(j), I(2));
        b.ldg(wv, wAddr, 0);
        b.ldg(wv2, wAddr, 4);
        b.ldg(wv3, wAddr, 8);
        b.ldg(wv4, wAddr, 12);
        b.ffma(acc, R(xv), R(wv), R(acc));
        b.ffma(acc, R(xv2), R(wv2), R(acc));
        b.ffma(acc, R(xv3), R(wv3), R(acc));
        b.ffma(acc, R(xv4), R(wv4), R(acc));
        b.iadd(j, R(j), I(4));
        b.setp(0, CmpOp::kLt, R(j), I(kFanIn));
        b.guard(0).bra("fan");

        // act = acc / (1 + acc*acc)  (bounded rational activation)
        b.fmul(t0, R(acc), R(acc));
        b.fadd(t0, R(t0), I(asU(1.0f)));
        b.frcp(t0, R(t0));
        b.fmul(act, R(acc), R(t0));
        b.stg(outAddr, outByteOff(), act);
        b.exit();
        b.setNumRegs(config_.regsPerKernel);
        return b.build();
    }

    u32
    memoryBytes(const LaunchParams &launch) const override
    {
        const u32 units = launch.gridCtas * launch.threadsPerCta;
        return outByteOff() + units * 4 +
               units * kFanIn * 4 /* slack */;
    }

    void
    setup(GlobalMemory &mem, const LaunchParams &launch) const override
    {
        for (u32 j = 0; j < kFanIn; ++j)
            mem.setWord(j, asU(0.1f * static_cast<float>(j + 1)));
        const u32 units = launch.gridCtas * launch.threadsPerCta;
        for (u32 i = 0; i < units * kFanIn; ++i) {
            mem.setWord(kWeightWords + i,
                        asU(-2.0f + static_cast<float>(i % 41) * 0.1f));
        }
    }

    void
    verify(const GlobalMemory &mem, const LaunchParams &launch) const
        override
    {
        const u32 units = launch.gridCtas * launch.threadsPerCta;
        for (u32 u = 0; u < units; ++u) {
            double acc = 0.0;
            for (u32 j = 0; j < kFanIn; ++j) {
                acc += static_cast<double>(
                           asF(mem.word(kWeightWords + u * kFanIn + j))) *
                       asF(mem.word(j));
            }
            const double act = acc / (1.0 + acc * acc);
            const double got = asF(mem.word(outByteOff() / 4 + u));
            panicIf(std::abs(got - act) > 1e-3 * (1.0 + std::abs(act)),
                    "BackProp mismatch at unit " + std::to_string(u));
        }
    }

  private:
    static u32
    outByteOff()
    {
        // Sized for the full Table-1 grid.
        return (kWeightWords + 4096u * 256u * kFanIn) * 4;
    }
};

} // namespace

std::unique_ptr<Workload>
makeBackProp()
{
    return std::make_unique<BackProp>();
}

} // namespace rfv
