/**
 * @file
 * BFS (Rodinia): one frontier-expansion step.
 *
 * Table 1: 1954 CTAs, 512 threads/CTA, 9 regs, 3 conc. CTAs/SM.
 * Thread = node.  Frontier nodes walk their (variable-degree) edge
 * lists and mark the next frontier — heavy branch divergence and
 * data-dependent loop trip counts, tiny register footprint.
 * All marks write the constant 1, so cross-thread write ordering
 * cannot affect the result.
 */
#include "common/error.h"
#include "isa/builder.h"
#include "workloads/workload.h"

namespace rfv {

namespace {

constexpr u32 kMaxNodes = 1954u * 512u;

class Bfs : public Workload {
  public:
    Bfs() : Workload({"BFS", 1954, 512, 9, 3}) {}

    Program
    buildKernel() const override
    {
        KernelBuilder b("bfs");
        const u32 tid = b.reg(), cta = b.reg(), node = b.reg(),
                  deg = b.reg(), e = b.reg(), nbr = b.reg(),
                  addr = b.reg(), one = b.reg(), flag = b.reg();
        b.s2r(tid, SpecialReg::kTid);
        b.s2r(cta, SpecialReg::kCtaId);
        b.s2r(node, SpecialReg::kNTid);
        b.imad(node, R(cta), R(node), R(tid)); // node id

        // flag = frontier[node]
        b.shl(addr, R(node), I(2));
        b.ldg(flag, addr, 0);
        b.setp(0, CmpOp::kNe, R(flag), I(0));
        b.guard(0, true).bra("done");

        // deg = node & 3; for e in [0, deg): mark neighbor
        b.and_(deg, R(node), I(3));
        b.setp(1, CmpOp::kEq, R(deg), I(0));
        b.guard(1).bra("done");
        b.mov(e, I(0));
        b.mov(one, I(1));
        b.label("edges");
        // nbr = (node*7 + e*13 + 1) mod kMaxNodes, power-of-2-free mod
        // approximated with a mask over the node range used.
        b.imul(nbr, R(node), I(7));
        b.imad(nbr, R(e), I(13), R(nbr));
        b.iadd(nbr, R(nbr), I(1));
        b.and_(nbr, R(nbr), I(kNodeMask));
        b.shl(nbr, R(nbr), I(2));
        b.stg(nbr, kMaxNodes * 4, one); // nextFrontier[nbr] = 1
        b.iadd(e, R(e), I(1));
        b.setp(2, CmpOp::kLt, R(e), R(deg));
        b.guard(2).bra("edges");

        b.label("done");
        b.exit();
        b.setNumRegs(config_.regsPerKernel);
        return b.build();
    }

    u32
    memoryBytes(const LaunchParams &) const override
    {
        return 2 * kMaxNodes * 4;
    }

    void
    setup(GlobalMemory &mem, const LaunchParams &launch) const override
    {
        const u32 nodes = launch.gridCtas * launch.threadsPerCta;
        for (u32 v = 0; v < nodes; ++v)
            mem.setWord(v, (v % 5 == 0 || v % 7 == 0) ? 1 : 0);
    }

    void
    verify(const GlobalMemory &mem, const LaunchParams &launch) const
        override
    {
        const u32 nodes = launch.gridCtas * launch.threadsPerCta;
        std::vector<u8> expect(kMaxNodes, 0);
        for (u32 v = 0; v < nodes; ++v) {
            if (mem.word(v) == 0)
                continue;
            const u32 deg = v & 3;
            for (u32 e = 0; e < deg; ++e)
                expect[(v * 7 + e * 13 + 1) & kNodeMask] = 1;
        }
        for (u32 v = 0; v < kMaxNodes; ++v) {
            panicIf(mem.word(kMaxNodes + v) != expect[v],
                    "BFS mismatch at node " + std::to_string(v));
        }
    }

  private:
    /** Mask keeping neighbor ids inside the allocated node range. */
    static constexpr u32 kNodeMask = (1u << 19) - 1; // 512K < kMaxNodes
};

} // namespace

std::unique_ptr<Workload>
makeBfs()
{
    return std::make_unique<Bfs>();
}

} // namespace rfv
